// Experiment A1 — ablations of MinoanER's design choices.
//
// Four knobs DESIGN.md calls out, each swept in isolation on the mixed
// cloud (final recall, AUC, precision):
//   1. evidence priority  — how strongly update-phase pairs preempt
//                           blocking candidates in the schedule;
//   2. evidence weight    — the similarity bonus of neighbor evidence
//                           (kept below the threshold by design);
//   3. update fan-out cap — neighbors considered per side per update;
//   4. block filtering    — the ratio of smallest blocks each entity keeps;
// plus the warm-start ablation (existing owl:sameAs links as seeds).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "blocking/block_cleaning.h"
#include "core/minoan_er.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "progressive/resolver.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

struct Scores {
  double recall;
  double precision;
  double auc;
};

Scores Score(const ProgressiveResult& result, const World& w,
             uint64_t horizon) {
  const MatchingMetrics m = EvaluateMatches(result.run.matches, *w.truth);
  return {m.recall, m.precision,
          ProgressiveRecallAuc(result.run, *w.truth, horizon)};
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== A1: design-choice ablations (mixed cloud, scale %u) ==\n\n",
              scale);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  const auto candidates = w.DefaultCandidates();
  const uint64_t horizon = candidates.size();

  auto run_with = [&](auto mutate) {
    ProgressiveOptions opts;
    opts.matcher.threshold = 0.35;
    mutate(opts);
    ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator, opts);
    return Score(resolver.Resolve(candidates), w, horizon);
  };

  {
    std::printf("1) evidence priority (update pairs vs candidates):\n");
    Table t({"evidence_priority", "recall", "precision", "AUC"});
    for (double ep : {0.0, 0.2, 0.4, 0.7, 1.0}) {
      const Scores s =
          run_with([&](ProgressiveOptions& o) { o.evidence.priority = ep; });
      t.AddRow().Cell(ep, 1).Cell(s.recall, 4).Cell(s.precision, 4).Cell(
          s.auc, 4);
    }
    t.Print(std::cout);
    std::printf("\n");
  }
  {
    std::printf("2) evidence weight (similarity bonus; threshold 0.35):\n");
    Table t({"evidence_weight", "recall", "precision", "AUC"});
    for (double ew : {0.0, 0.15, 0.3, 0.4}) {
      const Scores s =
          run_with([&](ProgressiveOptions& o) { o.evidence.weight = ew; });
      t.AddRow().Cell(ew, 2).Cell(s.recall, 4).Cell(s.precision, 4).Cell(
          s.auc, 4);
    }
    t.Print(std::cout);
    std::printf("   (>= threshold lets evidence alone fabricate matches: "
                "precision collapses)\n\n");
  }
  {
    std::printf("3) update-phase fan-out cap (neighbors per side):\n");
    Table t({"max_neighbors", "recall", "precision", "AUC",
             "scheduler_pushes"});
    for (uint32_t cap : {2u, 8u, 16u, 64u}) {
      ProgressiveOptions opts;
      opts.matcher.threshold = 0.35;
      opts.evidence.max_neighbors_per_side = cap;
      ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator,
                                   opts);
      const ProgressiveResult result = resolver.Resolve(candidates);
      const Scores s = Score(result, w, horizon);
      t.AddRow()
          .Cell(static_cast<uint64_t>(cap))
          .Cell(s.recall, 4)
          .Cell(s.precision, 4)
          .Cell(s.auc, 4)
          .Cell(result.scheduler_pushes);
    }
    t.Print(std::cout);
    std::printf("\n");
  }
  {
    std::printf("4) block-filtering ratio (pipeline end-to-end):\n");
    Table t({"filter_ratio", "retained_cmp", "recall", "precision"});
    for (double ratio : {1.0, 0.8, 0.6, 0.4}) {
      WorkflowOptions opts;
      opts.filter_ratio = ratio;
      opts.progressive.matcher.threshold = 0.35;
      auto report = MinoanEr(opts).Run(*w.collection);
      if (!report.ok()) continue;
      const MatchingMetrics m =
          EvaluateMatches(report->progressive.run.matches, *w.truth);
      t.AddRow()
          .Cell(ratio, 1)
          .Cell(report->comparisons_after_meta)
          .Cell(m.recall, 4)
          .Cell(m.precision, 4);
    }
    t.Print(std::cout);
    std::printf("\n");
  }
  {
    std::printf("5) warm start from existing owl:sameAs links:\n");
    Table t({"seeds", "recall", "precision", "discovered_pairs"});
    for (bool seeds : {false, true}) {
      WorkflowOptions opts;
      opts.use_same_as_seeds = seeds;
      opts.progressive.matcher.threshold = 0.35;
      auto report = MinoanEr(opts).Run(*w.collection);
      if (!report.ok()) continue;
      const MatchingMetrics m =
          EvaluateMatches(report->progressive.run.matches, *w.truth);
      t.AddRow()
          .Cell(seeds ? "on" : "off")
          .Cell(m.recall, 4)
          .Cell(m.precision, 4)
          .Cell(report->progressive.discovered_pairs);
    }
    t.Print(std::cout);
    std::printf("   (with seeds, recall counts only matches found by THIS "
                "run; the seeded pairs are free)\n");
  }
  return 0;
}
