// Copyright 2026 The MinoanER Authors.
// Shared setup for the experiment harnesses: standard synthetic clouds and
// a World bundle (collection + truth + graph + evaluator + candidates).
//
// Three standard cloud profiles mirror the poster's data regimes:
//   kCenter    — encyclopedic KBs, highly similar duplicate descriptions
//   kPeriphery — domain KBs, somehow similar descriptions, opaque IRIs
//   kMixed     — both (the realistic Web-of-Data case)

#ifndef MINOAN_BENCH_BENCH_COMMON_H_
#define MINOAN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "kb/neighbor_graph.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking.h"

namespace minoan {
namespace bench {

enum class CloudProfile { kCenter, kPeriphery, kMixed };

inline const char* CloudProfileName(CloudProfile profile) {
  switch (profile) {
    case CloudProfile::kCenter:
      return "center";
    case CloudProfile::kPeriphery:
      return "periphery";
    case CloudProfile::kMixed:
      return "mixed";
  }
  return "?";
}

/// Standard generator configuration per profile. `scale` multiplies the
/// default universe size (benches default to scale 1; pass --scale N).
inline datagen::LodCloudConfig MakeConfig(CloudProfile profile,
                                          uint32_t scale = 1,
                                          uint64_t seed = 20160315) {
  datagen::LodCloudConfig cfg;
  cfg.seed = seed;
  cfg.num_real_entities = 1200 * scale;
  switch (profile) {
    case CloudProfile::kCenter:
      cfg.num_kbs = 4;
      cfg.center_kbs = 4;
      break;
    case CloudProfile::kPeriphery:
      cfg.num_kbs = 6;
      cfg.center_kbs = 0;
      cfg.periphery_coverage = 0.25;
      cfg.periphery_token_overlap = 0.25;
      break;
    case CloudProfile::kMixed:
      cfg.num_kbs = 6;
      cfg.center_kbs = 2;
      break;
  }
  return cfg;
}

/// Everything an experiment needs, with stable internal references.
struct World {
  std::unique_ptr<datagen::LodCloud> cloud;
  std::unique_ptr<EntityCollection> collection;
  std::unique_ptr<GroundTruth> truth;
  std::unique_ptr<NeighborGraph> graph;
  std::unique_ptr<SimilarityEvaluator> evaluator;

  static World Make(const datagen::LodCloudConfig& cfg) {
    World w;
    auto cloud = datagen::GenerateLodCloud(cfg);
    if (!cloud.ok()) Die("generator", cloud.status());
    w.cloud = std::make_unique<datagen::LodCloud>(std::move(cloud).value());
    auto collection = w.cloud->BuildCollection();
    if (!collection.ok()) Die("ingest", collection.status());
    w.collection = std::make_unique<EntityCollection>(
        std::move(collection).value());
    auto truth = GroundTruth::FromCloud(*w.cloud, *w.collection);
    if (!truth.ok()) Die("truth", truth.status());
    w.truth = std::make_unique<GroundTruth>(std::move(truth).value());
    w.graph = std::make_unique<NeighborGraph>(*w.collection);
    w.evaluator = std::make_unique<SimilarityEvaluator>(*w.collection);
    return w;
  }

  /// Token blocking + default meta-blocking -> candidate comparisons.
  std::vector<WeightedComparison> DefaultCandidates() const {
    BlockCollection blocks = TokenBlocking().Build(*collection);
    MetaBlockingOptions meta;
    return MetaBlocking(meta).Prune(blocks, *collection);
  }

 private:
  [[noreturn]] static void Die(const char* stage, const Status& status) {
    std::fprintf(stderr, "bench setup failed at %s: %s\n", stage,
                 status.ToString().c_str());
    std::exit(1);
  }
};

/// Parses `--scale N` (or `--scale=N`) from argv; default 1, minimum 1.
inline uint32_t ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale", 0) != 0) continue;
    const size_t eq = arg.find('=');
    int value = 0;
    if (eq != std::string::npos) {
      value = std::atoi(arg.c_str() + eq + 1);
    } else if (i + 1 < argc) {
      value = std::atoi(argv[i + 1]);
    }
    if (value > 0) return static_cast<uint32_t>(value);
  }
  return 1;
}

}  // namespace bench
}  // namespace minoan

#endif  // MINOAN_BENCH_BENCH_COMMON_H_
