// Experiment F1 — Figure 1: the Minoan ER framework, end to end.
//
// Reproduces the poster's architecture figure as a runnable artifact: every
// phase of the pipeline (blocking, block cleaning, meta-blocking, the
// scheduling/matching/update loop) with its output cardinality and wall
// time, on the mixed-profile cloud.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/minoan_er.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== F1: The Minoan ER framework (Figure 1), mixed cloud, "
              "scale %u ==\n\n", scale);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  std::printf("cloud: %u KBs, %u descriptions, %llu triples, %llu truth "
              "pairs\n\n",
              w.collection->num_kbs(), w.collection->num_entities(),
              static_cast<unsigned long long>(w.collection->total_triples()),
              static_cast<unsigned long long>(w.truth->num_pairs()));

  WorkflowOptions opts;
  opts.progressive.matcher.threshold = 0.35;
  MinoanEr er(opts);
  auto report = er.Run(*w.collection);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  Table phases({"phase", "wall_ms", "output"});
  for (const PhaseStats& p : report->phases) {
    phases.AddRow().Cell(p.name).Cell(p.millis, 2).Cell(p.output_cardinality);
  }
  phases.Print(std::cout);

  const MatchingMetrics m =
      EvaluateMatches(report->progressive.run.matches, *w.truth);
  const QualityAspects q = EvaluateQualityAspects(
      report->progressive.run, *w.truth, *w.collection, *w.graph);

  std::printf("\n");
  Table outcome({"metric", "value"});
  outcome.AddRow().Cell("aggregate comparisons (blocking)")
      .Cell(report->comparisons_before_meta);
  outcome.AddRow().Cell("retained comparisons (meta-blocking)")
      .Cell(report->comparisons_after_meta);
  outcome.AddRow().Cell("comparisons executed")
      .Cell(report->progressive.run.comparisons_executed);
  outcome.AddRow().Cell("matches found")
      .Cell(static_cast<uint64_t>(report->progressive.run.matches.size()));
  outcome.AddRow().Cell("pairs discovered by update phase")
      .Cell(report->progressive.discovered_pairs);
  outcome.AddRow().Cell("evidence-assisted matches")
      .Cell(report->progressive.evidence_assisted_matches);
  outcome.AddRow().Cell("precision").Cell(m.precision, 4);
  outcome.AddRow().Cell("recall").Cell(m.recall, 4);
  outcome.AddRow().Cell("F1").Cell(m.f1, 4);
  outcome.AddRow().Cell("attribute completeness")
      .Cell(q.attribute_completeness, 4);
  outcome.AddRow().Cell("entity coverage").Cell(q.entity_coverage, 4);
  outcome.AddRow().Cell("relationship completeness")
      .Cell(q.relationship_completeness, 4);
  outcome.Print(std::cout);
  return 0;
}
