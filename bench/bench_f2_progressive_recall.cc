// Experiment F2 — progressive recall: recall vs comparisons per scheduler.
//
// The poster: "those comparisons are executed before less promising ones
// and thus, higher benefit is provided early on in the process". This
// harness prints the progressive-recall series (recall at budget fractions)
// and the normalized AUC for: random order, static weight-descending order,
// the Altowim-style quantity-progressive baseline [1], and the MinoanER
// progressive resolver under each benefit model.
// Expected shape: every scheduler above random; MinoanER curves dominate
// early (small budgets); all converge as the budget approaches 100%.

#include <cstdio>
#include <iostream>

#include "baseline/schedulers.h"
#include "bench_common.h"
#include "eval/progressive_metrics.h"
#include "progressive/resolver.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

double RecallAt(const ResolutionRun& run, const GroundTruth& truth,
                uint64_t budget) {
  const ResolutionRun cut = TruncateRun(run, budget);
  uint64_t correct = 0;
  std::unordered_set<uint64_t> seen;
  for (const MatchEvent& m : cut.matches) {
    if (truth.Matches(m.a, m.b) && seen.insert(PairKey(m.a, m.b)).second) {
      ++correct;
    }
  }
  return truth.num_pairs() == 0
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(truth.num_pairs());
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== F2: progressive recall curves (mixed cloud, scale %u) "
              "==\n\n", scale);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  const auto candidates = w.DefaultCandidates();
  const uint64_t horizon = candidates.size();
  std::printf("candidates after meta-blocking: %llu; truth pairs: %llu\n\n",
              static_cast<unsigned long long>(horizon),
              static_cast<unsigned long long>(w.truth->num_pairs()));

  const double kThreshold = 0.35;
  std::vector<std::pair<std::string, ResolutionRun>> runs;

  {  // Random order (non-progressive floor).
    MatcherOptions mopts;
    mopts.threshold = kThreshold;
    BatchMatcher matcher(*w.evaluator, mopts);
    runs.emplace_back("random",
                      matcher.Run(baseline::RandomOrder(candidates, 777)));
  }
  {  // Oracle order (theoretical ceiling over the same candidates).
    MatcherOptions mopts;
    mopts.threshold = kThreshold;
    BatchMatcher matcher(*w.evaluator, mopts);
    runs.emplace_back(
        "oracle (ceiling)",
        matcher.Run(baseline::OracleOrder(
            candidates, [&](EntityId a, EntityId b) {
              return w.truth->Matches(a, b);
            })));
  }
  {  // Static similarity-descending order.
    MatcherOptions mopts;
    mopts.threshold = kThreshold;
    BatchMatcher matcher(*w.evaluator, mopts);
    runs.emplace_back("static-weight",
                      matcher.Run(baseline::WeightDescendingOrder(candidates)));
  }
  {  // Altowim-style quantity-progressive baseline.
    baseline::AltowimResolver::Options opts;
    opts.matcher.threshold = kThreshold;
    baseline::AltowimResolver resolver(*w.collection, *w.evaluator, opts);
    runs.emplace_back("altowim-quantity", resolver.Run(candidates));
  }
  for (uint32_t model = 0; model < kNumBenefitModels; ++model) {
    ProgressiveOptions opts;
    opts.benefit = static_cast<BenefitModel>(model);
    opts.matcher.threshold = kThreshold;
    ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator, opts);
    runs.emplace_back(
        std::string("minoan/") + std::string(BenefitModelName(opts.benefit)),
        resolver.Resolve(candidates).run);
  }

  const std::vector<double> fractions = {0.01, 0.02, 0.05, 0.10, 0.25,
                                         0.50, 0.75, 1.00};
  std::vector<std::string> headers = {"scheduler"};
  for (double f : fractions) headers.push_back(FormatPercent(f, 0));
  headers.push_back("AUC");
  Table table(headers);
  for (const auto& [name, run] : runs) {
    table.AddRow().Cell(name);
    for (double f : fractions) {
      table.Cell(RecallAt(run, *w.truth,
                          static_cast<uint64_t>(f * horizon)),
                 3);
    }
    table.Cell(ProgressiveRecallAuc(run, *w.truth, horizon), 4);
  }
  table.Print(std::cout);
  std::printf("\n(series = recall after x%% of the comparison budget; AUC "
              "normalized over the full horizon)\n");
  return 0;
}
