// Experiment M1 — substrate micro-benchmarks (google-benchmark).
//
// Kernel-level costs underpinning the experiment harnesses: tokenization,
// N-Triples parsing, similarity kernels, block building, blocking-graph
// weighting, and scheduler operations.

#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_common.h"
#include "metablocking/blocking_graph.h"
#include "progressive/scheduler.h"
#include "rdf/ntriples.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace minoan {
namespace {

using bench::CloudProfile;
using bench::MakeConfig;
using bench::World;

// Shared medium world, built once.
const World& SharedWorld() {
  static World* world =
      new World(World::Make(MakeConfig(CloudProfile::kMixed, 1)));
  return *world;
}

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  const std::string text =
      "The Minoan palace complex of Knossos, near Heraklion (Crete), "
      "flourished circa 1950-1450 BCE and is linked to king Minos.";
  std::vector<std::string> out;
  for (auto _ : state) {
    out.clear();
    tokenizer.Tokenize(text, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Tokenize);

void BM_NTriplesParseLine(benchmark::State& state) {
  rdf::NTriplesParser parser;
  const std::string line =
      "<http://kb0.minoan.org/resource/knossos_palace> "
      "<http://schema.minoan.org/prop/name> \"knossos minoan palace\"@en .";
  rdf::Triple t;
  bool is_triple;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.ParseLine(line, t, is_triple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NTriplesParseLine);

void BM_JaccardTokenSets(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<uint32_t> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<uint32_t>(rng.Below(1u << 20)));
    b.push_back(static_cast<uint32_t>(rng.Below(1u << 20)));
  }
  SortUnique(a);
  SortUnique(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardSimilarity(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JaccardTokenSets)->Arg(16)->Arg(64)->Arg(256);

void BM_LevenshteinDistance(benchmark::State& state) {
  const std::string a = "knossos palace of the minoan kings";
  const std::string b = "knosos palase of minoan king";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinDistance);

void BM_ProfileSimilarity(benchmark::State& state) {
  const World& w = SharedWorld();
  Rng rng(7);
  const uint32_t n = w.collection->num_entities();
  for (auto _ : state) {
    const EntityId a = static_cast<EntityId>(rng.Below(n));
    const EntityId b = static_cast<EntityId>(rng.Below(n));
    benchmark::DoNotOptimize(w.evaluator->Similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileSimilarity);

void BM_TokenBlockingBuild(benchmark::State& state) {
  const World& w = SharedWorld();
  for (auto _ : state) {
    BlockCollection blocks = TokenBlocking().Build(*w.collection);
    benchmark::DoNotOptimize(blocks.num_blocks());
  }
  state.SetItemsProcessed(state.iterations() * w.collection->num_entities());
}
BENCHMARK(BM_TokenBlockingBuild);

void BM_BlockingGraphNeighbors(benchmark::State& state) {
  const World& w = SharedWorld();
  static BlockCollection* blocks =
      new BlockCollection(TokenBlocking().Build(*w.collection));
  const BlockingGraphView view(*blocks, *w.collection,
                               WeightingScheme::kEcbs,
                               ResolutionMode::kCleanClean);
  NeighborScratch scratch(w.collection->num_entities());
  Rng rng(11);
  const uint32_t n = w.collection->num_entities();
  for (auto _ : state) {
    const EntityId e = static_cast<EntityId>(rng.Below(n));
    uint64_t edges = 0;
    view.ForNeighbors(scratch, e, false,
                      [&](EntityId, uint32_t, double) { ++edges; });
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockingGraphNeighbors);

void BM_SchedulerPushPop(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    ComparisonScheduler scheduler;
    state.ResumeTiming();
    for (int i = 0; i < 1024; ++i) {
      scheduler.Push(PairKey(static_cast<uint32_t>(rng.Below(1000)),
                             static_cast<uint32_t>(1000 + rng.Below(1000))),
                     rng.NextDouble());
    }
    uint64_t pair;
    double priority;
    while (scheduler.Pop(pair, priority)) {
      benchmark::DoNotOptimize(pair);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SchedulerPushPop);

void BM_GenerateCloud(benchmark::State& state) {
  datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kMixed, 1);
  cfg.num_real_entities = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto cloud = datagen::GenerateLodCloud(cfg);
    benchmark::DoNotOptimize(cloud->total_triples());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateCloud)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace minoan

BENCHMARK_MAIN();
