// Experiment O1 — the online incremental engine vs. batch re-runs.
//
// The online subsystem exists so that absorbing new evidence does not mean
// re-running the pipeline from scratch. This harness quantifies that on the
// standard mixed cloud:
//
//   * ingest throughput   — entities/sec through Ingest (index + schedule
//     the delta candidates);
//   * resolve throughput  — comparisons/sec through ResolveBudget;
//   * query latency       — mean microseconds per Query(e, 5) after full
//     resolution (all pending executed, pure ranking);
//   * absorb-one          — wall time to Ingest ONE held-out entity and
//     resolve its delta, against the batch alternative: rebuild the
//     collection and re-run the whole MinoanER pipeline.
//
// Results print as a table and are also written to bench_o1_online.json.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/minoan_er.h"
#include "online/online_resolver.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

using online::GroupBySubject;

online::OnlineOptions MakeOnlineOptions() {
  online::OnlineOptions options;
  options.matcher.threshold = 0.3;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== O1: online incremental engine vs batch re-run (scale %u) "
              "==\n\n", scale);
  const datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kMixed, scale);
  auto cloud = datagen::GenerateLodCloud(cfg);
  if (!cloud.ok()) {
    std::fprintf(stderr, "generator: %s\n", cloud.status().ToString().c_str());
    return 1;
  }

  // Pre-group every KB's triples into entity bundles (parsing/grouping is
  // feed preparation, not engine work — excluded from the timings).
  std::vector<std::vector<std::vector<rdf::Triple>>> per_kb;
  uint64_t total_entities = 0;
  for (const datagen::GeneratedKb& kb : cloud->kbs) {
    per_kb.push_back(GroupBySubject(kb.triples));
    total_entities += per_kb.back().size();
  }

  // --- Ingest throughput ---------------------------------------------------
  online::OnlineResolver resolver(MakeOnlineOptions());
  std::vector<uint32_t> kb_ids;
  for (const datagen::GeneratedKb& kb : cloud->kbs) {
    kb_ids.push_back(resolver.EnsureKb(kb.name));
  }
  Stopwatch ingest_watch;
  for (size_t k = 0; k < per_kb.size(); ++k) {
    for (const auto& entity : per_kb[k]) {
      auto id = resolver.Ingest(kb_ids[k], entity);
      if (!id.ok()) {
        std::fprintf(stderr, "ingest: %s\n", id.status().ToString().c_str());
        return 1;
      }
    }
  }
  const double ingest_ms = ingest_watch.ElapsedMillis();
  const double ingest_eps =
      static_cast<double>(total_entities) / (ingest_ms / 1000.0);

  // --- Resolve throughput --------------------------------------------------
  Stopwatch resolve_watch;
  const online::OnlineStepResult full = resolver.ResolveBudget(1ull << 40);
  const double resolve_ms = resolve_watch.ElapsedMillis();
  const double resolve_cps =
      resolve_ms > 0.0
          ? static_cast<double>(full.comparisons) / (resolve_ms / 1000.0)
          : 0.0;

  // --- Query latency -------------------------------------------------------
  const uint32_t n = resolver.collection().num_entities();
  const uint32_t stride = n > 256 ? n / 256 : 1;
  uint64_t queries = 0;
  Stopwatch query_watch;
  for (EntityId e = 0; e < n; e += stride) {
    (void)resolver.Query(e, 5);
    ++queries;
  }
  const double query_mean_us =
      static_cast<double>(query_watch.ElapsedMicros()) /
      static_cast<double>(queries);

  // --- Absorb one new entity vs batch re-run -------------------------------
  // Online side: a second engine ingests everything except the last entity
  // of KB 0 and fully resolves; we then time absorbing the held-out entity.
  online::OnlineResolver absorber(MakeOnlineOptions());
  std::vector<uint32_t> absorber_kbs;
  for (const datagen::GeneratedKb& kb : cloud->kbs) {
    absorber_kbs.push_back(absorber.EnsureKb(kb.name));
  }
  const auto& held_out = per_kb[0].back();
  for (size_t k = 0; k < per_kb.size(); ++k) {
    const size_t limit = per_kb[k].size() - (k == 0 ? 1 : 0);
    for (size_t i = 0; i < limit; ++i) {
      (void)absorber.Ingest(absorber_kbs[k], per_kb[k][i]);
    }
  }
  (void)absorber.ResolveBudget(1ull << 40);
  Stopwatch absorb_watch;
  (void)absorber.Ingest(absorber_kbs[0], held_out);
  const online::OnlineStepResult absorb_step =
      absorber.ResolveBudget(1ull << 40);
  const double absorb_ms = absorb_watch.ElapsedMillis();

  // Batch side: rebuild the collection and re-run the whole pipeline.
  Stopwatch batch_watch;
  auto batch_collection = cloud->BuildCollection();
  if (!batch_collection.ok()) {
    std::fprintf(stderr, "ingest: %s\n",
                 batch_collection.status().ToString().c_str());
    return 1;
  }
  WorkflowOptions workflow;
  workflow.progressive.matcher.threshold = 0.3;
  auto report = MinoanEr(workflow).Run(*batch_collection);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const double batch_ms = batch_watch.ElapsedMillis();
  const double speedup = absorb_ms > 0.0 ? batch_ms / absorb_ms : 0.0;

  // --- Report --------------------------------------------------------------
  Table table({"metric", "value"});
  table.AddRow().Cell("entities").Cell(total_entities);
  table.AddRow().Cell("ingest ms").Cell(ingest_ms, 1);
  table.AddRow().Cell("ingest entities/s").Cell(ingest_eps, 0);
  table.AddRow().Cell("resolve comparisons").Cell(full.comparisons);
  table.AddRow().Cell("resolve ms").Cell(resolve_ms, 1);
  table.AddRow().Cell("resolve cmp/s").Cell(resolve_cps, 0);
  table.AddRow().Cell("matches").Cell(
      uint64_t{resolver.run().matches.size()});
  table.AddRow().Cell("query mean us").Cell(query_mean_us, 1);
  table.AddRow().Cell("absorb-one ms").Cell(absorb_ms, 3);
  table.AddRow().Cell("absorb-one comparisons").Cell(absorb_step.comparisons);
  table.AddRow().Cell("batch re-run ms").Cell(batch_ms, 1);
  table.AddRow().Cell("absorb speedup").Cell(speedup, 1);
  table.Print(std::cout);
  std::printf("\n(absorb speedup = batch pipeline re-run time / time to "
              "ingest+resolve one new entity online)\n");

  const char* json_path = "bench_o1_online.json";
  std::ofstream json(json_path);
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"o1_online\",\n"
      "  \"scale\": %u,\n"
      "  \"entities\": %llu,\n"
      "  \"ingest_ms\": %.3f,\n"
      "  \"ingest_entities_per_sec\": %.1f,\n"
      "  \"resolve_comparisons\": %llu,\n"
      "  \"resolve_ms\": %.3f,\n"
      "  \"resolve_comparisons_per_sec\": %.1f,\n"
      "  \"matches\": %zu,\n"
      "  \"query_count\": %llu,\n"
      "  \"query_mean_us\": %.2f,\n"
      "  \"absorb_one_ms\": %.4f,\n"
      "  \"absorb_one_comparisons\": %llu,\n"
      "  \"batch_rerun_ms\": %.3f,\n"
      "  \"absorb_speedup\": %.2f\n"
      "}\n",
      scale, static_cast<unsigned long long>(total_entities), ingest_ms,
      ingest_eps, static_cast<unsigned long long>(full.comparisons),
      resolve_ms, resolve_cps, resolver.run().matches.size(),
      static_cast<unsigned long long>(queries), query_mean_us, absorb_ms,
      static_cast<unsigned long long>(absorb_step.comparisons), batch_ms,
      speedup);
  json << buf;
  std::printf("wrote %s\n", json_path);
  return 0;
}
