// Experiment T10 — hot-path data layout: prices the flat open-addressing
// pair tables (util/flat_table.h) against the std::unordered_map they
// replaced, then confirms the end-to-end pipeline kept the win.
//
//   1. Micro: insert / probe / erase over 1,000,000 packed pair keys,
//      FlatPairMap<double> vs std::unordered_map<uint64_t, double>, single
//      thread, interleaved min-of-5 (the minimum is the interference-free
//      estimate on a shared box, and interleaving keeps slow spells from
//      biasing the ratio). Probes are measured hit and miss separately;
//      the hit path carries the target — the resolver's per-comparison
//      evidence/likelihood lookups are hit-dominated, and hits are where
//      the node-hop indirection costs std a second cache miss (misses often
//      land on an empty bucket and are artificially cheap for std).
//      The bench EXITS NONZERO when insert or probe-hit speedup drops
//      below 2x: the flat-vs-std ratio is the stable signal here, so it is
//      gated in-process, while the absolute micro millis in the JSON are
//      advisory (box jitter swings them far beyond any sane threshold).
//   2. Macro: full single-thread pipeline (blocking → meta-blocking →
//      progressive resolution), median of 5 — compared by
//      tools/bench_compare.py against bench/baselines/BENCH_t10_hotpath.json.
//      Advisory like every wall-clock entry here: the CI box has multi-
//      second slow spells that swing even a median-of-5 by 2x, so the
//      cross-container ratio above is the hard gate and the absolute walls
//      are drift telemetry.
//
// Writes BENCH_t10_hotpath.json.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "util/flat_table.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

constexpr size_t kNumPairs = 1'000'000;

/// Distinct-ish packed pair keys in insertion-random order (duplicates are
/// astronomically rare over a ~2^60 universe and hit both containers the
/// same way).
std::vector<uint64_t> MakePairKeys(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> id(0, 1'000'000'000u);
  std::vector<uint64_t> keys(n);
  for (uint64_t& key : keys) {
    uint32_t a = id(rng);
    uint32_t b = id(rng);
    if (a == b) ++b;
    key = PairKey(a, b);
  }
  return keys;
}

/// Every inserted key once, in an order uncorrelated with insertion.
std::vector<uint64_t> MakeHitProbes(const std::vector<uint64_t>& inserted,
                                    uint64_t seed) {
  std::vector<uint64_t> probes = inserted;
  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::shuffle(probes.begin(), probes.end(), rng);
  return probes;
}

template <typename Fn>
double TimedMs(Fn&& fn) {
  Stopwatch watch;
  fn();
  return watch.ElapsedMillis();
}

double MedianOfFive(std::array<double, 5>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[2];
}

struct OpTimings {
  double insert_ms = 1e300;
  double probe_hit_ms = 1e300;
  double probe_miss_ms = 1e300;
  double erase_ms = 1e300;
};

// Times all four ops for both containers, interleaved round-robin, keeping
// the per-op minimum. On a shared box wall times swing with interference;
// the minimum is the interference-free estimate, and interleaving means a
// slow spell hits flat and std alike instead of biasing the ratio.
void TimeMicro(const std::vector<uint64_t>& keys,
               const std::vector<uint64_t>& hit_probes,
               const std::vector<uint64_t>& miss_probes, int rounds,
               OpTimings& flat, OpTimings& std_map, uint64_t& sink) {
  FlatPairMap<double> flat_probe_target;
  flat_probe_target.Reserve(keys.size());
  std::unordered_map<uint64_t, double> std_probe_target;
  std_probe_target.reserve(keys.size());
  for (const uint64_t key : keys) {
    flat_probe_target.InsertOrAssign(key, static_cast<double>(key & 1023));
    std_probe_target[key] = static_cast<double>(key & 1023);
  }

  for (int round = 0; round < rounds; ++round) {
    flat.insert_ms = std::min(flat.insert_ms, TimedMs([&] {
      FlatPairMap<double> map;
      map.Reserve(keys.size());
      for (const uint64_t key : keys) {
        map.InsertOrAssign(key, static_cast<double>(key & 1023));
      }
      sink += map.size();
    }));
    std_map.insert_ms = std::min(std_map.insert_ms, TimedMs([&] {
      std::unordered_map<uint64_t, double> map;
      map.reserve(keys.size());
      for (const uint64_t key : keys) {
        map[key] = static_cast<double>(key & 1023);
      }
      sink += map.size();
    }));

    flat.probe_hit_ms = std::min(flat.probe_hit_ms, TimedMs([&] {
      uint64_t hits = 0;
      for (const uint64_t key : hit_probes) {
        hits += flat_probe_target.Find(key) != nullptr;
      }
      sink += hits;
    }));
    std_map.probe_hit_ms = std::min(std_map.probe_hit_ms, TimedMs([&] {
      uint64_t hits = 0;
      for (const uint64_t key : hit_probes) {
        hits += std_probe_target.find(key) != std_probe_target.end();
      }
      sink += hits;
    }));

    flat.probe_miss_ms = std::min(flat.probe_miss_ms, TimedMs([&] {
      uint64_t hits = 0;
      for (const uint64_t key : miss_probes) {
        hits += flat_probe_target.Find(key) != nullptr;
      }
      sink += hits;
    }));
    std_map.probe_miss_ms = std::min(std_map.probe_miss_ms, TimedMs([&] {
      uint64_t hits = 0;
      for (const uint64_t key : miss_probes) {
        hits += std_probe_target.find(key) != std_probe_target.end();
      }
      sink += hits;
    }));

    {  // fill outside the timed region, time only the erase sweep
      FlatPairMap<double> victim;
      victim.Reserve(keys.size());
      for (const uint64_t key : keys) victim.InsertOrAssign(key, 1.0);
      flat.erase_ms = std::min(flat.erase_ms, TimedMs([&] {
        for (const uint64_t key : hit_probes) victim.Erase(key);
      }));
      sink += victim.size();
    }
    {
      std::unordered_map<uint64_t, double> victim;
      victim.reserve(keys.size());
      for (const uint64_t key : keys) victim[key] = 1.0;
      std_map.erase_ms = std::min(std_map.erase_ms, TimedMs([&] {
        for (const uint64_t key : hit_probes) victim.erase(key);
      }));
      sink += victim.size();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T10: hot-path data layout, flat tables vs "
              "std::unordered_map (scale %u) ==\n\n", scale);

  // --- micro: container ops at 1e6 pairs ----------------------------------
  const std::vector<uint64_t> keys = MakePairKeys(kNumPairs, 0x710);
  const std::vector<uint64_t> hit_probes = MakeHitProbes(keys, 0x711);
  const std::vector<uint64_t> miss_probes = MakePairKeys(kNumPairs, 0x712);
  uint64_t sink = 0;  // consumed below so the loops cannot be elided
  OpTimings flat;
  OpTimings std_map;
  TimeMicro(keys, hit_probes, miss_probes, /*rounds=*/5, flat, std_map, sink);

  const double insert_speedup = std_map.insert_ms / flat.insert_ms;
  const double hit_speedup = std_map.probe_hit_ms / flat.probe_hit_ms;
  const double miss_speedup = std_map.probe_miss_ms / flat.probe_miss_ms;
  const double erase_speedup = std_map.erase_ms / flat.erase_ms;

  Table micro({"op (1e6 pairs)", "flat_ms", "std_ms", "speedup"});
  micro.AddRow().Cell("insert").Cell(flat.insert_ms, 2)
      .Cell(std_map.insert_ms, 2).Cell(insert_speedup, 2);
  micro.AddRow().Cell("probe (hit)").Cell(flat.probe_hit_ms, 2)
      .Cell(std_map.probe_hit_ms, 2).Cell(hit_speedup, 2);
  micro.AddRow().Cell("probe (miss)").Cell(flat.probe_miss_ms, 2)
      .Cell(std_map.probe_miss_ms, 2).Cell(miss_speedup, 2);
  micro.AddRow().Cell("erase").Cell(flat.erase_ms, 2)
      .Cell(std_map.erase_ms, 2).Cell(erase_speedup, 2);
  micro.Print(std::cout);
  std::printf("\ninsert %.2fx, probe-hit %.2fx (target >= 2x) %s\n\n",
              insert_speedup, hit_speedup,
              insert_speedup >= 2.0 && hit_speedup >= 2.0
                  ? "OK" : "** UNDER TARGET **");
  if (sink == 0) std::printf("(sink %llu)\n", (unsigned long long)sink);

  // --- macro: single-thread pipeline wall ---------------------------------
  obs::MetricsRegistry::Default().set_enabled(false);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  WorkflowOptions options;
  options.num_threads = 1;
  options.progressive.matcher.threshold = 0.3;

  std::array<double, 5> wall{};
  for (double& ms : wall) {
    Stopwatch watch;
    auto session = ResolutionSession::Open(*w.collection, options);
    if (!session.ok()) {
      std::fprintf(stderr, "FAIL: open: %s\n",
                   session.status().ToString().c_str());
      std::exit(1);
    }
    session->Step(0);
    ms = watch.ElapsedMillis();
  }
  const double pipeline_ms = MedianOfFive(wall);
  obs::MetricsRegistry::Default().set_enabled(true);
  std::printf("pipeline (single-thread, median of 5): %.2f ms\n", pipeline_ms);

  // --- JSON ---------------------------------------------------------------
  std::string json = "{\n";
  json += "  \"bench\": \"t10_hotpath\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"entities\": " + std::to_string(w.collection->num_entities()) +
          ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"pin_threads\": false,\n";
  json += "  \"pairs\": " + std::to_string(kNumPairs) + ",\n";
  json += "  \"sweep\": [\n";
  char entry[256];
  const auto emit = [&](const char* phase, const char* mode, double ms,
                        double speedup, bool advisory, bool last) {
    if (speedup > 0.0) {
      std::snprintf(entry, sizeof(entry),
                    "    {\"phase\": \"%s\", \"mode\": \"%s\", \"threads\": 1, "
                    "\"ms\": %.3f, \"speedup\": %.3f, \"advisory\": %s}%s\n",
                    phase, mode, ms, speedup, advisory ? "true" : "false",
                    last ? "" : ",");
    } else {
      std::snprintf(entry, sizeof(entry),
                    "    {\"phase\": \"%s\", \"mode\": \"%s\", \"threads\": 1, "
                    "\"ms\": %.3f, \"advisory\": %s}%s\n",
                    phase, mode, ms, advisory ? "true" : "false",
                    last ? "" : ",");
    }
    json += entry;
  };
  emit("insert", "flat", flat.insert_ms, insert_speedup, true, false);
  emit("insert", "std", std_map.insert_ms, 0.0, true, false);
  emit("probe_hit", "flat", flat.probe_hit_ms, hit_speedup, true, false);
  emit("probe_hit", "std", std_map.probe_hit_ms, 0.0, true, false);
  emit("probe_miss", "flat", flat.probe_miss_ms, miss_speedup, true, false);
  emit("probe_miss", "std", std_map.probe_miss_ms, 0.0, true, false);
  emit("erase", "flat", flat.erase_ms, erase_speedup, true, false);
  emit("erase", "std", std_map.erase_ms, 0.0, true, false);
  emit("pipeline", "end-to-end", pipeline_ms, 0.0, true, true);
  json += "  ]\n}\n";

  const char* json_path = "BENCH_t10_hotpath.json";
  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path);

  if (insert_speedup < 2.0 || hit_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: flat table lost its edge over std::unordered_map "
                 "(insert %.2fx, probe-hit %.2fx, need >= 2x)\n",
                 insert_speedup, hit_speedup);
    return 1;
  }
  return 0;
}
