// Experiment T1 — the structure of the Web of Data.
//
// Reproduces the descriptive statistics the poster cites: sparsely linked
// periphery vs heavily interlinked center, heavily skewed link popularity,
// and the dominance of proprietary vocabularies (58.24% in the 2014 LOD
// crawl). The generator is tuned to those rates; this harness verifies the
// synthetic cloud actually reproduces them across a KB-count sweep.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "kb/stats.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T1: LOD-cloud structure statistics (scale %u) ==\n", scale);
  std::printf("paper reference points: 58.24%% proprietary vocabularies;\n"
              "interlinking skewed toward a few central KBs.\n\n");

  Table sweep({"kbs", "entities", "triples", "sameAs", "vocabularies",
               "proprietary", "link_gini", "top10%_share"});
  for (uint32_t num_kbs : {4u, 8u, 12u, 16u}) {
    datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kMixed, scale);
    cfg.num_kbs = num_kbs;
    cfg.center_kbs = std::max(1u, num_kbs / 6);
    cfg.proprietary_vocab_rate = 0.5824;  // the poster's measured rate
    cfg.same_as_rate = 0.3;
    World w = World::Make(cfg);
    const CloudStats stats = ComputeCloudStats(*w.collection);
    sweep.AddRow()
        .Cell(static_cast<uint64_t>(stats.num_kbs))
        .Cell(static_cast<uint64_t>(stats.num_entities))
        .Cell(stats.num_triples)
        .Cell(stats.num_same_as)
        .Cell(static_cast<uint64_t>(stats.num_vocabularies))
        .Cell(FormatPercent(stats.proprietary_ratio))
        .Cell(stats.link_gini, 3)
        .Cell(FormatPercent(stats.top_decile_link_share));
  }
  sweep.Print(std::cout);

  // Per-KB detail at the largest sweep point: center KBs must dominate
  // in-links (the poster: DBpedia/GeoNames-style hubs).
  datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kMixed, scale);
  cfg.num_kbs = 12;
  cfg.center_kbs = 2;
  cfg.same_as_rate = 0.3;
  World w = World::Make(cfg);
  const CloudStats stats = ComputeCloudStats(*w.collection);
  std::printf("\nper-KB interlinking (12-KB cloud):\n");
  Table detail({"kb", "entities", "out_links", "in_links", "linked_kbs"});
  for (const KbLinkStats& kb : stats.per_kb) {
    detail.AddRow()
        .Cell(kb.name)
        .Cell(static_cast<uint64_t>(kb.entities))
        .Cell(kb.out_links)
        .Cell(kb.in_links)
        .Cell(static_cast<uint64_t>(kb.linked_kbs));
  }
  detail.Print(std::cout);
  return 0;
}
