// Experiment T2 — blocking effectiveness: highly vs somehow similar, plus
// the sharded-blocking thread sweep.
//
// The poster claims token-style blocking handles "highly similar"
// descriptions (LOD center) but "may miss highly heterogeneous matching
// descriptions featuring few common tokens" (periphery). This harness
// measures PC / PQ / RR / comparisons for each blocking method on the three
// cloud profiles, plus the effect of block cleaning.
// Expected shape: token blocking PC ~ 1.0 on center, visibly lower on
// periphery; composite (token+PIS) recovers part of the gap; cleaning cuts
// comparisons at marginal PC cost.
//
// The thread sweep times sharded index construction and graph-view
// construction at 1/2/4/8 threads, asserts byte-identical output at every
// count, and writes BENCH_t2_blocking.json (consumed by the CI regression
// gate, tools/bench_compare.py). Expected shape: near-linear speedup up to
// the physical core count (flat on single-core machines — see the recorded
// hardware_concurrency), identical blocks throughout.

#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "blocking/block_cleaning.h"
#include "blocking/char_blocking.h"
#include "eval/metrics.h"
#include "metablocking/blocking_graph.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

std::unique_ptr<BlockingMethod> MakeMethod(const std::string& name) {
  if (name == "token") return std::make_unique<TokenBlocking>();
  if (name == "pis") return std::make_unique<PisBlocking>();
  if (name == "attr-cluster") {
    return std::make_unique<AttributeClusteringBlocking>();
  }
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>());
  methods.push_back(std::make_unique<PisBlocking>());
  return std::make_unique<CompositeBlocking>(std::move(methods));
}

double MedianOfThree(const std::function<double()>& run) {
  double a = run(), b = run(), c = run();
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

bool SameBlocks(const BlockCollection& a, const BlockCollection& b) {
  if (a.num_blocks() != b.num_blocks()) return false;
  for (size_t i = 0; i < a.num_blocks(); ++i) {
    if (a.KeyString(a.block(i).key) != b.KeyString(b.block(i).key) ||
        a.block(i).entities != b.block(i).entities) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T2: blocking on highly vs somehow similar descriptions "
              "(scale %u) ==\n\n", scale);

  Table table({"cloud", "method", "blocks", "comparisons", "PC", "PQ", "RR",
               "build_ms"});
  for (CloudProfile profile :
       {CloudProfile::kCenter, CloudProfile::kPeriphery,
        CloudProfile::kMixed}) {
    World w = World::Make(MakeConfig(profile, scale));
    for (const std::string method_name :
         {"token", "pis", "attr-cluster", "token+pis"}) {
      auto method = MakeMethod(method_name);
      Stopwatch watch;
      BlockCollection blocks = method->Build(*w.collection);
      const double build_ms = watch.ElapsedMillis();
      const BlockingMetrics m = EvaluateBlocks(
          blocks, *w.collection, ResolutionMode::kCleanClean, *w.truth);
      table.AddRow()
          .Cell(CloudProfileName(profile))
          .Cell(method_name)
          .Cell(static_cast<uint64_t>(blocks.num_blocks()))
          .Cell(m.comparisons)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_quality, 4)
          .Cell(m.reduction_ratio, 4)
          .Cell(build_ms, 1);
    }
  }
  table.Print(std::cout);

  // Cleaning ablation on the mixed cloud: purge + filter.
  std::printf("\nblock cleaning (token blocking, mixed cloud):\n");
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  Table cleaning({"stage", "blocks", "aggregate_cmp", "PC"});
  BlockCollection blocks = TokenBlocking().Build(*w.collection);
  auto report = [&](const char* stage) {
    const BlockingMetrics m = EvaluateBlocks(
        blocks, *w.collection, ResolutionMode::kCleanClean, *w.truth);
    cleaning.AddRow()
        .Cell(stage)
        .Cell(static_cast<uint64_t>(blocks.num_blocks()))
        .Cell(blocks.AggregateComparisons(*w.collection,
                                          ResolutionMode::kCleanClean))
        .Cell(m.pair_completeness, 4);
  };
  report("raw");
  AutoPurge(blocks, *w.collection, ResolutionMode::kCleanClean);
  report("+auto-purge");
  FilterBlocks(blocks, 0.8, *w.collection, ResolutionMode::kCleanClean);
  report("+filter(0.8)");
  cleaning.Print(std::cout);

  // Character noise: typos break exact token keys. On token-rich center
  // descriptions redundancy hides this; on the sparse periphery every lost
  // token costs recall, and q-grams absorb the damage.
  std::printf("\ntypo robustness (periphery cloud, typo rate sweep):\n");
  Table typo({"typo_rate", "token_PC", "qgram_PC", "sorted_nbhd_PC"});
  for (double rate : {0.0, 0.2, 0.4}) {
    datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kPeriphery, scale);
    cfg.typo_rate = rate;
    World noisy = World::Make(cfg);
    auto pc = [&](const BlockingMethod& method) {
      return EvaluateBlocks(method.Build(*noisy.collection),
                            *noisy.collection, ResolutionMode::kCleanClean,
                            *noisy.truth)
          .pair_completeness;
    };
    TokenBlocking token;
    QGramBlocking::Options gopts;
    gopts.max_df_fraction = 0.2;
    QGramBlocking qgram(gopts);
    SortedNeighborhoodBlocking nbhd;
    typo.AddRow()
        .Cell(rate, 1)
        .Cell(pc(token), 4)
        .Cell(pc(qgram), 4)
        .Cell(pc(nbhd), 4);
  }
  typo.Print(std::cout);

  // ---- Sharded blocking + graph-view thread sweep -------------------------
  // token+pis (the Web-of-Data default) index construction and EJS graph
  // construction (the heaviest view: ARCS terms + whole-graph degree pass).
  // Output must be byte-identical at every thread count; wall time is the
  // median of three runs.
  std::printf("\nsharded blocking + graph-view thread sweep (mixed cloud, "
              "median of 3; hardware_concurrency %u):\n",
              std::thread::hardware_concurrency());
  World sw = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  const uint32_t n = sw.collection->num_entities();
  Table sweep({"phase", "threads", "ms", "speedup", "identical"});
  std::string json = "{\n";
  json += "  \"bench\": \"t2_blocking\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"entities\": " + std::to_string(n) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"pin_threads\": false,\n";
  json += "  \"sweep\": [\n";
  bool first_entry = true;
  bool all_identical = true;
  const auto add_entry = [&](const char* phase, uint32_t threads, double ms,
                             double seq_ms, bool identical) {
    all_identical = all_identical && identical;
    const double speedup = seq_ms / std::max(0.01, ms);
    char speedup_s[32];
    std::snprintf(speedup_s, sizeof(speedup_s), "%.2f", speedup);
    sweep.AddRow()
        .Cell(phase)
        .Cell(uint64_t{threads})
        .Cell(ms, 1)
        .Cell(speedup_s)
        .Cell(identical ? "yes" : "NO");
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "    %s{\"phase\": \"%s\", \"threads\": %u, "
                  "\"ms\": %.2f, \"speedup\": %.3f, \"identical\": %s}",
                  first_entry ? "" : ",",  // valid JSON either way
                  phase, threads, ms, speedup, identical ? "true" : "false");
    json += entry;
    json += "\n";
    first_entry = false;
  };

  // Phase 1: composite token+pis index construction.
  {
    const auto blocker = MakeMethod("token+pis");
    BlockCollection reference;
    const double seq_ms = MedianOfThree([&] {
      Stopwatch watch;
      reference = blocker->Build(*sw.collection);
      return watch.ElapsedMillis();
    });
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      BlockCollection built;
      const double ms =
          threads == 1 ? seq_ms : MedianOfThree([&] {
            ThreadPool pool(threads);
            Stopwatch watch;
            built = blocker->Build(*sw.collection, &pool);
            return watch.ElapsedMillis();
          });
      const bool identical = threads == 1 || SameBlocks(reference, built);
      add_entry("blocking", threads, ms, seq_ms, identical);
    }
  }

  // Phase 2: EJS graph-view construction over the token blocks.
  {
    BlockCollection blocks = TokenBlocking().Build(*sw.collection);
    blocks.BuildEntityIndex(n);
    const BlockingGraphView reference(blocks, *sw.collection,
                                      WeightingScheme::kEjs,
                                      ResolutionMode::kCleanClean);
    // Divergence probe: every edge weight of the sampled entities must
    // carry the exact same bits (covers the chunked ARCS fold AND the
    // parallel EJS degree pass, not just the integer totals).
    const auto same_view = [&](const BlockingGraphView& view) {
      if (view.num_nodes() != reference.num_nodes() ||
          view.total_block_assignments() !=
              reference.total_block_assignments()) {
        return false;
      }
      NeighborScratch scratch(n);
      bool same = true;
      const EntityId sample = std::min<EntityId>(512, n);
      for (EntityId e = 0; e < sample && same; ++e) {
        reference.ForNeighbors(
            scratch, e, /*only_greater=*/true,
            [&](EntityId nb, uint32_t common, double arcs) {
              same = same && view.PairWeight(e, nb) ==
                                 reference.EdgeWeight(e, nb, common, arcs);
            });
      }
      return same;
    };
    const double seq_ms = MedianOfThree([&] {
      Stopwatch watch;
      const BlockingGraphView view(blocks, *sw.collection,
                                   WeightingScheme::kEjs,
                                   ResolutionMode::kCleanClean);
      return watch.ElapsedMillis();
    });
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      bool identical = true;
      double ms = seq_ms;
      if (threads != 1) {
        ms = MedianOfThree([&] {
          ThreadPool pool(threads);
          Stopwatch watch;
          const BlockingGraphView view(blocks, *sw.collection,
                                       WeightingScheme::kEjs,
                                       ResolutionMode::kCleanClean, &pool);
          const double elapsed = watch.ElapsedMillis();
          identical = identical && same_view(view);
          return elapsed;
        });
      }
      add_entry("graph-view", threads, ms, seq_ms, identical);
    }
  }
  json += "  ]\n}\n";
  sweep.Print(std::cout);
  const char* json_path = "BENCH_t2_blocking.json";
  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel blocking diverged from the sequential "
                 "reference (see 'identical' column)\n");
    return 1;
  }
  return 0;
}
