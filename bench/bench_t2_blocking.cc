// Experiment T2 — blocking effectiveness: highly vs somehow similar.
//
// The poster claims token-style blocking handles "highly similar"
// descriptions (LOD center) but "may miss highly heterogeneous matching
// descriptions featuring few common tokens" (periphery). This harness
// measures PC / PQ / RR / comparisons for each blocking method on the three
// cloud profiles, plus the effect of block cleaning.
// Expected shape: token blocking PC ~ 1.0 on center, visibly lower on
// periphery; composite (token+PIS) recovers part of the gap; cleaning cuts
// comparisons at marginal PC cost.

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "blocking/block_cleaning.h"
#include "blocking/char_blocking.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

std::unique_ptr<BlockingMethod> MakeMethod(const std::string& name) {
  if (name == "token") return std::make_unique<TokenBlocking>();
  if (name == "pis") return std::make_unique<PisBlocking>();
  if (name == "attr-cluster") {
    return std::make_unique<AttributeClusteringBlocking>();
  }
  std::vector<std::unique_ptr<BlockingMethod>> methods;
  methods.push_back(std::make_unique<TokenBlocking>());
  methods.push_back(std::make_unique<PisBlocking>());
  return std::make_unique<CompositeBlocking>(std::move(methods));
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T2: blocking on highly vs somehow similar descriptions "
              "(scale %u) ==\n\n", scale);

  Table table({"cloud", "method", "blocks", "comparisons", "PC", "PQ", "RR",
               "build_ms"});
  for (CloudProfile profile :
       {CloudProfile::kCenter, CloudProfile::kPeriphery,
        CloudProfile::kMixed}) {
    World w = World::Make(MakeConfig(profile, scale));
    for (const std::string method_name :
         {"token", "pis", "attr-cluster", "token+pis"}) {
      auto method = MakeMethod(method_name);
      Stopwatch watch;
      BlockCollection blocks = method->Build(*w.collection);
      const double build_ms = watch.ElapsedMillis();
      const BlockingMetrics m = EvaluateBlocks(
          blocks, *w.collection, ResolutionMode::kCleanClean, *w.truth);
      table.AddRow()
          .Cell(CloudProfileName(profile))
          .Cell(method_name)
          .Cell(static_cast<uint64_t>(blocks.num_blocks()))
          .Cell(m.comparisons)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_quality, 4)
          .Cell(m.reduction_ratio, 4)
          .Cell(build_ms, 1);
    }
  }
  table.Print(std::cout);

  // Cleaning ablation on the mixed cloud: purge + filter.
  std::printf("\nblock cleaning (token blocking, mixed cloud):\n");
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  Table cleaning({"stage", "blocks", "aggregate_cmp", "PC"});
  BlockCollection blocks = TokenBlocking().Build(*w.collection);
  auto report = [&](const char* stage) {
    const BlockingMetrics m = EvaluateBlocks(
        blocks, *w.collection, ResolutionMode::kCleanClean, *w.truth);
    cleaning.AddRow()
        .Cell(stage)
        .Cell(static_cast<uint64_t>(blocks.num_blocks()))
        .Cell(blocks.AggregateComparisons(*w.collection,
                                          ResolutionMode::kCleanClean))
        .Cell(m.pair_completeness, 4);
  };
  report("raw");
  AutoPurge(blocks, *w.collection, ResolutionMode::kCleanClean);
  report("+auto-purge");
  FilterBlocks(blocks, 0.8, *w.collection, ResolutionMode::kCleanClean);
  report("+filter(0.8)");
  cleaning.Print(std::cout);

  // Character noise: typos break exact token keys. On token-rich center
  // descriptions redundancy hides this; on the sparse periphery every lost
  // token costs recall, and q-grams absorb the damage.
  std::printf("\ntypo robustness (periphery cloud, typo rate sweep):\n");
  Table typo({"typo_rate", "token_PC", "qgram_PC", "sorted_nbhd_PC"});
  for (double rate : {0.0, 0.2, 0.4}) {
    datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kPeriphery, scale);
    cfg.typo_rate = rate;
    World noisy = World::Make(cfg);
    auto pc = [&](const BlockingMethod& method) {
      return EvaluateBlocks(method.Build(*noisy.collection),
                            *noisy.collection, ResolutionMode::kCleanClean,
                            *noisy.truth)
          .pair_completeness;
    };
    TokenBlocking token;
    QGramBlocking::Options gopts;
    gopts.max_df_fraction = 0.2;
    QGramBlocking qgram(gopts);
    SortedNeighborhoodBlocking nbhd;
    typo.AddRow()
        .Cell(rate, 1)
        .Cell(pc(token), 4)
        .Cell(pc(qgram), 4)
        .Cell(pc(nbhd), 4);
  }
  typo.Print(std::cout);
  return 0;
}
