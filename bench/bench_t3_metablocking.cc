// Experiment T3 — meta-blocking: weighting × pruning grid, plus the
// sharded-pruning thread sweep.
//
// The poster: "we accompany blocking with meta-blocking, which prunes …
// repeated comparisons [and] comparisons between descriptions that share few
// common blocks". This harness reproduces the standard grid — five
// weighting schemes × four pruning schemes — on the mixed cloud, reporting
// retained comparisons, PC retained, and PQ gain over raw blocking.
// Expected shape: 1-2 orders of magnitude fewer comparisons at single-digit
// PC loss; cardinality schemes (CEP/CNP) prune harder than weight schemes
// (WEP/WNP); node-centric schemes retain more recall than edge-centric.
//
// The thread sweep times MetaBlockingOptions::num_threads ∈ {1, 2, 4, 8}
// per pruning scheme, asserts byte-identical output at every count, and
// writes BENCH_t3_metablocking.json. Expected shape: near-linear speedup up
// to the physical core count (flat on single-core machines — see the
// recorded hardware_concurrency), identical retained lists throughout.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "eval/metrics.h"
#include "metablocking/meta_blocking.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

double MedianOfThree(const std::function<double()>& run) {
  double a = run(), b = run(), c = run();
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

bool SameRetained(const std::vector<WeightedComparison>& a,
                  const std::vector<WeightedComparison>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(WeightedComparison)) ==
                           0);
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T3: meta-blocking weighting x pruning grid (mixed cloud, "
              "scale %u) ==\n\n", scale);

  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  BlockCollection blocks = TokenBlocking().Build(*w.collection);
  blocks.BuildEntityIndex(w.collection->num_entities());
  const BlockingMetrics raw = EvaluateBlocks(
      blocks, *w.collection, ResolutionMode::kCleanClean, *w.truth);
  std::printf("raw token blocking: %llu distinct comparisons, PC %.4f, "
              "PQ %.4f\n\n",
              static_cast<unsigned long long>(raw.comparisons),
              raw.pair_completeness, raw.pair_quality);

  Table table({"weighting", "pruning", "retained", "ratio_kept", "PC",
               "PC_retained", "PQ", "PQ_gain", "ms"});
  const uint64_t brute =
      BruteForceComparisons(*w.collection, ResolutionMode::kCleanClean);
  for (uint32_t ws = 0; ws < kNumWeightingSchemes; ++ws) {
    for (uint32_t ps = 0; ps < kNumPruningSchemes; ++ps) {
      MetaBlockingOptions opts;
      opts.weighting = static_cast<WeightingScheme>(ws);
      opts.pruning = static_cast<PruningScheme>(ps);
      Stopwatch watch;
      const auto retained =
          MetaBlocking(opts).Prune(blocks, *w.collection);
      const double ms = watch.ElapsedMillis();
      const BlockingMetrics m = EvaluateWeighted(retained, *w.truth, brute);
      table.AddRow()
          .Cell(WeightingSchemeName(opts.weighting))
          .Cell(PruningSchemeName(opts.pruning))
          .Cell(m.comparisons)
          .Cell(static_cast<double>(m.comparisons) /
                    static_cast<double>(raw.comparisons),
                4)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_completeness / raw.pair_completeness, 4)
          .Cell(m.pair_quality, 4)
          .Cell(raw.pair_quality > 0 ? m.pair_quality / raw.pair_quality
                                     : 0.0,
                2)
          .Cell(ms, 1);
    }
  }
  table.Print(std::cout);

  // Reciprocal ablation for the node-centric schemes.
  std::printf("\nreciprocal node-centric variants (ECBS weighting):\n");
  Table recip({"pruning", "reciprocal", "retained", "PC", "PQ"});
  for (PruningScheme ps : {PruningScheme::kWnp, PruningScheme::kCnp}) {
    for (bool reciprocal : {false, true}) {
      MetaBlockingOptions opts;
      opts.pruning = ps;
      opts.reciprocal = reciprocal;
      const auto retained =
          MetaBlocking(opts).Prune(blocks, *w.collection);
      const BlockingMetrics m = EvaluateWeighted(retained, *w.truth, brute);
      recip.AddRow()
          .Cell(PruningSchemeName(ps))
          .Cell(reciprocal ? "yes" : "no")
          .Cell(m.comparisons)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_quality, 4);
    }
  }
  recip.Print(std::cout);

  // ---- Sharded pruning thread sweep ---------------------------------------
  // ECBS weighting (the Web-of-Data default), all four pruning schemes.
  // Output must be byte-identical at every thread count; wall time is the
  // median of three runs.
  std::printf("\nsharded pruning thread sweep (ECBS weighting, median of 3; "
              "hardware_concurrency %u):\n",
              std::thread::hardware_concurrency());
  Table sweep({"pruning", "threads", "ms", "speedup", "identical"});
  std::string json = "{\n";
  json += "  \"bench\": \"t3_metablocking\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"entities\": " +
          std::to_string(w.collection->num_entities()) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"pin_threads\": false,\n";
  json += "  \"weighting\": \"ECBS\",\n";
  json += "  \"sweep\": [\n";
  bool first_entry = true;
  bool all_identical = true;
  for (uint32_t ps = 0; ps < kNumPruningSchemes; ++ps) {
    MetaBlockingOptions opts;
    opts.pruning = static_cast<PruningScheme>(ps);
    opts.num_threads = 1;
    std::vector<WeightedComparison> reference;
    const double seq_ms = MedianOfThree([&] {
      Stopwatch watch;
      reference = MetaBlocking(opts).Prune(blocks, *w.collection);
      return watch.ElapsedMillis();
    });
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      opts.num_threads = threads;
      std::vector<WeightedComparison> retained;
      const double ms =
          threads == 1 ? seq_ms : MedianOfThree([&] {
            Stopwatch watch;
            retained = MetaBlocking(opts).Prune(blocks, *w.collection);
            return watch.ElapsedMillis();
          });
      const bool identical =
          threads == 1 || SameRetained(reference, retained);
      all_identical = all_identical && identical;
      const double speedup = seq_ms / std::max(0.01, ms);
      char speedup_s[32];
      std::snprintf(speedup_s, sizeof(speedup_s), "%.2f", speedup);
      sweep.AddRow()
          .Cell(PruningSchemeName(opts.pruning))
          .Cell(uint64_t{threads})
          .Cell(ms, 1)
          .Cell(speedup_s)
          .Cell(identical ? "yes" : "NO");
      char entry[256];
      std::snprintf(entry, sizeof(entry),
                    "    %s{\"pruning\": \"%s\", \"threads\": %u, "
                    "\"ms\": %.2f, \"speedup\": %.3f, \"identical\": %s}",
                    first_entry ? "" : ",", // valid JSON either way
                    std::string(PruningSchemeName(opts.pruning)).c_str(),
                    threads, ms, speedup, identical ? "true" : "false");
      json += entry;
      json += "\n";
      first_entry = false;
    }
  }
  json += "  ]\n}\n";
  sweep.Print(std::cout);
  const char* json_path = "BENCH_t3_metablocking.json";
  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel pruning diverged from the sequential "
                 "reference (see 'identical' column)\n");
    return 1;
  }
  return 0;
}
