// Experiment T3 — meta-blocking: weighting × pruning grid.
//
// The poster: "we accompany blocking with meta-blocking, which prunes …
// repeated comparisons [and] comparisons between descriptions that share few
// common blocks". This harness reproduces the standard grid — five
// weighting schemes × four pruning schemes — on the mixed cloud, reporting
// retained comparisons, PC retained, and PQ gain over raw blocking.
// Expected shape: 1-2 orders of magnitude fewer comparisons at single-digit
// PC loss; cardinality schemes (CEP/CNP) prune harder than weight schemes
// (WEP/WNP); node-centric schemes retain more recall than edge-centric.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "metablocking/meta_blocking.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T3: meta-blocking weighting x pruning grid (mixed cloud, "
              "scale %u) ==\n\n", scale);

  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  BlockCollection blocks = TokenBlocking().Build(*w.collection);
  blocks.BuildEntityIndex(w.collection->num_entities());
  const BlockingMetrics raw = EvaluateBlocks(
      blocks, *w.collection, ResolutionMode::kCleanClean, *w.truth);
  std::printf("raw token blocking: %llu distinct comparisons, PC %.4f, "
              "PQ %.4f\n\n",
              static_cast<unsigned long long>(raw.comparisons),
              raw.pair_completeness, raw.pair_quality);

  Table table({"weighting", "pruning", "retained", "ratio_kept", "PC",
               "PC_retained", "PQ", "PQ_gain", "ms"});
  const uint64_t brute =
      BruteForceComparisons(*w.collection, ResolutionMode::kCleanClean);
  for (uint32_t ws = 0; ws < kNumWeightingSchemes; ++ws) {
    for (uint32_t ps = 0; ps < kNumPruningSchemes; ++ps) {
      MetaBlockingOptions opts;
      opts.weighting = static_cast<WeightingScheme>(ws);
      opts.pruning = static_cast<PruningScheme>(ps);
      Stopwatch watch;
      const auto retained =
          MetaBlocking(opts).Prune(blocks, *w.collection);
      const double ms = watch.ElapsedMillis();
      const BlockingMetrics m = EvaluateWeighted(retained, *w.truth, brute);
      table.AddRow()
          .Cell(WeightingSchemeName(opts.weighting))
          .Cell(PruningSchemeName(opts.pruning))
          .Cell(m.comparisons)
          .Cell(static_cast<double>(m.comparisons) /
                    static_cast<double>(raw.comparisons),
                4)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_completeness / raw.pair_completeness, 4)
          .Cell(m.pair_quality, 4)
          .Cell(raw.pair_quality > 0 ? m.pair_quality / raw.pair_quality
                                     : 0.0,
                2)
          .Cell(ms, 1);
    }
  }
  table.Print(std::cout);

  // Reciprocal ablation for the node-centric schemes.
  std::printf("\nreciprocal node-centric variants (ECBS weighting):\n");
  Table recip({"pruning", "reciprocal", "retained", "PC", "PQ"});
  for (PruningScheme ps : {PruningScheme::kWnp, PruningScheme::kCnp}) {
    for (bool reciprocal : {false, true}) {
      MetaBlockingOptions opts;
      opts.pruning = ps;
      opts.reciprocal = reciprocal;
      const auto retained =
          MetaBlocking(opts).Prune(blocks, *w.collection);
      const BlockingMetrics m = EvaluateWeighted(retained, *w.truth, brute);
      recip.AddRow()
          .Cell(PruningSchemeName(ps))
          .Cell(reciprocal ? "yes" : "no")
          .Cell(m.comparisons)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_quality, 4);
    }
  }
  recip.Print(std::cout);
  return 0;
}
