// Experiment T4 — MapReduce blocking and meta-blocking (after [4, 5]).
//
// The poster: "we exploit the parallel processing power of a computer
// cluster via Hadoop MapReduce". The cluster is simulated by the in-process
// engine; this harness reports wall time and speedup versus workers for
// parallel token blocking and 3-stage parallel meta-blocking, and verifies
// output equality against the sequential reference. Meta-blocking stages 2-3
// run through the sharded pruning core (metablocking/sharded_prune.h) on the
// engine's pool, so the parallel output is byte-identical to the sequential
// MetaBlocking, not merely equal after weight quantization.
// Expected shape: near-linear speedup until the physical core count, then a
// plateau; outputs identical at every worker count.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <set>

#include "bench_common.h"
#include "mapreduce/engine.h"
#include "mapreduce/parallel_blocking.h"
#include "mapreduce/parallel_matching.h"
#include "mapreduce/parallel_meta_blocking.h"
#include "matching/matcher.h"
#include "metablocking/meta_blocking.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

std::map<std::string, std::vector<EntityId>> CanonicalBlocks(
    const BlockCollection& blocks) {
  std::map<std::string, std::vector<EntityId>> out;
  for (const Block& b : blocks.blocks()) {
    out[std::string(blocks.KeyString(b.key))] = b.entities;
  }
  return out;
}

std::set<std::pair<uint64_t, int64_t>> CanonicalEdges(
    const std::vector<WeightedComparison>& edges) {
  std::set<std::pair<uint64_t, int64_t>> out;
  for (const auto& e : edges) {
    out.insert({PairKey(e.a, e.b),
                static_cast<int64_t>(std::llround(e.weight * 1e9))});
  }
  return out;
}

double MedianOfThree(const std::function<double()>& run) {
  double a = run(), b = run(), c = run();
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = std::max(6u, ParseScale(argc, argv));
  std::printf("== T4: MapReduce blocking & meta-blocking scalability "
              "(mixed cloud, scale %u) ==\n\n", scale);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  std::printf("descriptions: %u\n\n", w.collection->num_entities());

  // Sequential references.
  Stopwatch watch;
  const BlockCollection seq_blocks = TokenBlocking().Build(*w.collection);
  const double seq_block_ms = watch.ElapsedMillis();
  BlockCollection meta_input = seq_blocks;
  MetaBlockingOptions meta_opts;
  watch.Restart();
  const auto seq_edges =
      MetaBlocking(meta_opts).Prune(meta_input, *w.collection);
  const double seq_meta_ms = watch.ElapsedMillis();
  const auto seq_blocks_canon = CanonicalBlocks(seq_blocks);
  const auto seq_edges_canon = CanonicalEdges(seq_edges);

  Table table({"workers", "blocking_ms", "blocking_speedup", "meta_ms",
               "meta_speedup", "outputs_equal"});
  table.AddRow()
      .Cell(uint64_t{0})
      .Cell(seq_block_ms, 1)
      .Cell("1.00 (seq)")
      .Cell(seq_meta_ms, 1)
      .Cell("1.00 (seq)")
      .Cell("reference");
  for (uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
    mapreduce::Engine engine(workers);
    BlockCollection par_blocks;
    const double block_ms = MedianOfThree([&] {
      Stopwatch sw;
      par_blocks = mapreduce::ParallelTokenBlocking(*w.collection, engine);
      return sw.ElapsedMillis();
    });
    std::vector<WeightedComparison> par_edges;
    BlockCollection par_meta_input = par_blocks;
    const double meta_ms = MedianOfThree([&] {
      Stopwatch sw;
      par_edges = mapreduce::ParallelMetaBlocking(
          par_meta_input, *w.collection, meta_opts, engine);
      return sw.ElapsedMillis();
    });
    const bool equal =
        CanonicalBlocks(par_blocks) == seq_blocks_canon &&
        CanonicalEdges(par_edges) == seq_edges_canon;
    char speedup_b[32], speedup_m[32];
    std::snprintf(speedup_b, sizeof(speedup_b), "%.2f",
                  seq_block_ms / std::max(0.01, block_ms));
    std::snprintf(speedup_m, sizeof(speedup_m), "%.2f",
                  seq_meta_ms / std::max(0.01, meta_ms));
    table.AddRow()
        .Cell(static_cast<uint64_t>(workers))
        .Cell(block_ms, 1)
        .Cell(speedup_b)
        .Cell(meta_ms, 1)
        .Cell(speedup_m)
        .Cell(equal ? "yes" : "NO");
  }
  table.Print(std::cout);

  // Parallel batch matching: the embarrassingly parallel stage.
  std::printf("\nparallel batch matching over the retained comparisons:\n");
  {
    Table matching({"workers", "ms", "speedup", "matches"});
    MatcherOptions mopts;
    mopts.threshold = 0.35;
    BatchMatcher sequential(*w.evaluator, mopts);
    std::vector<Comparison> order;
    for (const auto& c : seq_edges) order.emplace_back(c.a, c.b);
    Stopwatch sw;
    const ResolutionRun seq_run = sequential.Run(order);
    const double seq_ms = sw.ElapsedMillis();
    matching.AddRow()
        .Cell(uint64_t{0})
        .Cell(seq_ms, 1)
        .Cell("1.00 (seq)")
        .Cell(static_cast<uint64_t>(seq_run.matches.size()));
    for (uint32_t workers : {1u, 4u, 16u}) {
      mapreduce::Engine engine(workers);
      ResolutionRun par_run;
      const double ms = MedianOfThree([&] {
        Stopwatch inner;
        par_run = mapreduce::ParallelBatchMatching(seq_edges, *w.evaluator,
                                                   0.35, engine);
        return inner.ElapsedMillis();
      });
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2f",
                    seq_ms / std::max(0.01, ms));
      matching.AddRow()
          .Cell(static_cast<uint64_t>(workers))
          .Cell(ms, 1)
          .Cell(speedup)
          .Cell(static_cast<uint64_t>(par_run.matches.size()));
    }
    matching.Print(std::cout);
  }

  // Per-stage counters at 8 workers (the 3-stage decomposition of [4]).
  std::printf("\n3-stage decomposition counters (8 workers):\n");
  mapreduce::Engine engine(8);
  mapreduce::ParallelMetaBlockingStats stats;
  BlockCollection stage_input = seq_blocks;
  mapreduce::ParallelMetaBlocking(stage_input, *w.collection, meta_opts,
                                  engine, &stats);
  Table stages({"stage", "map_in", "map_out", "reduce_groups", "reduce_out"});
  auto add_stage = [&](const char* name, const mapreduce::Counters& c) {
    stages.AddRow()
        .Cell(name)
        .Cell(c.map_input_records)
        .Cell(c.map_output_records)
        .Cell(c.reduce_groups)
        .Cell(c.reduce_output_records);
  };
  add_stage("1: entity index", stats.stage1);
  add_stage("2: weight+local prune", stats.stage2);
  add_stage("3: vote aggregation", stats.stage3);
  stages.Print(std::cout);
  return 0;
}
