// Experiment T5 — quality-aspect benefit models vs the quantity baseline.
//
// The poster's central contribution: "in contrast to existing works in
// progressive relational ER, which consider the quantity of entity pairs
// resolved as the benefit of ER, we explore different aspects of data
// quality … attribute completeness … entity coverage … relationship
// completeness." This harness runs each scheduler at a small budget and
// reports all three quality aspects; each benefit model should lead (or
// co-lead) on its own target metric.

#include <cstdio>
#include <iostream>

#include "baseline/schedulers.h"
#include "bench_common.h"
#include "eval/progressive_metrics.h"
#include "progressive/resolver.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T5: quality-aspect benefit models (mixed cloud, scale %u) "
              "==\n\n", scale);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  const auto candidates = w.DefaultCandidates();
  const double kThreshold = 0.35;

  for (double budget_fraction : {0.10, 0.25}) {
    const uint64_t budget =
        static_cast<uint64_t>(budget_fraction * candidates.size());
    std::printf("budget = %llu comparisons (%s of candidates):\n",
                static_cast<unsigned long long>(budget),
                FormatPercent(budget_fraction, 0).c_str());
    Table table({"scheduler", "matches", "attr_completeness",
                 "entity_coverage", "rel_completeness"});

    auto add_row = [&](const std::string& name, const ResolutionRun& run) {
      const QualityAspects q = EvaluateQualityAspects(
          run, *w.truth, *w.collection, *w.graph);
      table.AddRow()
          .Cell(name)
          .Cell(static_cast<uint64_t>(run.matches.size()))
          .Cell(q.attribute_completeness, 4)
          .Cell(q.entity_coverage, 4)
          .Cell(q.relationship_completeness, 4);
    };

    {
      MatcherOptions mopts;
      mopts.threshold = kThreshold;
      mopts.budget = budget;
      BatchMatcher matcher(*w.evaluator, mopts);
      add_row("random", matcher.Run(baseline::RandomOrder(candidates, 777)));
    }
    {
      baseline::AltowimResolver::Options opts;
      opts.matcher.threshold = kThreshold;
      opts.matcher.budget = budget;
      baseline::AltowimResolver resolver(*w.collection, *w.evaluator, opts);
      add_row("altowim-quantity", resolver.Run(candidates));
    }
    for (uint32_t model = 0; model < kNumBenefitModels; ++model) {
      ProgressiveOptions opts;
      opts.benefit = static_cast<BenefitModel>(model);
      opts.benefit_weight = 2.0;  // sharpened scheduling for the comparison
      opts.matcher.threshold = kThreshold;
      opts.matcher.budget = budget;
      ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator,
                                   opts);
      add_row(std::string("minoan/") +
                  std::string(BenefitModelName(opts.benefit)),
              resolver.Resolve(candidates).run);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("(each minoan/<aspect> scheduler should lead its own column "
              "at small budgets)\n");
  return 0;
}
