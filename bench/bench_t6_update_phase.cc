// Experiment T6 — the update phase: neighbor evidence for "somehow similar"
// descriptions.
//
// The poster: "blocking approaches … may miss highly heterogeneous matching
// descriptions featuring few common tokens. To overcome that, we focus on
// exploiting the partial matching results as a similarity evidence for
// their neighbor descriptions." This harness runs the resolver on a
// periphery-heavy cloud with the update phase ON vs OFF at equal budgets,
// reporting recall, blocking-missed pairs discovered, and matches that only
// cleared the threshold thanks to neighbor evidence.
// Expected shape: ON strictly dominates OFF; a visible share of ON's extra
// recall comes from discovered (blocking-missed) pairs.

#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "progressive/resolver.h"
#include "util/hash.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T6: update-phase ablation on the periphery (scale %u) "
              "==\n\n", scale);
  datagen::LodCloudConfig cfg = MakeConfig(CloudProfile::kPeriphery, scale);
  cfg.periphery_token_overlap = 0.22;  // few common tokens
  World w = World::Make(cfg);
  const auto candidates = w.DefaultCandidates();

  // How many truth pairs does blocking+meta-blocking even reach?
  std::unordered_set<uint64_t> candidate_keys;
  uint64_t reachable = 0;
  for (const auto& c : candidates) {
    candidate_keys.insert(PairKey(c.a, c.b));
    if (w.truth->Matches(c.a, c.b)) ++reachable;
  }
  std::printf("truth pairs: %llu; reachable via blocking: %llu (%.1f%%)\n\n",
              static_cast<unsigned long long>(w.truth->num_pairs()),
              static_cast<unsigned long long>(reachable),
              100.0 * static_cast<double>(reachable) /
                  static_cast<double>(w.truth->num_pairs()));

  Table table({"budget", "update", "recall", "precision",
               "discovered_pairs", "discovered_matches",
               "evidence_assisted", "recall_gain"});
  for (double fraction : {0.25, 0.5, 1.0}) {
    const uint64_t budget =
        static_cast<uint64_t>(fraction * candidates.size());
    double recall_off = 0.0;
    for (bool update : {false, true}) {
      ProgressiveOptions opts;
      opts.enable_update_phase = update;
      opts.matcher.threshold = 0.3;
      // Periphery-tuned evidence: a double-confirmed neighbor pair may
      // clear the threshold even with near-zero profile similarity.
      opts.evidence.weight = 0.4;
      opts.matcher.budget = budget;
      ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator,
                                   opts);
      const ProgressiveResult result = resolver.Resolve(candidates);
      const MatchingMetrics m =
          EvaluateMatches(result.run.matches, *w.truth);
      if (!update) recall_off = m.recall;
      char budget_label[32];
      std::snprintf(budget_label, sizeof(budget_label), "%.1fx", fraction);
      char gain[32];
      std::snprintf(gain, sizeof(gain), "%+.1f%%",
                    100.0 * (m.recall - recall_off));
      table.AddRow()
          .Cell(budget_label)
          .Cell(update ? "on" : "off")
          .Cell(m.recall, 4)
          .Cell(m.precision, 4)
          .Cell(result.discovered_pairs)
          .Cell(result.discovered_matches)
          .Cell(result.evidence_assisted_matches)
          .Cell(update ? gain : "-");
    }
  }
  table.Print(std::cout);
  std::printf("\n(budget in multiples of the candidate count; discovered = "
              "pairs blocking never produced,\n surfaced via matched "
              "neighbors — the poster's \"new candidate description "
              "pairs\")\n");
  return 0;
}
