// Experiment T7 — pay-as-you-go: benefit vs cost budget.
//
// The poster: "since this inherently iterative process entails an
// additional overhead, we are interested in maximizing its benefit, given a
// computational cost budget … this iterative process continues until the
// cost budget is consumed." This harness sweeps the budget and reports each
// benefit model's realized benefit and quality metrics, demonstrating
// diminishing returns (the marginal benefit of each extra budget slice
// shrinks).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "progressive/resolver.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T7: benefit vs budget (mixed cloud, scale %u) ==\n\n",
              scale);
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  const auto candidates = w.DefaultCandidates();
  const std::vector<double> fractions = {0.05, 0.10, 0.25, 0.50, 1.00};

  for (uint32_t model = 0; model < kNumBenefitModels; ++model) {
    const BenefitModel benefit = static_cast<BenefitModel>(model);
    std::printf("benefit model: %s\n",
                std::string(BenefitModelName(benefit)).c_str());
    Table table({"budget", "comparisons", "matches", "recall",
                 "realized_benefit", "marginal_benefit_per_1k",
                 "attr_compl", "coverage", "rel_compl"});
    double prev_benefit = 0.0;
    uint64_t prev_budget = 0;
    for (double f : fractions) {
      const uint64_t budget = static_cast<uint64_t>(f * candidates.size());
      ProgressiveOptions opts;
      opts.benefit = benefit;
      opts.matcher.threshold = 0.35;
      opts.matcher.budget = budget;
      ProgressiveResolver resolver(*w.collection, *w.graph, *w.evaluator,
                                   opts);
      const ProgressiveResult result = resolver.Resolve(candidates);
      const double realized = result.benefit_trace.empty()
                                  ? 0.0
                                  : result.benefit_trace.back();
      const MatchingMetrics m =
          EvaluateMatches(result.run.matches, *w.truth);
      const QualityAspects q = EvaluateQualityAspects(
          result.run, *w.truth, *w.collection, *w.graph);
      const double marginal =
          budget > prev_budget
              ? 1000.0 * (realized - prev_benefit) /
                    static_cast<double>(budget - prev_budget)
              : 0.0;
      table.AddRow()
          .Cell(FormatPercent(f, 0))
          .Cell(result.run.comparisons_executed)
          .Cell(static_cast<uint64_t>(result.run.matches.size()))
          .Cell(m.recall, 4)
          .Cell(realized, 1)
          .Cell(marginal, 2)
          .Cell(q.attribute_completeness, 4)
          .Cell(q.entity_coverage, 4)
          .Cell(q.relationship_completeness, 4);
      prev_benefit = realized;
      prev_budget = budget;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("(marginal benefit per 1k extra comparisons shrinks with the "
              "budget: diminishing returns,\n the reason scheduling "
              "matters)\n");
  return 0;
}
