// Experiment T8 — external-memory shuffle: in-memory vs forced-spill.
//
// The spill engine (src/extmem/) promises two things: (1) with a memory
// budget, the blocking-postings and vote-shard shuffles hold bounded RAM
// and spill sorted runs to disk, and (2) the output is BYTE-identical to
// the in-memory path. This harness measures the price of promise (1) and
// asserts promise (2): the full static pipeline (blocking → cleaning →
// meta-blocking) runs in-memory and under two budgets (a roomy one and a
// pathological tiny one), at 1 and 8 threads, recording wall time, spill
// telemetry (runs/bytes written), and the process peak-RSS high-water mark
// (monotone within a process, so per-mode deltas are an upper-bound
// estimate, recorded for trend tracking rather than gating).
//
// Two mode families, each gated against its own in-memory reference:
//   * stream-*: the default token+pis workflow under a budget — merged
//     postings stream straight from the spill runs into the flat block
//     store and graph view, never materializing a BlockCollection;
//   * sn-extsort-*: sorted neighborhood under a budget — the sorted key
//     list is produced by the external single-stream merge sort.
//
// Writes BENCH_t8_spill.json (consumed by tools/bench_compare.py; the
// identity flag gates, single-thread in-memory timing regresses the gate).
// Expected shape: the roomy budget costs a modest serialization overhead;
// the tiny budget pays real I/O; everything stays byte-identical.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "core/session.h"
#include "extmem/shuffle.h"
#include "obs/report.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT
using minoan::obs::PeakRssBytes;

namespace {

struct ModeResult {
  ResolutionReport report;
  double open_ms = 0.0;
  uint64_t runs_spilled = 0;
  uint64_t bytes_spilled = 0;
  uint64_t peak_rss_after = 0;
};

/// True when the two reports carry identical static-phase output and the
/// exact same match bits.
bool SameOutcome(const ResolutionReport& a, const ResolutionReport& b) {
  if (a.blocks_built != b.blocks_built ||
      a.blocks_after_cleaning != b.blocks_after_cleaning ||
      a.comparisons_before_meta != b.comparisons_before_meta ||
      a.comparisons_after_meta != b.comparisons_after_meta ||
      a.meta_stats.retained_edges != b.meta_stats.retained_edges ||
      std::memcmp(&a.meta_stats.mean_weight, &b.meta_stats.mean_weight,
                  sizeof(double)) != 0 ||
      a.progressive.run.comparisons_executed !=
          b.progressive.run.comparisons_executed ||
      a.progressive.run.matches.size() != b.progressive.run.matches.size()) {
    return false;
  }
  for (size_t i = 0; i < a.progressive.run.matches.size(); ++i) {
    const MatchEvent& ma = a.progressive.run.matches[i];
    const MatchEvent& mb = b.progressive.run.matches[i];
    if (ma.a != mb.a || ma.b != mb.b ||
        ma.comparisons_done != mb.comparisons_done ||
        std::memcmp(&ma.similarity, &mb.similarity, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T8: external-memory shuffle, in-memory vs forced spill "
              "(scale %u) ==\n\n", scale);

  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  const uint32_t n = w.collection->num_entities();

  struct Mode {
    const char* name;
    uint64_t budget_bytes;  // 0 = in-memory
    BlockerChoice blocker;
    int reference_group;  // modes gate against the group's in-memory run
  };
  const Mode modes[] = {
      // token+pis: budgeted runs stream merged postings into the flat
      // block store (no materialized BlockCollection).
      {"in-memory", 0, BlockerChoice::kTokenPlusPis, 0},
      {"stream-16m", 16ull << 20, BlockerChoice::kTokenPlusPis, 0},
      // pathological: forces many runs/shard
      {"stream-64k", 64ull << 10, BlockerChoice::kTokenPlusPis, 0},
      // sorted neighborhood: the budgeted run sorts its key list with the
      // external single-stream merge sort.
      {"sn-inmem", 0, BlockerChoice::kSortedNeighborhood, 1},
      {"sn-extsort-64k", 64ull << 10, BlockerChoice::kSortedNeighborhood, 1},
  };

  Table table({"mode", "threads", "open_ms", "runs", "spill_mb",
               "peak_rss_mb", "identical"});
  std::string json = "{\n";
  json += "  \"bench\": \"t8_spill\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"entities\": " + std::to_string(n) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"pin_threads\": false,\n";
  json += "  \"sweep\": [\n";
  bool first_entry = true;
  bool all_identical = true;

  ModeResult references[2];
  bool have_reference[2] = {false, false};
  for (const Mode& mode : modes) {
    for (uint32_t threads : {1u, 8u}) {
      WorkflowOptions options;
      options.blocker = mode.blocker;
      options.num_threads = threads;
      options.progressive.matcher.threshold = 0.3;
      options.memory.shuffle_budget_bytes = mode.budget_bytes;

      // Median of three opens (the static phases are where the shuffles
      // run); the report comes from the last session — identical bytes
      // every time, which SameOutcome cross-checks below.
      ModeResult result;
      std::array<double, 3> open_ms;
      for (double& ms : open_ms) {
        extmem::ResetSpillTelemetry();
        Stopwatch watch;
        auto session = ResolutionSession::Open(*w.collection, options);
        ms = watch.ElapsedMillis();
        if (!session.ok()) {
          std::fprintf(stderr, "FAIL: open (%s, %u threads): %s\n",
                       mode.name, threads,
                       session.status().ToString().c_str());
          return 1;
        }
        session->Step(0);
        result.report = session->Report();
      }
      std::sort(open_ms.begin(), open_ms.end());
      result.open_ms = open_ms[1];
      const extmem::SpillTelemetry telemetry = extmem::GetSpillTelemetry();
      result.runs_spilled = telemetry.runs_spilled;
      result.bytes_spilled = telemetry.bytes_spilled;
      result.peak_rss_after = PeakRssBytes();

      bool identical = true;
      if (!have_reference[mode.reference_group]) {
        references[mode.reference_group] = result;
        have_reference[mode.reference_group] = true;
      } else {
        identical = SameOutcome(references[mode.reference_group].report,
                                result.report);
      }
      all_identical = all_identical && identical;

      table.AddRow()
          .Cell(mode.name)
          .Cell(uint64_t{threads})
          .Cell(result.open_ms, 1)
          .Cell(result.runs_spilled)
          .Cell(static_cast<double>(result.bytes_spilled) / (1 << 20), 2)
          .Cell(static_cast<double>(result.peak_rss_after) / (1 << 20), 1)
          .Cell(identical ? "yes" : "NO");

      // Spill modes carry advisory timings: disk-bound wall time is too
      // jittery to hard-gate, while the in-memory single-thread number is
      // the stable regression signal (and guards the fast path against
      // overhead from this refactor). Identity always gates.
      char entry[384];
      std::snprintf(
          entry, sizeof(entry),
          "    %s{\"phase\": \"pipeline\", \"mode\": \"%s\", "
          "\"threads\": %u, \"ms\": %.2f, \"advisory\": %s, "
          "\"runs_spilled\": %llu, \"spill_bytes\": %llu, "
          "\"peak_rss_bytes\": %llu, \"identical\": %s}",
          first_entry ? "" : ",", mode.name, threads, result.open_ms,
          mode.budget_bytes > 0 ? "true" : "false",
          static_cast<unsigned long long>(result.runs_spilled),
          static_cast<unsigned long long>(result.bytes_spilled),
          static_cast<unsigned long long>(result.peak_rss_after),
          identical ? "true" : "false");
      json += entry;
      json += "\n";
      first_entry = false;
    }
  }
  json += "  ]\n}\n";
  table.Print(std::cout);

  const char* json_path = "BENCH_t8_spill.json";
  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path);
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: spilled pipeline diverged from the "
                         "in-memory reference (see 'identical' column)\n");
    return 1;
  }
  return 0;
}
