// Experiment T9 — observability overhead: the metrics registry promises the
// hot path costs one relaxed sharded atomic add when enabled and a single
// load + branch when disabled (src/obs/metrics.h). This harness prices both
// promises:
//
//   1. Micro: ns/op for Counter::Add and Histogram::Record, registry
//      enabled vs disabled, from a tight single-thread loop — plus the
//      dual-write ScopedCounter (per-tenant attribution), which must cost
//      one extra relaxed add over the plain counter.
//   2. Macro: the full static pipeline (blocking → cleaning → meta-blocking
//      → graph/evaluator) plus the progressive resolution, single-thread,
//      metrics enabled vs disabled. Target: < 3% wall-time overhead.
//   3. Served macro: one tenant stepping a batch session to completion
//      through the resolution service, full observability plane (per-tenant
//      scoping + rolling exporter + request tracing + event log) on vs off.
//      Same < 3% target.
//
// Wall time on a shared CI box is jittery, so the macro comparison records
// the median of five runs and the JSON entries are advisory (trend-tracked
// by tools/bench_compare.py, not hard-gated); the printed summary flags a
// >3% delta loudly either way.
//
// Writes BENCH_t9_obs.json.

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

/// ns/op for `op` repeated `iters` times (single thread, result consumed so
/// the loop cannot be elided).
template <typename Fn>
double NanosPerOp(uint64_t iters, Fn&& op) {
  Stopwatch watch;
  for (uint64_t i = 0; i < iters; ++i) op(i);
  return static_cast<double>(watch.ElapsedMicros()) * 1000.0 /
         static_cast<double>(iters);
}

double MedianOfFive(std::array<double, 5>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[2];
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T9: observability overhead, enabled vs disabled "
              "(scale %u) ==\n\n", scale);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();

  // --- micro: registry primitive cost -------------------------------------
  obs::Counter& counter = registry.counter("bench.t9.counter");
  obs::Histogram& histogram = registry.histogram("bench.t9.histogram");
  constexpr uint64_t kMicroIters = 20'000'000;

  obs::ScopedRegistry scope(&registry, "bench-tenant");
  obs::ScopedCounter scoped = scope.scoped_counter("bench.t9.counter");

  registry.set_enabled(true);
  const double counter_on =
      NanosPerOp(kMicroIters, [&](uint64_t i) { counter.Add(i & 7); });
  const double scoped_on =
      NanosPerOp(kMicroIters, [&](uint64_t i) { scoped.Add(i & 7); });
  const double histogram_on = NanosPerOp(
      kMicroIters / 4, [&](uint64_t i) { histogram.Record(i & 1023); });
  registry.set_enabled(false);
  const double counter_off =
      NanosPerOp(kMicroIters, [&](uint64_t i) { counter.Add(i & 7); });
  const double scoped_off =
      NanosPerOp(kMicroIters, [&](uint64_t i) { scoped.Add(i & 7); });
  const double histogram_off = NanosPerOp(
      kMicroIters / 4, [&](uint64_t i) { histogram.Record(i & 1023); });
  registry.set_enabled(true);
  counter.Reset();
  histogram.Reset();

  Table micro({"primitive", "enabled_ns", "disabled_ns"});
  micro.AddRow().Cell("counter.Add").Cell(counter_on, 2).Cell(counter_off, 2);
  micro.AddRow()
      .Cell("scoped_counter.Add")
      .Cell(scoped_on, 2)
      .Cell(scoped_off, 2);
  micro.AddRow()
      .Cell("histogram.Record")
      .Cell(histogram_on, 2)
      .Cell(histogram_off, 2);
  micro.Print(std::cout);
  std::printf("\n");

  // --- macro: full pipeline, metrics on vs off ----------------------------
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  WorkflowOptions options;
  options.num_threads = 1;
  options.progressive.matcher.threshold = 0.3;

  auto run_pipeline = [&](bool enabled) {
    registry.set_enabled(enabled);
    std::array<double, 5> wall{};
    for (double& ms : wall) {
      Stopwatch watch;
      auto session = ResolutionSession::Open(*w.collection, options);
      if (!session.ok()) {
        std::fprintf(stderr, "FAIL: open: %s\n",
                     session.status().ToString().c_str());
        std::exit(1);
      }
      session->Step(0);
      ms = watch.ElapsedMillis();
    }
    return MedianOfFive(wall);
  };

  const double pipeline_off = run_pipeline(false);
  const double pipeline_on = run_pipeline(true);
  registry.set_enabled(true);  // leave the process-wide default as shipped

  const double overhead_pct =
      pipeline_off > 0.0 ? 100.0 * (pipeline_on - pipeline_off) / pipeline_off
                         : 0.0;
  Table macro({"pipeline", "median_ms"});
  macro.AddRow().Cell("metrics-off").Cell(pipeline_off, 2);
  macro.AddRow().Cell("metrics-on").Cell(pipeline_on, 2);
  macro.Print(std::cout);
  std::printf("\nregistry overhead: %+.2f%% (target < 3%%) %s\n", overhead_pct,
              overhead_pct < 3.0 ? "OK" : "** OVER TARGET **");

  // --- served macro: full observability plane on vs off -------------------
  const std::string source = "synthetic:97:" +
                             std::to_string(200 * scale) + ":3:1";
  auto run_served = [&](bool observed) {
    registry.set_enabled(observed);
    const std::string state_dir =
        std::string("/tmp/minoan-bench-t9-serve-") +
        (observed ? "observed" : "plain");
    std::array<double, 5> wall{};
    for (double& ms : wall) {
      server::ServerOptions options;
      options.state_dir = state_dir;
      if (observed) {
        options.stats_path = state_dir + "/stats.json";
        options.stats_every_seconds = 0.05;
        options.enable_trace = true;
        options.event_log_path = state_dir + "/events.jsonl";
        options.slow_request_millis = 0.001;  // log every request
      }
      auto server = server::Server::Start(options);
      if (!server.ok()) {
        std::fprintf(stderr, "FAIL: serve: %s\n",
                     server.status().ToString().c_str());
        std::exit(1);
      }
      auto client = server::Client::Connect("127.0.0.1", (*server)->port());
      auto session = (*client)->CreateSession(
          "bench", server::SessionKind::kBatch, source, 0.3);
      if (!session.ok()) {
        std::fprintf(stderr, "FAIL: create: %s\n",
                     session.status().ToString().c_str());
        std::exit(1);
      }
      Stopwatch watch;
      auto step = (*client)->Step(*session, 0);
      ms = watch.ElapsedMillis();
      if (!step.ok() || !step->finished) {
        std::fprintf(stderr, "FAIL: step did not finish\n");
        std::exit(1);
      }
      (*server)->Shutdown();
    }
    return MedianOfFive(wall);
  };

  const double served_off = run_served(false);
  const double served_on = run_served(true);
  registry.set_enabled(true);

  const double served_overhead_pct =
      served_off > 0.0 ? 100.0 * (served_on - served_off) / served_off : 0.0;
  Table served({"served", "median_ms"});
  served.AddRow().Cell("plane-off").Cell(served_off, 2);
  served.AddRow().Cell("plane-on").Cell(served_on, 2);
  served.Print(std::cout);
  std::printf("\nserved plane overhead: %+.2f%% (target < 3%%) %s\n",
              served_overhead_pct,
              served_overhead_pct < 3.0 ? "OK" : "** OVER TARGET **");

  std::string json = "{\n";
  json += "  \"bench\": \"t9_obs\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"sweep\": [\n";
  char entry[256];
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"counter_add\", \"mode\": \"enabled\", "
                "\"threads\": 1, \"ms\": %.4f, \"advisory\": true},\n",
                counter_on);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"counter_add\", \"mode\": \"disabled\", "
                "\"threads\": 1, \"ms\": %.4f, \"advisory\": true},\n",
                counter_off);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"pipeline\", \"mode\": \"metrics-off\", "
                "\"threads\": 1, \"ms\": %.2f, \"advisory\": true},\n",
                pipeline_off);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"scoped_counter_add\", \"mode\": "
                "\"enabled\", \"threads\": 1, \"ms\": %.4f, "
                "\"advisory\": true},\n",
                scoped_on);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"scoped_counter_add\", \"mode\": "
                "\"disabled\", \"threads\": 1, \"ms\": %.4f, "
                "\"advisory\": true},\n",
                scoped_off);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"pipeline\", \"mode\": \"metrics-on\", "
                "\"threads\": 1, \"ms\": %.2f, \"advisory\": true, "
                "\"overhead_pct\": %.2f},\n",
                pipeline_on, overhead_pct);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"served\", \"mode\": \"plane-off\", "
                "\"threads\": 1, \"ms\": %.2f, \"advisory\": true},\n",
                served_off);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"served\", \"mode\": \"plane-on\", "
                "\"threads\": 1, \"ms\": %.2f, \"advisory\": true, "
                "\"overhead_pct\": %.2f}\n",
                served_on, served_overhead_pct);
  json += entry;
  json += "  ]\n}\n";

  const char* json_path = "BENCH_t9_obs.json";
  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path);
  return 0;
}
