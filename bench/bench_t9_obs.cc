// Experiment T9 — observability overhead: the metrics registry promises the
// hot path costs one relaxed sharded atomic add when enabled and a single
// load + branch when disabled (src/obs/metrics.h). This harness prices both
// promises:
//
//   1. Micro: ns/op for Counter::Add and Histogram::Record, registry
//      enabled vs disabled, from a tight single-thread loop.
//   2. Macro: the full static pipeline (blocking → cleaning → meta-blocking
//      → graph/evaluator) plus the progressive resolution, single-thread,
//      metrics enabled vs disabled. Target: < 3% wall-time overhead.
//
// Wall time on a shared CI box is jittery, so the macro comparison records
// the median of five runs and the JSON entries are advisory (trend-tracked
// by tools/bench_compare.py, not hard-gated); the printed summary flags a
// >3% delta loudly either way.
//
// Writes BENCH_t9_obs.json.

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace minoan;        // NOLINT
using namespace minoan::bench; // NOLINT

namespace {

/// ns/op for `op` repeated `iters` times (single thread, result consumed so
/// the loop cannot be elided).
template <typename Fn>
double NanosPerOp(uint64_t iters, Fn&& op) {
  Stopwatch watch;
  for (uint64_t i = 0; i < iters; ++i) op(i);
  return static_cast<double>(watch.ElapsedMicros()) * 1000.0 /
         static_cast<double>(iters);
}

double MedianOfFive(std::array<double, 5>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[2];
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t scale = ParseScale(argc, argv);
  std::printf("== T9: observability overhead, enabled vs disabled "
              "(scale %u) ==\n\n", scale);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();

  // --- micro: registry primitive cost -------------------------------------
  obs::Counter& counter = registry.counter("bench.t9.counter");
  obs::Histogram& histogram = registry.histogram("bench.t9.histogram");
  constexpr uint64_t kMicroIters = 20'000'000;

  registry.set_enabled(true);
  const double counter_on =
      NanosPerOp(kMicroIters, [&](uint64_t i) { counter.Add(i & 7); });
  const double histogram_on = NanosPerOp(
      kMicroIters / 4, [&](uint64_t i) { histogram.Record(i & 1023); });
  registry.set_enabled(false);
  const double counter_off =
      NanosPerOp(kMicroIters, [&](uint64_t i) { counter.Add(i & 7); });
  const double histogram_off = NanosPerOp(
      kMicroIters / 4, [&](uint64_t i) { histogram.Record(i & 1023); });
  counter.Reset();
  histogram.Reset();

  Table micro({"primitive", "enabled_ns", "disabled_ns"});
  micro.AddRow().Cell("counter.Add").Cell(counter_on, 2).Cell(counter_off, 2);
  micro.AddRow()
      .Cell("histogram.Record")
      .Cell(histogram_on, 2)
      .Cell(histogram_off, 2);
  micro.Print(std::cout);
  std::printf("\n");

  // --- macro: full pipeline, metrics on vs off ----------------------------
  World w = World::Make(MakeConfig(CloudProfile::kMixed, scale));
  WorkflowOptions options;
  options.num_threads = 1;
  options.progressive.matcher.threshold = 0.3;

  auto run_pipeline = [&](bool enabled) {
    registry.set_enabled(enabled);
    std::array<double, 5> wall{};
    for (double& ms : wall) {
      Stopwatch watch;
      auto session = ResolutionSession::Open(*w.collection, options);
      if (!session.ok()) {
        std::fprintf(stderr, "FAIL: open: %s\n",
                     session.status().ToString().c_str());
        std::exit(1);
      }
      session->Step(0);
      ms = watch.ElapsedMillis();
    }
    return MedianOfFive(wall);
  };

  const double pipeline_off = run_pipeline(false);
  const double pipeline_on = run_pipeline(true);
  registry.set_enabled(true);  // leave the process-wide default as shipped

  const double overhead_pct =
      pipeline_off > 0.0 ? 100.0 * (pipeline_on - pipeline_off) / pipeline_off
                         : 0.0;
  Table macro({"pipeline", "median_ms"});
  macro.AddRow().Cell("metrics-off").Cell(pipeline_off, 2);
  macro.AddRow().Cell("metrics-on").Cell(pipeline_on, 2);
  macro.Print(std::cout);
  std::printf("\nregistry overhead: %+.2f%% (target < 3%%) %s\n", overhead_pct,
              overhead_pct < 3.0 ? "OK" : "** OVER TARGET **");

  std::string json = "{\n";
  json += "  \"bench\": \"t9_obs\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"sweep\": [\n";
  char entry[256];
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"counter_add\", \"mode\": \"enabled\", "
                "\"threads\": 1, \"ms\": %.4f, \"advisory\": true},\n",
                counter_on);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"counter_add\", \"mode\": \"disabled\", "
                "\"threads\": 1, \"ms\": %.4f, \"advisory\": true},\n",
                counter_off);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"pipeline\", \"mode\": \"metrics-off\", "
                "\"threads\": 1, \"ms\": %.2f, \"advisory\": true},\n",
                pipeline_off);
  json += entry;
  std::snprintf(entry, sizeof(entry),
                "    {\"phase\": \"pipeline\", \"mode\": \"metrics-on\", "
                "\"threads\": 1, \"ms\": %.2f, \"advisory\": true, "
                "\"overhead_pct\": %.2f}\n",
                pipeline_on, overhead_pct);
  json += entry;
  json += "  ]\n}\n";

  const char* json_path = "BENCH_t9_obs.json";
  std::ofstream out(json_path);
  out << json;
  std::printf("wrote %s\n", json_path);
  return 0;
}
