file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_pipeline.dir/bench/bench_f1_pipeline.cc.o"
  "CMakeFiles/bench_f1_pipeline.dir/bench/bench_f1_pipeline.cc.o.d"
  "bench_f1_pipeline"
  "bench_f1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
