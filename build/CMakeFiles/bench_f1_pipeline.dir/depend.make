# Empty dependencies file for bench_f1_pipeline.
# This may be replaced when dependencies are built.
