file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_progressive_recall.dir/bench/bench_f2_progressive_recall.cc.o"
  "CMakeFiles/bench_f2_progressive_recall.dir/bench/bench_f2_progressive_recall.cc.o.d"
  "bench_f2_progressive_recall"
  "bench_f2_progressive_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_progressive_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
