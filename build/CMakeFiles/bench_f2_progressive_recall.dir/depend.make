# Empty dependencies file for bench_f2_progressive_recall.
# This may be replaced when dependencies are built.
