file(REMOVE_RECURSE
  "CMakeFiles/bench_o1_online.dir/bench/bench_o1_online.cc.o"
  "CMakeFiles/bench_o1_online.dir/bench/bench_o1_online.cc.o.d"
  "bench_o1_online"
  "bench_o1_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_o1_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
