# Empty dependencies file for bench_o1_online.
# This may be replaced when dependencies are built.
