file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_lod_stats.dir/bench/bench_t1_lod_stats.cc.o"
  "CMakeFiles/bench_t1_lod_stats.dir/bench/bench_t1_lod_stats.cc.o.d"
  "bench_t1_lod_stats"
  "bench_t1_lod_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_lod_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
