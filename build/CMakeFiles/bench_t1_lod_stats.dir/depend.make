# Empty dependencies file for bench_t1_lod_stats.
# This may be replaced when dependencies are built.
