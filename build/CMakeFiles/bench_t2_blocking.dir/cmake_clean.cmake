file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_blocking.dir/bench/bench_t2_blocking.cc.o"
  "CMakeFiles/bench_t2_blocking.dir/bench/bench_t2_blocking.cc.o.d"
  "bench_t2_blocking"
  "bench_t2_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
