# Empty dependencies file for bench_t2_blocking.
# This may be replaced when dependencies are built.
