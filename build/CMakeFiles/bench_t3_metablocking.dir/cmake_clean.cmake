file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_metablocking.dir/bench/bench_t3_metablocking.cc.o"
  "CMakeFiles/bench_t3_metablocking.dir/bench/bench_t3_metablocking.cc.o.d"
  "bench_t3_metablocking"
  "bench_t3_metablocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_metablocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
