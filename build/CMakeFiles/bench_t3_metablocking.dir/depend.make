# Empty dependencies file for bench_t3_metablocking.
# This may be replaced when dependencies are built.
