file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_parallel.dir/bench/bench_t4_parallel.cc.o"
  "CMakeFiles/bench_t4_parallel.dir/bench/bench_t4_parallel.cc.o.d"
  "bench_t4_parallel"
  "bench_t4_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
