# Empty dependencies file for bench_t4_parallel.
# This may be replaced when dependencies are built.
