file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_quality_benefit.dir/bench/bench_t5_quality_benefit.cc.o"
  "CMakeFiles/bench_t5_quality_benefit.dir/bench/bench_t5_quality_benefit.cc.o.d"
  "bench_t5_quality_benefit"
  "bench_t5_quality_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_quality_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
