# Empty dependencies file for bench_t5_quality_benefit.
# This may be replaced when dependencies are built.
