file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_update_phase.dir/bench/bench_t6_update_phase.cc.o"
  "CMakeFiles/bench_t6_update_phase.dir/bench/bench_t6_update_phase.cc.o.d"
  "bench_t6_update_phase"
  "bench_t6_update_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_update_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
