# Empty dependencies file for bench_t6_update_phase.
# This may be replaced when dependencies are built.
