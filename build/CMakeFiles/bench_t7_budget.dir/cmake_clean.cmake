file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_budget.dir/bench/bench_t7_budget.cc.o"
  "CMakeFiles/bench_t7_budget.dir/bench/bench_t7_budget.cc.o.d"
  "bench_t7_budget"
  "bench_t7_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
