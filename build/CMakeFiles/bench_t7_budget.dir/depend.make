# Empty dependencies file for bench_t7_budget.
# This may be replaced when dependencies are built.
