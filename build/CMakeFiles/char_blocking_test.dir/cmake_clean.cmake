file(REMOVE_RECURSE
  "CMakeFiles/char_blocking_test.dir/tests/char_blocking_test.cc.o"
  "CMakeFiles/char_blocking_test.dir/tests/char_blocking_test.cc.o.d"
  "char_blocking_test"
  "char_blocking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/char_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
