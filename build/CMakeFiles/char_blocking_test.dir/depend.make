# Empty dependencies file for char_blocking_test.
# This may be replaced when dependencies are built.
