file(REMOVE_RECURSE
  "CMakeFiles/example_lod_cloud_resolution.dir/examples/lod_cloud_resolution.cpp.o"
  "CMakeFiles/example_lod_cloud_resolution.dir/examples/lod_cloud_resolution.cpp.o.d"
  "example_lod_cloud_resolution"
  "example_lod_cloud_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lod_cloud_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
