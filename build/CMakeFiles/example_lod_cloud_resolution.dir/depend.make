# Empty dependencies file for example_lod_cloud_resolution.
# This may be replaced when dependencies are built.
