file(REMOVE_RECURSE
  "CMakeFiles/example_metablocking_tuning.dir/examples/metablocking_tuning.cpp.o"
  "CMakeFiles/example_metablocking_tuning.dir/examples/metablocking_tuning.cpp.o.d"
  "example_metablocking_tuning"
  "example_metablocking_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_metablocking_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
