# Empty dependencies file for example_metablocking_tuning.
# This may be replaced when dependencies are built.
