file(REMOVE_RECURSE
  "CMakeFiles/example_progressive_payg.dir/examples/progressive_payg.cpp.o"
  "CMakeFiles/example_progressive_payg.dir/examples/progressive_payg.cpp.o.d"
  "example_progressive_payg"
  "example_progressive_payg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_progressive_payg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
