# Empty dependencies file for example_progressive_payg.
# This may be replaced when dependencies are built.
