
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/schedulers.cc" "CMakeFiles/minoan.dir/src/baseline/schedulers.cc.o" "gcc" "CMakeFiles/minoan.dir/src/baseline/schedulers.cc.o.d"
  "/root/repo/src/blocking/block.cc" "CMakeFiles/minoan.dir/src/blocking/block.cc.o" "gcc" "CMakeFiles/minoan.dir/src/blocking/block.cc.o.d"
  "/root/repo/src/blocking/block_cleaning.cc" "CMakeFiles/minoan.dir/src/blocking/block_cleaning.cc.o" "gcc" "CMakeFiles/minoan.dir/src/blocking/block_cleaning.cc.o.d"
  "/root/repo/src/blocking/blocking_method.cc" "CMakeFiles/minoan.dir/src/blocking/blocking_method.cc.o" "gcc" "CMakeFiles/minoan.dir/src/blocking/blocking_method.cc.o.d"
  "/root/repo/src/blocking/char_blocking.cc" "CMakeFiles/minoan.dir/src/blocking/char_blocking.cc.o" "gcc" "CMakeFiles/minoan.dir/src/blocking/char_blocking.cc.o.d"
  "/root/repo/src/core/minoan_er.cc" "CMakeFiles/minoan.dir/src/core/minoan_er.cc.o" "gcc" "CMakeFiles/minoan.dir/src/core/minoan_er.cc.o.d"
  "/root/repo/src/core/online_session.cc" "CMakeFiles/minoan.dir/src/core/online_session.cc.o" "gcc" "CMakeFiles/minoan.dir/src/core/online_session.cc.o.d"
  "/root/repo/src/datagen/corpus.cc" "CMakeFiles/minoan.dir/src/datagen/corpus.cc.o" "gcc" "CMakeFiles/minoan.dir/src/datagen/corpus.cc.o.d"
  "/root/repo/src/datagen/lod_generator.cc" "CMakeFiles/minoan.dir/src/datagen/lod_generator.cc.o" "gcc" "CMakeFiles/minoan.dir/src/datagen/lod_generator.cc.o.d"
  "/root/repo/src/eval/cluster_metrics.cc" "CMakeFiles/minoan.dir/src/eval/cluster_metrics.cc.o" "gcc" "CMakeFiles/minoan.dir/src/eval/cluster_metrics.cc.o.d"
  "/root/repo/src/eval/ground_truth.cc" "CMakeFiles/minoan.dir/src/eval/ground_truth.cc.o" "gcc" "CMakeFiles/minoan.dir/src/eval/ground_truth.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/minoan.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/minoan.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/eval/progressive_metrics.cc" "CMakeFiles/minoan.dir/src/eval/progressive_metrics.cc.o" "gcc" "CMakeFiles/minoan.dir/src/eval/progressive_metrics.cc.o.d"
  "/root/repo/src/kb/collection.cc" "CMakeFiles/minoan.dir/src/kb/collection.cc.o" "gcc" "CMakeFiles/minoan.dir/src/kb/collection.cc.o.d"
  "/root/repo/src/kb/neighbor_graph.cc" "CMakeFiles/minoan.dir/src/kb/neighbor_graph.cc.o" "gcc" "CMakeFiles/minoan.dir/src/kb/neighbor_graph.cc.o.d"
  "/root/repo/src/kb/stats.cc" "CMakeFiles/minoan.dir/src/kb/stats.cc.o" "gcc" "CMakeFiles/minoan.dir/src/kb/stats.cc.o.d"
  "/root/repo/src/mapreduce/parallel_blocking.cc" "CMakeFiles/minoan.dir/src/mapreduce/parallel_blocking.cc.o" "gcc" "CMakeFiles/minoan.dir/src/mapreduce/parallel_blocking.cc.o.d"
  "/root/repo/src/mapreduce/parallel_matching.cc" "CMakeFiles/minoan.dir/src/mapreduce/parallel_matching.cc.o" "gcc" "CMakeFiles/minoan.dir/src/mapreduce/parallel_matching.cc.o.d"
  "/root/repo/src/mapreduce/parallel_meta_blocking.cc" "CMakeFiles/minoan.dir/src/mapreduce/parallel_meta_blocking.cc.o" "gcc" "CMakeFiles/minoan.dir/src/mapreduce/parallel_meta_blocking.cc.o.d"
  "/root/repo/src/matching/matcher.cc" "CMakeFiles/minoan.dir/src/matching/matcher.cc.o" "gcc" "CMakeFiles/minoan.dir/src/matching/matcher.cc.o.d"
  "/root/repo/src/matching/similarity_evaluator.cc" "CMakeFiles/minoan.dir/src/matching/similarity_evaluator.cc.o" "gcc" "CMakeFiles/minoan.dir/src/matching/similarity_evaluator.cc.o.d"
  "/root/repo/src/matching/union_find.cc" "CMakeFiles/minoan.dir/src/matching/union_find.cc.o" "gcc" "CMakeFiles/minoan.dir/src/matching/union_find.cc.o.d"
  "/root/repo/src/metablocking/blocking_graph.cc" "CMakeFiles/minoan.dir/src/metablocking/blocking_graph.cc.o" "gcc" "CMakeFiles/minoan.dir/src/metablocking/blocking_graph.cc.o.d"
  "/root/repo/src/metablocking/meta_blocking.cc" "CMakeFiles/minoan.dir/src/metablocking/meta_blocking.cc.o" "gcc" "CMakeFiles/minoan.dir/src/metablocking/meta_blocking.cc.o.d"
  "/root/repo/src/online/incremental_block_index.cc" "CMakeFiles/minoan.dir/src/online/incremental_block_index.cc.o" "gcc" "CMakeFiles/minoan.dir/src/online/incremental_block_index.cc.o.d"
  "/root/repo/src/online/incremental_collection.cc" "CMakeFiles/minoan.dir/src/online/incremental_collection.cc.o" "gcc" "CMakeFiles/minoan.dir/src/online/incremental_collection.cc.o.d"
  "/root/repo/src/online/online_resolver.cc" "CMakeFiles/minoan.dir/src/online/online_resolver.cc.o" "gcc" "CMakeFiles/minoan.dir/src/online/online_resolver.cc.o.d"
  "/root/repo/src/progressive/benefit.cc" "CMakeFiles/minoan.dir/src/progressive/benefit.cc.o" "gcc" "CMakeFiles/minoan.dir/src/progressive/benefit.cc.o.d"
  "/root/repo/src/progressive/resolver.cc" "CMakeFiles/minoan.dir/src/progressive/resolver.cc.o" "gcc" "CMakeFiles/minoan.dir/src/progressive/resolver.cc.o.d"
  "/root/repo/src/progressive/scheduler.cc" "CMakeFiles/minoan.dir/src/progressive/scheduler.cc.o" "gcc" "CMakeFiles/minoan.dir/src/progressive/scheduler.cc.o.d"
  "/root/repo/src/progressive/state.cc" "CMakeFiles/minoan.dir/src/progressive/state.cc.o" "gcc" "CMakeFiles/minoan.dir/src/progressive/state.cc.o.d"
  "/root/repo/src/rdf/iri.cc" "CMakeFiles/minoan.dir/src/rdf/iri.cc.o" "gcc" "CMakeFiles/minoan.dir/src/rdf/iri.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "CMakeFiles/minoan.dir/src/rdf/ntriples.cc.o" "gcc" "CMakeFiles/minoan.dir/src/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "CMakeFiles/minoan.dir/src/rdf/term.cc.o" "gcc" "CMakeFiles/minoan.dir/src/rdf/term.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "CMakeFiles/minoan.dir/src/rdf/turtle.cc.o" "gcc" "CMakeFiles/minoan.dir/src/rdf/turtle.cc.o.d"
  "/root/repo/src/text/normalize.cc" "CMakeFiles/minoan.dir/src/text/normalize.cc.o" "gcc" "CMakeFiles/minoan.dir/src/text/normalize.cc.o.d"
  "/root/repo/src/text/similarity.cc" "CMakeFiles/minoan.dir/src/text/similarity.cc.o" "gcc" "CMakeFiles/minoan.dir/src/text/similarity.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "CMakeFiles/minoan.dir/src/text/tokenizer.cc.o" "gcc" "CMakeFiles/minoan.dir/src/text/tokenizer.cc.o.d"
  "/root/repo/src/util/interner.cc" "CMakeFiles/minoan.dir/src/util/interner.cc.o" "gcc" "CMakeFiles/minoan.dir/src/util/interner.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/minoan.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/minoan.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/minoan.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/minoan.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/minoan.dir/src/util/status.cc.o" "gcc" "CMakeFiles/minoan.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/minoan.dir/src/util/table.cc.o" "gcc" "CMakeFiles/minoan.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/minoan.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/minoan.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
