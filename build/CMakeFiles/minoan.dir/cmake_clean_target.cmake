file(REMOVE_RECURSE
  "libminoan.a"
)
