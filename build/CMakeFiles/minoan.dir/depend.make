# Empty dependencies file for minoan.
# This may be replaced when dependencies are built.
