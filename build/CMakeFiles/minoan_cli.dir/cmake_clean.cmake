file(REMOVE_RECURSE
  "CMakeFiles/minoan_cli.dir/tools/minoan_cli.cc.o"
  "CMakeFiles/minoan_cli.dir/tools/minoan_cli.cc.o.d"
  "minoan"
  "minoan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minoan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
