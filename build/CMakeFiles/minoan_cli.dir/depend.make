# Empty dependencies file for minoan_cli.
# This may be replaced when dependencies are built.
