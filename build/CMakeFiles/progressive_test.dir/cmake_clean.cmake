file(REMOVE_RECURSE
  "CMakeFiles/progressive_test.dir/tests/progressive_test.cc.o"
  "CMakeFiles/progressive_test.dir/tests/progressive_test.cc.o.d"
  "progressive_test"
  "progressive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
