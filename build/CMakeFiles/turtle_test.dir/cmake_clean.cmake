file(REMOVE_RECURSE
  "CMakeFiles/turtle_test.dir/tests/turtle_test.cc.o"
  "CMakeFiles/turtle_test.dir/tests/turtle_test.cc.o.d"
  "turtle_test"
  "turtle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turtle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
