// Scenario: interlinking a LOD cloud from N-Triples files on disk.
//
// The workflow a data publisher would run: load every KB dump in a
// directory, resolve across them, and emit the discovered equivalences as
// owl:sameAs triples — the links whose scarcity in the periphery motivates
// the poster ("the majority of KBs are sparsely linked").
//
// Usage:
//   ./build/examples/lod_cloud_resolution [data_dir] [output.nt]
//
// Without arguments, a demonstration cloud is generated into a temp
// directory first, so the example is runnable out of the box. If the
// directory contains a ground_truth.tsv, the run is scored against it.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/minoan_er.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "kb/stats.h"
#include "matching/matcher.h"
#include "rdf/ntriples.h"

using namespace minoan;  // NOLINT

namespace {

Status ResolveDirectory(const std::string& dir, const std::string& out_path) {
  // --- Load every .nt file as one knowledge base ---------------------------
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".nt") {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) return Status::NotFound("no .nt files in " + dir);
  std::sort(files.begin(), files.end());

  rdf::NTriplesParser parser;  // lenient: periphery dumps are dirty
  EntityCollection collection;
  for (const std::string& file : files) {
    rdf::ParseStats stats;
    MINOAN_ASSIGN_OR_RETURN(std::vector<rdf::Triple> triples,
                            parser.ParseFile(file, &stats));
    const std::string name = std::filesystem::path(file).stem().string();
    MINOAN_ASSIGN_OR_RETURN(uint32_t kb_id,
                            collection.AddKnowledgeBase(name, triples));
    std::printf("  loaded %-22s %8llu triples (%llu skipped) -> KB %u\n",
                name.c_str(), static_cast<unsigned long long>(stats.triples),
                static_cast<unsigned long long>(stats.skipped), kb_id);
  }
  MINOAN_RETURN_IF_ERROR(collection.Finalize());

  // --- Cloud shape before resolution --------------------------------------
  const CloudStats before = ComputeCloudStats(collection);
  std::printf("\ncloud: %u KBs, %u descriptions, %u vocabularies "
              "(%.0f%% proprietary), %llu existing sameAs links\n\n",
              before.num_kbs, before.num_entities, before.num_vocabularies,
              100.0 * before.proprietary_ratio,
              static_cast<unsigned long long>(before.num_same_as));

  // --- Resolve --------------------------------------------------------------
  WorkflowOptions options;
  options.progressive.matcher.threshold = 0.35;
  MinoanEr er(options);
  MINOAN_ASSIGN_OR_RETURN(ResolutionReport report, er.Run(collection));
  std::cout << report.Summary() << "\n";

  // Clean-clean post-processing: at most one partner per entity per KB.
  const std::vector<MatchEvent> links =
      UniqueMappingClustering(report.progressive.run.matches, collection);

  // --- Score against ground truth when available ---------------------------
  const std::string truth_path = dir + "/ground_truth.tsv";
  if (std::filesystem::exists(truth_path)) {
    auto truth = GroundTruth::FromTsv(truth_path, collection);
    if (truth.ok()) {
      const MatchingMetrics raw =
          EvaluateMatches(report.progressive.run.matches, *truth);
      const MatchingMetrics clustered = EvaluateMatches(links, *truth);
      std::printf("raw matches:      precision %.3f recall %.3f\n",
                  raw.precision, raw.recall);
      std::printf("unique-mapped:    precision %.3f recall %.3f\n",
                  clustered.precision, clustered.recall);
    }
  }

  // --- Emit discovered links as owl:sameAs ---------------------------------
  std::ofstream out(out_path);
  if (!out) return Status::IoError("cannot write " + out_path);
  rdf::NTriplesWriter writer(out);
  for (const MatchEvent& m : links) {
    writer.Write({rdf::Term::Iri(std::string(collection.EntityIri(m.a))),
                  rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
                  rdf::Term::Iri(std::string(collection.EntityIri(m.b)))});
  }
  std::printf("\nwrote %zu owl:sameAs links to %s\n", links.size(),
              out_path.c_str());
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string out_path = "discovered_links.nt";
  if (argc >= 2) {
    dir = argv[1];
    if (argc >= 3) out_path = argv[2];
  } else {
    // Self-contained demo: generate a cloud to resolve.
    dir = (std::filesystem::temp_directory_path() / "minoan_demo_cloud")
              .string();
    std::filesystem::remove_all(dir);
    datagen::LodCloudConfig config;
    config.seed = 7;
    config.num_real_entities = 800;
    config.num_kbs = 5;
    config.center_kbs = 2;
    auto cloud = datagen::GenerateLodCloud(config);
    if (!cloud.ok() || !cloud->WriteTo(dir).ok()) {
      std::fprintf(stderr, "demo cloud generation failed\n");
      return 1;
    }
    std::printf("generated demo cloud in %s\n", dir.c_str());
  }
  std::printf("resolving %s\n", dir.c_str());
  const Status status = ResolveDirectory(dir, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
