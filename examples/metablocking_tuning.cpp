// Scenario: choosing a meta-blocking configuration for a dataset.
//
// Meta-blocking exposes a weighting x pruning grid whose sweet spot depends
// on the data (how redundant the blocks are, how much recall the downstream
// matcher can forgive). This example sweeps the grid on a sample of the
// user's cloud and recommends configurations for two operating points:
// recall-first (keep PC >= 95% of blocking) and precision-first (maximize
// PQ).
//
// Usage:
//   ./build/examples/metablocking_tuning [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "metablocking/meta_blocking.h"
#include "util/table.h"

using namespace minoan;  // NOLINT

int main(int argc, char** argv) {
  const uint64_t seed = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 5;

  datagen::LodCloudConfig config;
  config.seed = seed;
  config.num_real_entities = 800;
  config.num_kbs = 5;
  config.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(config);
  auto collection_result = cloud->BuildCollection();
  if (!collection_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 collection_result.status().ToString().c_str());
    return 1;
  }
  EntityCollection collection = std::move(collection_result).value();
  auto truth = GroundTruth::FromCloud(*cloud, collection);

  BlockCollection blocks = TokenBlocking().Build(collection);
  blocks.BuildEntityIndex(collection.num_entities());
  const BlockingMetrics raw = EvaluateBlocks(
      blocks, collection, ResolutionMode::kCleanClean, *truth);
  std::printf("blocking baseline: %llu comparisons, PC %.4f\n\n",
              static_cast<unsigned long long>(raw.comparisons),
              raw.pair_completeness);

  struct Entry {
    WeightingScheme weighting;
    PruningScheme pruning;
    BlockingMetrics metrics;
  };
  std::vector<Entry> grid;
  Table table({"weighting", "pruning", "comparisons", "PC", "PQ"});
  const uint64_t brute =
      BruteForceComparisons(collection, ResolutionMode::kCleanClean);
  for (uint32_t ws = 0; ws < kNumWeightingSchemes; ++ws) {
    for (uint32_t ps = 0; ps < kNumPruningSchemes; ++ps) {
      MetaBlockingOptions opts;
      opts.weighting = static_cast<WeightingScheme>(ws);
      opts.pruning = static_cast<PruningScheme>(ps);
      const auto retained = MetaBlocking(opts).Prune(blocks, collection);
      const BlockingMetrics m = EvaluateWeighted(retained, *truth, brute);
      grid.push_back({opts.weighting, opts.pruning, m});
      table.AddRow()
          .Cell(WeightingSchemeName(opts.weighting))
          .Cell(PruningSchemeName(opts.pruning))
          .Cell(m.comparisons)
          .Cell(m.pair_completeness, 4)
          .Cell(m.pair_quality, 4);
    }
  }
  table.Print(std::cout);

  // Recommendations.
  const Entry* recall_first = nullptr;
  const Entry* precision_first = nullptr;
  for (const Entry& e : grid) {
    if (e.metrics.pair_completeness >= 0.95 * raw.pair_completeness) {
      if (recall_first == nullptr ||
          e.metrics.comparisons < recall_first->metrics.comparisons) {
        recall_first = &e;
      }
    }
    if (precision_first == nullptr ||
        e.metrics.pair_quality > precision_first->metrics.pair_quality) {
      precision_first = &e;
    }
  }
  std::printf("\nrecommendations:\n");
  if (recall_first != nullptr) {
    std::printf("  recall-first    : %s + %s  (%llu comparisons at PC "
                "%.4f)\n",
                std::string(WeightingSchemeName(recall_first->weighting))
                    .c_str(),
                std::string(PruningSchemeName(recall_first->pruning)).c_str(),
                static_cast<unsigned long long>(
                    recall_first->metrics.comparisons),
                recall_first->metrics.pair_completeness);
  }
  if (precision_first != nullptr) {
    std::printf("  precision-first : %s + %s  (PQ %.4f at PC %.4f)\n",
                std::string(WeightingSchemeName(precision_first->weighting))
                    .c_str(),
                std::string(PruningSchemeName(precision_first->pruning))
                    .c_str(),
                precision_first->metrics.pair_quality,
                precision_first->metrics.pair_completeness);
  }
  return 0;
}
