// Scenario: pay-as-you-go resolution under a comparison budget.
//
// The poster's core interaction model: "this iterative process continues
// until the cost budget is consumed". This example resolves the same cloud
// under a series of growing budgets and shows how each benefit model
// front-loads its target quality aspect — the dashboard a budget-constrained
// data steward would watch.
//
// Usage:
//   ./build/examples/progressive_payg [benefit]
// where benefit is one of: quantity, attr, coverage, relationship (default:
// coverage).

#include <cstdio>
#include <cstring>
#include <iostream>

#include "blocking/blocking_method.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "kb/neighbor_graph.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking.h"
#include "progressive/resolver.h"
#include "util/table.h"

using namespace minoan;  // NOLINT

namespace {

BenefitModel ParseBenefit(const char* arg) {
  if (std::strcmp(arg, "quantity") == 0) return BenefitModel::kQuantity;
  if (std::strcmp(arg, "attr") == 0) {
    return BenefitModel::kAttributeCompleteness;
  }
  if (std::strcmp(arg, "relationship") == 0) {
    return BenefitModel::kRelationshipCompleteness;
  }
  return BenefitModel::kEntityCoverage;
}

}  // namespace

int main(int argc, char** argv) {
  const BenefitModel benefit =
      ParseBenefit(argc >= 2 ? argv[1] : "coverage");
  std::printf("benefit model: %s\n\n",
              std::string(BenefitModelName(benefit)).c_str());

  // A mixed cloud: two encyclopedic hubs plus four sparse periphery KBs.
  datagen::LodCloudConfig config;
  config.seed = 99;
  config.num_real_entities = 1000;
  config.num_kbs = 6;
  config.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(config);
  auto collection_result = cloud->BuildCollection();
  if (!collection_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 collection_result.status().ToString().c_str());
    return 1;
  }
  EntityCollection collection = std::move(collection_result).value();
  auto truth = GroundTruth::FromCloud(*cloud, collection);

  // Candidate comparisons: token blocking + ECBS/WNP meta-blocking.
  BlockCollection blocks = TokenBlocking().Build(collection);
  std::vector<WeightedComparison> candidates =
      MetaBlocking().Prune(blocks, collection);
  NeighborGraph graph(collection);
  SimilarityEvaluator evaluator(collection);
  std::printf("candidate comparisons: %zu (truth pairs: %llu)\n\n",
              candidates.size(),
              static_cast<unsigned long long>(truth->num_pairs()));

  // One full progressive run; every budget is a prefix of it — exactly how
  // a pay-as-you-go consumer would stop the process at any point.
  ProgressiveOptions options;
  options.benefit = benefit;
  options.benefit_weight = 2.0;
  options.matcher.threshold = 0.35;
  ProgressiveResolver resolver(collection, graph, evaluator, options);
  const ProgressiveResult full = resolver.Resolve(candidates);

  Table table({"budget", "comparisons", "matches", "recall",
               "attr_completeness", "entity_coverage", "rel_completeness"});
  for (double fraction : {0.02, 0.05, 0.10, 0.20, 0.40, 0.70, 1.00}) {
    const uint64_t budget = static_cast<uint64_t>(
        fraction * static_cast<double>(full.run.comparisons_executed));
    const ResolutionRun cut = TruncateRun(full.run, budget);
    const MatchingMetrics m = EvaluateMatches(cut.matches, *truth);
    const QualityAspects q =
        EvaluateQualityAspects(cut, *truth, collection, graph);
    table.AddRow()
        .Cell(FormatPercent(fraction, 0))
        .Cell(cut.comparisons_executed)
        .Cell(static_cast<uint64_t>(cut.matches.size()))
        .Cell(m.recall, 3)
        .Cell(q.attribute_completeness, 3)
        .Cell(q.entity_coverage, 3)
        .Cell(q.relationship_completeness, 3);
  }
  table.Print(std::cout);

  std::printf("\nupdate phase: %llu pairs discovered beyond blocking, "
              "%llu matches needed neighbor evidence\n",
              static_cast<unsigned long long>(full.discovered_pairs),
              static_cast<unsigned long long>(
                  full.evidence_assisted_matches));
  std::printf("stop anywhere in the table: the work above that row is "
              "already banked.\n");
  return 0;
}
