// Scenario: pay-as-you-go resolution under a comparison budget.
//
// The poster's core interaction model: "this iterative process continues
// until the cost budget is consumed". This example drives the Session API
// the way a budget-constrained data steward would: open one session, buy
// resolution in installments with Step, and read the quality dashboard
// after every installment — the work below each row is already banked, and
// the session can be checkpointed to disk between installments (also shown).
//
// Usage:
//   ./build/examples/progressive_payg [benefit]
// where benefit is one of: quantity, attr, coverage, relationship (default:
// coverage).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "core/session.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "eval/progressive_metrics.h"
#include "kb/neighbor_graph.h"
#include "util/table.h"

using namespace minoan;  // NOLINT

namespace {

BenefitModel ParseBenefit(const char* arg) {
  if (std::strcmp(arg, "quantity") == 0) return BenefitModel::kQuantity;
  if (std::strcmp(arg, "attr") == 0) {
    return BenefitModel::kAttributeCompleteness;
  }
  if (std::strcmp(arg, "relationship") == 0) {
    return BenefitModel::kRelationshipCompleteness;
  }
  return BenefitModel::kEntityCoverage;
}

}  // namespace

int main(int argc, char** argv) {
  const BenefitModel benefit =
      ParseBenefit(argc >= 2 ? argv[1] : "coverage");
  std::printf("benefit model: %s\n\n",
              std::string(BenefitModelName(benefit)).c_str());

  // A mixed cloud: two encyclopedic hubs plus four sparse periphery KBs.
  datagen::LodCloudConfig config;
  config.seed = 99;
  config.num_real_entities = 1000;
  config.num_kbs = 6;
  config.center_kbs = 2;
  auto cloud = datagen::GenerateLodCloud(config);
  auto collection_result = cloud->BuildCollection();
  if (!collection_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 collection_result.status().ToString().c_str());
    return 1;
  }
  EntityCollection collection = std::move(collection_result).value();
  auto truth = GroundTruth::FromCloud(*cloud, collection);
  NeighborGraph graph(collection);

  WorkflowOptions options;
  options.blocker = BlockerChoice::kToken;
  options.progressive.benefit = benefit;
  options.progressive.benefit_weight = 2.0;
  options.progressive.matcher.threshold = 0.35;

  // Dry run to learn the total cost of full resolution, so the installments
  // below can be phrased as fractions of it. (A real consumer would just
  // pick absolute installment sizes.)
  auto probe = ResolutionSession::Open(collection, options);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
    return 1;
  }
  const uint64_t total = probe->Step(0).comparisons;
  std::printf("candidate comparisons: %llu executed at full budget "
              "(truth pairs: %llu)\n\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(truth->num_pairs()));

  // The actual pay-as-you-go session: each loop iteration buys resolution
  // up to the next fraction of the total and evaluates what is banked so
  // far. Between installments the session round-trips through a checkpoint
  // buffer — a process restart at any row would lose nothing.
  auto session = ResolutionSession::Open(collection, options);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  Table table({"budget", "comparisons", "matches", "recall",
               "attr_completeness", "entity_coverage", "rel_completeness"});
  for (double fraction : {0.02, 0.05, 0.10, 0.20, 0.40, 0.70, 1.00}) {
    const uint64_t target =
        static_cast<uint64_t>(fraction * static_cast<double>(total));
    if (target > session->comparisons_spent()) {
      session->Step(target - session->comparisons_spent());
    }

    std::stringstream state;
    if (Status st = session->Checkpoint(state); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto restored = ResolutionSession::Restore(collection, options, state);
    if (!restored.ok()) {
      std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
      return 1;
    }
    session = std::move(restored);

    const ResolutionReport report = session->Report();
    const MatchingMetrics m =
        EvaluateMatches(report.progressive.run.matches, *truth);
    const QualityAspects q = EvaluateQualityAspects(
        report.progressive.run, *truth, collection, graph);
    table.AddRow()
        .Cell(FormatPercent(fraction, 0))
        .Cell(report.progressive.run.comparisons_executed)
        .Cell(static_cast<uint64_t>(report.progressive.run.matches.size()))
        .Cell(m.recall, 3)
        .Cell(q.attribute_completeness, 3)
        .Cell(q.entity_coverage, 3)
        .Cell(q.relationship_completeness, 3);
  }
  table.Print(std::cout);

  const ResolutionReport full = session->Report();
  std::printf("\nupdate phase: %llu pairs discovered beyond blocking, "
              "%llu matches needed neighbor evidence\n",
              static_cast<unsigned long long>(
                  full.progressive.discovered_pairs),
              static_cast<unsigned long long>(
                  full.progressive.evidence_assisted_matches));
  std::printf("stop after any installment: the work above that row is "
              "already banked, and the checkpoint survives restarts.\n");
  return 0;
}
