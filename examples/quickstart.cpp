// Quickstart: the MinoanER public API in ~60 lines.
//
//   1. Get Linked Data into an EntityCollection (here: the bundled
//      synthetic LOD-cloud generator; see lod_cloud_resolution.cpp for
//      loading real N-Triples files).
//   2. Open a ResolutionSession and spend the comparison budget in steps
//      (Step(0) once is the classic one-shot run; MinoanEr::Run is sugar
//      for exactly that).
//   3. Inspect the report: per-phase stats, matches, quality.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/session.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

int main() {
  using namespace minoan;  // NOLINT

  // --- 1. Data: a small synthetic Web-of-Data slice -----------------------
  datagen::LodCloudConfig config;
  config.seed = 1;
  config.num_real_entities = 500;  // real-world entities in the universe
  config.num_kbs = 4;              // autonomous knowledge bases
  config.center_kbs = 2;           // encyclopedic (highly similar) KBs
  auto cloud = datagen::GenerateLodCloud(config);
  if (!cloud.ok()) {
    std::fprintf(stderr, "generate: %s\n", cloud.status().ToString().c_str());
    return 1;
  }
  auto collection = cloud->BuildCollection();
  if (!collection.ok()) {
    std::fprintf(stderr, "ingest: %s\n",
                 collection.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %u descriptions from %u KBs (%llu triples)\n",
              collection->num_entities(), collection->num_kbs(),
              static_cast<unsigned long long>(collection->total_triples()));

  // --- 2. Resolve, pay-as-you-go -------------------------------------------
  WorkflowOptions options;
  options.blocker = BlockerChoice::kTokenPlusPis;  // schema-agnostic blocking
  options.meta.weighting = WeightingScheme::kEcbs; // meta-blocking scheme
  options.meta.pruning = PruningScheme::kWnp;
  options.progressive.benefit = BenefitModel::kEntityCoverage;
  options.progressive.matcher.threshold = 0.35;    // match decision
  options.progressive.matcher.budget = 0;          // 0 = no overall cap

  // Open runs the static phases (blocking -> cleaning -> meta-blocking);
  // each Step then spends part of the comparison budget and streams back
  // what it found. Stop whenever the matches so far are good enough —
  // or call Step(0) once for the classic run-to-completion behavior.
  auto session = ResolutionSession::Open(*collection, options);
  if (!session.ok()) {
    std::fprintf(stderr, "open: %s\n", session.status().ToString().c_str());
    return 1;
  }
  while (!session->finished()) {
    const StepResult step = session->Step(2000);
    std::printf("  step: +%llu comparisons -> +%zu matches (%llu total)\n",
                static_cast<unsigned long long>(step.comparisons),
                step.matches.size(),
                static_cast<unsigned long long>(session->matches_found()));
  }
  const ResolutionReport report = session->Report();

  // --- 3. Results ----------------------------------------------------------
  std::cout << report.Summary();

  // The generator ships exhaustive ground truth, so we can score the run.
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  if (truth.ok()) {
    const MatchingMetrics m =
        EvaluateMatches(report.progressive.run.matches, *truth);
    std::printf("precision %.3f | recall %.3f | F1 %.3f\n", m.precision,
                m.recall, m.f1);
  }

  // Print a couple of resolved pairs with their IRIs.
  std::printf("\nsample matches:\n");
  size_t shown = 0;
  for (const MatchEvent& m : report.progressive.run.matches) {
    std::printf("  %.3f  %s  <->  %s\n", m.similarity,
                std::string(collection->EntityIri(m.a)).c_str(),
                std::string(collection->EntityIri(m.b)).c_str());
    if (++shown == 5) break;
  }
  return 0;
}
