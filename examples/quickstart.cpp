// Quickstart: the MinoanER public API in ~60 lines.
//
//   1. Get Linked Data into an EntityCollection (here: the bundled
//      synthetic LOD-cloud generator; see lod_cloud_resolution.cpp for
//      loading real N-Triples files).
//   2. Configure a Workflow and run MinoanEr.
//   3. Inspect the report: per-phase stats, matches, quality.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/minoan_er.h"
#include "datagen/lod_generator.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

int main() {
  using namespace minoan;  // NOLINT

  // --- 1. Data: a small synthetic Web-of-Data slice -----------------------
  datagen::LodCloudConfig config;
  config.seed = 1;
  config.num_real_entities = 500;  // real-world entities in the universe
  config.num_kbs = 4;              // autonomous knowledge bases
  config.center_kbs = 2;           // encyclopedic (highly similar) KBs
  auto cloud = datagen::GenerateLodCloud(config);
  if (!cloud.ok()) {
    std::fprintf(stderr, "generate: %s\n", cloud.status().ToString().c_str());
    return 1;
  }
  auto collection = cloud->BuildCollection();
  if (!collection.ok()) {
    std::fprintf(stderr, "ingest: %s\n",
                 collection.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %u descriptions from %u KBs (%llu triples)\n",
              collection->num_entities(), collection->num_kbs(),
              static_cast<unsigned long long>(collection->total_triples()));

  // --- 2. Resolve ----------------------------------------------------------
  WorkflowOptions options;
  options.blocker = BlockerChoice::kTokenPlusPis;  // schema-agnostic blocking
  options.meta.weighting = WeightingScheme::kEcbs; // meta-blocking scheme
  options.meta.pruning = PruningScheme::kWnp;
  options.progressive.benefit = BenefitModel::kEntityCoverage;
  options.progressive.matcher.threshold = 0.35;    // match decision
  options.progressive.matcher.budget = 0;          // 0 = run to completion

  MinoanEr er(options);
  auto report = er.Run(*collection);
  if (!report.ok()) {
    std::fprintf(stderr, "resolve: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // --- 3. Results ----------------------------------------------------------
  std::cout << report->Summary();

  // The generator ships exhaustive ground truth, so we can score the run.
  auto truth = GroundTruth::FromCloud(*cloud, *collection);
  if (truth.ok()) {
    const MatchingMetrics m =
        EvaluateMatches(report->progressive.run.matches, *truth);
    std::printf("precision %.3f | recall %.3f | F1 %.3f\n", m.precision,
                m.recall, m.f1);
  }

  // Print a couple of resolved pairs with their IRIs.
  std::printf("\nsample matches:\n");
  size_t shown = 0;
  for (const MatchEvent& m : report->progressive.run.matches) {
    std::printf("  %.3f  %s  <->  %s\n", m.similarity,
                std::string(collection->EntityIri(m.a)).c_str(),
                std::string(collection->EntityIri(m.b)).c_str());
    if (++shown == 5) break;
  }
  return 0;
}
