#include "baseline/schedulers.h"

#include <algorithm>

#include "matching/union_find.h"
#include "metablocking/meta_blocking.h"
#include "util/hash.h"

namespace minoan {
namespace baseline {

std::vector<Comparison> RandomOrder(
    const std::vector<WeightedComparison>& candidates, uint64_t seed) {
  std::vector<Comparison> order;
  order.reserve(candidates.size());
  for (const WeightedComparison& c : candidates) {
    order.emplace_back(c.a, c.b);
  }
  Rng rng(seed);
  rng.Shuffle(order);
  return order;
}

std::vector<Comparison> OracleOrder(
    const std::vector<WeightedComparison>& candidates,
    const std::function<bool(EntityId, EntityId)>& is_match) {
  std::vector<Comparison> matches, rest;
  matches.reserve(candidates.size());
  for (const WeightedComparison& c : candidates) {
    (is_match(c.a, c.b) ? matches : rest).emplace_back(c.a, c.b);
  }
  matches.insert(matches.end(), rest.begin(), rest.end());
  return matches;
}

std::vector<Comparison> WeightDescendingOrder(
    std::vector<WeightedComparison> candidates) {
  SortByWeightDescending(candidates);
  std::vector<Comparison> order;
  order.reserve(candidates.size());
  for (const WeightedComparison& c : candidates) {
    order.emplace_back(c.a, c.b);
  }
  return order;
}

ResolutionRun AltowimResolver::Run(
    const std::vector<WeightedComparison>& candidates) const {
  ResolutionRun run;
  UnionFind clusters(collection_->num_entities());

  struct Pending {
    EntityId a;
    EntityId b;
    double weight;
  };
  std::vector<Pending> pending;
  pending.reserve(candidates.size());
  double max_weight = 0.0;
  for (const WeightedComparison& c : candidates) {
    pending.push_back({c.a, c.b, c.weight});
    max_weight = std::max(max_weight, c.weight);
  }
  const double scale = max_weight > 0.0 ? 1.0 / max_weight : 1.0;

  auto score = [&](const Pending& p) {
    // Quantity benefit: likelihood, boosted when both endpoints are still
    // unresolved singletons (a hit would resolve a brand-new pair set).
    const bool unresolved =
        clusters.SetSize(p.a) == 1 && clusters.SetSize(p.b) == 1;
    return p.weight * scale *
           (unresolved ? 1.0 + options_.unresolved_bonus : 1.0);
  };

  const uint64_t budget = options_.matcher.budget;
  while (!pending.empty() &&
         (budget == 0 || run.comparisons_executed < budget)) {
    // Re-rank the remaining candidates for this window.
    const size_t window =
        std::min<size_t>(options_.window_size, pending.size());
    std::partial_sort(pending.begin(), pending.begin() + window,
                      pending.end(), [&](const Pending& x, const Pending& y) {
                        const double sx = score(x), sy = score(y);
                        if (sx != sy) return sx > sy;
                        return PairKey(x.a, x.b) < PairKey(y.a, y.b);
                      });
    for (size_t i = 0; i < window; ++i) {
      if (budget > 0 && run.comparisons_executed >= budget) break;
      const Pending& p = pending[i];
      ++run.comparisons_executed;
      const double sim = evaluator_->Similarity(p.a, p.b);
      if (sim >= options_.matcher.threshold) {
        run.matches.push_back(
            MatchEvent{run.comparisons_executed, p.a, p.b, sim});
        clusters.Union(p.a, p.b);
      }
    }
    pending.erase(pending.begin(), pending.begin() + window);
  }
  return run;
}

}  // namespace baseline
}  // namespace minoan
