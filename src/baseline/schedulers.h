// Copyright 2026 The MinoanER Authors.
// Baseline comparison schedulers.
//
// The poster contrasts MinoanER's quality-aspect scheduling with "existing
// works in progressive relational ER (e.g., [1]), which consider the
// quantity of entity pairs resolved as the benefit of ER". This module
// provides those comparators:
//
//   * RandomOrder           — the non-progressive floor: any budget prefix
//                             is an unbiased sample of the comparison set;
//   * WeightDescendingOrder — static similarity ordering (schedule once,
//                             never revisit);
//   * AltowimResolver       — a window-based adaptive scheduler after
//                             Altowim et al. (PVLDB 2014): between windows,
//                             remaining candidates are re-ranked by expected
//                             resolution quantity given the current partial
//                             result (likelihood × still-unresolved bonus).

#ifndef MINOAN_BASELINE_SCHEDULERS_H_
#define MINOAN_BASELINE_SCHEDULERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "blocking/block.h"
#include "kb/collection.h"
#include "matching/matcher.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking_types.h"
#include "util/rng.h"

namespace minoan {
namespace baseline {

/// Uniformly shuffled comparison order (deterministic in `seed`).
std::vector<Comparison> RandomOrder(
    const std::vector<WeightedComparison>& candidates, uint64_t seed);

/// The oracle upper bound: all true matches first (in candidate order), then
/// everything else. No real scheduler can front-load recall faster over the
/// same candidate set; progressive-recall AUC against this order measures
/// how much headroom a scheduler leaves.
std::vector<Comparison> OracleOrder(
    const std::vector<WeightedComparison>& candidates,
    const std::function<bool(EntityId, EntityId)>& is_match);

/// Comparisons by descending blocking-graph weight (ties by pair id).
std::vector<Comparison> WeightDescendingOrder(
    std::vector<WeightedComparison> candidates);

/// Window-based quantity-progressive resolver (after [1]).
class AltowimResolver {
 public:
  struct Options {
    MatcherOptions matcher;
    /// Comparisons executed between re-ranking rounds.
    uint32_t window_size = 256;
    /// Bonus multiplier for pairs whose endpoints are still unresolved
    /// (resolving them adds new resolved pairs — the quantity benefit).
    double unresolved_bonus = 1.0;
  };

  AltowimResolver(const EntityCollection& collection,
                  const SimilarityEvaluator& evaluator, Options options)
      : collection_(&collection), evaluator_(&evaluator), options_(options) {}

  ResolutionRun Run(const std::vector<WeightedComparison>& candidates) const;

 private:
  const EntityCollection* collection_;
  const SimilarityEvaluator* evaluator_;
  Options options_;
};

}  // namespace baseline
}  // namespace minoan

#endif  // MINOAN_BASELINE_SCHEDULERS_H_
