#include "blocking/block.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"

namespace minoan {

uint64_t Block::NumComparisons(const EntityCollection& collection,
                               ResolutionMode mode) const {
  const uint64_t n = entities.size();
  if (mode == ResolutionMode::kDirty) return n * (n - 1) / 2;
  // Clean-clean: pairs from different KBs. Count per-KB membership.
  // sum over kb pairs = (n^2 - sum n_k^2) / 2.
  std::vector<std::pair<uint32_t, uint64_t>> kb_counts;
  for (EntityId e : entities) {
    const uint32_t kb = collection.entity(e).kb;
    bool found = false;
    for (auto& [k, c] : kb_counts) {
      if (k == kb) {
        ++c;
        found = true;
        break;
      }
    }
    if (!found) kb_counts.emplace_back(kb, 1);
  }
  uint64_t sum_sq = 0;
  for (const auto& [k, c] : kb_counts) sum_sq += c * c;
  return (n * n - sum_sq) / 2;
}

void BlockCollection::AddBlock(std::string_view key,
                               std::vector<EntityId> entities) {
  std::sort(entities.begin(), entities.end());
  entities.erase(std::unique(entities.begin(), entities.end()),
                 entities.end());
  if (entities.size() < 2) return;
  Block b;
  b.key = keys_.Intern(key);
  b.entities = std::move(entities);
  blocks_.push_back(std::move(b));
  index_offsets_.clear();
  index_blocks_.clear();
}

uint64_t BlockCollection::AggregateComparisons(
    const EntityCollection& collection, ResolutionMode mode) const {
  uint64_t total = 0;
  for (const Block& b : blocks_) total += b.NumComparisons(collection, mode);
  return total;
}

std::vector<Comparison> BlockCollection::DistinctComparisons(
    const EntityCollection& collection, ResolutionMode mode) const {
  std::unordered_set<uint64_t> seen;
  std::vector<Comparison> out;
  for (const Block& b : blocks_) {
    for (size_t i = 0; i < b.entities.size(); ++i) {
      for (size_t j = i + 1; j < b.entities.size(); ++j) {
        const EntityId x = b.entities[i], y = b.entities[j];
        if (mode == ResolutionMode::kCleanClean && !collection.CrossKb(x, y)) {
          continue;
        }
        if (seen.insert(PairKey(x, y)).second) {
          out.emplace_back(x, y);
        }
      }
    }
  }
  return out;
}

uint32_t BlockCollection::NumPlacedEntities() const {
  std::unordered_set<EntityId> placed;
  for (const Block& b : blocks_) {
    placed.insert(b.entities.begin(), b.entities.end());
  }
  return static_cast<uint32_t>(placed.size());
}

void BlockCollection::BuildEntityIndex(uint32_t num_entities) {
  index_offsets_.assign(static_cast<size_t>(num_entities) + 1, 0);
  for (const Block& b : blocks_) {
    for (EntityId e : b.entities) ++index_offsets_[e + 1];
  }
  for (size_t i = 1; i < index_offsets_.size(); ++i) {
    index_offsets_[i] += index_offsets_[i - 1];
  }
  index_blocks_.resize(index_offsets_.back());
  std::vector<uint64_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  for (uint32_t bi = 0; bi < blocks_.size(); ++bi) {
    for (EntityId e : blocks_[bi].entities) {
      index_blocks_[cursor[e]++] = bi;
    }
  }
}

void BlockCollection::ReplaceBlocks(std::vector<Block> blocks) {
  blocks_ = std::move(blocks);
  index_offsets_.clear();
  index_blocks_.clear();
}

}  // namespace minoan
