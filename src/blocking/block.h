// Copyright 2026 The MinoanER Authors.
// Blocks and block collections.
//
// Blocking places likely-matching descriptions into (overlapping) blocks; the
// matcher then compares only descriptions sharing a block. MinoanER's
// blocking is schema-agnostic: keys are tokens (or URI parts), never
// hand-picked attributes — the poster's "minimal number of assumptions about
// how entities match".

#ifndef MINOAN_BLOCKING_BLOCK_H_
#define MINOAN_BLOCKING_BLOCK_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kb/collection.h"
#include "kb/entity.h"
#include "util/interner.h"

namespace minoan {

/// Whether resolution is clean-clean (each KB internally duplicate-free, so
/// only cross-KB pairs are candidate matches) or dirty (any pair may match).
enum class ResolutionMode {
  kDirty = 0,
  kCleanClean = 1,
};

/// One candidate comparison (unordered entity pair, a < b).
struct Comparison {
  EntityId a;
  EntityId b;

  Comparison() : a(kInvalidEntity), b(kInvalidEntity) {}
  Comparison(EntityId x, EntityId y) : a(x < y ? x : y), b(x < y ? y : x) {}

  bool operator==(const Comparison& other) const {
    return a == other.a && b == other.b;
  }
  bool operator<(const Comparison& other) const {
    return a != other.a ? a < other.a : b < other.b;
  }
};

/// One block: a key and the (sorted) entities that share it.
struct Block {
  uint32_t key = 0;  // id in BlockCollection::keys()
  std::vector<EntityId> entities;

  size_t size() const { return entities.size(); }

  /// Number of comparisons this block induces under `mode` (cross-KB pairs
  /// only for clean-clean), ignoring cross-block redundancy.
  uint64_t NumComparisons(const EntityCollection& collection,
                          ResolutionMode mode) const;
};

/// An immutable set of blocks plus the inverted entity→blocks index that
/// meta-blocking traverses.
class BlockCollection {
 public:
  BlockCollection() = default;

  /// Appends a block with the given key string and entity list. Entities are
  /// sorted and deduplicated; blocks of fewer than 2 entities are dropped.
  void AddBlock(std::string_view key, std::vector<EntityId> entities);

  size_t num_blocks() const { return blocks_.size(); }
  const Block& block(size_t i) const { return blocks_[i]; }
  const std::vector<Block>& blocks() const { return blocks_; }
  std::string_view KeyString(uint32_t key_id) const {
    return keys_.View(key_id);
  }

  /// Aggregate comparisons over all blocks (with cross-block redundancy).
  uint64_t AggregateComparisons(const EntityCollection& collection,
                                ResolutionMode mode) const;

  /// Enumerates the *distinct* comparisons (each unordered pair once, even
  /// when it co-occurs in many blocks), restricted by `mode`.
  std::vector<Comparison> DistinctComparisons(
      const EntityCollection& collection, ResolutionMode mode) const;

  /// Number of distinct entities placed in at least one block.
  uint32_t NumPlacedEntities() const;

  /// Builds the entity→block-indices CSR over `num_entities` entities.
  /// Lists are sorted by block index.
  void BuildEntityIndex(uint32_t num_entities);
  bool has_entity_index() const { return !index_offsets_.empty(); }

  /// Block indices containing `e` (requires BuildEntityIndex).
  std::span<const uint32_t> BlocksOf(EntityId e) const {
    return std::span<const uint32_t>(
        index_blocks_.data() + index_offsets_[e],
        index_offsets_[e + 1] - index_offsets_[e]);
  }

  /// Replaces the block set (used by purging/filtering); invalidates the
  /// entity index.
  void ReplaceBlocks(std::vector<Block> blocks);

  const StringInterner& keys() const { return keys_; }

 private:
  std::vector<Block> blocks_;
  StringInterner keys_;
  std::vector<uint64_t> index_offsets_;
  std::vector<uint32_t> index_blocks_;
};

}  // namespace minoan

#endif  // MINOAN_BLOCKING_BLOCK_H_
