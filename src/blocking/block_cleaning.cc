#include "blocking/block_cleaning.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace minoan {

namespace {

/// Blocks (or entities) per cleaning work chunk. A constant — chunk
/// boundaries fix the merge order, so they must not move with the worker
/// count.
constexpr size_t kCleaningChunk = 256;

CleaningStats MakeStats(const BlockCollection& before_blocks,
                        uint64_t comparisons_before,
                        const BlockCollection& after_blocks,
                        const EntityCollection& collection,
                        ResolutionMode mode, uint64_t blocks_before) {
  (void)before_blocks;
  CleaningStats stats;
  stats.blocks_before = blocks_before;
  stats.blocks_after = after_blocks.num_blocks();
  stats.comparisons_before = comparisons_before;
  stats.comparisons_after = after_blocks.AggregateComparisons(collection, mode);
  return stats;
}

}  // namespace

CleaningStats PurgeBySize(BlockCollection& blocks, uint32_t max_block_size,
                          const EntityCollection& collection,
                          ResolutionMode mode) {
  const uint64_t blocks_before = blocks.num_blocks();
  const uint64_t comparisons_before =
      blocks.AggregateComparisons(collection, mode);
  std::vector<Block> kept;
  for (const Block& b : blocks.blocks()) {
    if (b.size() <= max_block_size) kept.push_back(b);
  }
  blocks.ReplaceBlocks(std::move(kept));
  return MakeStats(blocks, comparisons_before, blocks, collection, mode,
                   blocks_before);
}

CleaningStats AutoPurge(BlockCollection& blocks,
                        const EntityCollection& collection,
                        ResolutionMode mode, double smoothing,
                        ThreadPool* pool) {
  const uint64_t blocks_before = blocks.num_blocks();
  const uint64_t comparisons_before =
      blocks.AggregateComparisons(collection, mode);

  // Per distinct block size: total comparisons and total block assignments,
  // as a size -> (cmp, assign) map — counted per block chunk and summed in
  // chunk order (integer sums, identical at every thread count).
  std::vector<std::map<uint64_t, std::pair<uint64_t, uint64_t>>> chunk_sizes(
      NumChunks(blocks.num_blocks(), kCleaningChunk));
  RunChunkedTasks(pool, blocks.num_blocks(), kCleaningChunk,
                  [&](size_t c, size_t begin, size_t end) {
                    for (size_t bi = begin; bi < end; ++bi) {
                      const Block& b = blocks.block(bi);
                      auto& [cmp, assign] = chunk_sizes[c][b.size()];
                      cmp += b.NumComparisons(collection, mode);
                      assign += b.size();
                    }
                  });
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> by_size;
  for (const auto& local : chunk_sizes) {
    for (const auto& [size, totals] : local) {
      auto& [cmp, assign] = by_size[size];
      cmp += totals.first;
      assign += totals.second;
    }
  }
  // Ascending scan of the cumulative comparisons-per-assignment ratio. The
  // threshold is set below the LAST size at which the ratio jumps by more
  // than `smoothing` — the oversized blocks dominate cumulative comparisons,
  // so the last jump marks where they begin. (Papadakis et al.; only the
  // few giant blocks are purged, small blocks always survive.)
  uint64_t max_keep_size = by_size.empty() ? 0 : by_size.rbegin()->first;
  uint64_t cum_cmp = 0, cum_assign = 0;
  double prev_ratio = -1.0;
  uint64_t prev_size = 0;
  for (const auto& [size, totals] : by_size) {
    cum_cmp += totals.first;
    cum_assign += totals.second;
    if (cum_assign == 0) continue;
    const double ratio =
        static_cast<double>(cum_cmp) / static_cast<double>(cum_assign);
    if (prev_ratio >= 0.0 && ratio > smoothing * prev_ratio) {
      max_keep_size = prev_size;  // last jump wins
    }
    prev_ratio = ratio;
    prev_size = size;
  }
  if (max_keep_size == 0 && !by_size.empty()) {
    max_keep_size = by_size.begin()->first;
  }
  // Keep scan: chunk-local survivor lists concatenated in chunk order = the
  // sequential block order.
  std::vector<std::vector<Block>> chunk_kept(
      NumChunks(blocks.num_blocks(), kCleaningChunk));
  RunChunkedTasks(pool, blocks.num_blocks(), kCleaningChunk,
                  [&](size_t c, size_t begin, size_t end) {
                    for (size_t bi = begin; bi < end; ++bi) {
                      const Block& b = blocks.block(bi);
                      if (b.size() <= max_keep_size) {
                        chunk_kept[c].push_back(b);
                      }
                    }
                  });
  blocks.ReplaceBlocks(FlattenInOrder(chunk_kept));
  return MakeStats(blocks, comparisons_before, blocks, collection, mode,
                   blocks_before);
}

CleaningStats FilterBlocks(BlockCollection& blocks, double ratio,
                           const EntityCollection& collection,
                           ResolutionMode mode, ThreadPool* pool) {
  const uint64_t blocks_before = blocks.num_blocks();
  const uint64_t comparisons_before =
      blocks.AggregateComparisons(collection, mode);
  if (ratio <= 0.0 || ratio > 1.0) ratio = 1.0;

  // entity -> indices of its blocks, ascending (a cheap linear scatter;
  // the sort-heavy per-entity pass below is the part worth fanning out).
  const uint32_t n = collection.num_entities();
  std::vector<std::vector<uint32_t>> memberships(n);
  for (uint32_t bi = 0; bi < blocks.num_blocks(); ++bi) {
    for (EntityId e : blocks.block(bi).entities) {
      memberships[e].push_back(bi);
    }
  }
  // Per entity (chunked): sort its blocks by (size, index) ascending and
  // keep the smallest ceil(ratio · |blocks|), collected as chunk-local
  // (block, entity) pairs.
  std::vector<std::vector<std::pair<uint32_t, EntityId>>> chunk_keeps(
      NumChunks(n, kCleaningChunk));
  RunChunkedTasks(pool, n, kCleaningChunk, [&](size_t c, size_t begin,
                                               size_t end) {
    for (uint32_t e = static_cast<uint32_t>(begin);
         e < static_cast<uint32_t>(end); ++e) {
      auto& mine = memberships[e];
      if (mine.empty()) continue;
      std::sort(mine.begin(), mine.end(), [&](uint32_t x, uint32_t y) {
        const size_t sx = blocks.block(x).size(), sy = blocks.block(y).size();
        return sx != sy ? sx < sy : x < y;
      });
      const size_t keep = static_cast<size_t>(
          std::max(1.0, std::ceil(ratio * static_cast<double>(mine.size()))));
      for (size_t i = 0; i < std::min(keep, mine.size()); ++i) {
        chunk_keeps[c].emplace_back(mine[i], e);
      }
    }
  });
  // Scatter in chunk order: entities ascend across (and within) chunks, so
  // each retained list comes out in the sequential ascending-entity order.
  std::vector<std::vector<EntityId>> retained(blocks.num_blocks());
  for (auto& chunk : chunk_keeps) {
    for (const auto& [bi, e] : chunk) retained[bi].push_back(e);
    chunk.clear();
    chunk.shrink_to_fit();
  }
  // Rebuild surviving blocks (chunked over blocks, concatenated in block
  // order — the sequential emission order).
  std::vector<std::vector<Block>> chunk_kept(
      NumChunks(blocks.num_blocks(), kCleaningChunk));
  RunChunkedTasks(pool, blocks.num_blocks(), kCleaningChunk,
                  [&](size_t c, size_t begin, size_t end) {
                    for (size_t bi = begin; bi < end; ++bi) {
                      if (retained[bi].size() < 2) continue;
                      Block b;
                      b.key = blocks.block(bi).key;
                      std::sort(retained[bi].begin(), retained[bi].end());
                      b.entities = std::move(retained[bi]);
                      chunk_kept[c].push_back(std::move(b));
                    }
                  });
  // Rebuild against the same key table: ReplaceBlocks keeps the interner.
  blocks.ReplaceBlocks(FlattenInOrder(chunk_kept));
  return MakeStats(blocks, comparisons_before, blocks, collection, mode,
                   blocks_before);
}

}  // namespace minoan
