#include "blocking/block_cleaning.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace minoan {

namespace {

CleaningStats MakeStats(const BlockCollection& before_blocks,
                        uint64_t comparisons_before,
                        const BlockCollection& after_blocks,
                        const EntityCollection& collection,
                        ResolutionMode mode, uint64_t blocks_before) {
  (void)before_blocks;
  CleaningStats stats;
  stats.blocks_before = blocks_before;
  stats.blocks_after = after_blocks.num_blocks();
  stats.comparisons_before = comparisons_before;
  stats.comparisons_after = after_blocks.AggregateComparisons(collection, mode);
  return stats;
}

}  // namespace

CleaningStats PurgeBySize(BlockCollection& blocks, uint32_t max_block_size,
                          const EntityCollection& collection,
                          ResolutionMode mode) {
  const uint64_t blocks_before = blocks.num_blocks();
  const uint64_t comparisons_before =
      blocks.AggregateComparisons(collection, mode);
  std::vector<Block> kept;
  for (const Block& b : blocks.blocks()) {
    if (b.size() <= max_block_size) kept.push_back(b);
  }
  blocks.ReplaceBlocks(std::move(kept));
  return MakeStats(blocks, comparisons_before, blocks, collection, mode,
                   blocks_before);
}

CleaningStats AutoPurge(BlockCollection& blocks,
                        const EntityCollection& collection,
                        ResolutionMode mode, double smoothing) {
  const uint64_t blocks_before = blocks.num_blocks();
  const uint64_t comparisons_before =
      blocks.AggregateComparisons(collection, mode);

  // Per distinct block size: total comparisons and total block assignments,
  // as a size -> (cmp, assign) map.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> by_size;
  for (const Block& b : blocks.blocks()) {
    auto& [cmp, assign] = by_size[b.size()];
    cmp += b.NumComparisons(collection, mode);
    assign += b.size();
  }
  // Ascending scan of the cumulative comparisons-per-assignment ratio. The
  // threshold is set below the LAST size at which the ratio jumps by more
  // than `smoothing` — the oversized blocks dominate cumulative comparisons,
  // so the last jump marks where they begin. (Papadakis et al.; only the
  // few giant blocks are purged, small blocks always survive.)
  uint64_t max_keep_size = by_size.empty() ? 0 : by_size.rbegin()->first;
  uint64_t cum_cmp = 0, cum_assign = 0;
  double prev_ratio = -1.0;
  uint64_t prev_size = 0;
  for (const auto& [size, totals] : by_size) {
    cum_cmp += totals.first;
    cum_assign += totals.second;
    if (cum_assign == 0) continue;
    const double ratio =
        static_cast<double>(cum_cmp) / static_cast<double>(cum_assign);
    if (prev_ratio >= 0.0 && ratio > smoothing * prev_ratio) {
      max_keep_size = prev_size;  // last jump wins
    }
    prev_ratio = ratio;
    prev_size = size;
  }
  if (max_keep_size == 0 && !by_size.empty()) {
    max_keep_size = by_size.begin()->first;
  }
  std::vector<Block> kept;
  for (const Block& b : blocks.blocks()) {
    if (b.size() <= max_keep_size) kept.push_back(b);
  }
  blocks.ReplaceBlocks(std::move(kept));
  return MakeStats(blocks, comparisons_before, blocks, collection, mode,
                   blocks_before);
}

CleaningStats FilterBlocks(BlockCollection& blocks, double ratio,
                           const EntityCollection& collection,
                           ResolutionMode mode) {
  const uint64_t blocks_before = blocks.num_blocks();
  const uint64_t comparisons_before =
      blocks.AggregateComparisons(collection, mode);
  if (ratio <= 0.0 || ratio > 1.0) ratio = 1.0;

  // entity -> indices of its blocks, sorted by block size ascending.
  const uint32_t n = collection.num_entities();
  std::vector<std::vector<uint32_t>> memberships(n);
  for (uint32_t bi = 0; bi < blocks.num_blocks(); ++bi) {
    for (EntityId e : blocks.block(bi).entities) {
      memberships[e].push_back(bi);
    }
  }
  std::vector<std::vector<EntityId>> retained(blocks.num_blocks());
  for (uint32_t e = 0; e < n; ++e) {
    auto& mine = memberships[e];
    if (mine.empty()) continue;
    std::sort(mine.begin(), mine.end(), [&](uint32_t x, uint32_t y) {
      const size_t sx = blocks.block(x).size(), sy = blocks.block(y).size();
      return sx != sy ? sx < sy : x < y;
    });
    const size_t keep = static_cast<size_t>(
        std::max(1.0, std::ceil(ratio * static_cast<double>(mine.size()))));
    for (size_t i = 0; i < std::min(keep, mine.size()); ++i) {
      retained[mine[i]].push_back(e);
    }
  }
  std::vector<Block> kept;
  for (uint32_t bi = 0; bi < retained.size(); ++bi) {
    if (retained[bi].size() < 2) continue;
    Block b;
    b.key = blocks.block(bi).key;
    std::sort(retained[bi].begin(), retained[bi].end());
    b.entities = std::move(retained[bi]);
    kept.push_back(std::move(b));
  }
  // Rebuild against the same key table: ReplaceBlocks keeps the interner.
  blocks.ReplaceBlocks(std::move(kept));
  return MakeStats(blocks, comparisons_before, blocks, collection, mode,
                   blocks_before);
}

}  // namespace minoan
