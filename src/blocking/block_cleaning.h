// Copyright 2026 The MinoanER Authors.
// Block-cleaning operators: purging (drop oversized blocks) and filtering
// (keep each entity only in its smallest blocks).
//
// Both are block-level precision boosters that run between blocking and
// meta-blocking. They discard the blocks that contribute the bulk of the
// comparisons but almost none of the matching pairs, at negligible recall
// cost — the standard pipeline of block-based ER over heterogeneous data.
//
// Both operators run their scans on the chunked-pool pattern
// (util/thread_pool.h RunChunkedTasks): pass a pool and the size histogram,
// the per-entity membership filtering, and the keep scans fan out over
// fixed-size chunks; pass nullptr and the same code runs inline. The
// cleaned block collection is byte-identical at every thread count.

#ifndef MINOAN_BLOCKING_BLOCK_CLEANING_H_
#define MINOAN_BLOCKING_BLOCK_CLEANING_H_

#include <cstdint>

#include "blocking/block.h"

namespace minoan {

class ThreadPool;

/// Result summary of a cleaning step.
struct CleaningStats {
  uint64_t blocks_before = 0;
  uint64_t blocks_after = 0;
  uint64_t comparisons_before = 0;  // aggregate cardinality
  uint64_t comparisons_after = 0;
};

/// Removes blocks with more than `max_block_size` entities.
CleaningStats PurgeBySize(BlockCollection& blocks, uint32_t max_block_size,
                          const EntityCollection& collection,
                          ResolutionMode mode);

/// Comparison-based automatic purging (Papadakis et al.): scans distinct
/// block sizes in ascending order tracking the ratio of cumulative
/// comparisons to cumulative block assignments, and purges every block
/// larger than the last size at which the ratio grew by less than
/// `smoothing` (default 1.025). Intuition: once each extra block assignment
/// starts buying disproportionately many comparisons, the remaining
/// (oversized) blocks are noise.
CleaningStats AutoPurge(BlockCollection& blocks,
                        const EntityCollection& collection,
                        ResolutionMode mode, double smoothing = 1.025,
                        ThreadPool* pool = nullptr);

/// Block filtering (Papadakis et al.): each entity retains only the
/// ceil(ratio * |blocks(e)|) smallest of its blocks; blocks are then rebuilt
/// from the retained memberships. `ratio` in (0, 1]; 0.8 is the literature
/// default.
CleaningStats FilterBlocks(BlockCollection& blocks, double ratio,
                           const EntityCollection& collection,
                           ResolutionMode mode, ThreadPool* pool = nullptr);

}  // namespace minoan

#endif  // MINOAN_BLOCKING_BLOCK_CLEANING_H_
