#include "blocking/blocking_method.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "blocking/sharded_blocking.h"
#include "rdf/iri.h"
#include "text/similarity.h"
#include "util/logging.h"

namespace minoan {

namespace {

/// Union-find over predicate ids (small, path-halving).
class DisjointSets {
 public:
  explicit DisjointSets(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<uint32_t> parent_;
};

uint64_t HashU32(const uint32_t& v) { return v; }
uint64_t HashU64(const uint64_t& v) { return v; }
uint64_t HashString(const std::string& s) { return Fnv1a64(s); }

/// Links predicates whose vocabulary profiles overlap by at least
/// `link_threshold` Jaccard; transitive closure via union-find, densified
/// cluster ids. The O(P^2) pass fans out over fixed predicate chunks;
/// links are collected per chunk and union-ed in the sequential (p asc,
/// q asc) order, so the closure is identical at every thread count.
/// Unprofiled (relation-only) predicates join the glue cluster.
std::vector<uint32_t> LinkProfiledPredicates(
    ThreadPool* pool, const std::vector<std::vector<uint32_t>>& profile,
    double link_threshold) {
  const uint32_t num_preds = static_cast<uint32_t>(profile.size());
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> chunk_links(
      NumChunks(num_preds, kBlockingChunkEntities));
  RunChunkedTasks(
      pool, num_preds, kBlockingChunkEntities,
      [&](size_t c, size_t begin, size_t end) {
        for (uint32_t p = static_cast<uint32_t>(begin);
             p < static_cast<uint32_t>(end); ++p) {
          if (profile[p].empty()) continue;
          for (uint32_t q = p + 1; q < num_preds; ++q) {
            if (profile[q].empty()) continue;
            if (JaccardSimilarity(profile[p], profile[q]) >=
                link_threshold) {
              chunk_links[c].emplace_back(p, q);
            }
          }
        }
      });
  DisjointSets sets(num_preds);
  for (const auto& links : chunk_links) {
    for (const auto& [p, q] : links) sets.Union(p, q);
  }
  // Densify cluster ids: cluster 0 is the glue cluster for predicates whose
  // singleton vocabulary linked to nothing (they still deserve blocks —
  // dropping them would silently lose recall).
  std::vector<uint32_t> cluster(num_preds, 0);
  std::vector<uint32_t> root_size(num_preds, 0);
  for (uint32_t p = 0; p < num_preds; ++p) ++root_size[sets.Find(p)];
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t p = 0; p < num_preds; ++p) {
    const uint32_t root = sets.Find(p);
    if (root_size[root] < 2) {
      cluster[p] = 0;  // singleton → glue cluster
      continue;
    }
    auto [it, inserted] = dense.emplace(root, dense.size() + 1);
    cluster[p] = it->second;
  }
  return cluster;
}

/// Prefixes every key with "<name>:" before forwarding to the inner sink —
/// the composite method's namespacing, applied without materializing the
/// constituent's BlockCollection.
class PrefixedSink : public BlockSink {
 public:
  PrefixedSink(std::string_view prefix, BlockSink& inner) : inner_(&inner) {
    prefix_.assign(prefix);
    prefix_ += ':';
  }
  bool wants_keys() const override { return inner_->wants_keys(); }
  void Add(std::string_view key, std::vector<EntityId>& entities) override {
    if (!inner_->wants_keys()) {
      inner_->Add(key, entities);
      return;
    }
    scratch_.assign(prefix_);
    scratch_.append(key);
    inner_->Add(scratch_, entities);
  }

 private:
  BlockSink* inner_;
  std::string prefix_;
  std::string scratch_;
};

}  // namespace

void TokenBlocking::BuildInto(const EntityCollection& collection,
                              ThreadPool* pool, BlockSink& sink) const {
  // Inverted index: token -> entities containing it (unique per entity),
  // built per entity chunk and merged canonically — ascending token id,
  // exactly the order the sequential postings array produced.
  const auto emit = [&collection](EntityId e, std::vector<uint32_t>& keys) {
    const EntityDescription& desc = collection.entity(e);
    keys.insert(keys.end(), desc.tokens.begin(), desc.tokens.end());
  };
  const uint64_t df_cap = static_cast<uint64_t>(
      options_.max_df_fraction * collection.num_entities());
  const auto consume = [&](uint32_t key, std::vector<EntityId>& entities) {
    if (entities.size() < options_.min_df) return;
    if (df_cap > 0 && entities.size() > df_cap) return;
    sink.Add(sink.wants_keys() ? collection.tokens().View(key)
                               : std::string_view(),
             entities);
  };
  if (memory_or_null() != nullptr) {
    StreamShardedPostings<uint32_t>(collection.num_entities(), pool, emit,
                                    HashU32, *memory_or_null(), consume);
    return;
  }
  auto postings = BuildShardedPostings<uint32_t>(collection.num_entities(),
                                                 pool, emit, HashU32);
  for (auto& posting : postings) consume(posting.key, posting.entities);
}

void AppendPisKeys(const PisBlocking::Options& options,
                   const Tokenizer& tokenizer, std::string_view iri,
                   std::vector<std::string>& out,
                   std::vector<std::string>& token_scratch) {
  const rdf::IriParts parts = rdf::SplitIri(iri);
  if (options.use_suffix && !parts.suffix.empty()) {
    out.push_back("sfx:" + parts.suffix);
    if (options.tokenize_suffix) {
      token_scratch.clear();
      tokenizer.Tokenize(parts.suffix, token_scratch);
      for (const std::string& tok : token_scratch) {
        out.push_back("sfxtok:" + tok);
      }
    }
  }
  if (options.use_infix && !parts.infix.empty()) {
    out.push_back("ifx:" + parts.infix);
  }
}

void PisBlocking::BuildInto(const EntityCollection& collection,
                            ThreadPool* pool, BlockSink& sink) const {
  // Per-entity key emission can repeat a key (suffix tokens); size filters
  // see the raw emission count, AddBlock dedups — both as before. Emission
  // order is canonical (sorted keys) for every thread count.
  const auto emit = [this, &collection](EntityId e,
                                        std::vector<std::string>& keys) {
    thread_local std::vector<std::string> token_scratch;
    AppendPisKeys(options_, collection.tokenizer(),
                  collection.iris().View(collection.entity(e).iri), keys,
                  token_scratch);
  };
  const auto consume = [&](const std::string& key,
                           std::vector<EntityId>& entities) {
    if (entities.size() < options_.min_block_size) return;
    if (entities.size() > options_.max_block_size) return;
    sink.Add(key, entities);
  };
  if (memory_or_null() != nullptr) {
    StreamShardedPostings<std::string>(collection.num_entities(), pool, emit,
                                       HashString, *memory_or_null(),
                                       consume);
    return;
  }
  auto postings = BuildShardedPostings<std::string>(collection.num_entities(),
                                                    pool, emit, HashString);
  for (auto& posting : postings) consume(posting.key, posting.entities);
}

std::vector<uint32_t> AttributeClusteringBlocking::ClusterPredicates(
    const EntityCollection& collection, ThreadPool* pool) const {
  const uint32_t num_preds = collection.predicates().size();
  const uint32_t n = collection.num_entities();
  // Profile each predicate by the (sorted unique, capped) token ids of its
  // values across all entities. The cap admits whole attributes in
  // first-scan order until the predicate's profile reaches
  // max_profile_tokens, so WHICH tokens enter depends on scan order.
  std::vector<std::vector<uint32_t>> profile(num_preds);
  if (pool == nullptr) {
    // Inline: the original one-pass scan (single tokenization, capped
    // attributes skipped entirely). The chunked path below reproduces this
    // profile byte for byte — asserted in parallel_blocking_test.cc.
    std::vector<std::string> scratch;
    for (const EntityDescription& desc : collection.entities()) {
      for (const Attribute& attr : desc.attributes) {
        auto& prof = profile[attr.predicate];
        if (prof.size() >= options_.max_profile_tokens) continue;
        scratch.clear();
        collection.tokenizer().Tokenize(collection.values().View(attr.value),
                                        scratch);
        for (const std::string& tok : scratch) {
          const uint32_t id = collection.tokens().Find(tok);
          if (id != kInternNotFound) prof.push_back(id);
        }
      }
    }
    for (auto& prof : profile) SortUnique(prof);
    return LinkProfiledPredicates(pool, profile, options_.link_threshold);
  }
  // Chunked: reproduces the sequential first-scan prefix exactly via
  // per-attribute segment boundaries. Pass 1 counts each attribute's
  // contribution in parallel, a cheap sequential fold over the counts (no
  // tokenizing) decides inclusion under the cap and assigns every included
  // attribute its offset in the predicate's profile, and pass 2 writes the
  // tokens into those disjoint segments in parallel. Byte-identical to the
  // inline scan at every thread count; the value text is tokenized twice,
  // which the fan-out more than buys back.
  constexpr uint32_t kExcludedAttr = 0xffffffffu;
  struct AttrCount {
    uint32_t predicate;
    uint32_t found_tokens;
  };
  std::vector<std::vector<AttrCount>> chunk_counts(
      NumChunks(n, kBlockingChunkEntities));
  RunChunkedTasks(
      pool, n, kBlockingChunkEntities,
      [&](size_t c, size_t begin, size_t end) {
        std::vector<std::string> scratch;
        for (size_t e = begin; e < end; ++e) {
          for (const Attribute& attr : collection.entity(
                   static_cast<EntityId>(e)).attributes) {
            scratch.clear();
            collection.tokenizer().Tokenize(
                collection.values().View(attr.value), scratch);
            uint32_t found = 0;
            for (const std::string& tok : scratch) {
              if (collection.tokens().Find(tok) != kInternNotFound) ++found;
            }
            chunk_counts[c].push_back(AttrCount{attr.predicate, found});
          }
        }
      });
  // Sequential fold in scan order: an attribute is included iff its
  // predicate's previously included attributes have not reached the cap —
  // the exact condition of the sequential scan.
  std::vector<uint32_t> profile_size(num_preds, 0);
  std::vector<std::vector<uint32_t>> chunk_offsets(chunk_counts.size());
  for (size_t c = 0; c < chunk_counts.size(); ++c) {
    chunk_offsets[c].reserve(chunk_counts[c].size());
    for (const AttrCount& ac : chunk_counts[c]) {
      if (profile_size[ac.predicate] < options_.max_profile_tokens) {
        chunk_offsets[c].push_back(profile_size[ac.predicate]);
        profile_size[ac.predicate] += ac.found_tokens;
      } else {
        chunk_offsets[c].push_back(kExcludedAttr);
      }
    }
  }
  for (uint32_t p = 0; p < num_preds; ++p) {
    profile[p].resize(profile_size[p]);
  }
  RunChunkedTasks(
      pool, n, kBlockingChunkEntities,
      [&](size_t c, size_t begin, size_t end) {
        std::vector<std::string> scratch;
        size_t i = 0;
        for (size_t e = begin; e < end; ++e) {
          for (const Attribute& attr : collection.entity(
                   static_cast<EntityId>(e)).attributes) {
            const uint32_t offset = chunk_offsets[c][i++];
            if (offset == kExcludedAttr) continue;
            scratch.clear();
            collection.tokenizer().Tokenize(
                collection.values().View(attr.value), scratch);
            uint32_t k = 0;
            for (const std::string& tok : scratch) {
              const uint32_t id = collection.tokens().Find(tok);
              if (id != kInternNotFound) {
                profile[attr.predicate][offset + k++] = id;
              }
            }
          }
        }
      });
  RunPoolTasks(pool, num_preds,
               [&](size_t p) { SortUnique(profile[p]); });
  return LinkProfiledPredicates(pool, profile, options_.link_threshold);
}

void AttributeClusteringBlocking::BuildInto(const EntityCollection& collection,
                                            ThreadPool* pool,
                                            BlockSink& sink) const {
  // The predicate→cluster table is vocabulary-bounded (one u32 per
  // predicate plus capped profiles during clustering) and stays in memory
  // under the budget; only the (cluster, token) postings stream.
  const std::vector<uint32_t> cluster = ClusterPredicates(collection, pool);
  // Token blocking keyed by (cluster, token), in canonical ascending key
  // order. Per-entity keys are deduplicated before emission, as before.
  const auto emit = [&collection, &cluster](EntityId e,
                                            std::vector<uint64_t>& keys) {
    thread_local std::vector<std::string> scratch;
    const EntityDescription& desc = collection.entity(e);
    for (const Attribute& attr : desc.attributes) {
      const uint64_t c = cluster[attr.predicate];
      scratch.clear();
      collection.tokenizer().Tokenize(collection.values().View(attr.value),
                                      scratch);
      for (const std::string& tok : scratch) {
        const uint32_t id = collection.tokens().Find(tok);
        if (id != kInternNotFound) {
          keys.push_back((c << 32) | id);
        }
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  };
  const uint64_t df_cap = static_cast<uint64_t>(
      options_.max_df_fraction * collection.num_entities());
  std::string key_str;
  const auto consume = [&](uint64_t key, std::vector<EntityId>& entities) {
    if (entities.size() < options_.min_df) return;
    if (df_cap > 0 && entities.size() > df_cap) return;
    if (sink.wants_keys()) {
      const uint32_t c = static_cast<uint32_t>(key >> 32);
      const uint32_t tok = static_cast<uint32_t>(key & 0xffffffffULL);
      key_str = "c" + std::to_string(c) + ":" +
                std::string(collection.tokens().View(tok));
      sink.Add(key_str, entities);
    } else {
      sink.Add(std::string_view(), entities);
    }
  };
  if (memory_or_null() != nullptr) {
    StreamShardedPostings<uint64_t>(collection.num_entities(), pool, emit,
                                    HashU64, *memory_or_null(), consume);
    return;
  }
  auto postings = BuildShardedPostings<uint64_t>(collection.num_entities(),
                                                 pool, emit, HashU64);
  for (auto& posting : postings) consume(posting.key, posting.entities);
}

void CompositeBlocking::BuildInto(const EntityCollection& collection,
                                  ThreadPool* pool, BlockSink& sink) const {
  // Each constituent streams straight into the caller's sink through a
  // "<name>:" key prefixer — no per-method BlockCollection. Normalization
  // (sort/dedup/drop <2) is idempotent, so sinking each surviving block
  // once matches the old materialize-then-re-add behavior byte for byte.
  for (const auto& method : methods_) {
    PrefixedSink prefixed(method->name(), sink);
    method->BuildInto(collection, pool, prefixed);
  }
}

}  // namespace minoan
