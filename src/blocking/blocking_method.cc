#include "blocking/blocking_method.h"

#include <algorithm>
#include <unordered_map>

#include "rdf/iri.h"
#include "text/similarity.h"
#include "util/logging.h"

namespace minoan {

namespace {

/// Union-find over predicate ids (small, path-halving).
class DisjointSets {
 public:
  explicit DisjointSets(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

BlockCollection TokenBlocking::Build(
    const EntityCollection& collection) const {
  // Inverted index: token -> entities containing it (unique per entity).
  std::vector<std::vector<EntityId>> postings(collection.tokens().size());
  for (const EntityDescription& desc : collection.entities()) {
    for (uint32_t tok : desc.tokens) postings[tok].push_back(desc.id);
  }
  const uint64_t df_cap = static_cast<uint64_t>(
      options_.max_df_fraction * collection.num_entities());
  BlockCollection out;
  for (uint32_t tok = 0; tok < postings.size(); ++tok) {
    auto& list = postings[tok];
    if (list.size() < options_.min_df) continue;
    if (df_cap > 0 && list.size() > df_cap) continue;
    out.AddBlock(collection.tokens().View(tok), std::move(list));
  }
  return out;
}

void AppendPisKeys(const PisBlocking::Options& options,
                   const Tokenizer& tokenizer, std::string_view iri,
                   std::vector<std::string>& out,
                   std::vector<std::string>& token_scratch) {
  const rdf::IriParts parts = rdf::SplitIri(iri);
  if (options.use_suffix && !parts.suffix.empty()) {
    out.push_back("sfx:" + parts.suffix);
    if (options.tokenize_suffix) {
      token_scratch.clear();
      tokenizer.Tokenize(parts.suffix, token_scratch);
      for (const std::string& tok : token_scratch) {
        out.push_back("sfxtok:" + tok);
      }
    }
  }
  if (options.use_infix && !parts.infix.empty()) {
    out.push_back("ifx:" + parts.infix);
  }
}

BlockCollection PisBlocking::Build(const EntityCollection& collection) const {
  std::unordered_map<std::string, std::vector<EntityId>> keyed;
  std::vector<std::string> keys;
  std::vector<std::string> token_scratch;
  for (const EntityDescription& desc : collection.entities()) {
    keys.clear();
    AppendPisKeys(options_, collection.tokenizer(),
                  collection.iris().View(desc.iri), keys, token_scratch);
    for (const std::string& key : keys) keyed[key].push_back(desc.id);
  }
  BlockCollection out;
  for (auto& [key, entities] : keyed) {
    if (entities.size() < options_.min_block_size) continue;
    if (entities.size() > options_.max_block_size) continue;
    out.AddBlock(key, std::move(entities));
  }
  return out;
}

std::vector<uint32_t> AttributeClusteringBlocking::ClusterPredicates(
    const EntityCollection& collection) const {
  const uint32_t num_preds = collection.predicates().size();
  // Profile each predicate by the (sorted unique, capped) token ids of its
  // values across all entities.
  std::vector<std::vector<uint32_t>> profile(num_preds);
  std::vector<std::string> scratch;
  for (const EntityDescription& desc : collection.entities()) {
    for (const Attribute& attr : desc.attributes) {
      auto& prof = profile[attr.predicate];
      if (prof.size() >= options_.max_profile_tokens) continue;
      scratch.clear();
      collection.tokenizer().Tokenize(collection.values().View(attr.value),
                                      scratch);
      for (const std::string& tok : scratch) {
        const uint32_t id = collection.tokens().Find(tok);
        if (id != kInternNotFound) prof.push_back(id);
      }
    }
  }
  for (auto& prof : profile) SortUnique(prof);

  // Link predicates whose vocabularies overlap; transitive closure via
  // union-find. Unprofiled (relation-only) predicates join the glue cluster.
  DisjointSets sets(num_preds);
  for (uint32_t p = 0; p < num_preds; ++p) {
    if (profile[p].empty()) continue;
    for (uint32_t q = p + 1; q < num_preds; ++q) {
      if (profile[q].empty()) continue;
      if (JaccardSimilarity(profile[p], profile[q]) >=
          options_.link_threshold) {
        sets.Union(p, q);
      }
    }
  }
  // Densify cluster ids: cluster 0 is the glue cluster for predicates whose
  // singleton vocabulary linked to nothing (they still deserve blocks —
  // dropping them would silently lose recall).
  std::vector<uint32_t> cluster(num_preds, 0);
  std::vector<uint32_t> root_size(num_preds, 0);
  for (uint32_t p = 0; p < num_preds; ++p) ++root_size[sets.Find(p)];
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t p = 0; p < num_preds; ++p) {
    const uint32_t root = sets.Find(p);
    if (root_size[root] < 2) {
      cluster[p] = 0;  // singleton → glue cluster
      continue;
    }
    auto [it, inserted] = dense.emplace(root, dense.size() + 1);
    cluster[p] = it->second;
  }
  return cluster;
}

BlockCollection AttributeClusteringBlocking::Build(
    const EntityCollection& collection) const {
  const std::vector<uint32_t> cluster = ClusterPredicates(collection);
  // Token blocking keyed by (cluster, token).
  std::unordered_map<uint64_t, std::vector<EntityId>> keyed;
  std::vector<std::string> scratch;
  std::vector<uint64_t> entity_keys;
  for (const EntityDescription& desc : collection.entities()) {
    entity_keys.clear();
    for (const Attribute& attr : desc.attributes) {
      const uint64_t c = cluster[attr.predicate];
      scratch.clear();
      collection.tokenizer().Tokenize(collection.values().View(attr.value),
                                      scratch);
      for (const std::string& tok : scratch) {
        const uint32_t id = collection.tokens().Find(tok);
        if (id != kInternNotFound) {
          entity_keys.push_back((c << 32) | id);
        }
      }
    }
    std::sort(entity_keys.begin(), entity_keys.end());
    entity_keys.erase(std::unique(entity_keys.begin(), entity_keys.end()),
                      entity_keys.end());
    for (uint64_t key : entity_keys) keyed[key].push_back(desc.id);
  }
  const uint64_t df_cap = static_cast<uint64_t>(
      options_.max_df_fraction * collection.num_entities());
  BlockCollection out;
  for (auto& [key, entities] : keyed) {
    if (entities.size() < options_.min_df) continue;
    if (df_cap > 0 && entities.size() > df_cap) continue;
    const uint32_t c = static_cast<uint32_t>(key >> 32);
    const uint32_t tok = static_cast<uint32_t>(key & 0xffffffffULL);
    std::string key_str = "c" + std::to_string(c) + ":" +
                          std::string(collection.tokens().View(tok));
    out.AddBlock(key_str, std::move(entities));
  }
  return out;
}

BlockCollection CompositeBlocking::Build(
    const EntityCollection& collection) const {
  BlockCollection out;
  for (const auto& method : methods_) {
    BlockCollection part = method->Build(collection);
    for (const Block& b : part.blocks()) {
      std::string key = std::string(method->name()) + ":" +
                        std::string(part.KeyString(b.key));
      out.AddBlock(key, b.entities);
    }
  }
  return out;
}

}  // namespace minoan
