// Copyright 2026 The MinoanER Authors.
// The blocking-method interface and the concrete schema-agnostic methods.

#ifndef MINOAN_BLOCKING_BLOCKING_METHOD_H_
#define MINOAN_BLOCKING_BLOCKING_METHOD_H_

#include <memory>
#include <string>
#include <string_view>

#include "blocking/block.h"
#include "extmem/memory_budget.h"
#include "kb/collection.h"

namespace minoan {

class ThreadPool;

/// Receiver of a blocking method's emitted blocks, one call per surviving
/// block in the method's canonical (deterministic) emission order.
/// `entities` is caller-owned scratch: the sink may read, mutate, or steal
/// it (BlockCollectionSink moves it into AddBlock). Lists may be unsorted
/// and contain duplicates — sinks normalize exactly like
/// BlockCollection::AddBlock always has.
class BlockSink {
 public:
  virtual ~BlockSink() = default;

  /// False when the sink ignores block keys (the out-of-core flat store
  /// keeps only entity membership) — methods then skip materializing key
  /// strings and may pass an empty view.
  virtual bool wants_keys() const { return true; }

  virtual void Add(std::string_view key, std::vector<EntityId>& entities) = 0;
};

/// The classic sink: interns keys and appends normalized blocks to a
/// BlockCollection.
class BlockCollectionSink : public BlockSink {
 public:
  explicit BlockCollectionSink(BlockCollection& out) : out_(&out) {}
  void Add(std::string_view key, std::vector<EntityId>& entities) override {
    out_->AddBlock(key, std::move(entities));
  }

 private:
  BlockCollection* out_;
};

/// Abstract blocking method: entity collection in, blocks out (to a sink or
/// a materialized BlockCollection).
///
/// Every concrete method runs on the deterministic sharded-postings core
/// (blocking/sharded_blocking.h): pass a pool and index construction fans
/// out over fixed entity chunks; pass nullptr and the same code runs inline.
/// The block output — keys, entity lists, and emission order — is
/// bit-identical for every thread count.
class BlockingMethod {
 public:
  virtual ~BlockingMethod() = default;

  /// Human-readable method name for reports ("token", "pis", ...).
  virtual std::string_view name() const = 0;

  /// Emits the blocks of all entities of `collection` into `sink`, in the
  /// method's canonical order. `pool` (caller-owned, may be nullptr)
  /// parallelizes index construction with identical output. With a memory
  /// budget set, construction streams through the spill engine and never
  /// materializes the full postings — memory is bounded by the budget plus
  /// one block.
  virtual void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                         BlockSink& sink) const = 0;

  /// Builds a materialized BlockCollection (BuildInto through a
  /// BlockCollectionSink).
  BlockCollection Build(const EntityCollection& collection,
                        ThreadPool* pool) const {
    BlockCollection out;
    BlockCollectionSink sink(out);
    BuildInto(collection, pool, sink);
    return out;
  }

  /// Sequential convenience spelling of Build(collection, nullptr).
  BlockCollection Build(const EntityCollection& collection) const {
    return Build(collection, nullptr);
  }

  /// External-memory budget for the postings shuffle. Disabled by default
  /// (pure in-memory); when enabled, every postings-based build (token,
  /// PIS, attr-cluster, q-gram) streams through spilling shard sinks, and
  /// SortedNeighborhood's global key sort becomes an external merge sort —
  /// byte-identical blocks either way (see extmem/shuffle.h).
  /// Configuration, not execution: call before Build (Build itself is
  /// const and never mutates the method).
  virtual void set_memory_budget(const extmem::MemoryBudgetOptions& memory) {
    memory_ = memory;
  }
  const extmem::MemoryBudgetOptions& memory_budget() const { return memory_; }

 protected:
  /// The form BuildShardedPostings takes: null when the budget is disabled.
  const extmem::MemoryBudgetOptions* memory_or_null() const {
    return memory_.enabled() ? &memory_ : nullptr;
  }

 private:
  extmem::MemoryBudgetOptions memory_;
};

/// Token blocking: one block per distinct token appearing in >= 2
/// descriptions. The minimal-assumption workhorse — two descriptions are
/// candidates iff they share any token anywhere in their values or IRIs.
class TokenBlocking : public BlockingMethod {
 public:
  struct Options {
    /// Tokens whose document frequency exceeds this fraction of the
    /// collection are skipped as keys (near-stopwords produce huge,
    /// uninformative blocks).
    double max_df_fraction = 0.1;
    /// Tokens must appear in at least this many entities to form a block.
    uint32_t min_df = 2;
  };

  TokenBlocking() : options_{} {}
  explicit TokenBlocking(Options options) : options_(options) {}
  std::string_view name() const override { return "token"; }
  void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                 BlockSink& sink) const override;

 private:
  Options options_;
};

/// Prefix-Infix-Suffix blocking over entity IRIs: blocks keyed by the IRI
/// suffix and infix. Catches matches whose *names* align even when literal
/// values share nothing (common in the LOD center where IRIs are minted from
/// labels).
class PisBlocking : public BlockingMethod {
 public:
  struct Options {
    bool use_suffix = true;
    bool use_infix = false;  // infixes are usually per-KB paths; off default
    /// Tokenize the suffix and emit one block per suffix token as well.
    bool tokenize_suffix = true;
    uint32_t min_block_size = 2;
    uint32_t max_block_size = 1u << 14;
  };

  PisBlocking() : options_{} {}
  explicit PisBlocking(Options options) : options_(options) {}
  std::string_view name() const override { return "pis"; }
  void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                 BlockSink& sink) const override;

 private:
  Options options_;
};

/// Attribute-clustering blocking: predicates are clustered by the similarity
/// of their value-token distributions; token blocks are then keyed by
/// (attribute cluster, token), so the same token under unrelated attributes
/// no longer collides. Raises precision on heterogeneous collections at a
/// small recall cost.
class AttributeClusteringBlocking : public BlockingMethod {
 public:
  struct Options {
    /// Minimum token-set Jaccard between two predicates' value vocabularies
    /// for them to be linked during clustering.
    double link_threshold = 0.1;
    /// Cap on tokens sampled per predicate when profiling vocabularies.
    uint32_t max_profile_tokens = 4096;
    double max_df_fraction = 0.1;
    uint32_t min_df = 2;
  };

  AttributeClusteringBlocking() : options_{} {}
  explicit AttributeClusteringBlocking(Options options) : options_(options) {}
  std::string_view name() const override { return "attr-cluster"; }
  void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                 BlockSink& sink) const override;

  /// Exposed for tests: computes the predicate→cluster assignment. The
  /// pairwise vocabulary-linking pass runs on `pool` when given (identical
  /// clusters either way).
  std::vector<uint32_t> ClusterPredicates(const EntityCollection& collection,
                                          ThreadPool* pool = nullptr) const;

 private:
  Options options_;
};

/// Appends the PIS blocking keys of one IRI ("sfx:", "sfxtok:", "ifx:"
/// prefixed) to `out`, possibly with duplicates (suffix tokens can repeat).
/// `token_scratch` is a caller-owned buffer reused across calls. Shared by
/// the batch PisBlocking and the online IncrementalBlockIndex so the key
/// scheme cannot drift between them.
void AppendPisKeys(const PisBlocking::Options& options,
                   const Tokenizer& tokenizer, std::string_view iri,
                   std::vector<std::string>& out,
                   std::vector<std::string>& token_scratch);

/// Composite: union of the blocks of several methods (e.g. token + PIS, the
/// configuration MinoanER uses for the Web of Data).
class CompositeBlocking : public BlockingMethod {
 public:
  explicit CompositeBlocking(
      std::vector<std::unique_ptr<BlockingMethod>> methods)
      : methods_(std::move(methods)) {}
  std::string_view name() const override { return "composite"; }
  void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                 BlockSink& sink) const override;

  /// Fans the budget out to the constituent methods eagerly, so Build
  /// stays a pure const read.
  void set_memory_budget(const extmem::MemoryBudgetOptions& memory) override {
    BlockingMethod::set_memory_budget(memory);
    for (const auto& method : methods_) method->set_memory_budget(memory);
  }

 private:
  std::vector<std::unique_ptr<BlockingMethod>> methods_;
};

}  // namespace minoan

#endif  // MINOAN_BLOCKING_BLOCKING_METHOD_H_
