#include "blocking/char_blocking.h"

#include <algorithm>

#include "blocking/sharded_blocking.h"
#include "util/interner.h"

namespace minoan {

namespace {

/// Appends the sorted-unique q-gram strings of one entity's tokens.
void EntityGrams(const EntityCollection& collection, EntityId e, uint32_t q,
                 std::vector<std::string>& out) {
  out.clear();
  for (uint32_t tok : collection.entity(e).tokens) {
    const std::string_view token = collection.tokens().View(tok);
    if (token.size() <= q) {
      out.emplace_back(token);
      continue;
    }
    for (size_t i = 0; i + q <= token.size(); ++i) {
      out.emplace_back(token.substr(i, q));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

BlockCollection QGramBlocking::Build(const EntityCollection& collection,
                                     ThreadPool* pool) const {
  const uint32_t q = std::max<uint32_t>(1, options_.q);
  const uint32_t n = collection.num_entities();
  // Pass 1: global q-gram document frequencies. Each chunk counts into a
  // local interner + dense count array (no per-gram node allocation), then
  // the locals fold into one global interner in chunk order — global gram
  // ids are first-seen-in-chunk-order, so the fold (integer sums over a
  // dense array) is identical at every thread count.
  struct ChunkCounts {
    StringInterner grams;
    std::vector<uint32_t> counts;
  };
  std::vector<ChunkCounts> chunk_df(NumChunks(n, kBlockingChunkEntities));
  RunChunkedTasks(pool, n, kBlockingChunkEntities,
                  [&](size_t c, size_t begin, size_t end) {
                    ChunkCounts& local = chunk_df[c];
                    std::vector<std::string> grams;
                    for (size_t e = begin; e < end; ++e) {
                      EntityGrams(collection, static_cast<EntityId>(e), q,
                                  grams);
                      for (const std::string& gram : grams) {
                        const uint32_t id = local.grams.Intern(gram);
                        if (id >= local.counts.size()) {
                          local.counts.resize(id + 1, 0);
                        }
                        ++local.counts[id];
                      }
                    }
                  });
  StringInterner gram_ids;
  std::vector<uint32_t> df;
  for (const ChunkCounts& local : chunk_df) {
    for (uint32_t i = 0; i < local.grams.size(); ++i) {
      const uint32_t id = gram_ids.Intern(local.grams.View(i));
      if (id >= df.size()) df.resize(id + 1, 0);
      df[id] += local.counts[i];
    }
  }

  // Pass 2: keep the rarest grams per entity (they carry the signal), build
  // postings through the sharded core. `gram_ids`/`df` are frozen —
  // Find() is a const read, safe across workers.
  auto postings = BuildShardedPostings<std::string>(
      n, pool,
      [&](EntityId e, std::vector<std::string>& keys) {
        EntityGrams(collection, e, q, keys);
        if (options_.max_grams_per_entity > 0 &&
            keys.size() > options_.max_grams_per_entity) {
          std::partial_sort(
              keys.begin(), keys.begin() + options_.max_grams_per_entity,
              keys.end(),
              [&](const std::string& a, const std::string& b) {
                // Every gram was counted in pass 1, so Find never misses.
                const uint32_t da = df[gram_ids.Find(a)];
                const uint32_t db = df[gram_ids.Find(b)];
                return da != db ? da < db : a < b;  // rarest first
              });
          keys.resize(options_.max_grams_per_entity);
        }
      },
      [](const std::string& s) { return Fnv1a64(s); }, memory_or_null());

  const uint64_t df_cap = static_cast<uint64_t>(options_.max_df_fraction *
                                                collection.num_entities());
  BlockCollection out;
  // Postings arrive in deterministic sorted-key order.
  for (auto& posting : postings) {
    if (posting.entities.size() < options_.min_df) continue;
    if (df_cap > 0 && posting.entities.size() > df_cap) continue;
    out.AddBlock("g:" + posting.key, std::move(posting.entities));
  }
  return out;
}

BlockCollection SortedNeighborhoodBlocking::Build(
    const EntityCollection& collection, ThreadPool* pool) const {
  // Build (key, entity) pairs: each entity contributes its rarest tokens.
  // Extraction fans out over fixed entity chunks; the global sort below
  // fixes one total order, so chunk concatenation order is irrelevant.
  // NOTE: this method ignores any memory budget — its sliding window runs
  // over ONE globally sorted key list, which key-hashed shard spilling
  // cannot reproduce (windows span shard boundaries). See the ROADMAP
  // extmem item; the budget-governed methods are the postings-based ones.
  const uint32_t n = collection.num_entities();
  std::vector<std::vector<std::pair<std::string, EntityId>>> chunk_keyed(
      NumChunks(n, kBlockingChunkEntities));
  RunChunkedTasks(pool, n, kBlockingChunkEntities, [&](size_t c, size_t begin,
                                                       size_t end) {
    for (size_t idx = begin; idx < end; ++idx) {
      const EntityId e = static_cast<EntityId>(idx);
      // Tokens sorted by (df, id): rarest first.
      std::vector<uint32_t> toks = collection.entity(e).tokens;
      std::sort(toks.begin(), toks.end(), [&](uint32_t a, uint32_t b) {
        const uint32_t da = collection.TokenDf(a), db = collection.TokenDf(b);
        return da != db ? da < db : a < b;
      });
      const size_t take =
          std::min<size_t>(options_.keys_per_entity, toks.size());
      for (size_t i = 0; i < take; ++i) {
        chunk_keyed[c].emplace_back(
            std::string(collection.tokens().View(toks[i])), e);
      }
    }
  });
  std::vector<std::pair<std::string, EntityId>> keyed =
      FlattenInOrder(chunk_keyed);
  std::sort(keyed.begin(), keyed.end());

  BlockCollection out;
  const size_t w = std::max<uint32_t>(2, options_.window_size);
  // Slide a window over the sorted key list; each window is one block.
  std::vector<EntityId> window;
  for (size_t start = 0; start + 1 < keyed.size(); start += w / 2) {
    const size_t end = std::min(keyed.size(), start + w);
    window.clear();
    for (size_t i = start; i < end; ++i) window.push_back(keyed[i].second);
    std::string key = "w:" + keyed[start].first + ":" +
                      std::to_string(start);
    out.AddBlock(key, window);
    if (end == keyed.size()) break;
  }
  return out;
}

}  // namespace minoan
