#include "blocking/char_blocking.h"

#include <algorithm>
#include <deque>

#include "blocking/sharded_blocking.h"
#include "util/interner.h"

namespace minoan {

namespace {

/// Appends the sorted-unique q-gram strings of one entity's tokens.
void EntityGrams(const EntityCollection& collection, EntityId e, uint32_t q,
                 std::vector<std::string>& out) {
  out.clear();
  for (uint32_t tok : collection.entity(e).tokens) {
    const std::string_view token = collection.tokens().View(tok);
    if (token.size() <= q) {
      out.emplace_back(token);
      continue;
    }
    for (size_t i = 0; i + q <= token.size(); ++i) {
      out.emplace_back(token.substr(i, q));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

/// Emits the sliding-window blocks over a key-sorted (key, entity) record
/// stream (the external path). Holds at most window_size + 1 records: the
/// current window plus one record of lookahead to decide whether the window
/// reaches the end of the stream. Reproduces the in-memory window loop —
/// same starts, same window contents, same "w:<key>:<start>" keys — without
/// the global sorted list ever existing.
void SlideWindowOverStream(extmem::ShuffleSource& source, size_t w,
                           BlockSink& sink) {
  struct KeyedRecord {
    std::string key;
    EntityId entity;
  };
  std::deque<KeyedRecord> buf;
  bool exhausted = false;
  const auto fill = [&](size_t want) {
    std::string_view record;
    while (!exhausted && buf.size() < want) {
      if (!source.Next(record)) {
        exhausted = true;
        break;
      }
      buf.push_back({std::string(extmem::RecordKey(record)),
                     extmem::ReadU32Le(extmem::RecordPayload(record))});
    }
  };
  size_t start = 0;  // absolute index of buf.front() in the sorted list
  std::vector<EntityId> window;
  std::string key;
  for (;;) {
    fill(w + 1);
    // In-memory loop condition `start + 1 < N`: at least two records remain.
    if (buf.size() < 2) break;
    const size_t len = std::min(w, buf.size());
    window.clear();
    for (size_t i = 0; i < len; ++i) window.push_back(buf[i].entity);
    if (sink.wants_keys()) {
      key = "w:" + buf.front().key + ":" + std::to_string(start);
      sink.Add(key, window);
    } else {
      sink.Add(std::string_view(), window);
    }
    // In-memory `end == N` break: the window consumed every record left.
    if (buf.size() <= w) break;
    for (size_t i = 0; i < w / 2; ++i) buf.pop_front();
    start += w / 2;
  }
}

}  // namespace

void QGramBlocking::BuildInto(const EntityCollection& collection,
                              ThreadPool* pool, BlockSink& sink) const {
  const uint32_t q = std::max<uint32_t>(1, options_.q);
  const uint32_t n = collection.num_entities();
  // Pass 1: global q-gram document frequencies. Each chunk counts into a
  // local interner + dense count array (no per-gram node allocation), then
  // the locals fold into one global interner in chunk order — global gram
  // ids are first-seen-in-chunk-order, so the fold (integer sums over a
  // dense array) is identical at every thread count.
  struct ChunkCounts {
    StringInterner grams;
    std::vector<uint32_t> counts;
  };
  std::vector<ChunkCounts> chunk_df(NumChunks(n, kBlockingChunkEntities));
  RunChunkedTasks(pool, n, kBlockingChunkEntities,
                  [&](size_t c, size_t begin, size_t end) {
                    ChunkCounts& local = chunk_df[c];
                    std::vector<std::string> grams;
                    for (size_t e = begin; e < end; ++e) {
                      EntityGrams(collection, static_cast<EntityId>(e), q,
                                  grams);
                      for (const std::string& gram : grams) {
                        const uint32_t id = local.grams.Intern(gram);
                        if (id >= local.counts.size()) {
                          local.counts.resize(id + 1, 0);
                        }
                        ++local.counts[id];
                      }
                    }
                  });
  StringInterner gram_ids;
  std::vector<uint32_t> df;
  for (const ChunkCounts& local : chunk_df) {
    for (uint32_t i = 0; i < local.grams.size(); ++i) {
      const uint32_t id = gram_ids.Intern(local.grams.View(i));
      if (id >= df.size()) df.resize(id + 1, 0);
      df[id] += local.counts[i];
    }
  }

  // Pass 2: keep the rarest grams per entity (they carry the signal), build
  // postings through the sharded core. `gram_ids`/`df` are frozen —
  // Find() is a const read, safe across workers. The DF table itself is
  // vocabulary-bounded and stays in memory under the budget; only the
  // (gram, entity) postings stream.
  const auto emit = [&](EntityId e, std::vector<std::string>& keys) {
    EntityGrams(collection, e, q, keys);
    if (options_.max_grams_per_entity > 0 &&
        keys.size() > options_.max_grams_per_entity) {
      std::partial_sort(
          keys.begin(), keys.begin() + options_.max_grams_per_entity,
          keys.end(),
          [&](const std::string& a, const std::string& b) {
            // Every gram was counted in pass 1, so Find never misses.
            const uint32_t da = df[gram_ids.Find(a)];
            const uint32_t db = df[gram_ids.Find(b)];
            return da != db ? da < db : a < b;  // rarest first
          });
      keys.resize(options_.max_grams_per_entity);
    }
  };
  const auto hash = [](const std::string& s) { return Fnv1a64(s); };
  const uint64_t df_cap = static_cast<uint64_t>(options_.max_df_fraction *
                                                collection.num_entities());
  std::string key_str;
  // Postings arrive in deterministic sorted-key order on both paths.
  const auto consume = [&](const std::string& key,
                           std::vector<EntityId>& entities) {
    if (entities.size() < options_.min_df) return;
    if (df_cap > 0 && entities.size() > df_cap) return;
    if (sink.wants_keys()) {
      key_str = "g:" + key;
      sink.Add(key_str, entities);
    } else {
      sink.Add(std::string_view(), entities);
    }
  };
  if (memory_or_null() != nullptr) {
    StreamShardedPostings<std::string>(n, pool, emit, hash, *memory_or_null(),
                                       consume);
    return;
  }
  auto postings = BuildShardedPostings<std::string>(n, pool, emit, hash);
  for (auto& posting : postings) consume(posting.key, posting.entities);
}

void SortedNeighborhoodBlocking::BuildInto(const EntityCollection& collection,
                                           ThreadPool* pool,
                                           BlockSink& sink) const {
  // Build (key, entity) pairs: each entity contributes its rarest tokens.
  // Extraction fans out over fixed entity chunks; a global sort by key
  // fixes one total order, so chunk concatenation order is irrelevant.
  //
  // With a memory budget the global sort becomes an EXTERNAL single-stream
  // merge sort: the records flow through ONE spilling sink (windows span
  // arbitrary key-hash boundaries, so key-hashed sharding is not an
  // option), whose merged stream is the stable key sort of the sequential
  // arrival order (chunk asc, entity asc) — exactly std::sort's
  // (key, entity) order, since an entity never emits one key twice. The
  // window then slides over the stream with O(window) memory.
  const uint32_t n = collection.num_entities();
  const size_t w = std::max<uint32_t>(2, options_.window_size);

  static obs::Counter& chunks_counter =
      obs::MetricsRegistry::Default().counter("blocking.chunks");
  static obs::Counter& emissions_counter =
      obs::MetricsRegistry::Default().counter("blocking.emissions");
  static obs::Counter& postings_counter =
      obs::MetricsRegistry::Default().counter("blocking.postings");
  chunks_counter.Add(NumChunks(n, kBlockingChunkEntities));

  // Rarest `keys_per_entity` token strings of one entity, by (df, id).
  const auto entity_keys = [&](EntityId e, std::vector<uint32_t>& toks) {
    toks = collection.entity(e).tokens;
    std::sort(toks.begin(), toks.end(), [&](uint32_t a, uint32_t b) {
      const uint32_t da = collection.TokenDf(a), db = collection.TokenDf(b);
      return da != db ? da < db : a < b;
    });
    toks.resize(std::min<size_t>(options_.keys_per_entity, toks.size()));
  };

  // A window block is the analog of one merged posting here; both paths
  // emit the same count so obs parity holds across budgets.
  uint64_t windows_emitted = 0;
  class CountingSink : public BlockSink {
   public:
    CountingSink(BlockSink& inner, uint64_t& count)
        : inner_(&inner), count_(&count) {}
    bool wants_keys() const override { return inner_->wants_keys(); }
    void Add(std::string_view key, std::vector<EntityId>& entities) override {
      ++*count_;
      inner_->Add(key, entities);
    }

   private:
    BlockSink* inner_;
    uint64_t* count_;
  };
  CountingSink counting(sink, windows_emitted);

  if (memory_or_null() != nullptr) {
    extmem::RunSpilledShuffle(
        pool, n, kBlockingChunkEntities, /*num_shards=*/1, *memory_or_null(),
        [&](size_t /*chunk*/, size_t begin, size_t end, const auto& route) {
          std::vector<uint32_t> toks;
          std::string record;
          uint64_t emitted = 0;
          for (EntityId e = static_cast<EntityId>(begin);
               e < static_cast<EntityId>(end); ++e) {
            entity_keys(e, toks);
            for (const uint32_t tok : toks) {
              extmem::EncodeKey(std::string(collection.tokens().View(tok)),
                                record);
              extmem::AppendU32Le(record, e);
              route(0, record);
              ++emitted;
            }
          }
          emissions_counter.Add(emitted);
        },
        [&](uint32_t /*shard*/, extmem::ShuffleSource& source) {
          SlideWindowOverStream(source, w, counting);
        });
    postings_counter.Add(windows_emitted);
    return;
  }

  std::vector<std::vector<std::pair<std::string, EntityId>>> chunk_keyed(
      NumChunks(n, kBlockingChunkEntities));
  RunChunkedTasks(pool, n, kBlockingChunkEntities, [&](size_t c, size_t begin,
                                                       size_t end) {
    std::vector<uint32_t> toks;
    for (size_t idx = begin; idx < end; ++idx) {
      const EntityId e = static_cast<EntityId>(idx);
      entity_keys(e, toks);
      for (const uint32_t tok : toks) {
        chunk_keyed[c].emplace_back(
            std::string(collection.tokens().View(tok)), e);
      }
    }
    emissions_counter.Add(chunk_keyed[c].size());
  });
  std::vector<std::pair<std::string, EntityId>> keyed =
      FlattenInOrder(chunk_keyed);
  std::sort(keyed.begin(), keyed.end());

  // Slide a window over the sorted key list; each window is one block.
  std::vector<EntityId> window;
  std::string key;
  for (size_t start = 0; start + 1 < keyed.size(); start += w / 2) {
    const size_t end = std::min(keyed.size(), start + w);
    window.clear();
    for (size_t i = start; i < end; ++i) window.push_back(keyed[i].second);
    if (counting.wants_keys()) {
      key = "w:" + keyed[start].first + ":" + std::to_string(start);
      counting.Add(key, window);
    } else {
      counting.Add(std::string_view(), window);
    }
    if (end == keyed.size()) break;
  }
  postings_counter.Add(windows_emitted);
}

}  // namespace minoan
