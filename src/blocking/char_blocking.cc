#include "blocking/char_blocking.h"

#include <algorithm>
#include <unordered_map>

namespace minoan {

BlockCollection QGramBlocking::Build(
    const EntityCollection& collection) const {
  const uint32_t q = std::max<uint32_t>(1, options_.q);
  // Pass 1: per-entity q-gram key strings with global frequencies.
  std::unordered_map<std::string, std::vector<EntityId>> postings;
  std::unordered_map<std::string, uint32_t> df;
  std::vector<std::string> entity_grams;
  for (const EntityDescription& desc : collection.entities()) {
    entity_grams.clear();
    for (uint32_t tok : desc.tokens) {
      const std::string_view token = collection.tokens().View(tok);
      if (token.size() <= q) {
        entity_grams.emplace_back(token);
        continue;
      }
      for (size_t i = 0; i + q <= token.size(); ++i) {
        entity_grams.emplace_back(token.substr(i, q));
      }
    }
    std::sort(entity_grams.begin(), entity_grams.end());
    entity_grams.erase(
        std::unique(entity_grams.begin(), entity_grams.end()),
        entity_grams.end());
    for (const std::string& gram : entity_grams) ++df[gram];
  }

  // Pass 2: keep the rarest grams per entity (they carry the signal), build
  // postings.
  for (const EntityDescription& desc : collection.entities()) {
    entity_grams.clear();
    for (uint32_t tok : desc.tokens) {
      const std::string_view token = collection.tokens().View(tok);
      if (token.size() <= q) {
        entity_grams.emplace_back(token);
        continue;
      }
      for (size_t i = 0; i + q <= token.size(); ++i) {
        entity_grams.emplace_back(token.substr(i, q));
      }
    }
    std::sort(entity_grams.begin(), entity_grams.end());
    entity_grams.erase(
        std::unique(entity_grams.begin(), entity_grams.end()),
        entity_grams.end());
    if (options_.max_grams_per_entity > 0 &&
        entity_grams.size() > options_.max_grams_per_entity) {
      std::partial_sort(
          entity_grams.begin(),
          entity_grams.begin() + options_.max_grams_per_entity,
          entity_grams.end(), [&](const std::string& a, const std::string& b) {
            const uint32_t da = df[a], db = df[b];
            return da != db ? da < db : a < b;  // rarest first
          });
      entity_grams.resize(options_.max_grams_per_entity);
    }
    for (const std::string& gram : entity_grams) {
      postings[gram].push_back(desc.id);
    }
  }

  const uint64_t df_cap = static_cast<uint64_t>(options_.max_df_fraction *
                                                collection.num_entities());
  BlockCollection out;
  // Deterministic order: sorted keys.
  std::vector<std::string> keys;
  keys.reserve(postings.size());
  for (const auto& [key, list] : postings) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    auto& list = postings[key];
    if (list.size() < options_.min_df) continue;
    if (df_cap > 0 && list.size() > df_cap) continue;
    out.AddBlock("g:" + key, std::move(list));
  }
  return out;
}

BlockCollection SortedNeighborhoodBlocking::Build(
    const EntityCollection& collection) const {
  // Build (key, entity) pairs: each entity contributes its rarest tokens.
  std::vector<std::pair<std::string, EntityId>> keyed;
  for (const EntityDescription& desc : collection.entities()) {
    // Tokens sorted by (df, id): rarest first.
    std::vector<uint32_t> toks = desc.tokens;
    std::sort(toks.begin(), toks.end(), [&](uint32_t a, uint32_t b) {
      const uint32_t da = collection.TokenDf(a), db = collection.TokenDf(b);
      return da != db ? da < db : a < b;
    });
    const size_t take =
        std::min<size_t>(options_.keys_per_entity, toks.size());
    for (size_t i = 0; i < take; ++i) {
      keyed.emplace_back(std::string(collection.tokens().View(toks[i])),
                         desc.id);
    }
  }
  std::sort(keyed.begin(), keyed.end());

  BlockCollection out;
  const size_t w = std::max<uint32_t>(2, options_.window_size);
  // Slide a window over the sorted key list; each window is one block.
  std::vector<EntityId> window;
  for (size_t start = 0; start + 1 < keyed.size(); start += w / 2) {
    const size_t end = std::min(keyed.size(), start + w);
    window.clear();
    for (size_t i = start; i < end; ++i) window.push_back(keyed[i].second);
    std::string key = "w:" + keyed[start].first + ":" +
                      std::to_string(start);
    out.AddBlock(key, window);
    if (end == keyed.size()) break;
  }
  return out;
}

}  // namespace minoan
