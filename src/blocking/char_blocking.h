// Copyright 2026 The MinoanER Authors.
// Character-level blocking methods: q-gram blocking and sorted neighborhood.
//
// Token blocking requires an exact shared token; a single typo breaks the
// key. These two classical methods trade more comparisons for robustness to
// character noise:
//   * QGramBlocking keys every description by the q-grams of its tokens, so
//     "heraklion" and "heraklio" still meet in 7 of their 8 trigram blocks;
//   * SortedNeighborhoodBlocking sorts descriptions by each of their tokens
//     and blocks every window of `window_size` consecutive entries, catching
//     near-equal keys that sort adjacently.

#ifndef MINOAN_BLOCKING_CHAR_BLOCKING_H_
#define MINOAN_BLOCKING_CHAR_BLOCKING_H_

#include <cstdint>

#include "blocking/blocking_method.h"

namespace minoan {

/// Blocks keyed by token q-grams.
class QGramBlocking : public BlockingMethod {
 public:
  struct Options {
    uint32_t q = 3;
    /// Tokens shorter than q are used whole (their own key).
    /// Frequency filters as in token blocking.
    double max_df_fraction = 0.05;
    uint32_t min_df = 2;
    /// Cap on distinct q-grams taken per entity (the most discriminative —
    /// i.e. rarest — grams are kept; 0 = unlimited).
    uint32_t max_grams_per_entity = 48;
  };

  QGramBlocking() : options_{} {}
  explicit QGramBlocking(Options options) : options_(options) {}
  std::string_view name() const override { return "qgram"; }
  void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                 BlockSink& sink) const override;

 private:
  Options options_;
};

/// Multi-pass sorted neighborhood over token keys.
class SortedNeighborhoodBlocking : public BlockingMethod {
 public:
  struct Options {
    /// Entities within a sliding window of this size over the sorted key
    /// list land in one block.
    uint32_t window_size = 4;
    /// Number of token keys sampled per entity (its rarest tokens).
    uint32_t keys_per_entity = 3;
  };

  SortedNeighborhoodBlocking() : options_{} {}
  explicit SortedNeighborhoodBlocking(Options options) : options_(options) {}
  std::string_view name() const override { return "sorted-nbhd"; }
  void BuildInto(const EntityCollection& collection, ThreadPool* pool,
                 BlockSink& sink) const override;

 private:
  Options options_;
};

}  // namespace minoan

#endif  // MINOAN_BLOCKING_CHAR_BLOCKING_H_
