#include "blocking/flat_block_store.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <utility>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace minoan {

namespace {

/// Blocks (or entities) per cleaning work chunk — the same constant as
/// block_cleaning.cc's. The chunking never changes results (the folds are
/// chunk-ordered integer sums), it only shapes the parallelism.
constexpr size_t kCleaningChunk = 256;

}  // namespace

void FlatBlockStore::AddBlock(std::vector<EntityId>& entities) {
  std::sort(entities.begin(), entities.end());
  entities.erase(std::unique(entities.begin(), entities.end()),
                 entities.end());
  if (entities.size() < 2) return;
  entities_.insert(entities_.end(), entities.begin(), entities.end());
  offsets_.push_back(entities_.size());
}

uint64_t FlatBlockStore::NumComparisons(uint32_t bi,
                                        const EntityCollection& collection,
                                        ResolutionMode mode) const {
  const std::span<const EntityId> block = entities(bi);
  const uint64_t n = block.size();
  if (mode == ResolutionMode::kDirty) return n * (n - 1) / 2;
  std::vector<std::pair<uint32_t, uint64_t>> kb_counts;
  for (EntityId e : block) {
    const uint32_t kb = collection.entity(e).kb;
    bool found = false;
    for (auto& [k, c] : kb_counts) {
      if (k == kb) {
        ++c;
        found = true;
        break;
      }
    }
    if (!found) kb_counts.emplace_back(kb, 1);
  }
  uint64_t sum_sq = 0;
  for (const auto& [k, c] : kb_counts) sum_sq += c * c;
  return (n * n - sum_sq) / 2;
}

uint64_t FlatBlockStore::AggregateComparisons(
    const EntityCollection& collection, ResolutionMode mode) const {
  uint64_t total = 0;
  for (uint32_t bi = 0; bi < num_blocks(); ++bi) {
    total += NumComparisons(bi, collection, mode);
  }
  return total;
}

std::vector<Comparison> FlatBlockStore::DistinctComparisons(
    const EntityCollection& collection, ResolutionMode mode) const {
  std::unordered_set<uint64_t> seen;
  std::vector<Comparison> out;
  for (uint32_t bi = 0; bi < num_blocks(); ++bi) {
    const std::span<const EntityId> block = entities(bi);
    for (size_t i = 0; i < block.size(); ++i) {
      for (size_t j = i + 1; j < block.size(); ++j) {
        const EntityId x = block[i], y = block[j];
        if (mode == ResolutionMode::kCleanClean && !collection.CrossKb(x, y)) {
          continue;
        }
        if (seen.insert(PairKey(x, y)).second) {
          out.emplace_back(x, y);
        }
      }
    }
  }
  return out;
}

void FlatBlockStore::BuildEntityIndex(uint32_t num_entities) {
  index_offsets_.assign(static_cast<size_t>(num_entities) + 1, 0);
  for (const EntityId e : entities_) ++index_offsets_[e + 1];
  for (size_t i = 1; i < index_offsets_.size(); ++i) {
    index_offsets_[i] += index_offsets_[i - 1];
  }
  index_blocks_.resize(index_offsets_.back());
  std::vector<uint64_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  for (uint32_t bi = 0; bi < num_blocks(); ++bi) {
    for (EntityId e : entities(bi)) {
      index_blocks_[cursor[e]++] = bi;
    }
  }
}

void FlatBlockStore::Replace(std::vector<uint64_t> offsets,
                             std::vector<EntityId> entities) {
  offsets_ = std::move(offsets);
  entities_ = std::move(entities);
  index_offsets_.clear();
  index_blocks_.clear();
}

CleaningStats AutoPurgeFlat(FlatBlockStore& blocks,
                            const EntityCollection& collection,
                            ResolutionMode mode, double smoothing,
                            ThreadPool* pool) {
  CleaningStats stats;
  stats.blocks_before = blocks.num_blocks();
  stats.comparisons_before = blocks.AggregateComparisons(collection, mode);

  // Size -> (comparisons, assignments) histogram, counted per block chunk
  // and folded in chunk order — the AutoPurge histogram verbatim.
  std::vector<std::map<uint64_t, std::pair<uint64_t, uint64_t>>> chunk_sizes(
      NumChunks(blocks.num_blocks(), kCleaningChunk));
  RunChunkedTasks(pool, blocks.num_blocks(), kCleaningChunk,
                  [&](size_t c, size_t begin, size_t end) {
                    for (size_t bi = begin; bi < end; ++bi) {
                      auto& [cmp, assign] =
                          chunk_sizes[c][blocks.block_size(
                              static_cast<uint32_t>(bi))];
                      cmp += blocks.NumComparisons(static_cast<uint32_t>(bi),
                                                   collection, mode);
                      assign += blocks.block_size(static_cast<uint32_t>(bi));
                    }
                  });
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> by_size;
  for (const auto& local : chunk_sizes) {
    for (const auto& [size, totals] : local) {
      auto& [cmp, assign] = by_size[size];
      cmp += totals.first;
      assign += totals.second;
    }
  }
  // The AutoPurge threshold scan, verbatim: purge above the last size where
  // the cumulative comparisons-per-assignment ratio jumps.
  uint64_t max_keep_size = by_size.empty() ? 0 : by_size.rbegin()->first;
  uint64_t cum_cmp = 0, cum_assign = 0;
  double prev_ratio = -1.0;
  uint64_t prev_size = 0;
  for (const auto& [size, totals] : by_size) {
    cum_cmp += totals.first;
    cum_assign += totals.second;
    if (cum_assign == 0) continue;
    const double ratio =
        static_cast<double>(cum_cmp) / static_cast<double>(cum_assign);
    if (prev_ratio >= 0.0 && ratio > smoothing * prev_ratio) {
      max_keep_size = prev_size;  // last jump wins
    }
    prev_ratio = ratio;
    prev_size = size;
  }
  if (max_keep_size == 0 && !by_size.empty()) {
    max_keep_size = by_size.begin()->first;
  }
  blocks.FilterInPlace(
      [&](uint32_t bi) { return blocks.block_size(bi) <= max_keep_size; });
  stats.blocks_after = blocks.num_blocks();
  stats.comparisons_after = blocks.AggregateComparisons(collection, mode);
  return stats;
}

CleaningStats FilterBlocksFlat(FlatBlockStore& blocks, double ratio,
                               const EntityCollection& collection,
                               ResolutionMode mode, ThreadPool* pool) {
  CleaningStats stats;
  stats.blocks_before = blocks.num_blocks();
  stats.comparisons_before = blocks.AggregateComparisons(collection, mode);
  if (ratio <= 0.0 || ratio > 1.0) ratio = 1.0;

  // entity -> indices of its blocks, ascending (same linear scatter as
  // FilterBlocks).
  const uint32_t n = collection.num_entities();
  std::vector<std::vector<uint32_t>> memberships(n);
  for (uint32_t bi = 0; bi < blocks.num_blocks(); ++bi) {
    for (EntityId e : blocks.entities(bi)) {
      memberships[e].push_back(bi);
    }
  }
  // Per entity (chunked): keep the ceil(ratio · |blocks|) smallest blocks
  // by (size, index) — FilterBlocks verbatim.
  std::vector<std::vector<std::pair<uint32_t, EntityId>>> chunk_keeps(
      NumChunks(n, kCleaningChunk));
  RunChunkedTasks(pool, n, kCleaningChunk, [&](size_t c, size_t begin,
                                               size_t end) {
    for (uint32_t e = static_cast<uint32_t>(begin);
         e < static_cast<uint32_t>(end); ++e) {
      auto& mine = memberships[e];
      if (mine.empty()) continue;
      std::sort(mine.begin(), mine.end(), [&](uint32_t x, uint32_t y) {
        const size_t sx = blocks.block_size(x), sy = blocks.block_size(y);
        return sx != sy ? sx < sy : x < y;
      });
      const size_t keep = static_cast<size_t>(
          std::max(1.0, std::ceil(ratio * static_cast<double>(mine.size()))));
      for (size_t i = 0; i < std::min(keep, mine.size()); ++i) {
        chunk_keeps[c].emplace_back(mine[i], e);
      }
    }
  });
  // Scatter in chunk order: ascending-entity retained lists per block.
  std::vector<std::vector<EntityId>> retained(blocks.num_blocks());
  for (auto& chunk : chunk_keeps) {
    for (const auto& [bi, e] : chunk) retained[bi].push_back(e);
    chunk.clear();
    chunk.shrink_to_fit();
  }
  // Rebuild surviving blocks in block order into a fresh CSR.
  std::vector<uint64_t> new_offsets{0};
  std::vector<EntityId> new_entities;
  for (uint32_t bi = 0; bi < blocks.num_blocks(); ++bi) {
    auto& kept = retained[bi];
    if (kept.size() < 2) continue;
    std::sort(kept.begin(), kept.end());
    new_entities.insert(new_entities.end(), kept.begin(), kept.end());
    new_offsets.push_back(new_entities.size());
  }
  blocks.Replace(std::move(new_offsets), std::move(new_entities));
  stats.blocks_after = blocks.num_blocks();
  stats.comparisons_after = blocks.AggregateComparisons(collection, mode);
  return stats;
}

}  // namespace minoan
