// Copyright 2026 The MinoanER Authors.
// FlatBlockStore: the out-of-core pipeline's block representation.
//
// Under a memory budget the BlockCollection is never materialized: blocking
// methods stream their surviving blocks straight into this store, which
// keeps ONLY entity membership — one CSR (offsets + entity ids), no key
// interner, no per-block vector headers. That is the part of a block the
// rest of the pipeline (cleaning, graph view, pruning) actually reads; keys
// exist only for reporting on the in-memory path.
//
// Every operation mirrors its BlockCollection counterpart exactly — same
// normalization (sort, dedup, drop < 2), same comparison counting, same
// CSR entity index, same cleaning algorithms (flat mirrors of AutoPurge /
// FilterBlocks below) — so a budgeted run's block set is bit-identical in
// content and order to the unbudgeted run's, which is what keeps the final
// links and checkpoints byte-identical.

#ifndef MINOAN_BLOCKING_FLAT_BLOCK_STORE_H_
#define MINOAN_BLOCKING_FLAT_BLOCK_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "blocking/block.h"
#include "blocking/block_cleaning.h"
#include "blocking/blocking_method.h"

namespace minoan {

class ThreadPool;

/// Keyless CSR block store. Blocks are appended in emission order and keep
/// that order forever (cleaning filters in place, order-preserving).
class FlatBlockStore {
 public:
  FlatBlockStore() : offsets_{0} {}

  /// Appends one block after BlockCollection::AddBlock's normalization:
  /// `entities` is sorted and deduplicated in place; lists of fewer than 2
  /// entities are dropped.
  void AddBlock(std::vector<EntityId>& entities);

  size_t num_blocks() const { return offsets_.size() - 1; }

  std::span<const EntityId> entities(uint32_t bi) const {
    return std::span<const EntityId>(entities_.data() + offsets_[bi],
                                     offsets_[bi + 1] - offsets_[bi]);
  }
  size_t block_size(uint32_t bi) const {
    return offsets_[bi + 1] - offsets_[bi];
  }

  /// Comparisons induced by block `bi` under `mode` — Block::NumComparisons
  /// verbatim.
  uint64_t NumComparisons(uint32_t bi, const EntityCollection& collection,
                          ResolutionMode mode) const;

  /// Aggregate comparisons over all blocks (with cross-block redundancy).
  uint64_t AggregateComparisons(const EntityCollection& collection,
                                ResolutionMode mode) const;

  /// Distinct comparisons in block order — BlockCollection's enumeration
  /// verbatim (the no-meta-blocking candidate path).
  std::vector<Comparison> DistinctComparisons(
      const EntityCollection& collection, ResolutionMode mode) const;

  /// Builds the entity→block-indices CSR over `num_entities` entities.
  void BuildEntityIndex(uint32_t num_entities);
  bool has_entity_index() const { return !index_offsets_.empty(); }

  /// Block indices containing `e` (requires BuildEntityIndex).
  std::span<const uint32_t> BlocksOf(EntityId e) const {
    return std::span<const uint32_t>(
        index_blocks_.data() + index_offsets_[e],
        index_offsets_[e + 1] - index_offsets_[e]);
  }

  /// Keeps exactly the blocks for which `keep(bi)` is true, in order;
  /// invalidates the entity index.
  template <typename KeepFn>
  void FilterInPlace(const KeepFn& keep) {
    std::vector<uint64_t> new_offsets{0};
    size_t write = 0;
    for (uint32_t bi = 0; bi < num_blocks(); ++bi) {
      if (!keep(bi)) continue;
      const std::span<const EntityId> block = entities(bi);
      std::copy(block.begin(), block.end(), entities_.begin() + write);
      write += block.size();
      new_offsets.push_back(write);
    }
    entities_.resize(write);
    offsets_ = std::move(new_offsets);
    index_offsets_.clear();
    index_blocks_.clear();
  }

  /// Replaces the whole block set; invalidates the entity index.
  void Replace(std::vector<uint64_t> offsets, std::vector<EntityId> entities);

 private:
  std::vector<uint64_t> offsets_;   // offsets_[0] == 0, size = blocks + 1
  std::vector<EntityId> entities_;  // concatenated block entity lists
  std::vector<uint64_t> index_offsets_;
  std::vector<uint32_t> index_blocks_;
};

/// BlockSink writing into a FlatBlockStore (keys ignored).
class FlatStoreSink : public BlockSink {
 public:
  explicit FlatStoreSink(FlatBlockStore& out) : out_(&out) {}
  bool wants_keys() const override { return false; }
  void Add(std::string_view /*key*/,
           std::vector<EntityId>& entities) override {
    out_->AddBlock(entities);
  }

 private:
  FlatBlockStore* out_;
};

/// AutoPurge over a FlatBlockStore: identical size histogram, identical
/// threshold scan, identical survivor set (see block_cleaning.cc).
CleaningStats AutoPurgeFlat(FlatBlockStore& blocks,
                            const EntityCollection& collection,
                            ResolutionMode mode, double smoothing = 1.025,
                            ThreadPool* pool = nullptr);

/// FilterBlocks over a FlatBlockStore: identical per-entity retention and
/// identical rebuilt block contents/order.
CleaningStats FilterBlocksFlat(FlatBlockStore& blocks, double ratio,
                               const EntityCollection& collection,
                               ResolutionMode mode,
                               ThreadPool* pool = nullptr);

}  // namespace minoan

#endif  // MINOAN_BLOCKING_FLAT_BLOCK_STORE_H_
