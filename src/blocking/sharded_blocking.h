// Copyright 2026 The MinoanER Authors.
// The sharded postings core: deterministic parallel inverted-index
// construction shared by every batch blocking method.
//
// This is the front-of-pipeline counterpart of metablocking/sharded_prune.h:
// entities are dealt to workers in fixed-size chunks (constant, independent
// of the worker count), each chunk emits its (key, entity) pairs into a
// fixed number of key-hashed shards, and each shard merges its pairs with a
// stable sort — so equal keys keep chunk order, which IS the sequential scan
// order. A final canonical sort by key yields postings that are
// bit-identical for every thread count, including the inline (no pool)
// path.
//
// With a MemoryBudgetOptions the shard merge runs on the external-memory
// shuffle engine (extmem/shuffle.h): emissions stream through bounded
// per-shard buffers that spill sorted runs to temp files, and the k-way
// merge reader reproduces the exact stable order the in-memory path sorts
// into — the postings are byte-identical with and without spilling.

#ifndef MINOAN_BLOCKING_SHARDED_BLOCKING_H_
#define MINOAN_BLOCKING_SHARDED_BLOCKING_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "extmem/postings_stream.h"
#include "extmem/shuffle.h"
#include "kb/entity.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace minoan {

/// Entities per blocking work chunk. A constant (never derived from the
/// pool size): chunk boundaries define the per-key emission order, so they
/// must not move when the thread count changes.
inline constexpr uint32_t kBlockingChunkEntities = 256;

/// Key-hashed merge shards (power of two, at most 256 — shard ids travel
/// as uint8_t). The shard of a key is a pure function of the key, so the
/// grouping is thread-count independent.
inline constexpr uint32_t kBlockingMergeShards = 64;
static_assert(kBlockingMergeShards <= 256 &&
              (kBlockingMergeShards & (kBlockingMergeShards - 1)) == 0);

/// One merged posting: a blocking key and every entity that emitted it, in
/// sequential scan order (ascending entity id; duplicates preserved when a
/// method emits the same key twice for one entity — BlockCollection's
/// AddBlock dedups downstream, but size filters see the raw count exactly
/// like the sequential implementations did).
template <typename Key>
struct KeyedPosting {
  Key key;
  std::vector<EntityId> entities;
};

/// Phase C of the postings build, shared by the in-memory and spill paths:
/// shards hold disjoint key sets, so one sort by (unique) key fixes the
/// global emission order.
template <typename Key>
std::vector<KeyedPosting<Key>> ConcatenatePostingsSortedByKey(
    std::vector<std::vector<KeyedPosting<Key>>>& shard_out) {
  std::vector<KeyedPosting<Key>> out = FlattenInOrder(shard_out);
  std::sort(out.begin(), out.end(),
            [](const KeyedPosting<Key>& a, const KeyedPosting<Key>& b) {
              return a.key < b.key;
            });
  static obs::Counter& postings =
      obs::MetricsRegistry::Default().counter("blocking.postings");
  postings.Add(out.size());
  return out;
}

/// External-memory variant of the shard merge: emissions are serialized as
/// shuffle records (order-preserving key bytes + the entity id as payload)
/// and pushed through spilling shard sinks; each shard's merged stream is
/// the stable key sort of its arrival order — the exact order the in-memory
/// phase B produces — so the grouped postings carry identical bytes.
template <typename Key, typename EmitFn, typename HashFn>
void SpilledPostingsShards(uint32_t num_entities, ThreadPool* pool,
                           const EmitFn& emit, const HashFn& hash,
                           const extmem::MemoryBudgetOptions& memory,
                           std::vector<std::vector<KeyedPosting<Key>>>&
                               shard_out) {
  static obs::Counter& emissions_counter =
      obs::MetricsRegistry::Default().counter("blocking.emissions");
  extmem::RunSpilledShuffle(
      pool, num_entities, kBlockingChunkEntities, kBlockingMergeShards,
      memory,
      [&](size_t /*chunk*/, size_t begin, size_t end, const auto& route) {
        std::vector<Key> keys;
        std::string record;
        uint64_t emitted = 0;
        for (EntityId e = static_cast<EntityId>(begin);
             e < static_cast<EntityId>(end); ++e) {
          keys.clear();
          emit(e, keys);
          for (const Key& key : keys) {
            extmem::EncodeKey(key, record);
            extmem::AppendU32Le(record, e);
            route(static_cast<uint32_t>(Mix64(hash(key)) &
                                        (kBlockingMergeShards - 1)),
                  record);
            ++emitted;
          }
        }
        emissions_counter.Add(emitted);
      },
      [&](uint32_t s, extmem::ShuffleSource& source) {
        std::string_view record;
        std::string group_key;  // encoded key bytes of the open posting
        KeyedPosting<Key> posting;
        bool open = false;
        while (source.Next(record)) {
          const std::string_view key_bytes = extmem::RecordKey(record);
          if (!open || key_bytes != group_key) {
            if (open) shard_out[s].push_back(std::move(posting));
            posting = KeyedPosting<Key>();
            posting.key = extmem::DecodeKey<Key>(key_bytes);
            group_key.assign(key_bytes.data(), key_bytes.size());
            open = true;
          }
          posting.entities.push_back(
              extmem::ReadU32Le(extmem::RecordPayload(record)));
        }
        if (open) shard_out[s].push_back(std::move(posting));
      });
}

/// Builds the merged postings of `num_entities` entities. `emit(e, keys)`
/// appends entity e's blocking keys to `keys` (cleared by the caller), in
/// the exact order the sequential scan would have produced them. `hash(key)`
/// must be a pure function (only the shard *grouping* depends on it; the
/// output is canonically sorted, so any stable hash yields identical
/// results). Returns postings sorted ascending by key; keys are unique.
/// A non-null `memory` with an enabled budget routes the shard merge through
/// the spill-to-disk engine — byte-identical output, bounded memory.
template <typename Key, typename EmitFn, typename HashFn>
std::vector<KeyedPosting<Key>> BuildShardedPostings(
    uint32_t num_entities, ThreadPool* pool, const EmitFn& emit,
    const HashFn& hash,
    const extmem::MemoryBudgetOptions* memory = nullptr) {
  using Emission = std::pair<Key, EntityId>;

  // Coarse-grained telemetry only: one add per chunk or shard, never per
  // emission — instrumentation must not show up in the hot-path profile.
  static obs::Counter& chunks_counter =
      obs::MetricsRegistry::Default().counter("blocking.chunks");
  static obs::Counter& emissions_counter =
      obs::MetricsRegistry::Default().counter("blocking.emissions");
  static obs::Histogram& shard_records =
      obs::MetricsRegistry::Default().histogram("blocking.shard_records");
  static obs::Histogram& merge_fanin =
      obs::MetricsRegistry::Default().histogram("blocking.merge_fanin");
  chunks_counter.Add(NumChunks(num_entities, kBlockingChunkEntities));

  if (memory != nullptr && memory->enabled()) {
    std::vector<std::vector<KeyedPosting<Key>>> shard_out(
        kBlockingMergeShards);
    SpilledPostingsShards(num_entities, pool, emit, hash, *memory,
                          shard_out);
    return ConcatenatePostingsSortedByKey(shard_out);
  }

  // Phase A: per-chunk scan. Each chunk collects its emissions in scan
  // order, then counting-sorts them by shard in place — one contiguous
  // buffer plus an offset table per chunk instead of 64 separate shard
  // vectors. The stable scatter keeps scan order within each (chunk,
  // shard) slice, which is all phase B relies on.
  struct ChunkShards {
    std::vector<Emission> emissions;  // partitioned by shard, scan order
    std::array<uint32_t, kBlockingMergeShards + 1> offsets;
  };
  std::vector<ChunkShards> chunk_shards(
      NumChunks(num_entities, kBlockingChunkEntities));
  // Per-worker scratch arenas: the emission/key/shard buffers grow once to
  // a chunk's high-water mark and are reused by every later chunk the same
  // worker picks up, instead of reallocating per chunk.
  struct ChunkScratch {
    std::vector<Key> keys;
    std::vector<Emission> emissions;
    std::vector<uint8_t> shard_of;
  };
  WorkerScratch<ChunkScratch> arenas(pool);
  RunChunkedTasks(
      pool, num_entities, kBlockingChunkEntities,
      [&](size_t c, size_t begin, size_t end) {
        ChunkScratch& arena = arenas.Local();
        std::vector<Key>& keys = arena.keys;
        std::vector<Emission>& scratch = arena.emissions;
        std::vector<uint8_t>& shard_of = arena.shard_of;
        scratch.clear();
        shard_of.clear();
        for (EntityId e = static_cast<EntityId>(begin);
             e < static_cast<EntityId>(end); ++e) {
          keys.clear();
          emit(e, keys);
          for (Key& key : keys) {
            shard_of.push_back(static_cast<uint8_t>(
                Mix64(hash(key)) & (kBlockingMergeShards - 1)));
            scratch.emplace_back(std::move(key), e);
          }
        }
        emissions_counter.Add(scratch.size());
        ChunkShards& out = chunk_shards[c];
        out.offsets.fill(0);
        for (const uint8_t s : shard_of) ++out.offsets[s + 1];
        for (size_t s = 1; s < out.offsets.size(); ++s) {
          out.offsets[s] += out.offsets[s - 1];
        }
        std::array<uint32_t, kBlockingMergeShards> cursor;
        std::copy(out.offsets.begin(), out.offsets.end() - 1,
                  cursor.begin());
        out.emissions.resize(scratch.size());
        for (size_t i = 0; i < scratch.size(); ++i) {
          out.emissions[cursor[shard_of[i]]++] = std::move(scratch[i]);
        }
      });

  // Phase B: per-shard merge. Gathering chunk slices in chunk order and
  // stable-sorting by key alone keeps equal-key runs in scan order.
  std::vector<std::vector<KeyedPosting<Key>>> shard_out(kBlockingMergeShards);
  RunPoolTasks(pool, kBlockingMergeShards, [&](size_t s) {
    std::vector<Emission> pairs;
    size_t total = 0;
    size_t contributing_chunks = 0;
    for (const auto& chunk : chunk_shards) {
      const size_t slice = chunk.offsets[s + 1] - chunk.offsets[s];
      total += slice;
      if (slice > 0) ++contributing_chunks;
    }
    shard_records.Record(total);
    merge_fanin.Record(contributing_chunks);
    pairs.reserve(total);
    for (auto& chunk : chunk_shards) {
      const auto begin = chunk.emissions.begin() + chunk.offsets[s];
      const auto end = chunk.emissions.begin() + chunk.offsets[s + 1];
      pairs.insert(pairs.end(), std::make_move_iterator(begin),
                   std::make_move_iterator(end));
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const Emission& a, const Emission& b) {
                       return a.first < b.first;
                     });
    size_t i = 0;
    while (i < pairs.size()) {
      size_t j = i + 1;
      while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
      KeyedPosting<Key> posting;
      posting.entities.reserve(j - i);
      for (size_t t = i; t < j; ++t) {
        posting.entities.push_back(pairs[t].second);
      }
      posting.key = std::move(pairs[i].first);
      shard_out[s].push_back(std::move(posting));
      i = j;
    }
  });

  return ConcatenatePostingsSortedByKey(shard_out);
}

/// Fully streaming variant of BuildShardedPostings: instead of returning a
/// materialized postings vector, the merged postings are delivered one at a
/// time to `consume(key, entities)` in the exact global key order
/// BuildShardedPostings sorts into — without ever holding more than one
/// posting (plus the bounded shard sink buffers) in memory. Emissions
/// stream through the spill engine's shard sinks; the finished shards are
/// k-way-merged by key bytes (keys are shard-disjoint, so the cross-shard
/// merge IS the global key order). `entities` is scratch owned by the loop;
/// consume may steal or mutate it. Counter semantics (blocking.chunks /
/// emissions / postings) match the materializing path.
template <typename Key, typename EmitFn, typename HashFn, typename ConsumeFn>
void StreamShardedPostings(uint32_t num_entities, ThreadPool* pool,
                           const EmitFn& emit, const HashFn& hash,
                           const extmem::MemoryBudgetOptions& memory,
                           const ConsumeFn& consume) {
  static obs::Counter& chunks_counter =
      obs::MetricsRegistry::Default().counter("blocking.chunks");
  static obs::Counter& emissions_counter =
      obs::MetricsRegistry::Default().counter("blocking.emissions");
  static obs::Counter& postings_counter =
      obs::MetricsRegistry::Default().counter("blocking.postings");
  chunks_counter.Add(NumChunks(num_entities, kBlockingChunkEntities));

  extmem::MergedShuffle shuffle(memory, kBlockingMergeShards);
  extmem::ScatterIntoSinks(
      pool, num_entities, kBlockingChunkEntities, kBlockingMergeShards,
      [&](size_t /*chunk*/, size_t begin, size_t end, const auto& route) {
        std::vector<Key> keys;
        std::string record;
        uint64_t emitted = 0;
        for (EntityId e = static_cast<EntityId>(begin);
             e < static_cast<EntityId>(end); ++e) {
          keys.clear();
          emit(e, keys);
          for (const Key& key : keys) {
            extmem::EncodeKey(key, record);
            extmem::AppendU32Le(record, e);
            route(static_cast<uint32_t>(Mix64(hash(key)) &
                                        (kBlockingMergeShards - 1)),
                  record);
            ++emitted;
          }
        }
        emissions_counter.Add(emitted);
      },
      shuffle.sinks());

  extmem::PostingsStream<Key> stream(shuffle.FinishMerged(pool));
  Key key{};
  std::vector<EntityId> entities;
  uint64_t num_postings = 0;
  while (stream.Next(key, entities)) {
    consume(key, entities);
    ++num_postings;
  }
  postings_counter.Add(num_postings);
}

}  // namespace minoan

#endif  // MINOAN_BLOCKING_SHARDED_BLOCKING_H_
