#include "core/minoan_er.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <thread>

#include "core/session.h"
#include "extmem/spill_file.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace minoan {

std::string_view BlockerChoiceName(BlockerChoice choice) {
  switch (choice) {
    case BlockerChoice::kToken:
      return "token";
    case BlockerChoice::kPis:
      return "pis";
    case BlockerChoice::kAttributeClustering:
      return "attr-cluster";
    case BlockerChoice::kTokenPlusPis:
      return "token+pis";
    case BlockerChoice::kQGram:
      return "qgram";
    case BlockerChoice::kSortedNeighborhood:
      return "sorted-nbhd";
  }
  return "?";
}

namespace {

std::string FormatValue(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Status WorkflowOptions::Validate() const {
  if (!std::isfinite(filter_ratio) || filter_ratio <= 0.0 ||
      filter_ratio > 1.0) {
    return Status::InvalidArgument("filter_ratio must be in (0, 1], got " +
                                   FormatValue(filter_ratio) +
                                   " (1 disables filtering)");
  }
  constexpr uint32_t kMaxThreads = 1024;
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads must be in [0, 1024] (0 = hardware concurrency), got " +
        std::to_string(num_threads));
  }
  if (meta.num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "meta.num_threads must be in [0, 1024], got " +
        std::to_string(meta.num_threads));
  }
  if (progressive.num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "progressive.num_threads must be in [0, 1024], got " +
        std::to_string(progressive.num_threads));
  }
  const double threshold = progressive.matcher.threshold;
  if (!std::isfinite(threshold) || threshold < 0.0 || threshold > 1.0) {
    return Status::InvalidArgument(
        "progressive.matcher.threshold must be in [0, 1], got " +
        FormatValue(threshold));
  }
  if (!std::isfinite(progressive.benefit_weight) ||
      progressive.benefit_weight < 0.0) {
    return Status::InvalidArgument(
        "progressive.benefit_weight must be >= 0, got " +
        FormatValue(progressive.benefit_weight));
  }
  const EvidenceOptions& ev = progressive.evidence;
  if (!std::isfinite(ev.increment) || ev.increment < 0.0) {
    return Status::InvalidArgument("evidence.increment must be >= 0, got " +
                                   FormatValue(ev.increment));
  }
  if (!std::isfinite(ev.weight) || ev.weight < 0.0) {
    return Status::InvalidArgument("evidence.weight must be >= 0, got " +
                                   FormatValue(ev.weight));
  }
  if (!std::isfinite(ev.priority) || ev.priority < 0.0) {
    return Status::InvalidArgument("evidence.priority must be >= 0, got " +
                                   FormatValue(ev.priority));
  }
  if (!std::isfinite(ev.staleness_tolerance) || ev.staleness_tolerance < 0.0 ||
      ev.staleness_tolerance > 1.0) {
    return Status::InvalidArgument(
        "evidence.staleness_tolerance must be in [0, 1], got " +
        FormatValue(ev.staleness_tolerance));
  }
  if (!std::isfinite(similarity.tfidf_weight) ||
      similarity.tfidf_weight < 0.0 || similarity.tfidf_weight > 1.0) {
    return Status::InvalidArgument(
        "similarity.tfidf_weight must be in [0, 1], got " +
        FormatValue(similarity.tfidf_weight));
  }
  return Status::Ok();
}

std::unique_ptr<BlockingMethod> MakeWorkflowBlocker(
    const WorkflowOptions& options) {
  std::unique_ptr<BlockingMethod> blocker;
  switch (options.blocker) {
    case BlockerChoice::kToken:
      blocker = std::make_unique<TokenBlocking>(options.token_options);
      break;
    case BlockerChoice::kPis:
      blocker = std::make_unique<PisBlocking>(options.pis_options);
      break;
    case BlockerChoice::kAttributeClustering:
      blocker = std::make_unique<AttributeClusteringBlocking>(
          options.attr_options);
      break;
    case BlockerChoice::kTokenPlusPis: {
      std::vector<std::unique_ptr<BlockingMethod>> methods;
      methods.push_back(
          std::make_unique<TokenBlocking>(options.token_options));
      methods.push_back(std::make_unique<PisBlocking>(options.pis_options));
      blocker = std::make_unique<CompositeBlocking>(std::move(methods));
      break;
    }
    case BlockerChoice::kQGram:
      blocker = std::make_unique<QGramBlocking>(options.qgram_options);
      break;
    case BlockerChoice::kSortedNeighborhood:
      blocker = std::make_unique<SortedNeighborhoodBlocking>(
          options.sn_options);
      break;
  }
  if (blocker == nullptr) {
    blocker = std::make_unique<TokenBlocking>(options.token_options);
  }
  blocker->set_memory_budget(options.memory);
  return blocker;
}

Result<BlockCollection> MinoanEr::BuildBlocks(
    const EntityCollection& collection) const {
  const uint32_t threads = ResolveThreadCount(options_.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(
        threads, ThreadPoolOptions{options_.pin_threads});
  }
  try {
    BlockCollection blocks =
        MakeWorkflowBlocker(options_)->Build(collection, pool.get());
    if (options_.auto_purge) {
      AutoPurge(blocks, collection, options_.meta.mode, /*smoothing=*/1.025,
                pool.get());
    }
    if (options_.filter_ratio > 0.0 && options_.filter_ratio < 1.0) {
      FilterBlocks(blocks, options_.filter_ratio, collection,
                   options_.meta.mode, pool.get());
    }
    return blocks;
  } catch (const extmem::SpillError& e) {
    return Status::IoError(e.what());
  }
}

Result<ResolutionReport> MinoanEr::Run(
    const EntityCollection& collection) const {
  // The one-shot workflow is a degenerate session: open, spend the whole
  // budget in one step, assemble the report.
  MINOAN_ASSIGN_OR_RETURN(ResolutionSession session,
                          ResolutionSession::Open(collection, options_));
  session.Step(0);
  ResolutionReport report = session.Report();
  MINOAN_LOG(kInfo) << "MinoanER run: " << report.progressive.run.matches.size()
                    << " matches in "
                    << report.progressive.run.comparisons_executed
                    << " comparisons";
  return report;
}

std::string ResolutionReport::Summary() const {
  Table table({"phase", "ms", "output"});
  for (const PhaseStats& p : phases) {
    table.AddRow().Cell(p.name).Cell(p.millis, 2).Cell(p.output_cardinality);
  }
  std::ostringstream os;
  table.Print(os);
  os << "comparisons: " << comparisons_before_meta << " (aggregate) -> "
     << comparisons_after_meta << " (retained)\n"
     << "matches: " << progressive.run.matches.size()
     << ", discovered-by-update: " << progressive.discovered_matches
     << ", evidence-assisted: " << progressive.evidence_assisted_matches
     << "\n";
  return os.str();
}

}  // namespace minoan
