#include "core/minoan_er.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <thread>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace minoan {

std::string_view BlockerChoiceName(BlockerChoice choice) {
  switch (choice) {
    case BlockerChoice::kToken:
      return "token";
    case BlockerChoice::kPis:
      return "pis";
    case BlockerChoice::kAttributeClustering:
      return "attr-cluster";
    case BlockerChoice::kTokenPlusPis:
      return "token+pis";
  }
  return "?";
}

std::unique_ptr<BlockingMethod> MinoanEr::MakeBlocker() const {
  switch (options_.blocker) {
    case BlockerChoice::kToken:
      return std::make_unique<TokenBlocking>(options_.token_options);
    case BlockerChoice::kPis:
      return std::make_unique<PisBlocking>(options_.pis_options);
    case BlockerChoice::kAttributeClustering:
      return std::make_unique<AttributeClusteringBlocking>(
          options_.attr_options);
    case BlockerChoice::kTokenPlusPis: {
      std::vector<std::unique_ptr<BlockingMethod>> methods;
      methods.push_back(
          std::make_unique<TokenBlocking>(options_.token_options));
      methods.push_back(std::make_unique<PisBlocking>(options_.pis_options));
      return std::make_unique<CompositeBlocking>(std::move(methods));
    }
  }
  return std::make_unique<TokenBlocking>(options_.token_options);
}

BlockCollection MinoanEr::BuildBlocks(
    const EntityCollection& collection) const {
  BlockCollection blocks = MakeBlocker()->Build(collection);
  if (options_.auto_purge) {
    AutoPurge(blocks, collection, options_.meta.mode);
  }
  if (options_.filter_ratio > 0.0 && options_.filter_ratio < 1.0) {
    FilterBlocks(blocks, options_.filter_ratio, collection,
                 options_.meta.mode);
  }
  return blocks;
}

Result<ResolutionReport> MinoanEr::Run(
    const EntityCollection& collection) const {
  if (!collection.finalized()) {
    return Status::FailedPrecondition("collection not finalized");
  }
  ResolutionReport report;
  Stopwatch watch;

  // ---- Blocking + cleaning ----------------------------------------------
  watch.Restart();
  BlockCollection raw = MakeBlocker()->Build(collection);
  report.blocks_built = raw.num_blocks();
  report.phases.push_back(
      {"blocking", watch.ElapsedMillis(), report.blocks_built});

  watch.Restart();
  if (options_.auto_purge) {
    AutoPurge(raw, collection, options_.meta.mode);
  }
  if (options_.filter_ratio > 0.0 && options_.filter_ratio < 1.0) {
    FilterBlocks(raw, options_.filter_ratio, collection, options_.meta.mode);
  }
  report.blocks_after_cleaning = raw.num_blocks();
  report.comparisons_before_meta =
      raw.AggregateComparisons(collection, options_.meta.mode);
  report.phases.push_back(
      {"block-cleaning", watch.ElapsedMillis(), report.blocks_after_cleaning});

  // Fan the workflow-wide thread count out to phases left at their default.
  MetaBlockingOptions meta_options = options_.meta;
  if (options_.num_threads != 1 && meta_options.num_threads == 1) {
    meta_options.num_threads = options_.num_threads;
  }
  ProgressiveOptions progressive_options = options_.progressive;
  if (options_.num_threads != 1 && progressive_options.num_threads == 1) {
    progressive_options.num_threads = options_.num_threads;
  }
  // One pool serves every parallel phase of this run (thread spawn/join is
  // per-run overhead, not per-phase). Phases that stay at num_threads == 1
  // keep running inline — with identical results either way.
  const auto resolve_threads = [](uint32_t t) {
    return t == 0 ? std::max(1u, std::thread::hardware_concurrency()) : t;
  };
  const uint32_t meta_threads = resolve_threads(meta_options.num_threads);
  const uint32_t prog_threads =
      resolve_threads(progressive_options.num_threads);
  std::optional<ThreadPool> pool;
  if (std::max(meta_threads, prog_threads) > 1) {
    pool.emplace(std::max(meta_threads, prog_threads));
  }

  // ---- Meta-blocking ------------------------------------------------------
  watch.Restart();
  std::vector<WeightedComparison> candidates;
  if (options_.enable_meta_blocking) {
    MetaBlocking meta(meta_options);
    candidates = pool && meta_threads > 1
                     ? meta.Prune(raw, collection, *pool, &report.meta_stats)
                     : meta.Prune(raw, collection, &report.meta_stats);
  } else {
    // Distinct comparisons with CBS weights (no pruning).
    raw.BuildEntityIndex(collection.num_entities());
    for (const Comparison& c :
         raw.DistinctComparisons(collection, options_.meta.mode)) {
      candidates.push_back({c.a, c.b, 1.0});
    }
  }
  report.comparisons_after_meta = candidates.size();
  report.phases.push_back(
      {"meta-blocking", watch.ElapsedMillis(), candidates.size()});

  // ---- Scheduling / Matching / Update loop -------------------------------
  watch.Restart();
  const NeighborGraph graph(collection);
  const SimilarityEvaluator evaluator(collection, options_.similarity);
  report.phases.push_back(
      {"graph+evaluator", watch.ElapsedMillis(), graph.num_edges()});

  watch.Restart();
  ProgressiveResolver resolver(collection, graph, evaluator,
                               progressive_options,
                               pool ? &*pool : nullptr);
  if (options_.use_same_as_seeds && !collection.same_as_links().empty()) {
    std::vector<Comparison> seeds;
    seeds.reserve(collection.same_as_links().size());
    for (const SameAsLink& link : collection.same_as_links()) {
      seeds.emplace_back(link.a, link.b);
    }
    report.progressive = resolver.ResolveWithSeeds(candidates, seeds);
  } else {
    report.progressive = resolver.Resolve(candidates);
  }
  report.phases.push_back({"progressive-resolution", watch.ElapsedMillis(),
                           report.progressive.run.matches.size()});

  MINOAN_LOG(kInfo) << "MinoanER run: " << report.progressive.run.matches.size()
                    << " matches in "
                    << report.progressive.run.comparisons_executed
                    << " comparisons";
  return report;
}

std::string ResolutionReport::Summary() const {
  Table table({"phase", "ms", "output"});
  for (const PhaseStats& p : phases) {
    table.AddRow().Cell(p.name).Cell(p.millis, 2).Cell(p.output_cardinality);
  }
  std::ostringstream os;
  table.Print(os);
  os << "comparisons: " << comparisons_before_meta << " (aggregate) -> "
     << comparisons_after_meta << " (retained)\n"
     << "matches: " << progressive.run.matches.size()
     << ", discovered-by-update: " << progressive.discovered_matches
     << ", evidence-assisted: " << progressive.evidence_assisted_matches
     << "\n";
  return os.str();
}

}  // namespace minoan
