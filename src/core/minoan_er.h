// Copyright 2026 The MinoanER Authors.
// The MinoanER facade: the end-to-end pipeline of Figure 1.
//
//   Blocking → (block cleaning) → Meta-blocking → Scheduling → Entity
//   Matching → Update → … until the cost budget is consumed.
//
// One call to MinoanEr::Run executes the whole workflow over a finalized
// EntityCollection and returns a ResolutionReport with per-phase counters,
// timings, and the full progressive run (for evaluation).

#ifndef MINOAN_CORE_MINOAN_ER_H_
#define MINOAN_CORE_MINOAN_ER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blocking/block.h"
#include "blocking/block_cleaning.h"
#include "blocking/blocking_method.h"
#include "blocking/char_blocking.h"
#include "extmem/memory_budget.h"
#include "kb/collection.h"
#include "kb/neighbor_graph.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "progressive/resolver.h"
#include "util/status.h"

namespace minoan {

/// Which blocking method(s) the workflow starts from.
enum class BlockerChoice {
  kToken = 0,
  kPis = 1,
  kAttributeClustering = 2,
  kTokenPlusPis = 3,  ///< MinoanER's Web-of-Data default
  kQGram = 4,
  kSortedNeighborhood = 5,
};

std::string_view BlockerChoiceName(BlockerChoice choice);

/// Observability knobs. Out-of-band by contract: these settings are
/// deliberately EXCLUDED from the session options digest, so a checkpoint
/// taken with tracing on restores under any observability configuration —
/// instrumentation never shapes (or gates) the resolution trajectory.
struct ObsOptions {
  /// Record phase spans into a TraceRecorder for Chrome-trace export
  /// (ResolutionSession::WriteTraceJson). Off by default.
  bool enable_trace = false;
  /// Progressive-quality sampling cadence in comparisons (0 = off): every N
  /// executed comparisons the session records one (comparisons, matches,
  /// elapsed) point of the paper's quality curve.
  uint64_t progress_every = 0;
};

/// Full workflow configuration with Web-of-Data defaults.
struct WorkflowOptions {
  BlockerChoice blocker = BlockerChoice::kTokenPlusPis;
  TokenBlocking::Options token_options;
  PisBlocking::Options pis_options;
  AttributeClusteringBlocking::Options attr_options;
  QGramBlocking::Options qgram_options;
  SortedNeighborhoodBlocking::Options sn_options;

  /// Block cleaning between blocking and meta-blocking.
  bool auto_purge = true;
  /// Block-filtering ratio in (0, 1]; exactly 1 disables filtering.
  /// Values outside (0, 1] are rejected by Validate().
  double filter_ratio = 0.8;

  bool enable_meta_blocking = true;
  MetaBlockingOptions meta;

  SimilarityOptions similarity;
  ProgressiveOptions progressive;

  /// Treat the collection's existing owl:sameAs interlinks as trusted
  /// warm-start seeds: they enter the resolution state at zero budget cost
  /// and their neighborhoods gain evidence before matching starts.
  bool use_same_as_seeds = false;

  /// Workflow-wide external-memory budget: fans out to the blocking
  /// postings shuffle and (when meta.memory is left disabled) the
  /// meta-blocking vote shards. Disabled by default; when enabled, both
  /// shuffles spill sorted runs to temp files under
  /// `memory.shuffle_budget_bytes` and the results are byte-identical to
  /// the in-memory path. CLI: --memory-budget / --spill-dir.
  extmem::MemoryBudgetOptions memory;

  /// Workflow-wide worker-thread count: fans out to blocking (inverted-index
  /// construction), graph-view construction, meta-blocking pruning, and the
  /// initial candidate-scoring pass, and is applied to every phase that
  /// still has its own knob at the default (meta.num_threads,
  /// progressive.num_threads). 1 = single-threaded (default), 0 = hardware
  /// concurrency. Every phase is deterministic in the thread count, so the
  /// report is identical for every value.
  uint32_t num_threads = 1;

  /// Pin pool workers to CPU cores (Linux; no-op elsewhere) so per-worker
  /// scratch stays in one core's cache. CLI: --pin-threads. A placement
  /// hint like num_threads: results are identical either way, so it is
  /// excluded from the checkpoint options digest.
  bool pin_threads = false;

  /// Observability (phase tracing, progress sampling). Never part of the
  /// checkpoint options digest; see ObsOptions.
  ObsOptions obs;

  /// Range-checks every knob and returns the first violation with a
  /// specific message (e.g. "filter_ratio must be in (0, 1], got -2").
  /// Called by ResolutionSession::Open and the CLI; library users building
  /// options programmatically should call it too.
  Status Validate() const;
};

/// Instantiates the configured blocking method(s) for one workflow run.
std::unique_ptr<BlockingMethod> MakeWorkflowBlocker(
    const WorkflowOptions& options);

/// Wall-time and cardinality accounting per pipeline phase.
struct PhaseStats {
  std::string name;
  double millis = 0.0;
  uint64_t output_cardinality = 0;  // blocks / comparisons / matches
};

/// Everything one run produces.
struct ResolutionReport {
  std::vector<PhaseStats> phases;
  uint64_t blocks_built = 0;
  uint64_t blocks_after_cleaning = 0;
  uint64_t comparisons_before_meta = 0;  // aggregate cardinality
  uint64_t comparisons_after_meta = 0;   // retained distinct pairs
  MetaBlockingStats meta_stats;
  ProgressiveResult progressive;

  /// Merged metrics-registry snapshot at report time (spill counters,
  /// blocking/prune shard telemetry, online counters — whatever ran).
  obs::StatsSnapshot metrics;
  /// Progressive-quality curve samples (empty unless obs.progress_every
  /// was set).
  std::vector<obs::ProgressSample> progress;

  /// Pretty-prints the per-phase summary.
  std::string Summary() const;
};

/// The one-shot pipeline driver: a thin wrapper over ResolutionSession
/// (Open + Step to exhaustion + Report). Reusable across collections;
/// stateless between runs. For budgeted stepping, streaming output, or
/// checkpoint/restore, use ResolutionSession (core/session.h) directly.
class MinoanEr {
 public:
  explicit MinoanEr(WorkflowOptions options) : options_(options) {}
  MinoanEr() : options_{} {}

  /// Runs the full workflow. The collection must be finalized.
  Result<ResolutionReport> Run(const EntityCollection& collection) const;

  /// Phase 1 only: build + clean blocks (exposed for tooling and tests).
  /// A spill failure under an external-memory budget surfaces as IoError,
  /// matching Run/Open.
  Result<BlockCollection> BuildBlocks(const EntityCollection& collection)
      const;

  const WorkflowOptions& options() const { return options_; }

 private:
  WorkflowOptions options_;
};

}  // namespace minoan

#endif  // MINOAN_CORE_MINOAN_ER_H_
