#include "core/online_session.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <istream>
#include <ostream>
#include <sstream>

#include "matching/matcher.h"
#include "rdf/turtle.h"

namespace minoan {

namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream stream(line);
  std::string word;
  while (stream >> word) words.push_back(std::move(word));
  return words;
}

/// Strict decimal parse for script operands; scripts are untrusted input,
/// so malformed numbers must surface as Status, not exceptions.
Result<uint64_t> ParseCount(const std::string& word) {
  if (word.empty() || word.size() > 18) {
    return Status::InvalidArgument("not a number: " + word);
  }
  uint64_t value = 0;
  for (const char c : word) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("not a number: " + word);
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

OnlineSession::OnlineSession(online::OnlineOptions options)
    : resolver_(options) {}

Result<uint32_t> OnlineSession::AddSource(
    const std::string& name, const std::vector<rdf::Triple>& triples) {
  if (source_by_name_.count(name) > 0) {
    return Status::AlreadyExists("source already registered: " + name);
  }
  Source source;
  source.name = name;
  source.kb_id = resolver_.EnsureKb(name);

  source.entities = online::GroupBySubject(triples);

  const uint32_t id = static_cast<uint32_t>(sources_.size());
  source_by_name_.emplace(name, id);
  sources_.push_back(std::move(source));
  return id;
}

Result<uint32_t> OnlineSession::AddSourceFile(const std::string& path) {
  MINOAN_ASSIGN_OR_RETURN(std::vector<rdf::Triple> triples,
                          rdf::LoadTriples(path));
  // Name sources by file stem; fall back to the full filename when two
  // files share a stem (data.nt + data.ttl in one directory).
  const std::string stem = std::filesystem::path(path).stem().string();
  if (source_by_name_.count(stem) == 0) return AddSource(stem, triples);
  return AddSource(std::filesystem::path(path).filename().string(), triples);
}

Result<uint32_t> OnlineSession::IngestNext(uint32_t s, uint32_t count) {
  if (s >= sources_.size()) {
    return Status::InvalidArgument("unknown source index");
  }
  Source& source = sources_[s];
  uint32_t ingested = 0;
  while (ingested < count && source.next < source.entities.size()) {
    auto result = resolver_.Ingest(source.kb_id,
                                   source.entities[source.next]);
    MINOAN_RETURN_IF_ERROR(result.status());
    ++source.next;
    ++ingested;
  }
  return ingested;
}

Status OnlineSession::RunCommand(const std::string& line, std::ostream& out) {
  const std::vector<std::string> words = SplitWords(line);
  if (words.empty() || words[0][0] == '#') return Status::Ok();
  const std::string& cmd = words[0];
  char buf[256];

  if (cmd == "ingest") {
    if (words.size() < 2) {
      return Status::InvalidArgument("ingest needs a source name or '*'");
    }
    uint32_t count = ~0u;
    if (words.size() >= 3 && words[2] != "all") {
      MINOAN_ASSIGN_OR_RETURN(const uint64_t parsed, ParseCount(words[2]));
      count = static_cast<uint32_t>(std::min<uint64_t>(parsed, ~0u));
    }
    const uint64_t candidates_before = resolver_.candidate_pairs_created();
    uint32_t ingested = 0;
    for (uint32_t s = 0; s < sources_.size(); ++s) {
      if (words[1] != "*" && sources_[s].name != words[1]) continue;
      MINOAN_ASSIGN_OR_RETURN(const uint32_t n,
                              IngestNext(s, count - ingested));
      ingested += n;
      if (words[1] != "*") break;
    }
    if (words[1] != "*" && source_by_name_.count(words[1]) == 0) {
      return Status::NotFound("unknown source: " + words[1]);
    }
    std::snprintf(buf, sizeof(buf),
                  "ingest %-14s +%u entities (%u total), +%llu candidates",
                  words[1].c_str(), ingested,
                  resolver_.collection().num_entities(),
                  static_cast<unsigned long long>(
                      resolver_.candidate_pairs_created() -
                      candidates_before));
    out << buf << "\n";
    return Status::Ok();
  }

  if (cmd == "resolve") {
    if (words.size() < 2) return Status::InvalidArgument("resolve needs n");
    MINOAN_ASSIGN_OR_RETURN(const uint64_t budget, ParseCount(words[1]));
    const online::OnlineStepResult step = resolver_.ResolveBudget(budget);
    std::snprintf(buf, sizeof(buf),
                  "resolve %-13llu compared %llu, +%zu matches (%zu total)%s",
                  static_cast<unsigned long long>(budget),
                  static_cast<unsigned long long>(step.comparisons),
                  step.matches.size(), resolver_.run().matches.size(),
                  step.exhausted ? " [queue drained]" : "");
    out << buf << "\n";
    return Status::Ok();
  }

  if (cmd == "query") {
    if (words.size() < 2) return Status::InvalidArgument("query needs an IRI");
    uint32_t k = 5;
    if (words.size() >= 3) {
      MINOAN_ASSIGN_OR_RETURN(const uint64_t parsed, ParseCount(words[2]));
      k = static_cast<uint32_t>(std::min<uint64_t>(parsed, ~0u));
    }
    const EntityId id = resolver_.collection().FindByIri(words[1]);
    if (id == kInvalidEntity) {
      return Status::NotFound("unknown entity IRI: " + words[1]);
    }
    const auto candidates = resolver_.Query(id, k);
    out << "query " << words[1] << " top-" << k << ":\n";
    for (size_t i = 0; i < candidates.size(); ++i) {
      // Stream the IRI (LOD IRIs routinely exceed any fixed buffer); only
      // the similarity needs printf formatting.
      std::snprintf(buf, sizeof(buf), "%.4f", candidates[i].similarity);
      out << "  " << (i + 1) << ". <"
          << resolver_.collection().EntityIri(candidates[i].id)
          << "> sim=" << buf << (candidates[i].matched ? " [matched]" : "")
          << "\n";
    }
    if (candidates.empty()) out << "  (no candidates)\n";
    return Status::Ok();
  }

  if (cmd == "stats") {
    std::snprintf(
        buf, sizeof(buf),
        "stats                entities=%u kbs=%u pending=%zu compared=%llu "
        "matches=%zu discovered=%llu",
        resolver_.collection().num_entities(),
        resolver_.collection().num_kbs(), resolver_.pending_comparisons(),
        static_cast<unsigned long long>(resolver_.run().comparisons_executed),
        resolver_.run().matches.size(),
        static_cast<unsigned long long>(resolver_.discovered_pairs()));
    out << buf << "\n";
    return Status::Ok();
  }

  if (cmd == "links") {
    const auto links = UniqueMappingClustering(resolver_.run().matches,
                                               resolver_.collection());
    out << "links " << links.size() << ":\n";
    for (const MatchEvent& m : links) {
      out << "  <" << resolver_.collection().EntityIri(m.a) << "> <"
          << resolver_.collection().EntityIri(m.b) << ">\n";
    }
    return Status::Ok();
  }

  return Status::InvalidArgument("unknown script command: " + cmd);
}

Status OnlineSession::RunScript(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    MINOAN_RETURN_IF_ERROR(RunCommand(line, out));
  }
  return Status::Ok();
}

}  // namespace minoan
