// Copyright 2026 The MinoanER Authors.
// OnlineSession: the core facade over the online subsystem.
//
// Wires an OnlineResolver to RDF sources and drives it with a tiny
// deterministic command script — the serve-style entry point of
// `minoan online`. Sources are registered up front (one KB per file/feed);
// their entities are grouped by subject in first-appearance order and wait
// in a queue until an `ingest` command streams them into the resolver. This
// replays any interleaving of ingest / resolve / query traffic exactly,
// which is what makes online behavior testable and benchmarkable.
//
// Script grammar (one command per line, '#' starts a comment):
//
//   ingest <source|*> [count|all]   stream the next `count` queued entities
//   resolve <n>                     spend n comparisons now
//   query <iri> [k]                 top-k candidates for one entity
//   stats                           one-line engine summary
//   links                           print resolved clusters as sameAs pairs

#ifndef MINOAN_CORE_ONLINE_SESSION_H_
#define MINOAN_CORE_ONLINE_SESSION_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "online/online_resolver.h"
#include "rdf/term.h"
#include "util/status.h"

namespace minoan {

class OnlineSession {
 public:
  explicit OnlineSession(online::OnlineOptions options = {});

  /// Registers a source KB whose entities await ingestion. Triples are
  /// grouped by subject (first-appearance order preserved). Returns the
  /// source index.
  Result<uint32_t> AddSource(const std::string& name,
                             const std::vector<rdf::Triple>& triples);

  /// Loads one .nt/.ttl file as a source named after its stem.
  Result<uint32_t> AddSourceFile(const std::string& path);

  size_t num_sources() const { return sources_.size(); }
  const std::string& source_name(uint32_t s) const {
    return sources_[s].name;
  }
  /// Entities of source `s` not yet ingested.
  size_t PendingEntities(uint32_t s) const {
    return sources_[s].entities.size() - sources_[s].next;
  }

  /// Ingests up to `count` queued entities of source `s`; returns how many
  /// were actually ingested.
  Result<uint32_t> IngestNext(uint32_t s, uint32_t count);

  /// Executes a command script, writing one output line per command.
  Status RunScript(std::istream& in, std::ostream& out);

  online::OnlineResolver& resolver() { return resolver_; }
  const online::OnlineResolver& resolver() const { return resolver_; }

 private:
  struct Source {
    std::string name;
    uint32_t kb_id = 0;
    std::vector<std::vector<rdf::Triple>> entities;  // grouped by subject
    size_t next = 0;
  };

  Status RunCommand(const std::string& line, std::ostream& out);

  online::OnlineResolver resolver_;
  std::vector<Source> sources_;
  std::unordered_map<std::string, uint32_t> source_by_name_;
};

}  // namespace minoan

#endif  // MINOAN_CORE_ONLINE_SESSION_H_
