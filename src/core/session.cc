#include "core/session.h"

#include <algorithm>
#include <bit>
#include <string>
#include <thread>
#include <vector>

#include "blocking/flat_block_store.h"
#include "extmem/spill_file.h"
#include "kb/neighbor_graph.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking.h"
#include "obs/metrics.h"
#include "progressive/resolver.h"
#include "util/hash.h"
#include "util/serde.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace minoan {

namespace {

/// Format tag of the serialized session; bump on layout changes.
constexpr std::string_view kSessionMagic = "MNER-SESS-v1";

/// Fans the workflow-wide thread count out to phases left at their default,
/// exactly as the legacy one-shot Run did. The workflow memory budget fans
/// out the same way: a phase-level meta.memory wins when set.
MetaBlockingOptions EffectiveMetaOptions(const WorkflowOptions& options) {
  MetaBlockingOptions meta = options.meta;
  if (options.num_threads != 1 && meta.num_threads == 1) {
    meta.num_threads = options.num_threads;
  }
  if (options.memory.enabled() && !meta.memory.enabled()) {
    meta.memory = options.memory;
  }
  return meta;
}

ProgressiveOptions EffectiveProgressiveOptions(const WorkflowOptions& options) {
  ProgressiveOptions progressive = options.progressive;
  if (options.num_threads != 1 && progressive.num_threads == 1) {
    progressive.num_threads = options.num_threads;
  }
  return progressive;
}

uint64_t Mix(uint64_t seed, uint64_t v) { return HashCombine(seed, v); }
uint64_t Mix(uint64_t seed, double v) {
  return HashCombine(seed, std::bit_cast<uint64_t>(v));
}

/// Digest of every option that shapes the resolution trajectory; a restored
/// session must step identically to the checkpointing one, so mismatched
/// options are rejected instead of silently diverging.
uint64_t OptionsDigest(const WorkflowOptions& o) {
  uint64_t h = Fnv1a64("minoan-workflow-options");
  h = Mix(h, static_cast<uint64_t>(o.blocker));
  h = Mix(h, static_cast<uint64_t>(o.auto_purge));
  h = Mix(h, o.filter_ratio);
  h = Mix(h, static_cast<uint64_t>(o.enable_meta_blocking));
  h = Mix(h, static_cast<uint64_t>(o.meta.weighting));
  h = Mix(h, static_cast<uint64_t>(o.meta.pruning));
  h = Mix(h, static_cast<uint64_t>(o.meta.reciprocal));
  h = Mix(h, static_cast<uint64_t>(o.meta.mode));
  h = Mix(h, o.similarity.tfidf_weight);
  h = Mix(h, static_cast<uint64_t>(o.similarity.use_tfidf));
  h = Mix(h, static_cast<uint64_t>(o.progressive.benefit));
  h = Mix(h, o.progressive.benefit_weight);
  h = Mix(h, o.progressive.matcher.threshold);
  h = Mix(h, o.progressive.matcher.budget);
  h = Mix(h, static_cast<uint64_t>(o.progressive.enable_update_phase));
  h = Mix(h, o.progressive.evidence.increment);
  h = Mix(h, o.progressive.evidence.weight);
  h = Mix(h, o.progressive.evidence.priority);
  h = Mix(h, static_cast<uint64_t>(
                 o.progressive.evidence.max_neighbors_per_side));
  h = Mix(h, o.progressive.evidence.staleness_tolerance);
  h = Mix(h, static_cast<uint64_t>(o.progressive.mode));
  h = Mix(h, static_cast<uint64_t>(o.use_same_as_seeds));
  // Deliberately excluded: num_threads, pin_threads, memory, obs — pure
  // execution hints that never change the trajectory.
  return h;
}

}  // namespace

struct ResolutionSession::Impl {
  const EntityCollection* collection = nullptr;
  WorkflowOptions options;
  MatchObserver* observer = nullptr;

  // Static-phase products and accounting (fixed once Open returns).
  std::vector<PhaseStats> phases;
  uint64_t blocks_built = 0;
  uint64_t blocks_after_cleaning = 0;
  uint64_t comparisons_before_meta = 0;
  uint64_t comparisons_after_meta = 0;
  MetaBlockingStats meta_stats;

  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<NeighborGraph> graph;
  std::unique_ptr<SimilarityEvaluator> evaluator;
  std::unique_ptr<ProgressiveResolver> resolver;

  /// Accumulated wall time of Begin + every Step (the dynamic phase).
  double resolve_millis = 0.0;

  // Observability (out-of-band: none of this is checkpointed or digested).
  std::unique_ptr<obs::TraceRecorder> trace;  // null unless obs.enable_trace
  obs::ProgressMeter progress;

  void EmitPhase(PhaseStats phase) {
    if (observer != nullptr) observer->OnPhase(phase);
    phases.push_back(std::move(phase));
  }

  /// Rebuilds the deterministic resolution substrate (graph, evaluator,
  /// pool, resolver) shared by Open and Restore. The schedule itself comes
  /// from Begin (Open) or LoadState (Restore).
  void BuildResolutionSubstrate() {
    const ProgressiveOptions progressive =
        EffectiveProgressiveOptions(options);
    const uint32_t meta_threads =
        ResolveThreadCount(EffectiveMetaOptions(options).num_threads);
    const uint32_t prog_threads =
        ResolveThreadCount(progressive.num_threads);
    if (pool == nullptr && std::max(meta_threads, prog_threads) > 1) {
      pool = std::make_unique<ThreadPool>(
          std::max(meta_threads, prog_threads),
          ThreadPoolOptions{options.pin_threads});
    }
    graph = std::make_unique<NeighborGraph>(*collection);
    evaluator =
        std::make_unique<SimilarityEvaluator>(*collection, options.similarity);
    resolver = std::make_unique<ProgressiveResolver>(
        *collection, *graph, *evaluator, progressive, pool.get());
    if (observer != nullptr) {
      resolver->set_match_callback(
          [sink = observer](const MatchEvent& m) { sink->OnMatch(m); });
    }
    progress.Configure(options.obs.progress_every);
    if (progress.enabled()) {
      resolver->set_progress_meter(&progress);
    }
  }
};

ResolutionSession::ResolutionSession(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ResolutionSession::ResolutionSession(ResolutionSession&&) noexcept = default;
ResolutionSession& ResolutionSession::operator=(ResolutionSession&&) noexcept =
    default;
ResolutionSession::~ResolutionSession() = default;

Result<ResolutionSession> ResolutionSession::Open(
    const EntityCollection& collection, const WorkflowOptions& options,
    MatchObserver* observer) {
  MINOAN_RETURN_IF_ERROR(options.Validate());
  if (!collection.finalized()) {
    return Status::FailedPrecondition("collection not finalized");
  }
  auto impl = std::make_unique<Impl>();
  impl->collection = &collection;
  impl->options = options;
  impl->observer = observer;
  if (options.obs.enable_trace) {
    impl->trace = std::make_unique<obs::TraceRecorder>();
  }
  // The "open" span nests every static-phase span recorded below.
  obs::PhaseSpan open_span(impl->trace.get(), "open");
  Stopwatch watch;

  // One pool serves every parallel phase of this session (thread spawn/join
  // is per-session overhead, not per-phase), created up front so blocking —
  // the first and often dominant phase — fans out too. Phases that stay at
  // num_threads == 1 keep running inline — with identical results either
  // way.
  const MetaBlockingOptions meta_options = EffectiveMetaOptions(options);
  const uint32_t meta_threads = ResolveThreadCount(meta_options.num_threads);
  const uint32_t prog_threads = ResolveThreadCount(
      EffectiveProgressiveOptions(options).num_threads);
  const uint32_t block_threads = ResolveThreadCount(options.num_threads);
  const uint32_t pool_threads =
      std::max({meta_threads, prog_threads, block_threads});
  if (pool_threads > 1) {
    impl->pool = std::make_unique<ThreadPool>(
        pool_threads, ThreadPoolOptions{options.pin_threads});
  }

  // ---- Blocking + cleaning + meta-blocking --------------------------------
  // With a memory budget the shuffles hit the filesystem; a spill failure
  // (unwritable temp dir, full disk) surfaces as a Status here instead of
  // unwinding through the caller.
  std::vector<WeightedComparison> candidates;
  try {
    if (options.memory.enabled()) {
      // Fully out-of-core static phases: the blocker streams its surviving
      // blocks from the spilled shuffle straight into a keyless flat store —
      // the keyed BlockCollection never exists — and cleaning, the graph
      // view, and pruning all run over the flat CSR. Every stage mirrors the
      // in-memory algorithms exactly, so the candidate schedule (and with
      // it every downstream byte) is identical to the unbudgeted run.
      watch.Restart();
      FlatBlockStore flat;
      {
        obs::PhaseSpan span(impl->trace.get(), "blocking");
        FlatStoreSink sink(flat);
        MakeWorkflowBlocker(options)->BuildInto(
            collection, block_threads > 1 ? impl->pool.get() : nullptr, sink);
      }
      impl->blocks_built = flat.num_blocks();
      impl->EmitPhase(
          {"blocking", watch.ElapsedMillis(), impl->blocks_built});

      watch.Restart();
      {
        obs::PhaseSpan span(impl->trace.get(), "block-cleaning");
        ThreadPool* cleaning_pool =
            block_threads > 1 ? impl->pool.get() : nullptr;
        if (options.auto_purge) {
          AutoPurgeFlat(flat, collection, options.meta.mode,
                        /*smoothing=*/1.025, cleaning_pool);
        }
        if (options.filter_ratio > 0.0 && options.filter_ratio < 1.0) {
          FilterBlocksFlat(flat, options.filter_ratio, collection,
                           options.meta.mode, cleaning_pool);
        }
        impl->blocks_after_cleaning = flat.num_blocks();
        impl->comparisons_before_meta =
            flat.AggregateComparisons(collection, options.meta.mode);
      }
      impl->EmitPhase({"block-cleaning", watch.ElapsedMillis(),
                       impl->blocks_after_cleaning});

      watch.Restart();
      {
        obs::PhaseSpan span(impl->trace.get(), "meta-blocking");
        if (options.enable_meta_blocking) {
          MetaBlocking meta(meta_options);
          candidates =
              impl->pool && meta_threads > 1
                  ? meta.Prune(flat, collection, *impl->pool,
                               &impl->meta_stats)
                  : meta.Prune(flat, collection, &impl->meta_stats);
        } else {
          // Distinct comparisons with CBS weights (no pruning).
          flat.BuildEntityIndex(collection.num_entities());
          for (const Comparison& c :
               flat.DistinctComparisons(collection, options.meta.mode)) {
            candidates.push_back({c.a, c.b, 1.0});
          }
        }
      }
    } else {
      watch.Restart();
      BlockCollection raw = [&] {
        obs::PhaseSpan span(impl->trace.get(), "blocking");
        return MakeWorkflowBlocker(options)->Build(
            collection, block_threads > 1 ? impl->pool.get() : nullptr);
      }();
      impl->blocks_built = raw.num_blocks();
      impl->EmitPhase(
          {"blocking", watch.ElapsedMillis(), impl->blocks_built});

      watch.Restart();
      {
        obs::PhaseSpan span(impl->trace.get(), "block-cleaning");
        ThreadPool* cleaning_pool =
            block_threads > 1 ? impl->pool.get() : nullptr;
        if (options.auto_purge) {
          AutoPurge(raw, collection, options.meta.mode, /*smoothing=*/1.025,
                    cleaning_pool);
        }
        if (options.filter_ratio > 0.0 && options.filter_ratio < 1.0) {
          FilterBlocks(raw, options.filter_ratio, collection,
                       options.meta.mode, cleaning_pool);
        }
        impl->blocks_after_cleaning = raw.num_blocks();
        impl->comparisons_before_meta =
            raw.AggregateComparisons(collection, options.meta.mode);
      }
      impl->EmitPhase({"block-cleaning", watch.ElapsedMillis(),
                       impl->blocks_after_cleaning});

      watch.Restart();
      {
        obs::PhaseSpan span(impl->trace.get(), "meta-blocking");
        if (options.enable_meta_blocking) {
          MetaBlocking meta(meta_options);
          candidates =
              impl->pool && meta_threads > 1
                  ? meta.Prune(raw, collection, *impl->pool,
                               &impl->meta_stats)
                  : meta.Prune(raw, collection, &impl->meta_stats);
        } else {
          // Distinct comparisons with CBS weights (no pruning).
          raw.BuildEntityIndex(collection.num_entities());
          for (const Comparison& c :
               raw.DistinctComparisons(collection, options.meta.mode)) {
            candidates.push_back({c.a, c.b, 1.0});
          }
        }
      }
    }
  } catch (const extmem::SpillError& e) {
    return Status::IoError(e.what());
  }
  impl->comparisons_after_meta = candidates.size();
  impl->EmitPhase(
      {"meta-blocking", watch.ElapsedMillis(), candidates.size()});

  // ---- Graph + evaluator + schedule ---------------------------------------
  watch.Restart();
  {
    obs::PhaseSpan span(impl->trace.get(), "graph+evaluator");
    impl->BuildResolutionSubstrate();
  }
  impl->EmitPhase(
      {"graph+evaluator", watch.ElapsedMillis(), impl->graph->num_edges()});

  watch.Restart();
  {
    obs::PhaseSpan span(impl->trace.get(), "schedule-priming");
    std::vector<Comparison> seeds;
    if (options.use_same_as_seeds && !collection.same_as_links().empty()) {
      seeds.reserve(collection.same_as_links().size());
      for (const SameAsLink& link : collection.same_as_links()) {
        seeds.emplace_back(link.a, link.b);
      }
    }
    impl->progress.Start();  // curve origin: where budget spending begins
    impl->resolver->Begin(candidates, seeds);
  }
  impl->resolve_millis += watch.ElapsedMillis();

  return ResolutionSession(std::move(impl));
}

StepResult ResolutionSession::Step(uint64_t max_comparisons) {
  obs::PhaseSpan span(impl_->trace.get(), "step");
  const Stopwatch watch;
  StepResult out = impl_->resolver->Step(max_comparisons);
  const double millis = watch.ElapsedMillis();
  impl_->resolve_millis += millis;
  out.wall_millis = millis;
  // Close the quality curve at the true totals of this step (the cadence
  // sampler only fires every N comparisons).
  if (impl_->progress.enabled() && out.comparisons > 0) {
    impl_->progress.Sample(comparisons_spent(), matches_found());
  }
  if (obs::MetricsRegistry::Default().enabled()) {
    out.stats = std::make_shared<const obs::StatsSnapshot>(
        obs::MetricsRegistry::Default().Snapshot());
  }
  return out;
}

bool ResolutionSession::exhausted() const {
  return impl_->resolver->exhausted();
}

bool ResolutionSession::finished() const {
  return impl_->resolver->finished();
}

uint64_t ResolutionSession::comparisons_spent() const {
  return impl_->resolver->result().run.comparisons_executed;
}

uint64_t ResolutionSession::matches_found() const {
  return impl_->resolver->result().run.matches.size();
}

const WorkflowOptions& ResolutionSession::options() const {
  return impl_->options;
}

const EntityCollection& ResolutionSession::collection() const {
  return *impl_->collection;
}

ResolutionReport ResolutionSession::Report() const {
  ResolutionReport report;
  report.phases = impl_->phases;
  report.blocks_built = impl_->blocks_built;
  report.blocks_after_cleaning = impl_->blocks_after_cleaning;
  report.comparisons_before_meta = impl_->comparisons_before_meta;
  report.comparisons_after_meta = impl_->comparisons_after_meta;
  report.meta_stats = impl_->meta_stats;
  report.progressive = impl_->resolver->result();
  report.phases.push_back({"progressive-resolution", impl_->resolve_millis,
                           report.progressive.run.matches.size()});
  report.metrics = obs::MetricsRegistry::Default().Snapshot();
  report.progress = impl_->progress.samples();
  return report;
}

obs::StatsReport ResolutionSession::Stats() const {
  obs::StatsReport report;
  report.metrics = obs::MetricsRegistry::Default().Snapshot();
  report.phases.reserve(impl_->phases.size() + 1);
  for (const PhaseStats& phase : impl_->phases) {
    report.phases.push_back(
        {phase.name, phase.millis, phase.output_cardinality});
  }
  report.phases.push_back(
      {"progressive-resolution", impl_->resolve_millis,
       impl_->resolver->result().run.matches.size()});
  report.progress = impl_->progress.samples();
  if (impl_->pool != nullptr) report.pool = impl_->pool->Stats();
  report.peak_rss_bytes = obs::PeakRssBytes();
  return report;
}

void ResolutionSession::WriteStatsJson(std::ostream& out) const {
  obs::WriteStatsJson(out, Stats());
}

void ResolutionSession::WriteTraceJson(std::ostream& out) const {
  if (impl_->trace != nullptr) {
    impl_->trace->WriteChromeTrace(out);
  } else {
    obs::TraceRecorder().WriteChromeTrace(out);
  }
}

Status ResolutionSession::Checkpoint(std::ostream& out) const {
  serde::WriteString(out, kSessionMagic);
  serde::WriteU32(out, impl_->collection->num_entities());
  serde::WriteU32(out, impl_->collection->num_kbs());
  serde::WriteU64(out, impl_->collection->total_triples());
  serde::WriteU64(out, OptionsDigest(impl_->options));

  serde::WriteU64(out, impl_->blocks_built);
  serde::WriteU64(out, impl_->blocks_after_cleaning);
  serde::WriteU64(out, impl_->comparisons_before_meta);
  serde::WriteU64(out, impl_->comparisons_after_meta);
  serde::WriteU64(out, impl_->meta_stats.graph_edges);
  serde::WriteU64(out, impl_->meta_stats.retained_edges);
  serde::WriteDouble(out, impl_->meta_stats.mean_weight);
  serde::WriteU64(out, impl_->meta_stats.nominations);
  serde::WriteU64(out, impl_->meta_stats.distinct_pairs);
  serde::WriteU64(out, impl_->phases.size());
  for (const PhaseStats& phase : impl_->phases) {
    serde::WriteString(out, phase.name);
    serde::WriteDouble(out, phase.millis);
    serde::WriteU64(out, phase.output_cardinality);
  }
  serde::WriteDouble(out, impl_->resolve_millis);
  return impl_->resolver->SaveState(out);
}

Result<ResolutionSession> ResolutionSession::Restore(
    const EntityCollection& collection, const WorkflowOptions& options,
    std::istream& in, MatchObserver* observer) {
  MINOAN_RETURN_IF_ERROR(options.Validate());
  if (!collection.finalized()) {
    return Status::FailedPrecondition("collection not finalized");
  }
  const auto truncated = [] {
    return Status::ParseError("truncated or corrupt session checkpoint");
  };
  std::string magic;
  if (!serde::ReadString(in, magic, kSessionMagic.size())) return truncated();
  if (magic != kSessionMagic) {
    return Status::ParseError("not a MinoanER session checkpoint");
  }
  uint32_t num_entities, num_kbs;
  uint64_t total_triples, digest;
  if (!serde::ReadU32(in, num_entities) || !serde::ReadU32(in, num_kbs) ||
      !serde::ReadU64(in, total_triples) || !serde::ReadU64(in, digest)) {
    return truncated();
  }
  if (num_entities != collection.num_entities() ||
      num_kbs != collection.num_kbs() ||
      total_triples != collection.total_triples()) {
    return Status::InvalidArgument(
        "checkpoint was taken over a different collection (entity/KB/triple "
        "counts differ)");
  }
  if (digest != OptionsDigest(options)) {
    return Status::InvalidArgument(
        "checkpoint was taken with different workflow options; restore with "
        "the options used at checkpoint time");
  }

  auto impl = std::make_unique<Impl>();
  impl->collection = &collection;
  impl->options = options;
  impl->observer = observer;
  if (!serde::ReadU64(in, impl->blocks_built) ||
      !serde::ReadU64(in, impl->blocks_after_cleaning) ||
      !serde::ReadU64(in, impl->comparisons_before_meta) ||
      !serde::ReadU64(in, impl->comparisons_after_meta) ||
      !serde::ReadU64(in, impl->meta_stats.graph_edges) ||
      !serde::ReadU64(in, impl->meta_stats.retained_edges) ||
      !serde::ReadDouble(in, impl->meta_stats.mean_weight) ||
      !serde::ReadU64(in, impl->meta_stats.nominations) ||
      !serde::ReadU64(in, impl->meta_stats.distinct_pairs)) {
    return truncated();
  }
  uint64_t n_phases;
  if (!serde::ReadU64(in, n_phases) || n_phases > 64) return truncated();
  impl->phases.reserve(n_phases);
  for (uint64_t i = 0; i < n_phases; ++i) {
    PhaseStats phase;
    if (!serde::ReadString(in, phase.name, /*max_len=*/256) ||
        !serde::ReadDouble(in, phase.millis) ||
        !serde::ReadU64(in, phase.output_cardinality)) {
      return truncated();
    }
    // EmitPhase, not push_back: the restoring process's observer gets the
    // same phase stream Open produced, as the streaming contract promises.
    impl->EmitPhase(std::move(phase));
  }
  if (!serde::ReadDouble(in, impl->resolve_millis)) return truncated();

  // The static phases' products are pure functions of (collection, options):
  // rebuild them instead of serializing megabytes of graph and TF-IDF
  // vectors, then restore the loop state on top.
  if (options.obs.enable_trace) {
    impl->trace = std::make_unique<obs::TraceRecorder>();
  }
  {
    obs::PhaseSpan span(impl->trace.get(), "restore");
    impl->BuildResolutionSubstrate();
    // Progress samples are not checkpointed (out-of-band): the restored
    // curve starts fresh at the restored comparison totals.
    impl->progress.Start();
    MINOAN_RETURN_IF_ERROR(impl->resolver->LoadState(in));
  }
  return ResolutionSession(std::move(impl));
}

}  // namespace minoan
