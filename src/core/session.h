// Copyright 2026 The MinoanER Authors.
// ResolutionSession: the first-class pay-as-you-go facade.
//
// MinoanER's promise is progressive resolution — "higher benefit is provided
// early on in the process" — which a production service consumes as an
// interruptible, resumable loop with observable intermediate output:
//
//   auto session = ResolutionSession::Open(collection, options);   // static
//   while (!session->exhausted()) {                                // phases
//     StepResult step = session->Step(10'000);   // spend some budget now
//     ...                                        // matches stream out
//   }
//   ResolutionReport report = session->Report();
//
// Open runs the static phases once (blocking → cleaning → meta-blocking →
// graph/evaluator construction, sharing one thread pool) and hands back a
// session whose Step spends comparisons incrementally, with the invariant
// that Step(n/2) twice is byte-identical to Step(n) once and to the legacy
// one-shot MinoanEr::Run. Checkpoint/Restore serialize the dynamic loop
// state so a budgeted run survives process restarts; a MatchObserver streams
// phase progress and confirmed matches as they happen.

#ifndef MINOAN_CORE_SESSION_H_
#define MINOAN_CORE_SESSION_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>

#include "core/minoan_er.h"
#include "matching/matcher.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "progressive/step_core.h"
#include "util/status.h"

namespace minoan {

/// Streaming sink for session progress. Callbacks fire synchronously from
/// inside Open (phases) and Step (matches), in order; implementations must
/// not re-enter the session.
class MatchObserver {
 public:
  virtual ~MatchObserver() = default;
  /// A static pipeline phase finished (blocking, block-cleaning,
  /// meta-blocking, graph+evaluator — in that order, before any match).
  virtual void OnPhase(const PhaseStats& phase) { (void)phase; }
  /// A match was confirmed, stamped with the comparison count at discovery.
  virtual void OnMatch(const MatchEvent& event) { (void)event; }
};

/// A budgeted, checkpointable resolution over one finalized collection.
/// Movable; the collection is caller-owned and must outlive the session.
class ResolutionSession {
 public:
  /// Validates `options`, runs the static phases (blocking → cleaning →
  /// meta-blocking → graph/evaluator) and primes the progressive schedule.
  /// No comparison is executed yet.
  static Result<ResolutionSession> Open(const EntityCollection& collection,
                                        const WorkflowOptions& options,
                                        MatchObserver* observer = nullptr);

  /// Reopens a session from a Checkpoint stream. The collection and options
  /// must match the checkpointing session's (fingerprints are verified);
  /// the static phases' products are rebuilt deterministically and the loop
  /// state is restored, so stepping continues exactly where the saved run
  /// left off.
  static Result<ResolutionSession> Restore(const EntityCollection& collection,
                                           const WorkflowOptions& options,
                                           std::istream& in,
                                           MatchObserver* observer = nullptr);

  ResolutionSession(ResolutionSession&&) noexcept;
  ResolutionSession& operator=(ResolutionSession&&) noexcept;
  ~ResolutionSession();

  /// Spends up to `max_comparisons` more comparisons (0 = run until the
  /// workflow budget or the schedule is exhausted) and returns what this
  /// call produced. Stepping past exhaustion is a no-op.
  StepResult Step(uint64_t max_comparisons = 0);

  /// True once the schedule drained; the run is complete.
  bool exhausted() const;
  /// True once there is nothing left to spend: the schedule drained OR the
  /// overall workflow budget (progressive.matcher.budget, if any) was
  /// consumed. Use this — not exhausted() — as the condition of a "keep
  /// stepping" loop, or a budget-capped run will spin forever.
  bool finished() const;
  /// Comparisons executed so far across all Steps.
  uint64_t comparisons_spent() const;
  /// Matches confirmed so far across all Steps.
  uint64_t matches_found() const;

  /// Serializes the session (collection fingerprint, options digest, static
  /// phase counters, full loop state) for a later Restore.
  Status Checkpoint(std::ostream& out) const;

  /// Assembles the same ResolutionReport the one-shot MinoanEr::Run returns
  /// for the work done so far. Callable at any point of the run.
  ResolutionReport Report() const;

  /// Everything this session observed so far: per-phase wall times, the
  /// progressive-quality curve, thread-pool utilization, peak RSS, and the
  /// merged metrics-registry snapshot. Callable at any point of the run.
  obs::StatsReport Stats() const;

  /// Writes Stats() as the flat "minoan-stats-v1" JSON (the --metrics-out
  /// file; see obs/report.h).
  void WriteStatsJson(std::ostream& out) const;

  /// Writes the recorded phase spans as Chrome-trace JSON (loadable in
  /// chrome://tracing / ui.perfetto.dev). An empty-but-valid trace when the
  /// session ran without options.obs.enable_trace.
  void WriteTraceJson(std::ostream& out) const;

  const WorkflowOptions& options() const;
  const EntityCollection& collection() const;

 private:
  struct Impl;
  explicit ResolutionSession(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace minoan

#endif  // MINOAN_CORE_SESSION_H_
