#include "datagen/corpus.h"

#include <unordered_set>

namespace minoan {
namespace datagen {

namespace {
constexpr const char* kConsonants[] = {"b", "d", "f", "g", "k", "l", "m",
                                       "n", "p", "r", "s", "t", "v", "z",
                                       "ch", "st", "th", "br", "kr"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};
}  // namespace

std::string MakePseudoWord(Rng& rng, uint32_t syllables) {
  std::string word;
  for (uint32_t s = 0; s < syllables; ++s) {
    word += kConsonants[rng.Below(std::size(kConsonants))];
    word += kVowels[rng.Below(std::size(kVowels))];
  }
  return word;
}

WordPool::WordPool(Rng& rng, uint32_t size, uint32_t min_syl,
                   uint32_t max_syl) {
  std::unordered_set<std::string> seen;
  words_.reserve(size);
  while (words_.size() < size) {
    const uint32_t syl =
        static_cast<uint32_t>(rng.Uniform(min_syl, max_syl));
    std::string w = MakePseudoWord(rng, syl);
    if (seen.insert(w).second) {
      words_.push_back(std::move(w));
    } else if (seen.size() > size * 4) {
      // Pool space exhausted for these syllable counts; disambiguate with a
      // numeric suffix rather than looping forever.
      w += std::to_string(words_.size());
      if (seen.insert(w).second) words_.push_back(std::move(w));
    }
  }
}

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "person";
    case EntityType::kPlace:
      return "place";
    case EntityType::kProduct:
      return "product";
    case EntityType::kEvent:
      return "event";
  }
  return "entity";
}

std::string EntityTypeClassIri(EntityType type) {
  return std::string("http://schema.minoan.org/class/") +
         EntityTypeName(type);
}

}  // namespace datagen
}  // namespace minoan
