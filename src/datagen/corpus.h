// Copyright 2026 The MinoanER Authors.
// Synthetic vocabulary: deterministic pseudo-word pools for the generator.
//
// Tokens are pronounceable syllable strings ("velora", "kantir") drawn from
// pools of configurable size, so that token collisions across entities occur
// at realistic rates (shared first names, shared domain terms) without any
// external word list.

#ifndef MINOAN_DATAGEN_CORPUS_H_
#define MINOAN_DATAGEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace minoan {
namespace datagen {

/// Generates one pseudo-word of `syllables` consonant-vowel syllables.
std::string MakePseudoWord(Rng& rng, uint32_t syllables);

/// A fixed pool of distinct pseudo-words, addressable by index.
class WordPool {
 public:
  /// Builds `size` distinct words with syllable counts in [min_syl, max_syl].
  WordPool(Rng& rng, uint32_t size, uint32_t min_syl, uint32_t max_syl);

  const std::string& word(uint32_t i) const { return words_[i]; }
  uint32_t size() const { return static_cast<uint32_t>(words_.size()); }

  /// Uniform draw.
  const std::string& Sample(Rng& rng) const {
    return words_[rng.Below(words_.size())];
  }

 private:
  std::vector<std::string> words_;
};

/// The entity-type taxonomy used by the generator; mirrors the poster's
/// examples of real-world entity kinds.
enum class EntityType : uint32_t {
  kPerson = 0,
  kPlace = 1,
  kProduct = 2,
  kEvent = 3,
};
inline constexpr uint32_t kNumEntityTypes = 4;

/// Short lowercase name of the type ("person"...).
const char* EntityTypeName(EntityType type);

/// Class IRI for the type in the shared schema namespace.
std::string EntityTypeClassIri(EntityType type);

}  // namespace datagen
}  // namespace minoan

#endif  // MINOAN_DATAGEN_CORPUS_H_
