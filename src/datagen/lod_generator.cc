#include "datagen/lod_generator.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"

namespace minoan {
namespace datagen {

namespace {

/// A real-world entity in the generated universe.
struct RealEntity {
  EntityType type;
  std::vector<std::string> name_tokens;
  std::vector<std::string> fact_tokens;
  uint32_t year = 0;
  std::vector<uint32_t> neighbors;  // both directions
};

/// One KB's plan: which reals it describes and under which IRIs.
struct KbPlan {
  std::string name;
  bool is_center = false;
  std::string resource_ns;   // http://kbN.minoan.org/resource/
  std::string vocab_ns;      // proprietary or shared
  bool proprietary = false;
  std::vector<std::string> fact_predicates;  // full IRIs
  std::vector<uint32_t> described;           // real ids
  std::vector<std::string> iris;             // parallel to described
  std::vector<uint32_t> local_of_real;       // real id -> index or UINT32_MAX
};

constexpr const char* kSharedVocabNs = "http://schema.minoan.org/prop/";
constexpr const char* kSharedPredicateNames[] = {
    "name",  "label",   "located", "founded", "maker",
    "genre", "country", "owner",   "field",   "series"};

/// Applies one random character edit (substitute / delete / transpose).
std::string CorruptToken(const std::string& token, Rng& rng) {
  if (token.size() < 3) return token;
  std::string out = token;
  const size_t pos = rng.Below(out.size());
  switch (rng.Below(3)) {
    case 0:  // substitution
      out[pos] = static_cast<char>('a' + rng.Below(26));
      break;
    case 1:  // deletion
      out.erase(pos, 1);
      break;
    default:  // transposition with the next character
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string Slugify(const std::vector<std::string>& tokens) {
  std::string slug;
  for (const auto& t : tokens) {
    if (!slug.empty()) slug += '_';
    slug += t;
  }
  return slug;
}

/// Builds the real-world relation graph with preferential attachment.
void BuildRealGraph(std::vector<RealEntity>& reals, double mean_degree,
                    double attachment_bias, Rng& rng) {
  const uint32_t n = static_cast<uint32_t>(reals.size());
  if (n < 2) return;
  const uint64_t target_edges =
      static_cast<uint64_t>(mean_degree * n / 2.0);
  // "Repeated endpoints" trick: sampling from this list approximates
  // degree-proportional selection.
  std::vector<uint32_t> pa_pool;
  pa_pool.reserve(target_edges * 2 + n);
  std::unordered_set<uint64_t> edge_set;
  uint64_t made = 0, attempts = 0;
  while (made < target_edges && attempts < target_edges * 20) {
    ++attempts;
    const uint32_t a = static_cast<uint32_t>(rng.Below(n));
    uint32_t b;
    if (!pa_pool.empty() &&
        rng.Chance(attachment_bias / (1.0 + attachment_bias))) {
      b = pa_pool[rng.Below(pa_pool.size())];
    } else {
      b = static_cast<uint32_t>(rng.Below(n));
    }
    if (a == b) continue;
    const uint64_t key = PairKey(a, b);
    if (!edge_set.insert(key).second) continue;
    reals[a].neighbors.push_back(b);
    reals[b].neighbors.push_back(a);
    pa_pool.push_back(a);
    pa_pool.push_back(b);
    ++made;
  }
}

}  // namespace

Status LodCloudConfig::Validate() const {
  if (num_real_entities == 0) {
    return Status::InvalidArgument("num_real_entities must be > 0");
  }
  if (num_kbs == 0) return Status::InvalidArgument("num_kbs must be > 0");
  if (center_kbs > num_kbs) {
    return Status::InvalidArgument("center_kbs exceeds num_kbs");
  }
  auto fraction = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!fraction(center_coverage) || !fraction(periphery_coverage)) {
    return Status::InvalidArgument("coverage must lie in [0,1]");
  }
  if (!fraction(center_token_overlap) || !fraction(periphery_token_overlap)) {
    return Status::InvalidArgument("token overlap must lie in [0,1]");
  }
  if (!fraction(typo_rate)) {
    return Status::InvalidArgument("typo_rate must lie in [0,1]");
  }
  if (!fraction(proprietary_vocab_rate) || !fraction(same_as_rate) ||
      !fraction(relation_keep_rate) || !fraction(periphery_domain_bias) ||
      !fraction(center_named_iri_rate) || !fraction(periphery_named_iri_rate)) {
    return Status::InvalidArgument("rate parameters must lie in [0,1]");
  }
  if (min_fact_tokens > max_fact_tokens) {
    return Status::InvalidArgument("min_fact_tokens > max_fact_tokens");
  }
  if (name_pool_size == 0 || fact_pool_size == 0 || noise_pool_size == 0) {
    return Status::InvalidArgument("word pools must be non-empty");
  }
  return Status::Ok();
}

Result<LodCloud> GenerateLodCloud(const LodCloudConfig& config) {
  MINOAN_RETURN_IF_ERROR(config.Validate());
  Rng rng(config.seed);

  // ---- Vocabulary pools ---------------------------------------------------
  WordPool name_pool(rng, config.name_pool_size, 2, 3);
  WordPool fact_pool(rng, config.fact_pool_size, 2, 4);
  WordPool noise_pool(rng, config.noise_pool_size, 2, 4);
  WordPool predicate_pool(rng, 64, 2, 3);

  // ---- Universe -----------------------------------------------------------
  std::vector<RealEntity> reals(config.num_real_entities);
  std::vector<std::vector<uint32_t>> by_type(kNumEntityTypes);
  for (uint32_t r = 0; r < config.num_real_entities; ++r) {
    RealEntity& e = reals[r];
    e.type = static_cast<EntityType>(rng.Below(kNumEntityTypes));
    by_type[static_cast<uint32_t>(e.type)].push_back(r);
    const uint32_t name_len = static_cast<uint32_t>(rng.Uniform(2, 3));
    for (uint32_t i = 0; i < name_len; ++i) {
      e.name_tokens.push_back(name_pool.Sample(rng));
    }
    const uint32_t facts = static_cast<uint32_t>(
        rng.Uniform(config.min_fact_tokens, config.max_fact_tokens));
    for (uint32_t i = 0; i < facts; ++i) {
      e.fact_tokens.push_back(fact_pool.Sample(rng));
    }
    e.year = 1900 + static_cast<uint32_t>(rng.Below(126));
  }
  BuildRealGraph(reals, config.real_mean_degree, config.attachment_bias, rng);

  // ---- KB plans: coverage, vocabulary, IRIs -------------------------------
  std::vector<KbPlan> plans(config.num_kbs);
  for (uint32_t k = 0; k < config.num_kbs; ++k) {
    KbPlan& plan = plans[k];
    plan.is_center = k < config.center_kbs;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "kb%02u-%s", k,
                  plan.is_center ? "center" : "periphery");
    plan.name = buf;
    plan.resource_ns =
        "http://kb" + std::to_string(k) + ".minoan.org/resource/";
    plan.proprietary = rng.Chance(config.proprietary_vocab_rate);
    plan.vocab_ns = plan.proprietary
                        ? "http://kb" + std::to_string(k) +
                              ".minoan.org/vocab/"
                        : kSharedVocabNs;
    for (uint32_t p = 0; p < config.predicates_per_kb; ++p) {
      const std::string local =
          plan.proprietary
              ? predicate_pool.word(rng.Below(predicate_pool.size()))
              : kSharedPredicateNames[p % std::size(kSharedPredicateNames)];
      std::string iri = plan.vocab_ns + local;
      // Keep predicates distinct within the KB.
      if (std::find(plan.fact_predicates.begin(), plan.fact_predicates.end(),
                    iri) != plan.fact_predicates.end()) {
        iri += std::to_string(p);
      }
      plan.fact_predicates.push_back(std::move(iri));
    }

    // Coverage with +-20% jitter; periphery may be domain-restricted.
    const double base_cov =
        plan.is_center ? config.center_coverage : config.periphery_coverage;
    const double cov = base_cov * (0.8 + 0.4 * rng.NextDouble());
    const std::vector<uint32_t>* eligible_all = nullptr;
    std::vector<uint32_t> eligible_storage;
    if (!plan.is_center && rng.Chance(config.periphery_domain_bias)) {
      eligible_all = &by_type[rng.Below(kNumEntityTypes)];
    } else {
      eligible_storage.resize(config.num_real_entities);
      for (uint32_t r = 0; r < config.num_real_entities; ++r) {
        eligible_storage[r] = r;
      }
      eligible_all = &eligible_storage;
    }
    // Coverage is a fraction of the whole universe, capped by the domain.
    uint32_t want = static_cast<uint32_t>(cov * config.num_real_entities);
    want = std::min<uint32_t>(
        want, static_cast<uint32_t>(eligible_all->size()));
    want = std::max<uint32_t>(want, 1);
    std::vector<uint32_t> sample = *eligible_all;
    rng.Shuffle(sample);
    sample.resize(want);
    std::sort(sample.begin(), sample.end());
    plan.described = std::move(sample);

    // Mint IRIs.
    const double named_rate = plan.is_center
                                  ? config.center_named_iri_rate
                                  : config.periphery_named_iri_rate;
    plan.local_of_real.assign(config.num_real_entities, UINT32_MAX);
    std::unordered_set<std::string> used;
    plan.iris.reserve(plan.described.size());
    for (uint32_t i = 0; i < plan.described.size(); ++i) {
      const uint32_t r = plan.described[i];
      std::string suffix;
      if (rng.Chance(named_rate)) {
        suffix = Slugify(reals[r].name_tokens);
      } else {
        char hex[24];
        std::snprintf(hex, sizeof(hex), "e%010llx",
                      static_cast<unsigned long long>(
                          Mix64(config.seed ^ (uint64_t{k} << 32 | r)) &
                          0xffffffffffULL));
        suffix = hex;
      }
      std::string iri = plan.resource_ns + suffix;
      while (!used.insert(iri).second) {
        iri += "_" + std::to_string(i);
      }
      plan.iris.push_back(std::move(iri));
      plan.local_of_real[r] = i;
    }
  }

  // ---- Triples per KB -----------------------------------------------------
  LodCloud cloud;
  cloud.kbs.resize(config.num_kbs);
  for (uint32_t k = 0; k < config.num_kbs; ++k) {
    const KbPlan& plan = plans[k];
    GeneratedKb& out = cloud.kbs[k];
    out.name = plan.name;
    out.is_center = plan.is_center;
    const double overlap = plan.is_center ? config.center_token_overlap
                                          : config.periphery_token_overlap;

    for (uint32_t i = 0; i < plan.described.size(); ++i) {
      const uint32_t r = plan.described[i];
      const RealEntity& e = reals[r];
      const rdf::Term subject = rdf::Term::Iri(plan.iris[i]);

      // rdf:type with the shared class taxonomy.
      out.triples.push_back(
          {subject, rdf::Term::Iri(std::string(rdf::kRdfType)),
           rdf::Term::Iri(EntityTypeClassIri(e.type))});

      // Name: keep each canonical name token with prob `overlap`, at least 1.
      std::vector<std::string> kept_name;
      for (const auto& t : e.name_tokens) {
        if (rng.Chance(overlap)) kept_name.push_back(t);
      }
      if (kept_name.empty()) {
        kept_name.push_back(e.name_tokens[rng.Below(e.name_tokens.size())]);
      }
      std::string name_value;
      for (const auto& t : kept_name) {
        if (!name_value.empty()) name_value += ' ';
        name_value += config.typo_rate > 0 && rng.Chance(config.typo_rate)
                          ? CorruptToken(t, rng)
                          : t;
      }
      out.triples.push_back({subject,
                             rdf::Term::Iri(plan.vocab_ns + "name"),
                             rdf::Term::Literal(name_value)});

      // Facts: sampled canonical tokens spread across this KB's predicates.
      std::vector<std::string> pred_values(plan.fact_predicates.size());
      uint32_t kept_facts = 0;
      for (const auto& t : e.fact_tokens) {
        if (!rng.Chance(overlap)) continue;
        std::string& v =
            pred_values[rng.Below(pred_values.size())];
        if (!v.empty()) v += ' ';
        v += config.typo_rate > 0 && rng.Chance(config.typo_rate)
                 ? CorruptToken(t, rng)
                 : t;
        ++kept_facts;
      }
      (void)kept_facts;
      // Noise tokens go to a per-KB "note" predicate.
      const uint32_t noise = static_cast<uint32_t>(
          rng.Below(static_cast<uint64_t>(config.mean_noise_tokens * 2) + 1));
      std::string note;
      for (uint32_t x = 0; x < noise; ++x) {
        if (!note.empty()) note += ' ';
        note += noise_pool.Sample(rng);
      }
      for (size_t p = 0; p < pred_values.size(); ++p) {
        if (pred_values[p].empty()) continue;
        out.triples.push_back({subject,
                               rdf::Term::Iri(plan.fact_predicates[p]),
                               rdf::Term::Literal(pred_values[p])});
      }
      if (!note.empty()) {
        out.triples.push_back({subject,
                               rdf::Term::Iri(plan.vocab_ns + "note"),
                               rdf::Term::Literal(note)});
      }

      // Year: shared signal, occasionally perturbed in the periphery.
      if (rng.Chance(0.7)) {
        uint32_t year = e.year;
        if (!plan.is_center && rng.Chance(0.3)) {
          year += static_cast<uint32_t>(rng.Uniform(-1, 1));
        }
        out.triples.push_back(
            {subject, rdf::Term::Iri(plan.vocab_ns + "year"),
             rdf::Term::Literal(std::to_string(year),
                                std::string(rdf::kXsdInteger))});
      }

      // Relations mirroring the real-world graph within this KB.
      for (const uint32_t r2 : e.neighbors) {
        if (r2 <= r) continue;  // one direction per real edge
        const uint32_t j = plan.local_of_real[r2];
        if (j == UINT32_MAX) continue;
        if (!rng.Chance(config.relation_keep_rate)) continue;
        out.triples.push_back({subject,
                               rdf::Term::Iri(plan.vocab_ns + "related"),
                               rdf::Term::Iri(plan.iris[j])});
      }
    }
  }

  // ---- Ground truth and owl:sameAs interlinks ----------------------------
  ZipfSampler kb_popularity(config.num_kbs, config.link_zipf_skew);
  std::vector<std::pair<uint32_t, uint32_t>> describers;  // (kb, local idx)
  for (uint32_t r = 0; r < config.num_real_entities; ++r) {
    describers.clear();
    for (uint32_t k = 0; k < config.num_kbs; ++k) {
      const uint32_t i = plans[k].local_of_real[r];
      if (i != UINT32_MAX) describers.emplace_back(k, i);
    }
    for (size_t a = 0; a < describers.size(); ++a) {
      const auto& [ka, ia] = describers[a];
      cloud.iri_to_cluster.emplace_back(plans[ka].iris[ia], r);
      for (size_t b = a + 1; b < describers.size(); ++b) {
        const auto& [kb, ib] = describers[b];
        cloud.truth.push_back(
            TruthPair{plans[ka].iris[ia], plans[kb].iris[ib]});
        // Existing interlinking: periphery publishers tend to link toward
        // popular KBs (Zipf rank = KB index, center KBs first).
        if (rng.Chance(config.same_as_rate)) {
          const bool a_to_b =
              kb_popularity.Pmf(kb) >= kb_popularity.Pmf(ka) ||
              rng.Chance(0.2);
          const auto& [src_k, src_i] = a_to_b ? describers[a] : describers[b];
          const auto& [dst_k, dst_i] = a_to_b ? describers[b] : describers[a];
          cloud.kbs[src_k].triples.push_back(
              {rdf::Term::Iri(plans[src_k].iris[src_i]),
               rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
               rdf::Term::Iri(plans[dst_k].iris[dst_i])});
        }
      }
    }
  }

  MINOAN_LOG(kInfo) << "generated LOD cloud: " << config.num_kbs << " KBs, "
                    << cloud.total_triples() << " triples, "
                    << cloud.truth.size() << " truth pairs";
  return cloud;
}

Result<EntityCollection> LodCloud::BuildCollection(
    CollectionOptions options) const {
  EntityCollection collection(options);
  for (const GeneratedKb& kb : kbs) {
    MINOAN_ASSIGN_OR_RETURN(uint32_t id,
                            collection.AddKnowledgeBase(kb.name, kb.triples));
    (void)id;
  }
  MINOAN_RETURN_IF_ERROR(collection.Finalize());
  return collection;
}

Status LodCloud::WriteTo(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IoError("cannot create directory: " + directory);
  for (const GeneratedKb& kb : kbs) {
    const std::string path = directory + "/" + kb.name + ".nt";
    std::ofstream out(path);
    if (!out) return Status::IoError("cannot open: " + path);
    for (const rdf::Triple& t : kb.triples) out << t.ToNTriples() << "\n";
  }
  {
    const std::string path = directory + "/ground_truth.tsv";
    std::ofstream out(path);
    if (!out) return Status::IoError("cannot open: " + path);
    for (const TruthPair& p : truth) {
      out << p.iri_a << "\t" << p.iri_b << "\n";
    }
  }
  {
    const std::string path = directory + "/clusters.tsv";
    std::ofstream out(path);
    if (!out) return Status::IoError("cannot open: " + path);
    for (const auto& [iri, cluster] : iri_to_cluster) {
      out << iri << "\t" << cluster << "\n";
    }
  }
  return Status::Ok();
}

}  // namespace datagen
}  // namespace minoan
