// Copyright 2026 The MinoanER Authors.
// Synthetic LOD-cloud generator (the paper's data substrate).
//
// The poster evaluates MinoanER on the Web of Data: many autonomous KBs whose
// descriptions of the same real-world entities range from *highly similar*
// (many common tokens, aligned properties — the LOD center, e.g. DBpedia vs
// Freebase) to *somehow similar* (few or no common tokens, proprietary
// vocabularies — the LOD periphery). No public frozen corpus with complete
// ground truth is shipped with the paper, so this generator synthesizes a
// cloud with exactly those structural knobs:
//
//   * a universe of typed real-world entities with a relation graph
//     (preferential attachment → skewed degrees);
//   * center KBs: broad coverage, high token overlap between duplicate
//     descriptions, shared vocabularies, name-derived IRIs;
//   * periphery KBs: narrow type-biased coverage, low token overlap,
//     proprietary vocabularies, opaque IRIs;
//   * owl:sameAs interlinks emitted preferentially toward popular (center)
//     KBs — reproducing the skewed interlinking the poster cites;
//   * exhaustive ground truth (every cross-KB duplicate pair).
//
// Determinism: the entire cloud is a pure function of LodCloudConfig::seed.

#ifndef MINOAN_DATAGEN_LOD_GENERATOR_H_
#define MINOAN_DATAGEN_LOD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "datagen/corpus.h"
#include "kb/collection.h"
#include "rdf/term.h"
#include "util/rng.h"
#include "util/status.h"

namespace minoan {
namespace datagen {

/// All generator knobs. Defaults produce a small mixed cloud suitable for
/// tests; benches scale the counts up.
struct LodCloudConfig {
  uint64_t seed = 42;

  // --- Universe -----------------------------------------------------------
  uint32_t num_real_entities = 2000;
  /// Mean degree of the real-world relation graph.
  double real_mean_degree = 3.0;
  /// Preferential-attachment strength (0 = uniform endpoints).
  double attachment_bias = 1.0;

  // --- Cloud shape --------------------------------------------------------
  uint32_t num_kbs = 6;
  uint32_t center_kbs = 2;
  /// Fraction of the universe described by each center / periphery KB.
  double center_coverage = 0.55;
  double periphery_coverage = 0.12;
  /// Periphery KBs restrict themselves to one entity type with this
  /// probability (domain-specific KBs: food facts, bio data, ...).
  double periphery_domain_bias = 0.75;

  // --- Description similarity ---------------------------------------------
  /// Fraction of an entity's canonical tokens kept by a center / periphery
  /// description. Center descriptions of the same entity are "highly
  /// similar"; periphery ones are "somehow similar".
  double center_token_overlap = 0.85;
  double periphery_token_overlap = 0.30;
  /// Number of extra noise tokens per description (uniform 0..2x mean).
  double mean_noise_tokens = 3.0;
  /// Probability that a kept token is corrupted by one character edit
  /// (substitution, deletion, or transposition) — simulates the typos and
  /// transliteration noise of autonomous KBs. Breaks exact token keys;
  /// q-gram blocking and character similarities still see the signal.
  double typo_rate = 0.0;
  /// Canonical fact tokens per real entity (besides the 2-3 name tokens).
  uint32_t min_fact_tokens = 5;
  uint32_t max_fact_tokens = 12;

  // --- Vocabulary ---------------------------------------------------------
  /// Probability that a KB uses its own proprietary predicate namespace for
  /// non-core predicates (poster: 58.24% of LOD vocabularies proprietary).
  double proprietary_vocab_rate = 0.6;
  /// Number of distinct fact predicates per KB.
  uint32_t predicates_per_kb = 6;

  // --- IRIs ---------------------------------------------------------------
  /// Probability that a KB mints name-derived IRI suffixes (vs opaque ids),
  /// for center / periphery KBs respectively.
  double center_named_iri_rate = 0.9;
  double periphery_named_iri_rate = 0.25;

  // --- Relations & interlinking -------------------------------------------
  /// Probability that a real-world relation edge is asserted by a KB that
  /// describes both endpoints.
  double relation_keep_rate = 0.8;
  /// Probability that a true cross-KB duplicate pair is already linked by an
  /// explicit owl:sameAs triple in the data.
  double same_as_rate = 0.25;
  /// Zipf skew of sameAs target popularity across KBs.
  double link_zipf_skew = 1.1;

  // --- Pools --------------------------------------------------------------
  uint32_t name_pool_size = 1200;
  uint32_t fact_pool_size = 6000;
  uint32_t noise_pool_size = 4000;

  /// Validates ranges; returned status explains the first violation.
  Status Validate() const;
};

/// One generated knowledge base.
struct GeneratedKb {
  std::string name;                  // e.g. "kb03-center"
  bool is_center = false;
  std::vector<rdf::Triple> triples;
};

/// A matching pair of descriptions in ground truth, by IRI.
struct TruthPair {
  std::string iri_a;
  std::string iri_b;
};

/// The full generated cloud.
struct LodCloud {
  std::vector<GeneratedKb> kbs;
  /// Exhaustive clean-clean ground truth: one entry per unordered pair of
  /// cross-KB descriptions of the same real-world entity.
  std::vector<TruthPair> truth;
  /// Real-entity cluster id per description IRI, for cluster-level metrics.
  std::vector<std::pair<std::string, uint32_t>> iri_to_cluster;

  /// Ingests every KB into a finalized EntityCollection.
  Result<EntityCollection> BuildCollection(
      CollectionOptions options = CollectionOptions()) const;

  /// Writes one .nt file per KB plus ground-truth TSVs into `directory`.
  Status WriteTo(const std::string& directory) const;

  uint64_t total_triples() const {
    uint64_t n = 0;
    for (const auto& kb : kbs) n += kb.triples.size();
    return n;
  }
};

/// Generates a cloud from `config`. Fails on invalid configuration.
Result<LodCloud> GenerateLodCloud(const LodCloudConfig& config);

}  // namespace datagen
}  // namespace minoan

#endif  // MINOAN_DATAGEN_LOD_GENERATOR_H_
