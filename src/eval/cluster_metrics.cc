#include "eval/cluster_metrics.h"

#include <unordered_map>
#include <vector>

namespace minoan {

ClusterMetrics EvaluateClusters(const ResolutionRun& run,
                                const GroundTruth& truth) {
  ClusterMetrics out;
  const uint32_t n = truth.num_entities();
  UnionFind closure = run.BuildClosure(n);

  // Resolved cluster membership lists, keyed by root.
  std::unordered_map<uint32_t, std::vector<EntityId>> resolved;
  for (EntityId e = 0; e < n; ++e) {
    resolved[closure.Find(e)].push_back(e);
  }

  uint64_t size_sum = 0;
  for (const auto& [root, members] : resolved) {
    if (members.size() < 2) continue;
    ++out.clusters;
    size_sum += members.size();
    out.clustered_entities += static_cast<uint32_t>(members.size());
    out.largest_cluster = std::max(out.largest_cluster,
                                   static_cast<uint32_t>(members.size()));
  }
  out.mean_cluster_size =
      out.clusters == 0
          ? 0.0
          : static_cast<double>(size_sum) / static_cast<double>(out.clusters);

  // B-cubed over matchable entities. For entity e with resolved cluster C(e)
  // and truth cluster T(e): precision(e) = |C∩T| / |C|, recall(e) = |C∩T| /
  // |T| (both include e itself).
  double precision_sum = 0.0, recall_sum = 0.0;
  uint32_t counted = 0;
  for (EntityId e = 0; e < n; ++e) {
    const uint32_t tc = truth.ClusterOf(e);
    if (tc == kInvalidEntity) continue;
    ++counted;
    const auto& members = resolved[closure.Find(e)];
    uint32_t overlap = 0;
    for (EntityId m : members) {
      if (truth.ClusterOf(m) == tc) ++overlap;
    }
    const size_t truth_size = truth.clusters()[tc].size();
    precision_sum +=
        static_cast<double>(overlap) / static_cast<double>(members.size());
    recall_sum +=
        static_cast<double>(overlap) / static_cast<double>(truth_size);
  }
  if (counted > 0) {
    out.bcubed_precision = precision_sum / counted;
    out.bcubed_recall = recall_sum / counted;
  }
  out.bcubed_f1 =
      (out.bcubed_precision + out.bcubed_recall) == 0.0
          ? 0.0
          : 2.0 * out.bcubed_precision * out.bcubed_recall /
                (out.bcubed_precision + out.bcubed_recall);
  return out;
}

}  // namespace minoan
