// Copyright 2026 The MinoanER Authors.
// Cluster-level evaluation: B-cubed precision/recall and closure statistics.
//
// Pair-level metrics (metrics.h) score emitted matches; cluster-level
// metrics score the *transitive closure* the matches induce — the view a
// downstream consumer of resolved entities actually sees. B-cubed is the
// standard cluster metric in ER: for each description, how pure is its
// resolved cluster (precision) and how much of its true cluster did it
// gather (recall).

#ifndef MINOAN_EVAL_CLUSTER_METRICS_H_
#define MINOAN_EVAL_CLUSTER_METRICS_H_

#include <cstdint>

#include "eval/ground_truth.h"
#include "matching/matcher.h"
#include "matching/union_find.h"

namespace minoan {

/// B-cubed scores plus closure shape statistics.
struct ClusterMetrics {
  double bcubed_precision = 0.0;
  double bcubed_recall = 0.0;
  double bcubed_f1 = 0.0;
  /// Closure shape.
  uint32_t clusters = 0;           // resolved clusters with >= 2 members
  uint32_t largest_cluster = 0;
  double mean_cluster_size = 0.0;  // over clusters with >= 2 members
  /// Descriptions placed in any non-singleton cluster.
  uint32_t clustered_entities = 0;
};

/// Evaluates the closure of `run` against `truth`. B-cubed is averaged over
/// the entities that the truth marks as matchable (singletons in the truth
/// carry no signal about resolution quality and are excluded, as usual).
ClusterMetrics EvaluateClusters(const ResolutionRun& run,
                                const GroundTruth& truth);

}  // namespace minoan

#endif  // MINOAN_EVAL_CLUSTER_METRICS_H_
