#include "eval/ground_truth.h"

#include <fstream>

#include "matching/union_find.h"

namespace minoan {

GroundTruth::GroundTruth(
    uint32_t num_entities,
    const std::vector<std::pair<EntityId, EntityId>>& pairs) {
  UnionFind uf(num_entities);
  for (const auto& [a, b] : pairs) uf.Union(a, b);
  clusters_ = uf.Clusters(/*min_size=*/2);
  cluster_of_.assign(num_entities, kInvalidEntity);
  for (uint32_t c = 0; c < clusters_.size(); ++c) {
    for (EntityId e : clusters_[c]) cluster_of_[e] = c;
    const uint64_t n = clusters_[c].size();
    num_pairs_ += n * (n - 1) / 2;
    matchable_entities_ += static_cast<uint32_t>(n);
  }
}

Result<GroundTruth> GroundTruth::FromCloud(const datagen::LodCloud& cloud,
                                           const EntityCollection& collection) {
  std::vector<std::pair<EntityId, EntityId>> pairs;
  pairs.reserve(cloud.truth.size());
  for (const datagen::TruthPair& p : cloud.truth) {
    const EntityId a = collection.FindByIri(p.iri_a);
    const EntityId b = collection.FindByIri(p.iri_b);
    if (a == kInvalidEntity || b == kInvalidEntity) {
      return Status::NotFound("truth IRI not in collection: " +
                              (a == kInvalidEntity ? p.iri_a : p.iri_b));
    }
    pairs.emplace_back(a, b);
  }
  return GroundTruth(collection.num_entities(), pairs);
}

Result<GroundTruth> GroundTruth::FromTsv(const std::string& path,
                                         const EntityCollection& collection) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<std::pair<EntityId, EntityId>> pairs;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected iri<TAB>iri");
    }
    const EntityId a = collection.FindByIri(line.substr(0, tab));
    const EntityId b = collection.FindByIri(line.substr(tab + 1));
    if (a == kInvalidEntity || b == kInvalidEntity) {
      return Status::NotFound("line " + std::to_string(line_no) +
                              ": IRI not in collection");
    }
    pairs.emplace_back(a, b);
  }
  return GroundTruth(collection.num_entities(), pairs);
}

bool GroundTruth::Matches(EntityId a, EntityId b) const {
  if (a == b) return false;
  const uint32_t ca = cluster_of_[a];
  return ca != kInvalidEntity && ca == cluster_of_[b];
}

}  // namespace minoan
