// Copyright 2026 The MinoanER Authors.
// Ground truth: the reference equivalences against which every experiment
// measures recall, precision, and the quality aspects.

#ifndef MINOAN_EVAL_GROUND_TRUTH_H_
#define MINOAN_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "datagen/lod_generator.h"
#include "kb/collection.h"
#include "kb/entity.h"
#include "util/status.h"

namespace minoan {

/// Immutable truth over one EntityCollection: the set of matching
/// description pairs plus the induced equivalence clusters.
class GroundTruth {
 public:
  /// Builds from explicit matching pairs (entity ids). The transitive
  /// closure is taken automatically.
  GroundTruth(uint32_t num_entities,
              const std::vector<std::pair<EntityId, EntityId>>& pairs);

  /// Resolves generator truth (IRI pairs) against an ingested collection.
  /// Fails when an IRI cannot be found.
  static Result<GroundTruth> FromCloud(const datagen::LodCloud& cloud,
                                       const EntityCollection& collection);

  /// Loads a ground_truth.tsv (iri<TAB>iri per line) against a collection.
  static Result<GroundTruth> FromTsv(const std::string& path,
                                     const EntityCollection& collection);

  /// True when (a, b) is a matching pair (closure-level).
  bool Matches(EntityId a, EntityId b) const;

  /// Number of matching pairs in the closure (Σ C(|cluster|, 2)).
  uint64_t num_pairs() const { return num_pairs_; }

  /// Cluster id of an entity, or kInvalidEntity when the entity has no
  /// duplicate (singleton).
  uint32_t ClusterOf(EntityId e) const { return cluster_of_[e]; }

  /// All non-singleton clusters (each sorted ascending).
  const std::vector<std::vector<EntityId>>& clusters() const {
    return clusters_;
  }

  uint32_t num_entities() const {
    return static_cast<uint32_t>(cluster_of_.size());
  }

  /// Entities that have at least one duplicate.
  uint32_t num_matchable_entities() const { return matchable_entities_; }

 private:
  std::vector<uint32_t> cluster_of_;            // entity -> cluster or invalid
  std::vector<std::vector<EntityId>> clusters_; // non-singletons only
  uint64_t num_pairs_ = 0;
  uint32_t matchable_entities_ = 0;
};

}  // namespace minoan

#endif  // MINOAN_EVAL_GROUND_TRUTH_H_
