#include "eval/metrics.h"

#include <unordered_set>

#include "util/hash.h"

namespace minoan {

BlockingMetrics EvaluateCandidates(const std::vector<Comparison>& candidates,
                                   const GroundTruth& truth,
                                   uint64_t brute_force) {
  BlockingMetrics m;
  m.comparisons = candidates.size();
  m.truth_pairs = truth.num_pairs();
  std::unordered_set<uint64_t> found;
  for (const Comparison& c : candidates) {
    if (truth.Matches(c.a, c.b)) {
      found.insert(PairKey(c.a, c.b));
    }
  }
  m.matching_pairs = found.size();
  m.pair_completeness =
      m.truth_pairs == 0 ? 0.0
                         : static_cast<double>(m.matching_pairs) /
                               static_cast<double>(m.truth_pairs);
  m.pair_quality = m.comparisons == 0
                       ? 0.0
                       : static_cast<double>(m.matching_pairs) /
                             static_cast<double>(m.comparisons);
  m.reduction_ratio =
      brute_force == 0 ? 0.0
                       : 1.0 - static_cast<double>(m.comparisons) /
                                   static_cast<double>(brute_force);
  return m;
}

BlockingMetrics EvaluateBlocks(const BlockCollection& blocks,
                               const EntityCollection& collection,
                               ResolutionMode mode, const GroundTruth& truth) {
  return EvaluateCandidates(blocks.DistinctComparisons(collection, mode),
                            truth, BruteForceComparisons(collection, mode));
}

BlockingMetrics EvaluateWeighted(
    const std::vector<WeightedComparison>& candidates,
    const GroundTruth& truth, uint64_t brute_force) {
  std::vector<Comparison> plain;
  plain.reserve(candidates.size());
  for (const WeightedComparison& c : candidates) plain.emplace_back(c.a, c.b);
  return EvaluateCandidates(plain, truth, brute_force);
}

uint64_t BruteForceComparisons(const EntityCollection& collection,
                               ResolutionMode mode) {
  const uint64_t n = collection.num_entities();
  if (mode == ResolutionMode::kDirty) return n * (n - 1) / 2;
  uint64_t same_kb = 0;
  for (uint32_t k = 0; k < collection.num_kbs(); ++k) {
    const uint64_t nk = collection.kb(k).num_entities();
    same_kb += nk * (nk - 1) / 2;
  }
  return n * (n - 1) / 2 - same_kb;
}

MatchingMetrics EvaluateMatches(const std::vector<MatchEvent>& matches,
                                const GroundTruth& truth) {
  MatchingMetrics m;
  std::unordered_set<uint64_t> emitted, correct;
  for (const MatchEvent& e : matches) {
    if (!emitted.insert(PairKey(e.a, e.b)).second) continue;
    if (truth.Matches(e.a, e.b)) correct.insert(PairKey(e.a, e.b));
  }
  m.emitted = emitted.size();
  m.correct = correct.size();
  m.precision = m.emitted == 0 ? 0.0
                               : static_cast<double>(m.correct) /
                                     static_cast<double>(m.emitted);
  m.recall = truth.num_pairs() == 0
                 ? 0.0
                 : static_cast<double>(m.correct) /
                       static_cast<double>(truth.num_pairs());
  m.f1 = (m.precision + m.recall) == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace minoan
