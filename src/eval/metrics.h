// Copyright 2026 The MinoanER Authors.
// Blocking- and matching-quality metrics.

#ifndef MINOAN_EVAL_METRICS_H_
#define MINOAN_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "eval/ground_truth.h"
#include "kb/collection.h"
#include "matching/matcher.h"
#include "metablocking/meta_blocking_types.h"

namespace minoan {

/// Standard blocking quality triple.
struct BlockingMetrics {
  uint64_t comparisons = 0;      // distinct candidate pairs
  uint64_t matching_pairs = 0;   // candidates that are true matches
  uint64_t truth_pairs = 0;      // |ground truth|
  double pair_completeness = 0;  // PC: recall of the candidate set
  double pair_quality = 0;       // PQ: precision of the candidate set
  double reduction_ratio = 0;    // RR: 1 - comparisons / brute-force
};

/// Evaluates a candidate comparison set against the truth. `brute_force` is
/// the comparison count of the exhaustive baseline (for RR): all cross-KB
/// pairs for clean-clean, C(n,2) for dirty.
BlockingMetrics EvaluateCandidates(const std::vector<Comparison>& candidates,
                                   const GroundTruth& truth,
                                   uint64_t brute_force);

/// Convenience overloads.
BlockingMetrics EvaluateBlocks(const BlockCollection& blocks,
                               const EntityCollection& collection,
                               ResolutionMode mode, const GroundTruth& truth);
BlockingMetrics EvaluateWeighted(
    const std::vector<WeightedComparison>& candidates,
    const GroundTruth& truth, uint64_t brute_force);

/// Number of brute-force comparisons under `mode`.
uint64_t BruteForceComparisons(const EntityCollection& collection,
                               ResolutionMode mode);

/// Pair-level precision / recall / F1 of a match set.
struct MatchingMetrics {
  uint64_t emitted = 0;
  uint64_t correct = 0;
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

MatchingMetrics EvaluateMatches(const std::vector<MatchEvent>& matches,
                                const GroundTruth& truth);

}  // namespace minoan

#endif  // MINOAN_EVAL_METRICS_H_
