#include "eval/progressive_metrics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "matching/union_find.h"
#include "util/hash.h"

namespace minoan {

std::vector<CurvePoint> ProgressiveRecallCurve(const ResolutionRun& run,
                                               const GroundTruth& truth) {
  std::vector<CurvePoint> curve;
  curve.push_back({0, 0.0});
  std::unordered_set<uint64_t> found;
  const double denom =
      truth.num_pairs() == 0 ? 1.0 : static_cast<double>(truth.num_pairs());
  for (const MatchEvent& m : run.matches) {
    if (!truth.Matches(m.a, m.b)) continue;
    if (!found.insert(PairKey(m.a, m.b)).second) continue;
    curve.push_back(
        {m.comparisons_done, static_cast<double>(found.size()) / denom});
  }
  curve.push_back({run.comparisons_executed,
                   static_cast<double>(found.size()) / denom});
  return curve;
}

double ProgressiveRecallAuc(const ResolutionRun& run, const GroundTruth& truth,
                            uint64_t horizon) {
  if (horizon == 0) horizon = run.comparisons_executed;
  if (horizon == 0) return 0.0;
  const std::vector<CurvePoint> curve = ProgressiveRecallCurve(run, truth);
  // Integrate the step function: recall jumps at each curve point.
  double area = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    const uint64_t from = std::min(curve[i - 1].comparisons, horizon);
    const uint64_t to = std::min(curve[i].comparisons, horizon);
    area += static_cast<double>(to - from) * curve[i - 1].recall;
  }
  // Tail beyond the last event holds the final recall.
  const uint64_t last = std::min(curve.back().comparisons, horizon);
  area += static_cast<double>(horizon - last) * curve.back().recall;
  return area / static_cast<double>(horizon);
}

ResolutionRun TruncateRun(const ResolutionRun& run, uint64_t budget) {
  ResolutionRun out;
  out.comparisons_executed = std::min(run.comparisons_executed, budget);
  for (const MatchEvent& m : run.matches) {
    if (m.comparisons_done <= budget) out.matches.push_back(m);
  }
  return out;
}

QualityAspects EvaluateQualityAspects(const ResolutionRun& run,
                                      const GroundTruth& truth,
                                      const EntityCollection& collection,
                                      const NeighborGraph& graph) {
  QualityAspects q;
  UnionFind closure = run.BuildClosure(collection.num_entities());

  // Per-entity distinct attribute values (sorted) for completeness math.
  auto values_of = [&](EntityId e) {
    std::vector<uint32_t> vals;
    for (const Attribute& a : collection.entity(e).attributes) {
      vals.push_back(a.value);
    }
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    return vals;
  };

  // resolved_correctly(e): e is co-clustered with at least one of its true
  // duplicates (false-positive merges don't count as resolution).
  std::vector<bool> resolved(collection.num_entities(), false);
  for (const auto& cluster : truth.clusters()) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        if (closure.SameSet(cluster[i], cluster[j])) {
          resolved[cluster[i]] = true;
          resolved[cluster[j]] = true;
        }
      }
    }
  }

  // Attribute completeness & entity coverage over truth clusters.
  double completeness_sum = 0.0;
  uint32_t covered = 0;
  for (const auto& cluster : truth.clusters()) {
    // Union of all values of the cluster.
    std::vector<uint32_t> all;
    for (EntityId e : cluster) {
      auto v = values_of(e);
      all.insert(all.end(), v.begin(), v.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());

    // Fragments: members grouped by closure root.
    std::unordered_map<uint32_t, std::vector<EntityId>> fragments;
    for (EntityId e : cluster) fragments[closure.Find(e)].push_back(e);
    size_t best_values = 0;
    bool any_pair = false;
    for (const auto& [root, members] : fragments) {
      if (members.size() >= 2) any_pair = true;
      std::vector<uint32_t> frag_vals;
      for (EntityId e : members) {
        auto v = values_of(e);
        frag_vals.insert(frag_vals.end(), v.begin(), v.end());
      }
      std::sort(frag_vals.begin(), frag_vals.end());
      frag_vals.erase(std::unique(frag_vals.begin(), frag_vals.end()),
                      frag_vals.end());
      best_values = std::max(best_values, frag_vals.size());
    }
    if (any_pair) ++covered;
    completeness_sum += all.empty() ? 0.0
                                    : static_cast<double>(best_values) /
                                          static_cast<double>(all.size());
  }
  const double num_clusters =
      truth.clusters().empty() ? 1.0
                               : static_cast<double>(truth.clusters().size());
  q.attribute_completeness = completeness_sum / num_clusters;
  q.entity_coverage = static_cast<double>(covered) / num_clusters;

  // Relationship completeness over graph edges whose endpoints both have
  // duplicates.
  uint64_t eligible = 0, complete = 0;
  for (EntityId e = 0; e < collection.num_entities(); ++e) {
    if (truth.ClusterOf(e) == kInvalidEntity) continue;
    for (EntityId n : graph.Neighbors(e)) {
      if (n <= e) continue;  // each undirected edge once
      if (truth.ClusterOf(n) == kInvalidEntity) continue;
      ++eligible;
      if (resolved[e] && resolved[n]) ++complete;
    }
  }
  q.relationship_completeness =
      eligible == 0 ? 0.0
                    : static_cast<double>(complete) /
                          static_cast<double>(eligible);
  return q;
}

}  // namespace minoan
