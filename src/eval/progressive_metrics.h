// Copyright 2026 The MinoanER Authors.
// Progressive-quality metrics: recall-vs-budget curves, their normalized
// area, and the three data-quality aspects the poster targets.
//
// Quality-aspect formalization (the poster names the aspects without
// formulas; these are the natural cluster-level definitions, recorded in
// DESIGN.md):
//   * attribute completeness — for each real entity (truth cluster with >= 2
//     descriptions), the fraction of all its known attribute values gathered
//     in its largest resolved fragment; averaged over real entities.
//   * entity coverage — fraction of real entities with at least one resolved
//     pair (largest fragment >= 2).
//   * relationship completeness — fraction of relation edges, both of whose
//     endpoints have duplicates, whose both endpoints are resolved (their
//     clusters grew beyond singletons).

#ifndef MINOAN_EVAL_PROGRESSIVE_METRICS_H_
#define MINOAN_EVAL_PROGRESSIVE_METRICS_H_

#include <cstdint>
#include <vector>

#include "eval/ground_truth.h"
#include "kb/collection.h"
#include "kb/neighbor_graph.h"
#include "matching/matcher.h"

namespace minoan {

/// One point of a progressive-recall curve.
struct CurvePoint {
  uint64_t comparisons;
  double recall;
};

/// Recall (correct distinct truth pairs found / truth pairs) after every
/// match event, ending with a point at `total_comparisons`.
std::vector<CurvePoint> ProgressiveRecallCurve(const ResolutionRun& run,
                                               const GroundTruth& truth);

/// Normalized area under the progressive-recall curve over the comparison
/// axis [0, horizon]. 1.0 = perfect (all matches found immediately);
/// a random order achieves about half the final recall. When horizon is 0,
/// the run's executed count is used.
double ProgressiveRecallAuc(const ResolutionRun& run, const GroundTruth& truth,
                            uint64_t horizon = 0);

/// Cuts a run at `budget` comparisons (matches found up to that point).
ResolutionRun TruncateRun(const ResolutionRun& run, uint64_t budget);

/// The three quality aspects of a (possibly truncated) run.
struct QualityAspects {
  double attribute_completeness = 0.0;
  double entity_coverage = 0.0;
  double relationship_completeness = 0.0;
};

QualityAspects EvaluateQualityAspects(const ResolutionRun& run,
                                      const GroundTruth& truth,
                                      const EntityCollection& collection,
                                      const NeighborGraph& graph);

}  // namespace minoan

#endif  // MINOAN_EVAL_PROGRESSIVE_METRICS_H_
