// Copyright 2026 The MinoanER Authors.
// MemoryBudgetOptions: the external-memory knob of the shuffle phases.
//
// MinoanER targets Web-of-Data-scale collections whose intermediate shuffle
// state (blocking postings, meta-blocking vote shards) can exceed RAM. A
// memory budget turns both shuffles into spill-to-disk shuffles (see
// extmem/shuffle.h): each shard buffers records up to a bounded run size,
// spills sorted runs to temp files, and merges them back in the exact byte
// order the in-memory path emits — the output is bit-identical with and
// without spilling, at every thread count.

#ifndef MINOAN_EXTMEM_MEMORY_BUDGET_H_
#define MINOAN_EXTMEM_MEMORY_BUDGET_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace minoan {
namespace extmem {

/// Floor on the per-shard run buffer: below this, runs degenerate to a
/// handful of records each and the merge fan-in explodes. Deliberately tiny
/// so tests can force many runs on small corpora.
inline constexpr uint64_t kMinSpillRunBytes = 256;

/// Ceiling on the per-shard run buffer (the sink indexes its buffer with
/// 32-bit offsets; 1 GiB per shard × 64 shards is far past the point where
/// spilling stops being the bottleneck anyway).
inline constexpr uint64_t kMaxSpillRunBytes = 1ull << 30;

/// Default cap on the k-way merge fan-in of one shard sink (see
/// MemoryBudgetOptions::max_merge_fanin).
inline constexpr uint32_t kDefaultMergeFanin = 16;

/// External-memory budget for the shuffle phases. Default-constructed =
/// disabled (pure in-memory, today's fast path, zero overhead).
struct MemoryBudgetOptions {
  /// Total bytes the intermediate shuffle state of one phase may hold in
  /// RAM before spilling, split evenly across that phase's shards.
  /// 0 = unbounded (in-memory) unless spill_run_bytes is set.
  uint64_t shuffle_budget_bytes = 0;

  /// Explicit per-shard run-buffer size in bytes; overrides the
  /// budget-derived split when non-zero. Mostly a testing/tuning knob.
  uint64_t spill_run_bytes = 0;

  /// Directory for temp run files. Empty = the system temp directory.
  /// Each shuffle creates (and removes, on success and on error) its own
  /// uniquely named subdirectory underneath.
  std::string spill_dir;

  /// Cap on how many run files one shard sink merges at once. When a sink
  /// has spilled more runs than this, consecutive runs are cascade-merged
  /// into a next generation of (at most fan-in) larger runs until the final
  /// merge fits — so no merge ever holds more than fan-in + 1 files open,
  /// regardless of how tiny the run budget is. 0 = kDefaultMergeFanin; the
  /// effective minimum is 2.
  uint32_t max_merge_fanin = 0;

  /// True when any budget is set: the shuffles take the spill path.
  bool enabled() const {
    return shuffle_budget_bytes > 0 || spill_run_bytes > 0;
  }

  /// Run-buffer bytes for one of `num_shards` shard sinks.
  uint64_t RunBytesPerShard(uint32_t num_shards) const {
    const uint64_t raw = spill_run_bytes > 0
                             ? spill_run_bytes
                             : shuffle_budget_bytes /
                                   std::max<uint32_t>(1, num_shards);
    return std::clamp(raw, kMinSpillRunBytes, kMaxSpillRunBytes);
  }

  /// Effective cascaded-merge fan-in (>= 2).
  uint32_t MergeFanin() const {
    return std::max<uint32_t>(
        2, max_merge_fanin == 0 ? kDefaultMergeFanin : max_merge_fanin);
  }
};

}  // namespace extmem
}  // namespace minoan

#endif  // MINOAN_EXTMEM_MEMORY_BUDGET_H_
