// Copyright 2026 The MinoanER Authors.

#include "extmem/postings_stream.h"

#include "extmem/run_merger.h"
#include "util/thread_pool.h"

namespace minoan {
namespace extmem {

MergedShuffle::MergedShuffle(const MemoryBudgetOptions& memory,
                             uint32_t num_shards)
    : dir_(memory.spill_dir), sinks_(num_shards) {
  const uint64_t run_bytes = memory.RunBytesPerShard(num_shards);
  for (auto& sink : sinks_) {
    sink =
        std::make_unique<SpillShuffle>(run_bytes, &dir_, memory.MergeFanin());
  }
}

MergedShuffle::~MergedShuffle() {
  // Release run readers (merger → per-shard sources → file handles) before
  // dir_'s destructor removes the spill directory.
  merged_.reset();
  sinks_.clear();
}

ShuffleSource& MergedShuffle::FinishMerged(ThreadPool* pool) {
  std::vector<std::unique_ptr<ShuffleSource>> sources(sinks_.size());
  RunPoolTasks(pool, sinks_.size(),
               [&](size_t s) { sources[s] = sinks_[s]->Finish(); });
  // Keys are shard-disjoint, so merging the per-shard sorted streams by key
  // bytes yields the global key order; the run-index tie-break never fires.
  merged_ = std::make_unique<RunMerger>(std::move(sources));
  return *merged_;
}

}  // namespace extmem
}  // namespace minoan
