// Copyright 2026 The MinoanER Authors.
// Streaming postings: a globally key-sorted record stream over many spilled
// shard sinks, and a posting-group cursor on top of it.
//
// The sharded blocking core routes (key, entity) records to 64 key-hashed
// shard sinks; the in-memory path then concatenates the per-shard sorted
// postings and sorts them by key. Because every occurrence of one key lands
// in exactly ONE shard, the same global key order can be produced without
// materializing anything: k-way-merge the 64 finished shard sources by key
// bytes (the key byte encoding is order-preserving, and key ties across
// shards are impossible). MergedShuffle packages that — the sinks, their
// ScopedSpillDir, and the cross-shard RunMerger — behind one ShuffleSource
// whose stream is byte-identical at every thread count and budget.
//
// PostingsStream turns the merged record stream into (key, [entities])
// posting groups, one per distinct key, holding only the current group in
// memory. This is what lets the blocking methods feed the graph-view /
// block-store builder directly from spill runs, with the BlockCollection
// never materialized.

#ifndef MINOAN_EXTMEM_POSTINGS_STREAM_H_
#define MINOAN_EXTMEM_POSTINGS_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/memory_budget.h"
#include "extmem/shuffle.h"
#include "extmem/spill_file.h"

namespace minoan {

class ThreadPool;

namespace extmem {

/// Owns a set of spilling shard sinks plus their temp dir, and merges the
/// finished shards into one globally key-sorted stream. Keys must be
/// shard-disjoint (each key routed to exactly one sink) — that is what
/// makes the cross-shard merge a total key order.
class MergedShuffle {
 public:
  /// Creates `num_shards` sinks with per-shard run budgets derived from
  /// `memory` (see MemoryBudgetOptions::RunBytesPerShard / MergeFanin).
  MergedShuffle(const MemoryBudgetOptions& memory, uint32_t num_shards);
  ~MergedShuffle();

  MergedShuffle(const MergedShuffle&) = delete;
  MergedShuffle& operator=(const MergedShuffle&) = delete;

  /// The shard sinks, for ScatterIntoSinks. Valid until FinishMerged.
  std::vector<std::unique_ptr<SpillShuffle>>& sinks() { return sinks_; }

  /// Finishes every sink (parallel across shards) and returns the merged,
  /// globally key-sorted stream. Call exactly once; the returned source is
  /// owned by this object and valid for its lifetime.
  ShuffleSource& FinishMerged(ThreadPool* pool);

 private:
  ScopedSpillDir dir_;
  std::vector<std::unique_ptr<SpillShuffle>> sinks_;
  std::unique_ptr<ShuffleSource> merged_;
};

/// Groups a key-sorted record stream (payload = u32 LE entity id) into
/// postings: each Next yields one distinct key and all its entities, in
/// stream (= arrival, for equal keys) order.
template <typename Key>
class PostingsStream {
 public:
  explicit PostingsStream(ShuffleSource& source) : source_(&source) {}

  /// Advances to the next posting. Returns false at end of stream.
  bool Next(Key& key, std::vector<uint32_t>& entities) {
    entities.clear();
    std::string_view record;
    if (!has_pending_) {
      if (!source_->Next(record)) return false;
      key_bytes_.assign(RecordKey(record));
      pending_entity_ = ReadU32Le(RecordPayload(record));
    }
    has_pending_ = false;
    key = DecodeKey<Key>(key_bytes_);
    entities.push_back(pending_entity_);
    while (source_->Next(record)) {
      const std::string_view key_bytes = RecordKey(record);
      if (key_bytes != key_bytes_) {
        key_bytes_.assign(key_bytes);
        pending_entity_ = ReadU32Le(RecordPayload(record));
        has_pending_ = true;
        break;
      }
      entities.push_back(ReadU32Le(RecordPayload(record)));
    }
    return true;
  }

 private:
  ShuffleSource* source_;
  std::string key_bytes_;
  uint32_t pending_entity_ = 0;
  bool has_pending_ = false;
};

}  // namespace extmem
}  // namespace minoan

#endif  // MINOAN_EXTMEM_POSTINGS_STREAM_H_
