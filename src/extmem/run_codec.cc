// Copyright 2026 The MinoanER Authors.

#include "extmem/run_codec.h"

#include <cstring>

namespace minoan {
namespace extmem {

namespace {

constexpr size_t kMaxVarintBytes = 10;

// Local copies of the shuffle record framing helpers (run_codec sits below
// shuffle.h in the include graph).
inline void PutU32Le(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

[[noreturn]] void ThrowCorrupt(const std::string& path, const char* what) {
  throw SpillError("compressed run " + path + ": " + what);
}

}  // namespace

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view bytes, size_t& pos, uint64_t& v) {
  uint64_t value = 0;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos + i >= bytes.size()) return false;
    const uint8_t byte = static_cast<uint8_t>(bytes[pos + i]);
    value |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      pos += i + 1;
      v = value;
      return true;
    }
  }
  return false;  // overlong encoding
}

CompressedRunWriter::CompressedRunWriter(std::string path)
    : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    throw SpillError("failed to open spill run for writing: " + path_);
  }
  out_.write(kRunMagic.data(), static_cast<std::streamsize>(kRunMagic.size()));
  bytes_ += kRunMagic.size();
}

void CompressedRunWriter::Append(std::string_view record) {
  if (record.size() < 4) {
    throw SpillError("malformed shuffle record (short frame): " + path_);
  }
  const uint32_t key_len = GetU32Le(record.data());
  if (record.size() < 4u + key_len) {
    throw SpillError("malformed shuffle record (short key): " + path_);
  }
  const std::string_view key = record.substr(4, key_len);
  const std::string_view payload = record.substr(4 + key_len);

  size_t shared = 0;
  const size_t max_shared = std::min(prev_key_.size(), key.size());
  while (shared < max_shared && prev_key_[shared] == key[shared]) ++shared;

  frame_.clear();
  PutVarint(frame_, shared);
  PutVarint(frame_, key.size() - shared);
  PutVarint(frame_, payload.size());
  frame_.append(key.substr(shared));
  frame_.append(payload);
  out_.write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
  bytes_ += frame_.size();
  ++records_;
  prev_key_.assign(key.data(), key.size());
}

uint64_t CompressedRunWriter::Close() {
  out_.flush();
  if (!out_.good()) {
    throw SpillError("failed to write spill run: " + path_);
  }
  out_.close();
  return bytes_;
}

CompressedRunReader::CompressedRunReader(std::string path)
    : path_(std::move(path)) {
  in_.open(path_, std::ios::binary);
  if (!in_.is_open()) {
    throw SpillError("failed to open spill run for reading: " + path_);
  }
  char magic[8];
  in_.read(magic, static_cast<std::streamsize>(kRunMagic.size()));
  if (static_cast<size_t>(in_.gcount()) != kRunMagic.size() ||
      std::memcmp(magic, kRunMagic.data(), kRunMagic.size()) != 0) {
    ThrowCorrupt(path_, "bad magic");
  }
}

bool CompressedRunReader::Next(std::string_view& record) {
  // Read the (up to 3 * 10 byte) varint header. The first byte decides
  // between clean EOF and truncation.
  char header[3 * kMaxVarintBytes];
  in_.read(header, 1);
  if (in_.gcount() == 0) {
    if (in_.eof()) return false;
    ThrowCorrupt(path_, "read failure");
  }
  size_t header_len = 1;
  uint64_t shared = 0, suffix_len = 0, payload_len = 0;
  uint64_t* const fields[3] = {&shared, &suffix_len, &payload_len};
  size_t pos = 0;
  for (int f = 0; f < 3; ++f) {
    for (;;) {
      size_t probe = pos;
      if (GetVarint(std::string_view(header, header_len), probe, *fields[f])) {
        pos = probe;
        break;
      }
      if (header_len >= sizeof(header)) ThrowCorrupt(path_, "overlong varint");
      in_.read(header + header_len, 1);
      if (in_.gcount() != 1) ThrowCorrupt(path_, "truncated frame header");
      ++header_len;
      if (header_len - pos > kMaxVarintBytes) {
        ThrowCorrupt(path_, "overlong varint");
      }
    }
  }

  if (shared > prev_key_.size()) {
    ThrowCorrupt(path_, "shared prefix exceeds previous key");
  }
  if (suffix_len > kMaxRunFieldBytes || payload_len > kMaxRunFieldBytes ||
      shared + suffix_len > kMaxRunFieldBytes) {
    ThrowCorrupt(path_, "oversized frame");
  }

  const size_t key_len = static_cast<size_t>(shared + suffix_len);
  record_.clear();
  PutU32Le(record_, static_cast<uint32_t>(key_len));
  record_.append(prev_key_, 0, static_cast<size_t>(shared));
  const size_t body_len = static_cast<size_t>(suffix_len + payload_len);
  const size_t body_at = record_.size();
  record_.resize(record_.size() + body_len);
  in_.read(record_.data() + body_at, static_cast<std::streamsize>(body_len));
  if (static_cast<size_t>(in_.gcount()) != body_len) {
    ThrowCorrupt(path_, "truncated record body");
  }
  prev_key_.assign(record_.data() + 4, key_len);
  record = record_;
  return true;
}

}  // namespace extmem
}  // namespace minoan
