// Copyright 2026 The MinoanER Authors.
// Compressed spill-run files: varint frames with front-coded (prefix-delta)
// keys.
//
// Spill runs are sorted by key, so consecutive records usually share a long
// key prefix — for big-endian integer keys the shared prefix IS the
// high-order delta, for string keys it is the common stem. Each record is
// stored as
//
//   [varint shared_key_prefix_len][varint key_suffix_len]
//   [varint payload_len][key suffix bytes][payload bytes]
//
// after an 8-byte file magic. The codec is lossless: readers reconstruct the
// exact [u32 LE key_len][key][payload] record bytes the writer was given, so
// the spill engine's byte-identity contract is untouched while runs shrink
// on disk (typically 2-4x for postings shards).
//
// Robustness contract (exercised by the corruption fuzz tests): a reader
// over a truncated or bit-flipped run either returns records or throws
// SpillError — never crashes, hangs, or makes unbounded allocations. Every
// varint is bounds-checked, every length is capped, and a shared-prefix
// length can never exceed the previous key.

#ifndef MINOAN_EXTMEM_RUN_CODEC_H_
#define MINOAN_EXTMEM_RUN_CODEC_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "extmem/spill_file.h"

namespace minoan {
namespace extmem {

/// First bytes of every compressed run file.
inline constexpr std::string_view kRunMagic = "MNRUNZ1\n";

/// Cap on any single decoded length field (key or payload). A corrupt
/// varint can claim at most this much, bounding reader allocations.
inline constexpr uint64_t kMaxRunFieldBytes = 1ull << 30;

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
void PutVarint(std::string& out, uint64_t v);

/// Decodes a varint at `pos` in `bytes`, advancing `pos`. Returns false on
/// truncation or an overlong (> 10 byte) encoding.
bool GetVarint(std::string_view bytes, size_t& pos, uint64_t& v);

/// Sequential writer of one compressed run file. Records must be appended
/// in sorted key order (the spill sink sorts a run before writing) — front
/// coding relies on it for compression, not for correctness.
class CompressedRunWriter {
 public:
  /// Opens `path` (truncating) and writes the magic. Throws SpillError on
  /// failure.
  explicit CompressedRunWriter(std::string path);

  /// Appends one record ([u32 LE key_len][key][payload] bytes, the shuffle
  /// record layout). Errors are detected (and thrown) in Close.
  void Append(std::string_view record);

  /// Flushes and closes; throws SpillError if any write failed. Returns the
  /// total compressed bytes written (magic included).
  uint64_t Close();

  uint64_t records() const { return records_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::string prev_key_;
  std::string frame_;  // per-record scratch
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

/// Sequential reader of one compressed run file.
class CompressedRunReader {
 public:
  /// Opens `path` and validates the magic. Throws SpillError on failure.
  explicit CompressedRunReader(std::string path);

  /// Reconstructs the next record ([u32 LE key_len][key][payload], exactly
  /// the bytes given to the writer) into an internal buffer; `record` stays
  /// valid until the next call. Returns false at a clean end of file;
  /// throws SpillError on truncation or corruption.
  bool Next(std::string_view& record);

 private:
  std::string path_;
  std::ifstream in_;
  std::string prev_key_;
  std::string record_;
};

}  // namespace extmem
}  // namespace minoan

#endif  // MINOAN_EXTMEM_RUN_CODEC_H_
