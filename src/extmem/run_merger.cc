#include "extmem/run_merger.h"

#include <utility>

namespace minoan {
namespace extmem {

RunMerger::RunMerger(std::vector<std::unique_ptr<ShuffleSource>> runs)
    : runs_(std::move(runs)) {}

RunMerger::~RunMerger() = default;

bool RunMerger::Before(const Head& a, const Head& b) const {
  const std::string_view ka = RecordKey(a.record);
  const std::string_view kb = RecordKey(b.record);
  const int cmp = ka.compare(kb);
  if (cmp != 0) return cmp < 0;
  return a.run < b.run;
}

void RunMerger::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t best = i;
    if (left < n && Before(heap_[left], heap_[best])) best = left;
    if (right < n && Before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

bool RunMerger::Next(std::string_view& record) {
  if (!primed_) {
    primed_ = true;
    heap_.reserve(runs_.size());
    for (size_t r = 0; r < runs_.size(); ++r) {
      std::string_view head;
      if (runs_[r]->Next(head)) heap_.push_back(Head{head, r});
    }
    for (size_t i = heap_.size(); i-- > 0;) SiftDown(i);
  } else if (!heap_.empty()) {
    // Advance the run whose record the previous call handed out; its view
    // is invalidated by this Next, which is why the advance is lazy.
    Head& top = heap_[0];
    std::string_view head;
    if (runs_[top.run]->Next(head)) {
      top.record = head;
    } else {
      heap_[0] = heap_.back();
      heap_.pop_back();
    }
    if (!heap_.empty()) SiftDown(0);
  }
  if (heap_.empty()) return false;
  record = heap_[0].record;
  return true;
}

}  // namespace extmem
}  // namespace minoan
