// Copyright 2026 The MinoanER Authors.
// RunMerger: the k-way merge reader over sorted shuffle runs.
//
// Each input run is a ShuffleSource whose records are already sorted by key
// (lexicographic over the order-preserving key bytes), with equal keys in
// arrival order. The merger emits the union sorted by key, breaking key
// ties by run index (lower first). Because the spill sink cuts runs at
// arrival boundaries — run 0 holds the earliest records, the final
// in-memory buffer the latest — run-index tie-breaking reproduces the
// STABLE sort of the full arrival sequence, byte for byte.

#ifndef MINOAN_EXTMEM_RUN_MERGER_H_
#define MINOAN_EXTMEM_RUN_MERGER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "extmem/shuffle.h"

namespace minoan {
namespace extmem {

class RunMerger : public ShuffleSource {
 public:
  /// Takes ownership of the runs. Each must yield records in sorted key
  /// order; `runs` must be in arrival order (earliest batch first).
  explicit RunMerger(std::vector<std::unique_ptr<ShuffleSource>> runs);
  ~RunMerger() override;

  bool Next(std::string_view& record) override;

 private:
  struct Head {
    std::string_view record;  // current record of runs_[run]
    size_t run;
  };

  /// Restores the min-heap property for heap_[i] downward.
  void SiftDown(size_t i);
  /// True when heap_[a] orders before heap_[b]: (key, run) ascending.
  bool Before(const Head& a, const Head& b) const;

  std::vector<std::unique_ptr<ShuffleSource>> runs_;
  std::vector<Head> heap_;
  bool primed_ = false;
};

}  // namespace extmem
}  // namespace minoan

#endif  // MINOAN_EXTMEM_RUN_MERGER_H_
