#include "extmem/shuffle.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "extmem/run_merger.h"

namespace minoan {
namespace extmem {

namespace {

// Process-wide spill telemetry. Tests and benches read these to prove that
// a "forced spill" configuration really exercised the disk path.
std::atomic<uint64_t> g_runs_spilled{0};
std::atomic<uint64_t> g_bytes_spilled{0};
std::atomic<uint64_t> g_sinks_spilled{0};
std::atomic<uint64_t> g_sinks_loaded{0};
std::atomic<uint64_t> g_min_runs{std::numeric_limits<uint64_t>::max()};

void AtomicMin(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Source over one sorted in-memory record buffer (the never-spilled fast
/// case, and the final partial run of a spilled sink).
class BufferSource : public ShuffleSource {
 public:
  BufferSource(std::string buffer, std::vector<uint32_t> order)
      : buffer_(std::move(buffer)), order_(std::move(order)) {}

  bool Next(std::string_view& record) override {
    if (next_ >= order_.size()) return false;
    const std::string_view framed =
        std::string_view(buffer_).substr(order_[next_]);
    record = framed.substr(4, ReadU32Le(framed));
    ++next_;
    return true;
  }

 private:
  std::string buffer_;
  std::vector<uint32_t> order_;
  size_t next_ = 0;
};

/// Source over one spilled run file.
class FileSource : public ShuffleSource {
 public:
  explicit FileSource(const std::string& path) : reader_(path) {}
  bool Next(std::string_view& record) override {
    return reader_.Next(record);
  }

 private:
  SpillFileReader reader_;
};

}  // namespace

SpillTelemetry GetSpillTelemetry() {
  SpillTelemetry t;
  t.runs_spilled = g_runs_spilled.load();
  t.bytes_spilled = g_bytes_spilled.load();
  t.sinks_spilled = g_sinks_spilled.load();
  t.sinks_loaded = g_sinks_loaded.load();
  t.min_runs_per_loaded_sink = g_min_runs.load();
  return t;
}

void ResetSpillTelemetry() {
  g_runs_spilled = 0;
  g_bytes_spilled = 0;
  g_sinks_spilled = 0;
  g_sinks_loaded = 0;
  g_min_runs = std::numeric_limits<uint64_t>::max();
}

SpillShuffle::SpillShuffle(uint64_t run_bytes, ScopedSpillDir* dir)
    : run_bytes_(run_bytes), dir_(dir) {}

SpillShuffle::~SpillShuffle() = default;

void SpillShuffle::Add(std::string_view record) {
  // Record offsets are 32-bit (half the index memory of size_t). The
  // budgeted path can never get here — kMaxSpillRunBytes caps runs at
  // 1 GiB — so this only trips a never-spill (run_bytes == 0) sink fed
  // past 4 GiB, which must fail loudly instead of wrapping offsets into
  // silent corruption.
  if (buffer_.size() + record.size() >
      std::numeric_limits<uint32_t>::max() - 8) {
    throw SpillError(
        "spill: in-memory sink exceeded 4 GiB; set a memory budget so the "
        "shuffle spills");
  }
  offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
  AppendFramed(buffer_, record);
  ++records_;
  if (run_bytes_ > 0 && buffer_.size() >= run_bytes_) SpillRun();
}

void SpillShuffle::SortBuffer() {
  order_.assign(offsets_.begin(), offsets_.end());
  const std::string_view buffer = buffer_;
  // Stable: equal keys keep arrival order within the run.
  std::stable_sort(order_.begin(), order_.end(),
                   [buffer](uint32_t a, uint32_t b) {
                     const std::string_view ra = buffer.substr(a);
                     const std::string_view rb = buffer.substr(b);
                     return RecordKey(ra.substr(4, ReadU32Le(ra)))
                                .compare(RecordKey(
                                    rb.substr(4, ReadU32Le(rb)))) < 0;
                   });
}

void SpillShuffle::SpillRun() {
  if (offsets_.empty()) return;
  SortBuffer();
  std::string path = dir_->NextRunPath();
  SpillFileWriter writer(path);
  const std::string_view buffer = buffer_;
  for (const uint32_t off : order_) {
    const std::string_view framed = buffer.substr(off);
    writer.Append(framed.substr(4, ReadU32Le(framed)));
  }
  g_bytes_spilled.fetch_add(writer.Close(), std::memory_order_relaxed);
  g_runs_spilled.fetch_add(1, std::memory_order_relaxed);
  run_paths_.push_back(std::move(path));
  buffer_.clear();
  offsets_.clear();
  order_.clear();
  ++runs_spilled_;
}

std::unique_ptr<ShuffleSource> SpillShuffle::Finish() {
  if (records_ > 0) {
    g_sinks_loaded.fetch_add(1, std::memory_order_relaxed);
    AtomicMin(g_min_runs, runs_spilled_);
    if (runs_spilled_ > 0) {
      g_sinks_spilled.fetch_add(1, std::memory_order_relaxed);
    }
  }
  SortBuffer();
  auto tail = std::make_unique<BufferSource>(std::move(buffer_),
                                             std::move(order_));
  buffer_.clear();
  offsets_.clear();
  order_.clear();
  if (run_paths_.empty()) return tail;
  // Runs in spill order, the in-memory tail last: run index == arrival
  // order, which is what makes the merge a stable sort.
  std::vector<std::unique_ptr<ShuffleSource>> runs;
  runs.reserve(run_paths_.size() + 1);
  for (const std::string& path : run_paths_) {
    runs.push_back(std::make_unique<FileSource>(path));
  }
  runs.push_back(std::move(tail));
  return std::make_unique<RunMerger>(std::move(runs));
}

}  // namespace extmem
}  // namespace minoan
