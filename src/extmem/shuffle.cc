#include "extmem/shuffle.h"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "extmem/run_codec.h"
#include "extmem/run_merger.h"
#include "obs/metrics.h"

namespace minoan {
namespace extmem {

namespace {

// Spill telemetry lives in the metrics registry (spill.* namespace), so it
// shows up in --metrics-out stats alongside everything else. Tests and
// benches still reach it through the Get/ResetSpillTelemetry shim below,
// which now resets exactly these metrics instead of bespoke globals.
struct SpillMetrics {
  obs::Counter& runs =
      obs::MetricsRegistry::Default().counter("spill.runs");
  obs::Counter& bytes =
      obs::MetricsRegistry::Default().counter("spill.bytes");
  obs::Counter& sinks_spilled =
      obs::MetricsRegistry::Default().counter("spill.sinks_spilled");
  obs::Counter& sinks_loaded =
      obs::MetricsRegistry::Default().counter("spill.sinks_loaded");
  obs::Counter& cascade_merges =
      obs::MetricsRegistry::Default().counter("spill.cascade_merges");
  // Runs spilled per finished loaded sink; the exact histogram min is the
  // "every shard really spilled k runs" probe of the determinism tests.
  obs::Histogram& runs_per_sink =
      obs::MetricsRegistry::Default().histogram("spill.runs_per_sink");
};

SpillMetrics& Metrics() {
  static SpillMetrics* metrics = new SpillMetrics();
  return *metrics;
}

/// Source over one sorted in-memory record buffer (the never-spilled fast
/// case, and the final partial run of a spilled sink).
class BufferSource : public ShuffleSource {
 public:
  BufferSource(std::string buffer, std::vector<uint32_t> order)
      : buffer_(std::move(buffer)), order_(std::move(order)) {}

  bool Next(std::string_view& record) override {
    if (next_ >= order_.size()) return false;
    const std::string_view framed =
        std::string_view(buffer_).substr(order_[next_]);
    record = framed.substr(4, ReadU32Le(framed));
    ++next_;
    return true;
  }

 private:
  std::string buffer_;
  std::vector<uint32_t> order_;
  size_t next_ = 0;
};

/// Source over one compressed spilled run file.
class FileSource : public ShuffleSource {
 public:
  explicit FileSource(const std::string& path) : reader_(path) {}
  bool Next(std::string_view& record) override {
    return reader_.Next(record);
  }

 private:
  CompressedRunReader reader_;
};

}  // namespace

SpillTelemetry GetSpillTelemetry() {
  SpillMetrics& metrics = Metrics();
  SpillTelemetry t;
  t.runs_spilled = metrics.runs.Value();
  t.bytes_spilled = metrics.bytes.Value();
  t.sinks_spilled = metrics.sinks_spilled.Value();
  t.sinks_loaded = metrics.sinks_loaded.Value();
  t.cascade_merges = metrics.cascade_merges.Value();
  // Histogram min over finished sinks; its empty-state sentinel is the same
  // UINT64_MAX the probe API always used.
  t.min_runs_per_loaded_sink = metrics.runs_per_sink.Snapshot().min;
  return t;
}

void ResetSpillTelemetry() {
  SpillMetrics& metrics = Metrics();
  metrics.runs.Reset();
  metrics.bytes.Reset();
  metrics.sinks_spilled.Reset();
  metrics.sinks_loaded.Reset();
  metrics.cascade_merges.Reset();
  metrics.runs_per_sink.Reset();
}

SpillShuffle::SpillShuffle(uint64_t run_bytes, ScopedSpillDir* dir,
                           uint32_t max_merge_fanin)
    : run_bytes_(run_bytes),
      dir_(dir),
      merge_fanin_(std::max<uint32_t>(2, max_merge_fanin)) {}

SpillShuffle::~SpillShuffle() = default;

void SpillShuffle::Add(std::string_view record) {
  // Record offsets are 32-bit (half the index memory of size_t). The
  // budgeted path can never get here — kMaxSpillRunBytes caps runs at
  // 1 GiB — so this only trips a never-spill (run_bytes == 0) sink fed
  // past 4 GiB, which must fail loudly instead of wrapping offsets into
  // silent corruption.
  if (buffer_.size() + record.size() >
      std::numeric_limits<uint32_t>::max() - 8) {
    throw SpillError(
        "spill: in-memory sink exceeded 4 GiB; set a memory budget so the "
        "shuffle spills");
  }
  offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
  AppendFramed(buffer_, record);
  ++records_;
  if (run_bytes_ > 0 && buffer_.size() >= run_bytes_) SpillRun();
}

void SpillShuffle::SortBuffer() {
  order_.assign(offsets_.begin(), offsets_.end());
  const std::string_view buffer = buffer_;
  // Stable: equal keys keep arrival order within the run.
  std::stable_sort(order_.begin(), order_.end(),
                   [buffer](uint32_t a, uint32_t b) {
                     const std::string_view ra = buffer.substr(a);
                     const std::string_view rb = buffer.substr(b);
                     return RecordKey(ra.substr(4, ReadU32Le(ra)))
                                .compare(RecordKey(
                                    rb.substr(4, ReadU32Le(rb)))) < 0;
                   });
}

void SpillShuffle::SpillRun() {
  if (offsets_.empty()) return;
  SortBuffer();
  std::string path = dir_->NextRunPath();
  CompressedRunWriter writer(path);
  const std::string_view buffer = buffer_;
  for (const uint32_t off : order_) {
    const std::string_view framed = buffer.substr(off);
    writer.Append(framed.substr(4, ReadU32Le(framed)));
  }
  Metrics().bytes.Add(writer.Close());
  Metrics().runs.Increment();
  run_paths_.push_back(std::move(path));
  buffer_.clear();
  offsets_.clear();
  order_.clear();
  ++runs_spilled_;
}

std::string SpillShuffle::MergeRunGroup(size_t begin, size_t end) {
  std::vector<std::unique_ptr<ShuffleSource>> group;
  group.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    group.push_back(std::make_unique<FileSource>(run_paths_[i]));
  }
  RunMerger merger(std::move(group));
  std::string out_path = dir_->NextRunPath();
  try {
    CompressedRunWriter writer(out_path);
    std::string_view record;
    while (merger.Next(record)) writer.Append(record);
    writer.Close();
  } catch (...) {
    // Never leave a partially written merge generation behind: the group's
    // input runs are still tracked in run_paths_ (and removed with the
    // dir), this output is not — remove it here so cleanup covers
    // intermediate generations even when the dir object is long-lived or
    // the base directory is user-provided.
    std::error_code ec;
    std::filesystem::remove(out_path, ec);
    throw;
  }
  Metrics().cascade_merges.Increment();
  for (size_t i = begin; i < end; ++i) {
    std::error_code ec;
    std::filesystem::remove(run_paths_[i], ec);
  }
  return out_path;
}

void SpillShuffle::CascadeMergeRuns() {
  // Merge CONSECUTIVE runs and splice the output into the group's position:
  // all records of merged run i arrived before all records of merged run
  // i+1, so run index keeps meaning arrival order and the final merge's
  // tie-break is untouched.
  while (run_paths_.size() > merge_fanin_) {
    std::vector<std::string> next;
    next.reserve((run_paths_.size() + merge_fanin_ - 1) / merge_fanin_);
    for (size_t g = 0; g < run_paths_.size(); g += merge_fanin_) {
      const size_t end = std::min(run_paths_.size(), g + merge_fanin_);
      if (end - g == 1) {
        next.push_back(std::move(run_paths_[g]));
      } else {
        next.push_back(MergeRunGroup(g, end));
      }
    }
    run_paths_ = std::move(next);
  }
}

std::unique_ptr<ShuffleSource> SpillShuffle::Finish() {
  if (records_ > 0) {
    Metrics().sinks_loaded.Increment();
    Metrics().runs_per_sink.Record(runs_spilled_);
    if (runs_spilled_ > 0) {
      Metrics().sinks_spilled.Increment();
    }
  }
  CascadeMergeRuns();
  SortBuffer();
  auto tail = std::make_unique<BufferSource>(std::move(buffer_),
                                             std::move(order_));
  buffer_.clear();
  offsets_.clear();
  order_.clear();
  if (run_paths_.empty()) return tail;
  // Runs in spill order, the in-memory tail last: run index == arrival
  // order, which is what makes the merge a stable sort.
  std::vector<std::unique_ptr<ShuffleSource>> runs;
  runs.reserve(run_paths_.size() + 1);
  for (const std::string& path : run_paths_) {
    runs.push_back(std::make_unique<FileSource>(path));
  }
  runs.push_back(std::move(tail));
  return std::make_unique<RunMerger>(std::move(runs));
}

}  // namespace extmem
}  // namespace minoan
