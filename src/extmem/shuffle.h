// Copyright 2026 The MinoanER Authors.
// The external-memory shuffle engine: bounded-memory shard sinks that spill
// sorted runs to disk and merge them back in the exact byte order the
// in-memory shuffle path produces.
//
// Both deterministic shard cores of the pipeline — the blocking postings
// shuffle (blocking/sharded_blocking.h) and the meta-blocking vote shards
// (metablocking/sharded_prune.cc) — share one contract: records are routed
// to key-hashed shards IN ARRIVAL ORDER (chunk order, then within-chunk
// scan order), and each shard's output is the stable sort of its records by
// key. The spill engine reproduces that order with bounded memory:
//
//   * records are serialized as [u32 LE key_len][key bytes][payload], where
//     the key bytes are ORDER-PRESERVING (big-endian integers, raw strings)
//     so that lexicographic byte comparison of keys equals the logical sort
//     order;
//   * a SpillShuffle sink buffers records up to a run budget, stable-sorts
//     the buffer by key, and spills it as one sorted run file;
//   * Finish() returns a ShuffleSource that k-way-merges the runs plus the
//     final in-memory buffer, breaking key ties by run index — runs hold
//     arrival-contiguous batches, so run-index order IS arrival order and
//     the merged stream equals the stable sort of all records.
//
// The net guarantee: for any run budget (including "never spill"), any
// spill timing, and any thread count, a shard's merged stream is
// byte-identical to the in-memory stable sort. Temp files live in a
// ScopedSpillDir and are removed when the shuffle ends, on success and on
// exception.

#ifndef MINOAN_EXTMEM_SHUFFLE_H_
#define MINOAN_EXTMEM_SHUFFLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "extmem/memory_budget.h"
#include "extmem/spill_file.h"
#include "util/thread_pool.h"

namespace minoan {
namespace extmem {

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------
// A shuffle record is [u32 LE key_len][key bytes][payload bytes]. Key bytes
// must be order-preserving under lexicographic comparison; payload bytes are
// opaque to the engine.

/// Key span of a serialized record.
inline std::string_view RecordKey(std::string_view record) {
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(record[i]))
           << (8 * i);
  }
  return record.substr(4, len);
}

/// Payload span of a serialized record.
inline std::string_view RecordPayload(std::string_view record) {
  return record.substr(4 + RecordKey(record).size());
}

inline void AppendU32Le(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU32Be(std::string& out, uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU64Be(std::string& out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU64Le(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline uint32_t ReadU32Be(std::string_view bytes) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return v;
}

inline uint64_t ReadU64Be(std::string_view bytes) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return v;
}

inline uint32_t ReadU32Le(std::string_view bytes) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

inline uint64_t ReadU64Le(std::string_view bytes) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

/// Begins a record with an order-preserving encoding of `key`: big-endian
/// for integers (byte order == numeric order), raw bytes for strings (byte
/// order == std::string's lexicographic order). `out` is overwritten.
inline void EncodeKey(uint32_t key, std::string& out) {
  out.clear();
  AppendU32Le(out, 4);
  AppendU32Be(out, key);
}
inline void EncodeKey(uint64_t key, std::string& out) {
  out.clear();
  AppendU32Le(out, 8);
  AppendU64Be(out, key);
}
inline void EncodeKey(const std::string& key, std::string& out) {
  out.clear();
  AppendU32Le(out, static_cast<uint32_t>(key.size()));
  out.append(key);
}

/// Decodes a key span written by the matching EncodeKey overload.
template <typename Key>
Key DecodeKey(std::string_view key_bytes) {
  if constexpr (std::is_same_v<Key, uint32_t>) {
    return ReadU32Be(key_bytes);
  } else if constexpr (std::is_same_v<Key, uint64_t>) {
    return ReadU64Be(key_bytes);
  } else {
    static_assert(std::is_same_v<Key, std::string>,
                  "unsupported shuffle key type");
    return std::string(key_bytes);
  }
}

// ---------------------------------------------------------------------------
// Sink / source abstraction
// ---------------------------------------------------------------------------

/// A stream of shuffle records. Views returned by Next stay valid until the
/// next call only.
class ShuffleSource {
 public:
  virtual ~ShuffleSource() = default;
  /// Advances to the next record; false at end of stream.
  virtual bool Next(std::string_view& record) = 0;
};

/// A shard's record collector. Add records in arrival order, then Finish
/// exactly once to read them back sorted by key (equal keys in arrival
/// order).
class ShuffleSink {
 public:
  virtual ~ShuffleSink() = default;
  virtual void Add(std::string_view record) = 0;
  virtual std::unique_ptr<ShuffleSource> Finish() = 0;
};

/// The spilling sink. With run_bytes == 0 it never spills (pure in-memory
/// stable sort); with a budget it spills a sorted run whenever the buffer
/// exceeds `run_bytes`. `dir` must outlive the source returned by Finish
/// (run files are read lazily); it may be null only when run_bytes == 0.
///
/// Runs are written compressed (extmem/run_codec.h: varint frames,
/// front-coded keys). When more than `max_merge_fanin` runs accumulate,
/// Finish cascade-merges consecutive runs into a next generation of larger
/// runs until the final merge fits the fan-in — bounding open files at
/// fan-in + 1 per sink. Merging consecutive runs in place preserves the
/// run-index tie-break (every record of generation-merge i arrived before
/// every record of merge i+1), so the merged stream stays byte-identical to
/// the in-memory stable sort at any fan-in.
class SpillShuffle : public ShuffleSink {
 public:
  SpillShuffle(uint64_t run_bytes, ScopedSpillDir* dir,
               uint32_t max_merge_fanin = kDefaultMergeFanin);
  ~SpillShuffle() override;

  void Add(std::string_view record) override;
  std::unique_ptr<ShuffleSource> Finish() override;

  uint64_t records() const { return records_; }
  uint64_t runs_spilled() const { return runs_spilled_; }

 private:
  /// Stable-sorts the buffered records by key; fills `order_` with record
  /// start offsets in sorted order.
  void SortBuffer();
  void SpillRun();
  /// Repeatedly merges consecutive groups of `merge_fanin_` runs until at
  /// most `merge_fanin_` remain. Input runs of a finished merge are deleted;
  /// a partially written output is deleted before an error propagates.
  void CascadeMergeRuns();
  std::string MergeRunGroup(size_t begin, size_t end);

  uint64_t run_bytes_;
  ScopedSpillDir* dir_;
  uint32_t merge_fanin_;
  std::string buffer_;               // framed records, arrival order
  std::vector<uint32_t> offsets_;    // record frame start offsets
  std::vector<uint32_t> order_;      // offsets_ permuted into sorted order
  std::vector<std::string> run_paths_;
  uint64_t records_ = 0;
  uint64_t runs_spilled_ = 0;
};

// ---------------------------------------------------------------------------
// Telemetry (for tests and benches)
// ---------------------------------------------------------------------------
// Backed by the obs::MetricsRegistry "spill.*" metrics (so spill activity
// appears in --metrics-out stats); this struct is the stable probe API.
// Reset resets exactly the spill.* metrics. Note: while the registry is
// disabled (obs::MetricsRegistry::set_enabled(false)), spill activity is
// not recorded and these probes read as empty.

struct SpillTelemetry {
  uint64_t runs_spilled = 0;   ///< total sorted runs written to disk
  uint64_t bytes_spilled = 0;  ///< total bytes written to run files
  uint64_t sinks_spilled = 0;  ///< finished sinks that spilled >= 1 run
  uint64_t sinks_loaded = 0;   ///< finished sinks that received >= 1 record
  uint64_t cascade_merges = 0;  ///< intermediate cascaded run merges
  /// Minimum runs_spilled over finished sinks that received >= 1 record
  /// (UINT64_MAX when none finished yet) — the "every shard really spilled
  /// k runs" probe of the determinism tests.
  uint64_t min_runs_per_loaded_sink = 0;
};

SpillTelemetry GetSpillTelemetry();
void ResetSpillTelemetry();

// ---------------------------------------------------------------------------
// The chunked spill-shuffle driver
// ---------------------------------------------------------------------------

/// Chunks scanned per wave. Bounds the transient per-wave emission memory to
/// O(wave × chunk emissions) independently of the corpus size; output is
/// byte-identical for ANY wave size (wave boundaries only decide when runs
/// spill, never the record order fed to a shard).
inline constexpr size_t kSpillWaveChunks = 64;

/// Appends a framed copy of `record` to `out`.
inline void AppendFramed(std::string& out, std::string_view record) {
  AppendU32Le(out, static_cast<uint32_t>(record.size()));
  out.append(record);
}

/// Calls `fn(record)` for every framed record in `framed`.
template <typename Fn>
void ForEachFramed(std::string_view framed, const Fn& fn) {
  size_t pos = 0;
  while (pos < framed.size()) {
    const uint32_t len = ReadU32Le(framed.substr(pos, 4));
    fn(framed.substr(pos + 4, len));
    pos += 4 + len;
  }
}

/// The scatter half of a deterministic bounded-memory shuffle: scans
/// [0, total) in fixed-size chunks, dealt in waves of kSpillWaveChunks
/// (parallel within a wave); `scan(chunk, begin, end, route)` serializes
/// each record and calls `route(shard, record)`. Each shard sink receives
/// its records in (chunk, within-chunk scan) order — the sequential arrival
/// order — spilling sorted runs when over budget (parallel across shards;
/// a shard is owned by exactly one task).
///
/// Chunk and shard task boundaries are fixed (never derived from the worker
/// count), so each sink's arrival order — and therefore its merged output —
/// is byte-identical at every thread count and for every budget.
template <typename ScanFn>
void ScatterIntoSinks(ThreadPool* pool, size_t total, size_t chunk_size,
                      uint32_t num_shards, const ScanFn& scan,
                      std::vector<std::unique_ptr<SpillShuffle>>& sinks) {
  const size_t num_chunks = NumChunks(total, chunk_size);
  for (size_t wave_begin = 0; wave_begin < num_chunks;
       wave_begin += kSpillWaveChunks) {
    const size_t wave_end =
        std::min(num_chunks, wave_begin + kSpillWaveChunks);
    // Per (chunk-of-wave, shard) framed record slices, built in parallel.
    std::vector<std::vector<std::string>> slices(
        wave_end - wave_begin, std::vector<std::string>(num_shards));
    RunPoolTasks(pool, wave_end - wave_begin, [&](size_t i) {
      const size_t c = wave_begin + i;
      const size_t begin = c * chunk_size;
      const size_t end = std::min(total, begin + chunk_size);
      scan(c, begin, end, [&](uint32_t shard, std::string_view record) {
        AppendFramed(slices[i][shard], record);
      });
    });
    // Feed the wave into the sinks in chunk order.
    RunPoolTasks(pool, num_shards, [&](size_t s) {
      for (auto& chunk_slices : slices) {
        ForEachFramed(chunk_slices[s], [&](std::string_view record) {
          sinks[s]->Add(record);
        });
        chunk_slices[s].clear();
        chunk_slices[s].shrink_to_fit();
      }
    });
  }
}

/// Drives one deterministic bounded-memory shuffle over [0, total) dealt in
/// fixed-size chunks: ScatterIntoSinks, then `consume(shard, source)`
/// streams each shard's merged, key-sorted records (parallel across
/// shards). The consumed streams are byte-identical at every thread count
/// and for every budget. Temp files are removed before returning, and by
/// ScopedSpillDir's destructor when an exception unwinds.
template <typename ScanFn, typename ConsumeFn>
void RunSpilledShuffle(ThreadPool* pool, size_t total, size_t chunk_size,
                       uint32_t num_shards,
                       const MemoryBudgetOptions& memory, const ScanFn& scan,
                       const ConsumeFn& consume) {
  ScopedSpillDir dir(memory.spill_dir);
  const uint64_t run_bytes = memory.RunBytesPerShard(num_shards);
  std::vector<std::unique_ptr<SpillShuffle>> sinks(num_shards);
  for (auto& sink : sinks) {
    sink = std::make_unique<SpillShuffle>(run_bytes, &dir, memory.MergeFanin());
  }

  ScatterIntoSinks(pool, total, chunk_size, num_shards, scan, sinks);

  RunPoolTasks(pool, num_shards, [&](size_t s) {
    std::unique_ptr<ShuffleSource> source = sinks[s]->Finish();
    consume(static_cast<uint32_t>(s), *source);
    sinks[s].reset();  // release run readers before the dir is removed
  });
}

}  // namespace extmem
}  // namespace minoan

#endif  // MINOAN_EXTMEM_SHUFFLE_H_
