#include "extmem/spill_file.h"

#include <atomic>
#include <system_error>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace minoan {
namespace extmem {

namespace {

/// Process-wide uniquifier: two shuffles of the same process (or the same
/// session's blocking and pruning phases) must never collide on a dir name.
std::atomic<uint64_t>& SpillDirCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

uint64_t ProcessId() {
#ifdef _WIN32
  return 0;  // getpid is POSIX; the counter alone still uniquifies.
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

}  // namespace

ScopedSpillDir::ScopedSpillDir(const std::string& base) {
  std::error_code ec;
  std::filesystem::path root =
      base.empty() ? std::filesystem::temp_directory_path(ec)
                   : std::filesystem::path(base);
  if (ec) {
    throw SpillError("spill: cannot resolve the system temp directory: " +
                     ec.message());
  }
  const uint64_t seq = SpillDirCounter().fetch_add(1);
  dir_ = root / ("minoan-spill-" + std::to_string(ProcessId()) + "-" +
                 std::to_string(seq));
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw SpillError("spill: cannot create temp directory " + dir_.string() +
                     ": " + ec.message());
  }
}

ScopedSpillDir::~ScopedSpillDir() {
  // Best effort: never throw from a destructor (it may run during unwind).
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

std::string ScopedSpillDir::NextRunPath() {
  const uint64_t n = next_run_.fetch_add(1);
  return (dir_ / ("run-" + std::to_string(n) + ".spill")).string();
}

SpillFileWriter::SpillFileWriter(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw SpillError("spill: cannot open run file for writing: " + path_);
  }
}

void SpillFileWriter::Append(std::string_view record) {
  char frame[4];
  const uint32_t len = static_cast<uint32_t>(record.size());
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  out_.write(frame, 4);
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  bytes_ += 4 + record.size();
  ++records_;
}

uint64_t SpillFileWriter::Close() {
  out_.flush();
  if (!out_) {
    throw SpillError("spill: write failed (disk full?): " + path_);
  }
  out_.close();
  return bytes_;
}

SpillFileReader::SpillFileReader(std::string path) : path_(std::move(path)) {
  in_.open(path_, std::ios::binary);
  if (!in_) {
    throw SpillError("spill: cannot open run file for reading: " + path_);
  }
}

bool SpillFileReader::Next(std::string_view& record) {
  char frame[4];
  if (!in_.read(frame, 4)) {
    if (in_.gcount() == 0 && in_.eof()) return false;  // clean EOF
    throw SpillError("spill: truncated frame header in " + path_);
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(frame[i]))
           << (8 * i);
  }
  buffer_.resize(len);
  if (len > 0 && !in_.read(buffer_.data(), len)) {
    throw SpillError("spill: truncated record body in " + path_);
  }
  record = buffer_;
  return true;
}

}  // namespace extmem
}  // namespace minoan
