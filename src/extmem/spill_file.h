// Copyright 2026 The MinoanER Authors.
// Temp-file primitives of the external-memory shuffle: framed record files
// and the RAII directory that owns every run file of one shuffle.
//
// A spill file is a flat sequence of length-prefixed records:
//
//   [u32 LE record length][record bytes] ...
//
// Writers append records in the order given (the shuffle sink sorts a run
// before writing it); readers stream them back in file order. Temp files
// live inside a ScopedSpillDir, a uniquely named directory that is removed
// recursively when the shuffle ends — on success AND when an exception
// unwinds through it, so no run file ever outlives its shuffle.
//
// I/O failures throw SpillError (the library is otherwise exception-free;
// the pipeline drivers catch SpillError at the phase boundary and surface a
// Status — see core/session.cc).

#ifndef MINOAN_EXTMEM_SPILL_FILE_H_
#define MINOAN_EXTMEM_SPILL_FILE_H_

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace minoan {
namespace extmem {

/// Thrown on any spill I/O failure (unwritable temp dir, full disk,
/// truncated run file). Carries a path-specific message.
class SpillError : public std::runtime_error {
 public:
  explicit SpillError(const std::string& what) : std::runtime_error(what) {}
};

/// A uniquely named temp directory holding the run files of one shuffle.
/// Created eagerly; removed recursively (best effort) on destruction.
/// NextRunPath() is safe to call from concurrent shard tasks.
class ScopedSpillDir {
 public:
  /// Creates `<base>/minoan-spill-<pid>-<seq>/`. Empty `base` = the system
  /// temp directory. Throws SpillError when the directory cannot be made.
  explicit ScopedSpillDir(const std::string& base);
  ~ScopedSpillDir();

  ScopedSpillDir(const ScopedSpillDir&) = delete;
  ScopedSpillDir& operator=(const ScopedSpillDir&) = delete;

  /// A fresh unique path for the next run file (not yet created).
  std::string NextRunPath();

  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::atomic<uint64_t> next_run_{0};
};

/// Sequential writer of one run file.
class SpillFileWriter {
 public:
  /// Opens `path` for writing (truncating). Throws SpillError on failure.
  explicit SpillFileWriter(std::string path);

  /// Appends one framed record. Errors are detected (and thrown) in Close.
  void Append(std::string_view record);

  /// Flushes and closes; throws SpillError if any write failed. Returns
  /// the total bytes written (frames included).
  uint64_t Close();

  uint64_t records() const { return records_; }

 private:
  std::string path_;
  std::ofstream out_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

/// Sequential reader of one run file.
class SpillFileReader {
 public:
  /// Opens `path`. Throws SpillError when the file cannot be opened.
  explicit SpillFileReader(std::string path);

  /// Reads the next record into an internal buffer; `record` stays valid
  /// until the next call. Returns false at a clean end of file; throws
  /// SpillError on a truncated or corrupt frame.
  bool Next(std::string_view& record);

 private:
  std::string path_;
  std::ifstream in_;
  std::string buffer_;
};

}  // namespace extmem
}  // namespace minoan

#endif  // MINOAN_EXTMEM_SPILL_FILE_H_
