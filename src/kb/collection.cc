#include "kb/collection.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "rdf/iri.h"

namespace minoan {

namespace {

/// Blank node labels are KB-scoped in RDF; qualify them so labels reused by
/// different KBs do not collide in the shared IRI interner.
std::string QualifiedBlank(uint32_t kb_id, const std::string& label) {
  return "_:" + std::to_string(kb_id) + ":" + label;
}

}  // namespace

EntityCollection::EntityCollection(CollectionOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

Result<uint32_t> EntityCollection::AddKnowledgeBase(
    std::string name, const std::vector<rdf::Triple>& triples) {
  if (finalized_) {
    return Status::FailedPrecondition("collection already finalized");
  }
  const uint32_t kb_id = static_cast<uint32_t>(kbs_.size());
  KnowledgeBaseInfo info;
  info.name = std::move(name);
  info.triples = triples.size();
  info.first_entity = static_cast<uint32_t>(entities_.size());

  // Subject-IRI id -> entity id, scoped to this KB.
  std::unordered_map<uint32_t, EntityId> local;

  auto subject_iri_id = [&](const rdf::Term& subject) -> uint32_t {
    if (subject.is_blank()) {
      return iris_.Intern(QualifiedBlank(kb_id, subject.lexical));
    }
    return iris_.Intern(subject.lexical);
  };

  // Pass 1: register every subject as an entity of this KB.
  for (const rdf::Triple& t : triples) {
    const uint32_t iri_id = subject_iri_id(t.subject);
    if (local.find(iri_id) != local.end()) continue;
    const EntityId eid = static_cast<EntityId>(entities_.size());
    EntityDescription desc;
    desc.id = eid;
    desc.iri = iri_id;
    desc.kb = kb_id;
    entities_.push_back(std::move(desc));
    local.emplace(iri_id, eid);
    if (iri_to_entity_.size() < iris_.size()) {
      iri_to_entity_.resize(iris_.size(), kInvalidEntity);
    }
    if (iri_to_entity_[iri_id] == kInvalidEntity) {
      iri_to_entity_[iri_id] = eid;
    }
  }

  // Pass 2: classify objects into relations, attributes, sameAs links.
  for (const rdf::Triple& t : triples) {
    const EntityId eid = local[subject_iri_id(t.subject)];
    EntityDescription& desc = entities_[eid];
    const uint32_t pred_id = predicates_.Intern(t.predicate.lexical);

    if (t.predicate.lexical == rdf::kOwlSameAs && t.object.is_iri()) {
      // Cross-KB equivalence assertion: resolve lazily in Finalize because
      // the target KB may not have been ingested yet.
      const uint32_t target_iri = iris_.Intern(t.object.lexical);
      if (iri_to_entity_.size() < iris_.size()) {
        iri_to_entity_.resize(iris_.size(), kInvalidEntity);
      }
      pending_same_as_.push_back({eid, target_iri});
      continue;
    }

    if (t.object.is_literal()) {
      desc.attributes.push_back(
          Attribute{pred_id, values_.Intern(t.object.lexical)});
      continue;
    }

    // IRI or blank object: a relation when the target is described in the
    // same KB, otherwise an attribute over the IRI's local name.
    const uint32_t obj_iri =
        t.object.is_blank()
            ? iris_.Intern(QualifiedBlank(kb_id, t.object.lexical))
            : iris_.Intern(t.object.lexical);
    if (iri_to_entity_.size() < iris_.size()) {
      iri_to_entity_.resize(iris_.size(), kInvalidEntity);
    }
    auto it = local.find(obj_iri);
    if (it != local.end() && it->second != eid) {
      desc.relations.push_back(Relation{pred_id, it->second});
      continue;
    }
    if (t.predicate.lexical == rdf::kRdfType && !options_.index_types) {
      continue;
    }
    const std::string_view local_name = rdf::IriLocalName(t.object.lexical);
    if (!local_name.empty()) {
      desc.attributes.push_back(
          Attribute{pred_id, values_.Intern(local_name)});
    }
  }

  info.end_entity = static_cast<uint32_t>(entities_.size());
  total_triples_ += triples.size();
  kbs_.push_back(std::move(info));
  return kb_id;
}

Status EntityCollection::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  finalized_ = true;

  // Resolve deferred sameAs assertions against the complete IRI table.
  for (const auto& [eid, target_iri] : pending_same_as_) {
    const EntityId target = target_iri < iri_to_entity_.size()
                                ? iri_to_entity_[target_iri]
                                : kInvalidEntity;
    if (target != kInvalidEntity && target != eid) {
      same_as_links_.push_back(SameAsLink{eid, target});
    }
  }
  pending_same_as_.clear();
  pending_same_as_.shrink_to_fit();

  // Tokenize every entity: literal values plus the IRI local name.
  std::vector<uint32_t> scratch;
  for (EntityDescription& desc : entities_) {
    scratch.clear();
    for (const Attribute& attr : desc.attributes) {
      tokenizer_.TokenizeInto(values_.View(attr.value), tokens_, scratch);
    }
    tokenizer_.TokenizeInto(rdf::IriLocalName(iris_.View(desc.iri)), tokens_,
                            scratch);
    std::sort(scratch.begin(), scratch.end());
    desc.token_bag = scratch;
    desc.tokens = scratch;
    desc.tokens.erase(std::unique(desc.tokens.begin(), desc.tokens.end()),
                      desc.tokens.end());
  }

  // Document frequencies over unique per-entity tokens.
  token_df_.assign(tokens_.size(), 0);
  for (const EntityDescription& desc : entities_) {
    for (uint32_t tok : desc.tokens) ++token_df_[tok];
  }

  // Stop-token removal: frequent tokens carry no discriminative signal for
  // blocking and blow up block sizes quadratically.
  if (options_.max_token_frequency < 1.0 && !entities_.empty()) {
    const uint32_t cap = static_cast<uint32_t>(options_.max_token_frequency *
                                               entities_.size());
    auto too_frequent = [&](uint32_t tok) { return token_df_[tok] > cap; };
    for (EntityDescription& desc : entities_) {
      desc.tokens.erase(
          std::remove_if(desc.tokens.begin(), desc.tokens.end(), too_frequent),
          desc.tokens.end());
      desc.token_bag.erase(std::remove_if(desc.token_bag.begin(),
                                          desc.token_bag.end(), too_frequent),
                           desc.token_bag.end());
    }
  }
  return Status::Ok();
}

EntityId EntityCollection::FindByIri(std::string_view iri) const {
  const uint32_t iri_id = iris_.Find(iri);
  if (iri_id == kInternNotFound || iri_id >= iri_to_entity_.size()) {
    return kInvalidEntity;
  }
  return iri_to_entity_[iri_id];
}

double EntityCollection::TokenIdf(uint32_t token) const {
  if (token >= token_df_.size() || token_df_[token] == 0 ||
      entities_.empty()) {
    return 0.0;
  }
  return std::log(static_cast<double>(entities_.size()) /
                  static_cast<double>(token_df_[token]));
}

}  // namespace minoan
