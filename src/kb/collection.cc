#include "kb/collection.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "rdf/iri.h"

namespace minoan {

namespace {

/// Blank node labels are KB-scoped in RDF; qualify them so labels reused by
/// different KBs do not collide in the shared IRI interner.
std::string QualifiedBlank(uint32_t kb_id, const std::string& label) {
  return "_:" + std::to_string(kb_id) + ":" + label;
}

}  // namespace

EntityCollection::EntityCollection(CollectionOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

uint32_t EntityCollection::InternSubject(uint32_t kb_id,
                                         const rdf::Term& subject) {
  const uint32_t id =
      subject.is_blank()
          ? iris_.Intern(QualifiedBlank(kb_id, subject.lexical))
          : iris_.Intern(subject.lexical);
  if (iri_to_entity_.size() < iris_.size()) {
    iri_to_entity_.resize(iris_.size(), kInvalidEntity);
  }
  return id;
}

void EntityCollection::TokenizeEntity(EntityDescription& desc) {
  std::vector<uint32_t>& scratch = tokenize_scratch_;
  scratch.clear();
  for (const Attribute& attr : desc.attributes) {
    tokenizer_.TokenizeInto(values_.View(attr.value), tokens_, scratch);
  }
  tokenizer_.TokenizeInto(rdf::IriLocalName(iris_.View(desc.iri)), tokens_,
                          scratch);
  std::sort(scratch.begin(), scratch.end());
  desc.token_bag = scratch;
  desc.tokens = scratch;
  desc.tokens.erase(std::unique(desc.tokens.begin(), desc.tokens.end()),
                    desc.tokens.end());
  if (token_df_.size() < tokens_.size()) token_df_.resize(tokens_.size(), 0);
  for (uint32_t tok : desc.tokens) ++token_df_[tok];
}

Result<uint32_t> EntityCollection::AddKnowledgeBase(
    std::string name, const std::vector<rdf::Triple>& triples) {
  if (finalized_) {
    return Status::FailedPrecondition("collection already finalized");
  }
  const uint32_t kb_id = static_cast<uint32_t>(kbs_.size());
  KnowledgeBaseInfo info;
  info.name = std::move(name);
  info.triples = triples.size();
  info.first_entity = static_cast<uint32_t>(entities_.size());

  // Pass 1: register every subject as an entity of this KB.
  for (const rdf::Triple& t : triples) {
    const uint32_t iri_id = InternSubject(kb_id, t.subject);
    const uint64_t key = KbIriKey(kb_id, iri_id);
    if (kb_iri_to_entity_.count(key) > 0) continue;
    const EntityId eid = static_cast<EntityId>(entities_.size());
    EntityDescription desc;
    desc.id = eid;
    desc.iri = iri_id;
    desc.kb = kb_id;
    entities_.push_back(std::move(desc));
    kb_iri_to_entity_.emplace(key, eid);
    if (iri_to_entity_[iri_id] == kInvalidEntity) {
      iri_to_entity_[iri_id] = eid;
    }
  }

  // Pass 2: classify objects into relations, attributes, sameAs links.
  for (const rdf::Triple& t : triples) {
    const EntityId eid =
        kb_iri_to_entity_[KbIriKey(kb_id, InternSubject(kb_id, t.subject))];
    ClassifyObject(kb_id, eid, t, /*eager_same_as=*/false);
  }

  info.end_entity = static_cast<uint32_t>(entities_.size());
  total_triples_ += triples.size();
  kbs_.push_back(std::move(info));
  return kb_id;
}

Status EntityCollection::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  finalized_ = true;

  // Resolve deferred sameAs assertions against the complete IRI table.
  for (const auto& [eid, target_iri] : pending_same_as_) {
    const EntityId target = target_iri < iri_to_entity_.size()
                                ? iri_to_entity_[target_iri]
                                : kInvalidEntity;
    if (target != kInvalidEntity && target != eid) {
      same_as_links_.push_back(SameAsLink{eid, target});
    }
  }
  pending_same_as_.clear();
  pending_same_as_.shrink_to_fit();

  // Tokenize every entity (literal values plus the IRI local name); document
  // frequencies over unique per-entity tokens accumulate as we go.
  token_df_.assign(tokens_.size(), 0);
  for (EntityDescription& desc : entities_) {
    TokenizeEntity(desc);
  }

  // Stop-token removal: frequent tokens carry no discriminative signal for
  // blocking and blow up block sizes quadratically.
  if (options_.max_token_frequency < 1.0 && !entities_.empty()) {
    const uint32_t cap = static_cast<uint32_t>(options_.max_token_frequency *
                                               entities_.size());
    auto too_frequent = [&](uint32_t tok) { return token_df_[tok] > cap; };
    for (EntityDescription& desc : entities_) {
      desc.tokens.erase(
          std::remove_if(desc.tokens.begin(), desc.tokens.end(), too_frequent),
          desc.tokens.end());
      desc.token_bag.erase(std::remove_if(desc.token_bag.begin(),
                                          desc.token_bag.end(), too_frequent),
                           desc.token_bag.end());
    }
  }
  return Status::Ok();
}

void EntityCollection::ClassifyObject(uint32_t kb_id, EntityId eid,
                                      const rdf::Triple& t,
                                      bool eager_same_as) {
  EntityDescription& desc = entities_[eid];
  const uint32_t pred_id = predicates_.Intern(t.predicate.lexical);

  if (t.predicate.lexical == rdf::kOwlSameAs && t.object.is_iri()) {
    const uint32_t target_iri = iris_.Intern(t.object.lexical);
    if (iri_to_entity_.size() < iris_.size()) {
      iri_to_entity_.resize(iris_.size(), kInvalidEntity);
    }
    if (eager_same_as) {
      // Online append: resolve against the entities present NOW; links to
      // still-unknown targets are dropped (batch drops unresolvable links
      // in Finalize the same way).
      const EntityId target = iri_to_entity_[target_iri];
      if (target != kInvalidEntity && target != eid) {
        same_as_links_.push_back(SameAsLink{eid, target});
      }
    } else {
      // Batch: resolve lazily in Finalize — the target KB may come later.
      pending_same_as_.push_back({eid, target_iri});
    }
    return;
  }

  if (t.object.is_literal()) {
    desc.attributes.push_back(
        Attribute{pred_id, values_.Intern(t.object.lexical)});
    return;
  }

  // IRI or blank object: a relation when the target is described in the
  // same KB, otherwise an attribute over the IRI's local name.
  const uint32_t obj_iri =
      t.object.is_blank()
          ? iris_.Intern(QualifiedBlank(kb_id, t.object.lexical))
          : iris_.Intern(t.object.lexical);
  if (iri_to_entity_.size() < iris_.size()) {
    iri_to_entity_.resize(iris_.size(), kInvalidEntity);
  }
  const auto it = kb_iri_to_entity_.find(KbIriKey(kb_id, obj_iri));
  if (it != kb_iri_to_entity_.end() && it->second != eid) {
    desc.relations.push_back(Relation{pred_id, it->second});
    return;
  }
  if (t.predicate.lexical == rdf::kRdfType && !options_.index_types) {
    return;
  }
  const std::string_view local_name = rdf::IriLocalName(t.object.lexical);
  if (!local_name.empty()) {
    desc.attributes.push_back(Attribute{pred_id, values_.Intern(local_name)});
  }
}

uint32_t EntityCollection::AddEmptyKnowledgeBase(std::string name) {
  const uint32_t kb_id = static_cast<uint32_t>(kbs_.size());
  KnowledgeBaseInfo info;
  info.name = std::move(name);
  info.first_entity = static_cast<uint32_t>(entities_.size());
  info.end_entity = info.first_entity;
  kbs_.push_back(std::move(info));
  return kb_id;
}

Result<EntityId> EntityCollection::AppendEntity(
    uint32_t kb_id, const std::vector<rdf::Triple>& triples) {
  if (!finalized_) {
    return Status::FailedPrecondition(
        "AppendEntity requires a finalized collection; batch ingestion goes "
        "through AddKnowledgeBase");
  }
  if (kb_id >= kbs_.size()) {
    return Status::InvalidArgument("unknown knowledge base id");
  }
  if (triples.empty()) {
    return Status::InvalidArgument("an entity needs at least one triple");
  }
  const rdf::Term& subject = triples.front().subject;
  for (const rdf::Triple& t : triples) {
    if (t.subject.kind != subject.kind ||
        t.subject.lexical != subject.lexical) {
      return Status::InvalidArgument(
          "AppendEntity triples must share a single subject");
    }
  }

  const uint32_t iri_id = InternSubject(kb_id, subject);
  const uint64_t kb_key = KbIriKey(kb_id, iri_id);
  if (kb_iri_to_entity_.count(kb_key) > 0) {
    return Status::AlreadyExists("entity already described in this KB: " +
                                 subject.lexical);
  }

  // Register first so the shared classification sees the entity (a
  // self-referencing triple resolves and is skipped, as in batch).
  const EntityId eid = static_cast<EntityId>(entities_.size());
  EntityDescription desc;
  desc.id = eid;
  desc.iri = iri_id;
  desc.kb = kb_id;
  entities_.push_back(std::move(desc));
  kb_iri_to_entity_.emplace(kb_key, eid);
  if (iri_to_entity_[iri_id] == kInvalidEntity) iri_to_entity_[iri_id] = eid;

  for (const rdf::Triple& t : triples) {
    ClassifyObject(kb_id, eid, t, /*eager_same_as=*/true);
  }

  TokenizeEntity(entities_[eid]);
  kbs_[kb_id].triples += triples.size();
  ++kbs_[kb_id].appended_entities;
  total_triples_ += triples.size();
  return eid;
}

EntityId EntityCollection::FindByIri(std::string_view iri) const {
  const uint32_t iri_id = iris_.Find(iri);
  if (iri_id == kInternNotFound || iri_id >= iri_to_entity_.size()) {
    return kInvalidEntity;
  }
  return iri_to_entity_[iri_id];
}

double EntityCollection::TokenIdf(uint32_t token) const {
  if (token >= token_df_.size() || token_df_[token] == 0 ||
      entities_.empty()) {
    return 0.0;
  }
  return std::log(static_cast<double>(entities_.size()) /
                  static_cast<double>(token_df_[token]));
}

}  // namespace minoan
