#include "kb/collection.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "rdf/iri.h"
#include "util/serde.h"

namespace minoan {

namespace {

/// Blank node labels are KB-scoped in RDF; qualify them so labels reused by
/// different KBs do not collide in the shared IRI interner.
std::string QualifiedBlank(uint32_t kb_id, const std::string& label) {
  return "_:" + std::to_string(kb_id) + ":" + label;
}

}  // namespace

EntityCollection::EntityCollection(CollectionOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

uint32_t EntityCollection::InternSubject(uint32_t kb_id,
                                         const rdf::Term& subject) {
  const uint32_t id =
      subject.is_blank()
          ? iris_.Intern(QualifiedBlank(kb_id, subject.lexical))
          : iris_.Intern(subject.lexical);
  if (iri_to_entity_.size() < iris_.size()) {
    iri_to_entity_.resize(iris_.size(), kInvalidEntity);
  }
  return id;
}

void EntityCollection::TokenizeEntity(EntityDescription& desc) {
  std::vector<uint32_t>& scratch = tokenize_scratch_;
  scratch.clear();
  for (const Attribute& attr : desc.attributes) {
    tokenizer_.TokenizeInto(values_.View(attr.value), tokens_, scratch);
  }
  tokenizer_.TokenizeInto(rdf::IriLocalName(iris_.View(desc.iri)), tokens_,
                          scratch);
  std::sort(scratch.begin(), scratch.end());
  desc.token_bag = scratch;
  desc.tokens = scratch;
  desc.tokens.erase(std::unique(desc.tokens.begin(), desc.tokens.end()),
                    desc.tokens.end());
  if (token_df_.size() < tokens_.size()) token_df_.resize(tokens_.size(), 0);
  for (uint32_t tok : desc.tokens) ++token_df_[tok];
}

Result<uint32_t> EntityCollection::AddKnowledgeBase(
    std::string name, const std::vector<rdf::Triple>& triples) {
  if (finalized_) {
    return Status::FailedPrecondition("collection already finalized");
  }
  const uint32_t kb_id = static_cast<uint32_t>(kbs_.size());
  KnowledgeBaseInfo info;
  info.name = std::move(name);
  info.triples = triples.size();
  info.first_entity = static_cast<uint32_t>(entities_.size());

  // Pass 1: register every subject as an entity of this KB.
  for (const rdf::Triple& t : triples) {
    const uint32_t iri_id = InternSubject(kb_id, t.subject);
    const uint64_t key = KbIriKey(kb_id, iri_id);
    if (kb_iri_to_entity_.count(key) > 0) continue;
    const EntityId eid = static_cast<EntityId>(entities_.size());
    EntityDescription desc;
    desc.id = eid;
    desc.iri = iri_id;
    desc.kb = kb_id;
    entities_.push_back(std::move(desc));
    kb_iri_to_entity_.emplace(key, eid);
    if (iri_to_entity_[iri_id] == kInvalidEntity) {
      iri_to_entity_[iri_id] = eid;
    }
  }

  // Pass 2: classify objects into relations, attributes, sameAs links.
  for (const rdf::Triple& t : triples) {
    const EntityId eid =
        kb_iri_to_entity_[KbIriKey(kb_id, InternSubject(kb_id, t.subject))];
    ClassifyObject(kb_id, eid, t, /*eager_same_as=*/false);
  }

  info.end_entity = static_cast<uint32_t>(entities_.size());
  total_triples_ += triples.size();
  kbs_.push_back(std::move(info));
  return kb_id;
}

Status EntityCollection::Finalize() {
  if (finalized_) return Status::FailedPrecondition("already finalized");
  finalized_ = true;

  // Resolve deferred sameAs assertions against the complete IRI table.
  for (const auto& [eid, target_iri] : pending_same_as_) {
    const EntityId target = target_iri < iri_to_entity_.size()
                                ? iri_to_entity_[target_iri]
                                : kInvalidEntity;
    if (target != kInvalidEntity && target != eid) {
      same_as_links_.push_back(SameAsLink{eid, target});
    }
  }
  pending_same_as_.clear();
  pending_same_as_.shrink_to_fit();

  // Tokenize every entity (literal values plus the IRI local name); document
  // frequencies over unique per-entity tokens accumulate as we go.
  token_df_.assign(tokens_.size(), 0);
  for (EntityDescription& desc : entities_) {
    TokenizeEntity(desc);
  }

  // Stop-token removal: frequent tokens carry no discriminative signal for
  // blocking and blow up block sizes quadratically.
  if (options_.max_token_frequency < 1.0 && !entities_.empty()) {
    const uint32_t cap = static_cast<uint32_t>(options_.max_token_frequency *
                                               entities_.size());
    auto too_frequent = [&](uint32_t tok) { return token_df_[tok] > cap; };
    for (EntityDescription& desc : entities_) {
      desc.tokens.erase(
          std::remove_if(desc.tokens.begin(), desc.tokens.end(), too_frequent),
          desc.tokens.end());
      desc.token_bag.erase(std::remove_if(desc.token_bag.begin(),
                                          desc.token_bag.end(), too_frequent),
                           desc.token_bag.end());
    }
  }
  return Status::Ok();
}

void EntityCollection::ClassifyObject(uint32_t kb_id, EntityId eid,
                                      const rdf::Triple& t,
                                      bool eager_same_as) {
  EntityDescription& desc = entities_[eid];
  const uint32_t pred_id = predicates_.Intern(t.predicate.lexical);

  if (t.predicate.lexical == rdf::kOwlSameAs && t.object.is_iri()) {
    const uint32_t target_iri = iris_.Intern(t.object.lexical);
    if (iri_to_entity_.size() < iris_.size()) {
      iri_to_entity_.resize(iris_.size(), kInvalidEntity);
    }
    if (eager_same_as) {
      // Online append: resolve against the entities present NOW; links to
      // still-unknown targets are dropped (batch drops unresolvable links
      // in Finalize the same way).
      const EntityId target = iri_to_entity_[target_iri];
      if (target != kInvalidEntity && target != eid) {
        same_as_links_.push_back(SameAsLink{eid, target});
      }
    } else {
      // Batch: resolve lazily in Finalize — the target KB may come later.
      pending_same_as_.push_back({eid, target_iri});
    }
    return;
  }

  if (t.object.is_literal()) {
    desc.attributes.push_back(
        Attribute{pred_id, values_.Intern(t.object.lexical)});
    return;
  }

  // IRI or blank object: a relation when the target is described in the
  // same KB, otherwise an attribute over the IRI's local name.
  const uint32_t obj_iri =
      t.object.is_blank()
          ? iris_.Intern(QualifiedBlank(kb_id, t.object.lexical))
          : iris_.Intern(t.object.lexical);
  if (iri_to_entity_.size() < iris_.size()) {
    iri_to_entity_.resize(iris_.size(), kInvalidEntity);
  }
  const auto it = kb_iri_to_entity_.find(KbIriKey(kb_id, obj_iri));
  if (it != kb_iri_to_entity_.end() && it->second != eid) {
    desc.relations.push_back(Relation{pred_id, it->second});
    return;
  }
  if (t.predicate.lexical == rdf::kRdfType && !options_.index_types) {
    return;
  }
  const std::string_view local_name = rdf::IriLocalName(t.object.lexical);
  if (!local_name.empty()) {
    desc.attributes.push_back(Attribute{pred_id, values_.Intern(local_name)});
  }
}

uint32_t EntityCollection::AddEmptyKnowledgeBase(std::string name) {
  const uint32_t kb_id = static_cast<uint32_t>(kbs_.size());
  KnowledgeBaseInfo info;
  info.name = std::move(name);
  info.first_entity = static_cast<uint32_t>(entities_.size());
  info.end_entity = info.first_entity;
  kbs_.push_back(std::move(info));
  return kb_id;
}

Result<EntityId> EntityCollection::AppendEntity(
    uint32_t kb_id, const std::vector<rdf::Triple>& triples) {
  if (!finalized_) {
    return Status::FailedPrecondition(
        "AppendEntity requires a finalized collection; batch ingestion goes "
        "through AddKnowledgeBase");
  }
  if (kb_id >= kbs_.size()) {
    return Status::InvalidArgument("unknown knowledge base id");
  }
  if (triples.empty()) {
    return Status::InvalidArgument("an entity needs at least one triple");
  }
  const rdf::Term& subject = triples.front().subject;
  for (const rdf::Triple& t : triples) {
    if (t.subject.kind != subject.kind ||
        t.subject.lexical != subject.lexical) {
      return Status::InvalidArgument(
          "AppendEntity triples must share a single subject");
    }
  }

  const uint32_t iri_id = InternSubject(kb_id, subject);
  const uint64_t kb_key = KbIriKey(kb_id, iri_id);
  if (kb_iri_to_entity_.count(kb_key) > 0) {
    return Status::AlreadyExists("entity already described in this KB: " +
                                 subject.lexical);
  }

  // Register first so the shared classification sees the entity (a
  // self-referencing triple resolves and is skipped, as in batch).
  const EntityId eid = static_cast<EntityId>(entities_.size());
  EntityDescription desc;
  desc.id = eid;
  desc.iri = iri_id;
  desc.kb = kb_id;
  entities_.push_back(std::move(desc));
  kb_iri_to_entity_.emplace(kb_key, eid);
  if (iri_to_entity_[iri_id] == kInvalidEntity) iri_to_entity_[iri_id] = eid;

  for (const rdf::Triple& t : triples) {
    ClassifyObject(kb_id, eid, t, /*eager_same_as=*/true);
  }

  TokenizeEntity(entities_[eid]);
  kbs_[kb_id].triples += triples.size();
  ++kbs_[kb_id].appended_entities;
  total_triples_ += triples.size();
  return eid;
}

EntityId EntityCollection::FindByIri(std::string_view iri) const {
  const uint32_t iri_id = iris_.Find(iri);
  if (iri_id == kInternNotFound || iri_id >= iri_to_entity_.size()) {
    return kInvalidEntity;
  }
  return iri_to_entity_[iri_id];
}

namespace {

/// Format tag of the serialized collection; bump on layout changes.
constexpr std::string_view kCollectionMagic = "MNER-COLL-v1";

void SaveInterner(std::ostream& out, const StringInterner& interner) {
  serde::WriteU32(out, interner.size());
  for (uint32_t i = 0; i < interner.size(); ++i) {
    serde::WriteString(out, interner.View(i));
  }
}

/// Re-interning every string in id order reproduces the exact dense ids
/// (and arena bytes) of the saving interner.
bool LoadInterner(std::istream& in, StringInterner& interner) {
  uint32_t count;
  if (!serde::ReadU32(in, count)) return false;
  std::string s;
  for (uint32_t i = 0; i < count; ++i) {
    if (!serde::ReadString(in, s)) return false;
    if (interner.Intern(s) != i) return false;  // duplicate string in stream
  }
  return true;
}

}  // namespace

Status EntityCollection::Save(std::ostream& out) const {
  if (!finalized_) {
    return Status::FailedPrecondition(
        "only finalized collections are serializable");
  }
  serde::WriteString(out, kCollectionMagic);
  serde::WriteU32(out, options_.tokenizer.min_token_length);
  serde::WriteU8(out, options_.tokenizer.keep_numeric ? 1 : 0);
  serde::WriteU8(out, options_.tokenizer.normalize ? 1 : 0);
  serde::WriteDouble(out, options_.max_token_frequency);
  serde::WriteU8(out, options_.index_types ? 1 : 0);

  SaveInterner(out, iris_);
  SaveInterner(out, predicates_);
  SaveInterner(out, values_);
  SaveInterner(out, tokens_);

  serde::WriteU32(out, num_kbs());
  for (const KnowledgeBaseInfo& kb : kbs_) {
    serde::WriteString(out, kb.name);
    serde::WriteU64(out, kb.triples);
    serde::WriteU32(out, kb.first_entity);
    serde::WriteU32(out, kb.end_entity);
    serde::WriteU32(out, kb.appended_entities);
  }

  serde::WriteU32(out, num_entities());
  for (const EntityDescription& e : entities_) {
    serde::WriteU32(out, e.iri);
    serde::WriteU32(out, e.kb);
    serde::WriteU32(out, static_cast<uint32_t>(e.attributes.size()));
    for (const Attribute& a : e.attributes) {
      serde::WriteU32(out, a.predicate);
      serde::WriteU32(out, a.value);
    }
    serde::WriteU32(out, static_cast<uint32_t>(e.relations.size()));
    for (const Relation& r : e.relations) {
      serde::WriteU32(out, r.predicate);
      serde::WriteU32(out, r.target);
    }
    serde::WriteU32(out, static_cast<uint32_t>(e.tokens.size()));
    for (const uint32_t t : e.tokens) serde::WriteU32(out, t);
    serde::WriteU32(out, static_cast<uint32_t>(e.token_bag.size()));
    for (const uint32_t t : e.token_bag) serde::WriteU32(out, t);
  }

  serde::WriteU64(out, same_as_links_.size());
  for (const SameAsLink& link : same_as_links_) {
    serde::WriteU32(out, link.a);
    serde::WriteU32(out, link.b);
  }

  // Document frequencies are serialized verbatim rather than rebuilt from
  // the entity token sets: stop-token removal (max_token_frequency) strips
  // tokens from the sets AFTER their frequencies were counted.
  serde::WriteU32(out, static_cast<uint32_t>(token_df_.size()));
  for (const uint32_t df : token_df_) serde::WriteU32(out, df);

  serde::WriteU64(out, total_triples_);
  if (!out) return Status::IoError("collection write failed");
  return Status::Ok();
}

Status EntityCollection::Load(std::istream& in) {
  const auto truncated = [] {
    return Status::ParseError("truncated or corrupt serialized collection");
  };
  std::string magic;
  if (!serde::ReadString(in, magic, kCollectionMagic.size())) {
    return truncated();
  }
  if (magic != kCollectionMagic) {
    return Status::ParseError("not a MinoanER serialized collection");
  }

  uint8_t keep_numeric, normalize, index_types;
  CollectionOptions options;
  if (!serde::ReadU32(in, options.tokenizer.min_token_length) ||
      !serde::ReadU8(in, keep_numeric) || !serde::ReadU8(in, normalize) ||
      !serde::ReadDouble(in, options.max_token_frequency) ||
      !serde::ReadU8(in, index_types)) {
    return truncated();
  }
  options.tokenizer.keep_numeric = keep_numeric != 0;
  options.tokenizer.normalize = normalize != 0;
  options.index_types = index_types != 0;
  options_ = options;
  tokenizer_ = Tokenizer(options.tokenizer);

  iris_ = StringInterner();
  predicates_ = StringInterner();
  values_ = StringInterner();
  tokens_ = StringInterner();
  if (!LoadInterner(in, iris_) || !LoadInterner(in, predicates_) ||
      !LoadInterner(in, values_) || !LoadInterner(in, tokens_)) {
    return truncated();
  }

  uint32_t num_kbs;
  if (!serde::ReadU32(in, num_kbs)) return truncated();
  kbs_.clear();
  kbs_.reserve(serde::ClampedReserve(num_kbs));
  for (uint32_t i = 0; i < num_kbs; ++i) {
    KnowledgeBaseInfo kb;
    if (!serde::ReadString(in, kb.name) || !serde::ReadU64(in, kb.triples) ||
        !serde::ReadU32(in, kb.first_entity) ||
        !serde::ReadU32(in, kb.end_entity) ||
        !serde::ReadU32(in, kb.appended_entities) ||
        kb.first_entity > kb.end_entity) {
      return truncated();
    }
    kbs_.push_back(std::move(kb));
  }

  uint32_t num_entities;
  if (!serde::ReadU32(in, num_entities)) return truncated();
  entities_.clear();
  entities_.reserve(serde::ClampedReserve(num_entities));
  const auto read_ids = [&](std::vector<uint32_t>& ids, uint32_t bound) {
    uint32_t count;
    if (!serde::ReadU32(in, count)) return false;
    ids.clear();
    ids.reserve(serde::ClampedReserve(count));
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id;
      if (!serde::ReadU32(in, id) || id >= bound) return false;
      ids.push_back(id);
    }
    return true;
  };
  for (uint32_t i = 0; i < num_entities; ++i) {
    EntityDescription e;
    e.id = i;
    uint32_t n_attrs, n_rels;
    if (!serde::ReadU32(in, e.iri) || !serde::ReadU32(in, e.kb) ||
        e.iri >= iris_.size() || e.kb >= kbs_.size() ||
        !serde::ReadU32(in, n_attrs)) {
      return truncated();
    }
    e.attributes.reserve(serde::ClampedReserve(n_attrs));
    for (uint32_t j = 0; j < n_attrs; ++j) {
      Attribute a;
      if (!serde::ReadU32(in, a.predicate) || !serde::ReadU32(in, a.value) ||
          a.predicate >= predicates_.size() || a.value >= values_.size()) {
        return truncated();
      }
      e.attributes.push_back(a);
    }
    if (!serde::ReadU32(in, n_rels)) return truncated();
    e.relations.reserve(serde::ClampedReserve(n_rels));
    for (uint32_t j = 0; j < n_rels; ++j) {
      Relation r;
      if (!serde::ReadU32(in, r.predicate) || !serde::ReadU32(in, r.target) ||
          r.predicate >= predicates_.size() || r.target >= num_entities) {
        return truncated();
      }
      e.relations.push_back(r);
    }
    if (!read_ids(e.tokens, tokens_.size()) ||
        !read_ids(e.token_bag, tokens_.size())) {
      return truncated();
    }
    entities_.push_back(std::move(e));
  }

  uint64_t n_links;
  if (!serde::ReadU64(in, n_links)) return truncated();
  same_as_links_.clear();
  same_as_links_.reserve(serde::ClampedReserve(n_links));
  for (uint64_t i = 0; i < n_links; ++i) {
    SameAsLink link;
    if (!serde::ReadU32(in, link.a) || !serde::ReadU32(in, link.b) ||
        link.a >= num_entities || link.b >= num_entities) {
      return truncated();
    }
    same_as_links_.push_back(link);
  }

  uint32_t n_df;
  if (!serde::ReadU32(in, n_df) || n_df != tokens_.size()) return truncated();
  token_df_.clear();
  token_df_.reserve(serde::ClampedReserve(n_df));
  for (uint32_t i = 0; i < n_df; ++i) {
    uint32_t df;
    if (!serde::ReadU32(in, df)) return truncated();
    token_df_.push_back(df);
  }
  if (!serde::ReadU64(in, total_triples_)) return truncated();

  // Derived lookup tables: first-added entity per IRI and per (KB, IRI) —
  // id order IS first-added order, so set-if-absent reproduces both maps.
  iri_to_entity_.assign(iris_.size(), kInvalidEntity);
  kb_iri_to_entity_.clear();
  for (const EntityDescription& e : entities_) {
    if (iri_to_entity_[e.iri] == kInvalidEntity) iri_to_entity_[e.iri] = e.id;
    kb_iri_to_entity_.emplace(KbIriKey(e.kb, e.iri), e.id);
  }
  pending_same_as_.clear();
  finalized_ = true;
  return Status::Ok();
}

double EntityCollection::TokenIdf(uint32_t token) const {
  if (token >= token_df_.size() || token_df_[token] == 0 ||
      entities_.empty()) {
    return 0.0;
  }
  return std::log(static_cast<double>(entities_.size()) /
                  static_cast<double>(token_df_[token]));
}

}  // namespace minoan
