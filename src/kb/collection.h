// Copyright 2026 The MinoanER Authors.
// EntityCollection: the web-of-data view MinoanER resolves over.
//
// A collection aggregates one or more knowledge bases (RDF sources). Building
// is two-pass: pass 1 registers every subject IRI per KB as an entity; pass 2
// classifies each triple's object as a relation (target described in the SAME
// KB — Linked Data rarely reuses foreign subject IRIs directly; cross-KB
// equivalences arrive as owl:sameAs, which are captured separately) or as an
// attribute (literals and unresolved IRIs, whose local name is tokenized so
// that links to undescribed resources still yield matching evidence).

#ifndef MINOAN_KB_COLLECTION_H_
#define MINOAN_KB_COLLECTION_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kb/entity.h"
#include "rdf/term.h"
#include "text/tokenizer.h"
#include "util/interner.h"
#include "util/status.h"

namespace minoan {

/// Metadata of one ingested knowledge base.
struct KnowledgeBaseInfo {
  std::string name;
  uint64_t triples = 0;
  /// Dense id range [first_entity, end_entity) of the batch-phase entities.
  /// Entities appended after Finalize live OUTSIDE this range (their ids
  /// interleave across KBs) and are counted in `appended_entities`.
  uint32_t first_entity = 0;
  uint32_t end_entity = 0;
  uint32_t appended_entities = 0;
  uint32_t num_entities() const {
    return end_entity - first_entity + appended_entities;
  }
};

/// An owl:sameAs assertion between two described entities (existing
/// interlinking found in the input; distinct from generated ground truth).
struct SameAsLink {
  EntityId a;
  EntityId b;
};

/// Configuration of the ingestion process.
struct CollectionOptions {
  TokenizerOptions tokenizer;
  /// Tokens appearing in more than this fraction of entities are dropped
  /// from `tokens` (stop-token removal; 1.0 disables).
  double max_token_frequency = 1.0;
  /// When true, rdf:type objects are recorded as attributes (type tokens are
  /// often near-stopwords for blocking, but carry matching signal).
  bool index_types = true;
};

/// The central in-memory store. The batch surface (`AddKnowledgeBase` +
/// `Finalize`) freezes the collection; the online surface
/// (`AddEmptyKnowledgeBase` + `AppendEntity`) supports append-only growth
/// AFTER finalization — existing entities, ids, and tokens never change, so
/// readers holding ids stay valid across appends.
class EntityCollection {
 public:
  explicit EntityCollection(CollectionOptions options = CollectionOptions());

  /// Ingests one KB from parsed triples. KBs must be added before Finalize.
  /// Returns the KB id.
  Result<uint32_t> AddKnowledgeBase(std::string name,
                                    const std::vector<rdf::Triple>& triples);

  /// Freezes the collection: tokenizes values, applies stop-token removal,
  /// sorts per-entity structures. Must be called exactly once after all KBs.
  Status Finalize();

  bool finalized() const { return finalized_; }

  // --- Online (post-finalize) ingestion ---------------------------------

  /// Registers a KB with no entities. Unlike AddKnowledgeBase this works
  /// after Finalize too — online sessions discover sources dynamically.
  uint32_t AddEmptyKnowledgeBase(std::string name);

  /// Appends one entity description after Finalize: all `triples` must share
  /// a single subject, which must not already be described in `kb_id`. The
  /// entity is tokenized immediately and document frequencies are updated.
  /// Append-only semantics differ from batch ingestion in two documented
  /// ways: (1) an IRI object is a relation only when its target is already
  /// present in the same KB — forward references degrade to attribute
  /// tokens; (2) stop-token removal (max_token_frequency) is not applied,
  /// since online growth cannot retract tokens from earlier entities.
  Result<EntityId> AppendEntity(uint32_t kb_id,
                                const std::vector<rdf::Triple>& triples);

  // --- Accessors (valid after Finalize) ---------------------------------

  uint32_t num_kbs() const { return static_cast<uint32_t>(kbs_.size()); }
  const KnowledgeBaseInfo& kb(uint32_t kb_id) const { return kbs_[kb_id]; }

  uint32_t num_entities() const {
    return static_cast<uint32_t>(entities_.size());
  }
  const EntityDescription& entity(EntityId id) const { return entities_[id]; }
  const std::vector<EntityDescription>& entities() const { return entities_; }

  /// Entity lookup by IRI string; kInvalidEntity when absent. IRIs may be
  /// reused across KBs; this returns the first-added entity.
  EntityId FindByIri(std::string_view iri) const;

  /// The tokenizer configured for this collection (shared by blocking
  /// methods that tokenize attribute values on the fly).
  const Tokenizer& tokenizer() const { return tokenizer_; }

  const StringInterner& iris() const { return iris_; }
  const StringInterner& predicates() const { return predicates_; }
  const StringInterner& values() const { return values_; }
  const StringInterner& tokens() const { return tokens_; }

  std::string_view EntityIri(EntityId id) const {
    return iris_.View(entities_[id].iri);
  }

  const std::vector<SameAsLink>& same_as_links() const {
    return same_as_links_;
  }

  /// Document frequency of token id (number of entities containing it).
  uint32_t TokenDf(uint32_t token) const { return token_df_[token]; }

  /// ln(N / df) inverse document frequency; 0 for unused tokens.
  double TokenIdf(uint32_t token) const;

  uint64_t total_triples() const { return total_triples_; }

  // --- Serialization ----------------------------------------------------

  /// Writes the full finalized collection — interners, KB metadata, every
  /// entity description, sameAs links, document frequencies, and the
  /// ingestion options — in the fixed little-endian util/serde.h format
  /// ("MNER-COLL-v1"). Load reproduces a byte-identical collection: interned
  /// ids, token bags, and appended entities all come back exactly, so
  /// engines restored over a loaded collection continue deterministically.
  Status Save(std::ostream& out) const;

  /// Replaces this collection with the stream's contents (only meaningful on
  /// a default-constructed collection). The serialized options are adopted,
  /// derived lookup tables are rebuilt, and every id read is range-checked,
  /// so corrupt or hostile input fails with a Status instead of leaving
  /// out-of-bounds references behind. On failure the collection is
  /// half-overwritten and must be discarded.
  Status Load(std::istream& in);

  /// True when entity `a` and `b` come from different KBs (the only pairs a
  /// clean-clean workflow may compare).
  bool CrossKb(EntityId a, EntityId b) const {
    return entities_[a].kb != entities_[b].kb;
  }

 private:
  struct PendingValue {
    EntityId entity;
    uint32_t predicate;
    uint32_t value;  // id in values_
  };

  CollectionOptions options_;
  Tokenizer tokenizer_;
  bool finalized_ = false;

  std::vector<KnowledgeBaseInfo> kbs_;
  std::vector<EntityDescription> entities_;
  StringInterner iris_;        // subject/object IRIs
  StringInterner predicates_;  // predicate IRIs
  StringInterner values_;      // literal lexical forms
  StringInterner tokens_;      // normalized tokens

  /// Interns the subject of a triple, qualifying blank labels per KB, and
  /// keeps iri_to_entity_ sized to the interner.
  uint32_t InternSubject(uint32_t kb_id, const rdf::Term& subject);
  /// Tokenizes one entity's values + IRI local name into tokens/token_bag
  /// and bumps token_df_ for its unique tokens.
  void TokenizeEntity(EntityDescription& desc);
  /// Classifies one triple's object for entity `eid`: owl:sameAs link
  /// (deferred to Finalize, or — for post-finalize appends — resolved
  /// eagerly against the entities present now), relation (target described
  /// in the same KB), or attribute (literals and unresolved IRIs). Shared
  /// by batch and online ingestion so the semantics cannot drift.
  void ClassifyObject(uint32_t kb_id, EntityId eid, const rdf::Triple& t,
                      bool eager_same_as);

  static uint64_t KbIriKey(uint32_t kb_id, uint32_t iri_id) {
    return (static_cast<uint64_t>(kb_id) << 32) | iri_id;
  }

  // iri id -> first entity with that IRI.
  std::vector<EntityId> iri_to_entity_;
  // (kb id << 32 | iri id) -> entity, for same-KB object resolution (the
  // "described in the SAME KB" rule). Maintained from the first ingest on.
  std::unordered_map<uint64_t, EntityId> kb_iri_to_entity_;
  // sameAs assertions seen during ingestion, resolved in Finalize (the
  // target KB may be added after the asserting one).
  std::vector<std::pair<EntityId, uint32_t>> pending_same_as_;
  std::vector<SameAsLink> same_as_links_;
  std::vector<uint32_t> token_df_;
  uint64_t total_triples_ = 0;
  // Tokenization scratch reused across entities (Finalize loop + appends).
  std::vector<uint32_t> tokenize_scratch_;
};

}  // namespace minoan

#endif  // MINOAN_KB_COLLECTION_H_
