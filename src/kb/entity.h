// Copyright 2026 The MinoanER Authors.
// The entity-description model.
//
// An *entity description* is the unit of resolution: one subject IRI together
// with all its (predicate, object) pairs from one knowledge base. Literal
// objects (and IRIs that are not themselves described in the collection)
// contribute *attributes* and tokens; IRI objects described in the collection
// contribute *relations*, i.e. edges of the neighbor graph that the
// progressive update phase walks.

#ifndef MINOAN_KB_ENTITY_H_
#define MINOAN_KB_ENTITY_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace minoan {

/// Dense entity id within an EntityCollection.
using EntityId = uint32_t;
inline constexpr EntityId kInvalidEntity =
    std::numeric_limits<EntityId>::max();

/// One attribute assertion: interned predicate and interned literal value.
struct Attribute {
  uint32_t predicate;  // id in EntityCollection::predicates()
  uint32_t value;      // id in EntityCollection::values()
};

/// One relation assertion: interned predicate and target entity.
struct Relation {
  uint32_t predicate;
  EntityId target;
};

/// A fully ingested entity description. All strings are interned in the
/// owning EntityCollection; this struct holds only dense ids.
struct EntityDescription {
  EntityId id = kInvalidEntity;
  uint32_t iri = 0;    // id in EntityCollection::iris()
  uint32_t kb = 0;     // id of the source knowledge base
  std::vector<Attribute> attributes;
  std::vector<Relation> relations;

  /// Sorted unique token ids over every literal value plus the tokens of the
  /// IRI suffix — the blocking keys and Jaccard support of this description.
  std::vector<uint32_t> tokens;

  /// Sorted token ids *with duplicates* (term-frequency bag) for TF-IDF.
  std::vector<uint32_t> token_bag;

  size_t num_attributes() const { return attributes.size(); }
  size_t num_relations() const { return relations.size(); }
};

}  // namespace minoan

#endif  // MINOAN_KB_ENTITY_H_
