#include "kb/neighbor_graph.h"

#include <algorithm>

namespace minoan {

NeighborGraph::NeighborGraph(const EntityCollection& collection) {
  std::vector<std::pair<EntityId, EntityId>> edges;
  for (const EntityDescription& desc : collection.entities()) {
    for (const Relation& rel : desc.relations) {
      edges.emplace_back(desc.id, rel.target);
    }
  }
  BuildCsr(collection.num_entities(), edges);
}

NeighborGraph::NeighborGraph(
    uint32_t num_entities,
    const std::vector<std::pair<EntityId, EntityId>>& edges) {
  std::vector<std::pair<EntityId, EntityId>> copy = edges;
  BuildCsr(num_entities, copy);
}

void NeighborGraph::BuildCsr(
    uint32_t num_entities, std::vector<std::pair<EntityId, EntityId>>& edges) {
  // Symmetrize, drop self-loops, dedupe.
  const size_t n = edges.size();
  edges.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    edges.emplace_back(edges[i].second, edges[i].first);
  }
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const auto& e) { return e.first == e.second; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  offsets_.assign(static_cast<size_t>(num_entities) + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++offsets_[src + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  targets_.resize(edges.size());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [src, dst] : edges) {
    targets_[cursor[src]++] = dst;
  }
}

bool NeighborGraph::AreNeighbors(EntityId a, EntityId b) const {
  const auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

double NeighborGraph::MeanDegree() const {
  const uint32_t n = num_entities();
  if (n == 0) return 0.0;
  return static_cast<double>(targets_.size()) / static_cast<double>(n);
}

}  // namespace minoan
