// Copyright 2026 The MinoanER Authors.
// The entity neighbor graph.
//
// The progressive update phase treats a confirmed match (a, b) as similarity
// evidence for pairs of *neighbors* of a and b — the descriptions they link
// to through object properties. This class freezes the relation edges of an
// EntityCollection into a compact CSR adjacency (undirected, deduplicated)
// for O(1)-amortized neighbor enumeration.

#ifndef MINOAN_KB_NEIGHBOR_GRAPH_H_
#define MINOAN_KB_NEIGHBOR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/collection.h"
#include "kb/entity.h"

namespace minoan {

/// Immutable CSR adjacency over entity ids.
class NeighborGraph {
 public:
  /// Builds the undirected graph from the collection's relation edges
  /// (both directions inserted, duplicates and self-loops removed).
  explicit NeighborGraph(const EntityCollection& collection);

  /// Builds from explicit edges (used by tests and the generator).
  NeighborGraph(uint32_t num_entities,
                const std::vector<std::pair<EntityId, EntityId>>& edges);

  uint32_t num_entities() const {
    return static_cast<uint32_t>(offsets_.size()) - 1;
  }
  uint64_t num_edges() const { return targets_.size() / 2; }

  /// Neighbors of `id` (sorted ascending).
  std::span<const EntityId> Neighbors(EntityId id) const {
    return std::span<const EntityId>(targets_.data() + offsets_[id],
                                     offsets_[id + 1] - offsets_[id]);
  }

  uint32_t Degree(EntityId id) const {
    return static_cast<uint32_t>(offsets_[id + 1] - offsets_[id]);
  }

  /// True when `a` and `b` are adjacent (binary search over a's list).
  bool AreNeighbors(EntityId a, EntityId b) const;

  /// Mean degree across all entities.
  double MeanDegree() const;

 private:
  void BuildCsr(uint32_t num_entities,
                std::vector<std::pair<EntityId, EntityId>>& edges);

  std::vector<uint64_t> offsets_;  // size = num_entities + 1
  std::vector<EntityId> targets_;
};

}  // namespace minoan

#endif  // MINOAN_KB_NEIGHBOR_GRAPH_H_
