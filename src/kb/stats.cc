#include "kb/stats.h"

#include <algorithm>
#include <set>
#include <string_view>
#include <utility>

#include "rdf/iri.h"
#include "util/interner.h"

namespace minoan {

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0, total = 0.0;
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cum_weighted += (static_cast<double>(i) + 1.0) * values[i];
    total += values[i];
  }
  if (total == 0.0) return 0.0;
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

CloudStats ComputeCloudStats(const EntityCollection& collection) {
  CloudStats stats;
  stats.num_kbs = collection.num_kbs();
  stats.num_entities = collection.num_entities();
  stats.num_triples = collection.total_triples();
  stats.num_same_as = collection.same_as_links().size();

  stats.per_kb.resize(stats.num_kbs);
  for (uint32_t k = 0; k < stats.num_kbs; ++k) {
    const KnowledgeBaseInfo& info = collection.kb(k);
    stats.per_kb[k].name = info.name;
    stats.per_kb[k].entities = info.num_entities();
    stats.per_kb[k].triples = info.triples;
  }

  // Vocabulary statistics: namespaces of predicates, per-KB usage.
  // Namespaces are interned to dense ids and usage is a flat
  // (namespace id, kb) pair list — sort + unique replaces a map of sets,
  // with no per-namespace node allocation. The reported numbers are
  // identical: distinct namespaces, and namespaces used by exactly one KB.
  StringInterner vocab;
  std::vector<std::pair<uint32_t, uint32_t>> uses;  // (namespace id, kb)
  const auto record = [&](uint32_t predicate, uint32_t kb) {
    const std::string_view ns =
        rdf::IriNamespace(collection.predicates().View(predicate));
    if (!ns.empty()) uses.emplace_back(vocab.Intern(ns), kb);
  };
  for (const EntityDescription& desc : collection.entities()) {
    for (const Attribute& attr : desc.attributes) {
      record(attr.predicate, desc.kb);
    }
    for (const Relation& rel : desc.relations) {
      record(rel.predicate, desc.kb);
    }
  }
  std::sort(uses.begin(), uses.end());
  uses.erase(std::unique(uses.begin(), uses.end()), uses.end());
  stats.num_vocabularies = vocab.size();
  // After dedup, a namespace's uses are one contiguous run; a run of
  // length 1 is a namespace proprietary to a single KB.
  for (size_t i = 0; i < uses.size();) {
    size_t j = i + 1;
    while (j < uses.size() && uses[j].first == uses[i].first) ++j;
    if (j - i == 1) ++stats.proprietary_vocabularies;
    i = j;
  }
  stats.proprietary_ratio =
      stats.num_vocabularies == 0
          ? 0.0
          : static_cast<double>(stats.proprietary_vocabularies) /
                static_cast<double>(stats.num_vocabularies);

  // Interlinking: sameAs endpoints per KB, distinct partner sets.
  std::vector<std::set<uint32_t>> partners(stats.num_kbs);
  for (const SameAsLink& link : collection.same_as_links()) {
    const uint32_t ka = collection.entity(link.a).kb;
    const uint32_t kb = collection.entity(link.b).kb;
    ++stats.per_kb[ka].out_links;
    ++stats.per_kb[kb].in_links;
    if (ka != kb) {
      partners[ka].insert(kb);
      partners[kb].insert(ka);
    }
  }
  std::vector<double> link_mass(stats.num_kbs, 0.0);
  for (uint32_t k = 0; k < stats.num_kbs; ++k) {
    stats.per_kb[k].linked_kbs = static_cast<uint32_t>(partners[k].size());
    link_mass[k] = static_cast<double>(stats.per_kb[k].out_links +
                                       stats.per_kb[k].in_links);
  }
  stats.link_gini = GiniCoefficient(link_mass);

  // Top-decile share of link mass.
  std::vector<double> sorted = link_mass;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const size_t decile = std::max<size_t>(1, sorted.size() / 10);
  double top = 0.0, total = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    if (i < decile) top += sorted[i];
  }
  stats.top_decile_link_share = total == 0.0 ? 0.0 : top / total;
  return stats;
}

}  // namespace minoan
