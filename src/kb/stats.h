// Copyright 2026 The MinoanER Authors.
// Descriptive statistics of an entity collection / LOD cloud.
//
// These reproduce the structural facts the poster cites about the Web of
// Data (experiment T1): skewed interlinking popularity, sparse periphery
// linking, and the dominance of proprietary vocabularies (58.24% of LOD
// vocabularies are used by exactly one KB).

#ifndef MINOAN_KB_STATS_H_
#define MINOAN_KB_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/collection.h"

namespace minoan {

/// Per-KB interlinking figures.
struct KbLinkStats {
  std::string name;
  uint32_t entities = 0;
  uint64_t triples = 0;
  uint64_t out_links = 0;   // sameAs assertions issued by this KB
  uint64_t in_links = 0;    // sameAs assertions pointing into this KB
  uint32_t linked_kbs = 0;  // distinct partner KBs
};

/// Whole-cloud statistics.
struct CloudStats {
  uint32_t num_kbs = 0;
  uint32_t num_entities = 0;
  uint64_t num_triples = 0;
  uint64_t num_same_as = 0;

  /// Vocabulary (predicate namespace) figures.
  uint32_t num_vocabularies = 0;
  uint32_t proprietary_vocabularies = 0;  // used by exactly one KB
  double proprietary_ratio = 0.0;

  /// Interlinking skew: Gini coefficient of per-KB total link counts and the
  /// share of links touching the top-10% most-linked KBs.
  double link_gini = 0.0;
  double top_decile_link_share = 0.0;

  std::vector<KbLinkStats> per_kb;
};

/// Computes cloud statistics from a finalized collection.
CloudStats ComputeCloudStats(const EntityCollection& collection);

/// Gini coefficient of a non-negative sample (0 = equal, →1 = concentrated).
double GiniCoefficient(std::vector<double> values);

}  // namespace minoan

#endif  // MINOAN_KB_STATS_H_
