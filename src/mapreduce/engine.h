// Copyright 2026 The MinoanER Authors.
// An in-process, multi-threaded MapReduce engine.
//
// The poster scales blocking and meta-blocking "via Hadoop MapReduce [4, 5]".
// A physical cluster is out of scope for a library reproduction, so this
// engine preserves what those experiments actually exercise: the MapReduce
// *programming model* (typed map / combine / partition / shuffle / sort /
// reduce), the job decompositions of [4], and the speedup-vs-workers curve.
//
// Semantics:
//   * map tasks run in parallel over input chunks;
//   * emitted (K, V) pairs are hash-partitioned into R = num_workers
//     partitions;
//   * an optional combiner folds each map task's local output per key;
//   * each partition is sorted by (K, V) — K and V must be totally ordered,
//     which also makes every run deterministic for a fixed worker count;
//   * reduce tasks (one per partition) run in parallel; outputs are
//     concatenated in partition order.

#ifndef MINOAN_MAPREDUCE_ENGINE_H_
#define MINOAN_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace minoan {
namespace mapreduce {

/// Job-level counters (Hadoop-style), filled by Run.
struct Counters {
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t combine_output_records = 0;
  uint64_t reduce_groups = 0;
  uint64_t reduce_output_records = 0;
};

/// Collects (K, V) pairs from one map task into per-partition buffers.
template <typename K, typename V>
class Emitter {
 public:
  explicit Emitter(uint32_t num_partitions) : buffers_(num_partitions) {}

  void Emit(K key, V value) {
    const uint32_t p = Partition(key, static_cast<uint32_t>(buffers_.size()));
    buffers_[p].emplace_back(std::move(key), std::move(value));
    ++emitted_;
  }

  /// Default partitioner: mixed std::hash modulo partition count.
  static uint32_t Partition(const K& key, uint32_t num_partitions) {
    return static_cast<uint32_t>(Mix64(std::hash<K>{}(key)) % num_partitions);
  }

  std::vector<std::vector<std::pair<K, V>>>& buffers() { return buffers_; }
  uint64_t emitted() const { return emitted_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buffers_;
  uint64_t emitted_ = 0;
};

/// The engine. One instance owns a thread pool and can run many jobs.
class Engine {
 public:
  explicit Engine(uint32_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers),
        pool_(num_workers_) {}

  uint32_t num_workers() const { return num_workers_; }

  /// The engine's worker pool, for jobs that bypass the map/reduce shape
  /// (e.g. sharded pruning) but should share the same threads.
  ThreadPool& pool() { return pool_; }

  /// Runs one job. Template parameters:
  ///   In  — input record type; K/V — intermediate key/value (totally
  ///   ordered); Out — reduce output type.
  /// `map_fn(record, emitter)` may run concurrently on different records;
  /// `reduce_fn(key, values, out)` likewise on different keys. `combine_fn`
  /// (optional) folds a sorted run of values for one key into fewer values
  /// within each map task.
  template <typename In, typename K, typename V, typename Out>
  std::vector<Out> Run(
      const std::vector<In>& inputs,
      const std::function<void(const In&, Emitter<K, V>&)>& map_fn,
      const std::function<void(const K&, std::span<const V>,
                               std::vector<Out>&)>& reduce_fn,
      const std::function<V(const K&, std::span<const V>)>* combine_fn =
          nullptr,
      Counters* counters = nullptr) {
    const uint32_t R = num_workers_;
    const size_t num_chunks =
        std::max<size_t>(1, std::min(inputs.size(),
                                     static_cast<size_t>(num_workers_) * 4));
    const size_t chunk_size = inputs.empty()
                                  ? 1
                                  : (inputs.size() + num_chunks - 1) /
                                        num_chunks;

    // ---- Map phase -------------------------------------------------------
    std::vector<Emitter<K, V>> emitters;
    emitters.reserve(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) emitters.emplace_back(R);
    std::atomic<uint64_t> map_inputs{0};
    std::atomic<uint64_t> combine_out{0};
    for (size_t c = 0; c < num_chunks; ++c) {
      pool_.Submit([&, c] {
        const size_t begin = c * chunk_size;
        const size_t end = std::min(inputs.size(), begin + chunk_size);
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) {
          map_fn(inputs[i], emitters[c]);
          ++local;
        }
        map_inputs.fetch_add(local, std::memory_order_relaxed);
        if (combine_fn != nullptr) {
          uint64_t kept = 0;
          for (auto& buffer : emitters[c].buffers()) {
            kept += CombineBuffer(*combine_fn, buffer);
          }
          combine_out.fetch_add(kept, std::memory_order_relaxed);
        }
      });
    }
    pool_.Wait();

    // ---- Shuffle + sort --------------------------------------------------
    std::vector<std::vector<std::pair<K, V>>> partitions(R);
    for (uint32_t r = 0; r < R; ++r) {
      size_t total = 0;
      for (auto& em : emitters) total += em.buffers()[r].size();
      partitions[r].reserve(total);
      for (auto& em : emitters) {
        auto& src = em.buffers()[r];
        partitions[r].insert(partitions[r].end(),
                             std::make_move_iterator(src.begin()),
                             std::make_move_iterator(src.end()));
        src.clear();
      }
    }
    uint64_t map_outputs = 0;
    for (const auto& em : emitters) map_outputs += em.emitted();

    for (uint32_t r = 0; r < R; ++r) {
      pool_.Submit([&, r] { std::sort(partitions[r].begin(),
                                      partitions[r].end()); });
    }
    pool_.Wait();

    // ---- Reduce phase ----------------------------------------------------
    std::vector<std::vector<Out>> outputs(R);
    std::atomic<uint64_t> groups{0};
    for (uint32_t r = 0; r < R; ++r) {
      pool_.Submit([&, r] {
        auto& part = partitions[r];
        std::vector<V> values;
        size_t i = 0;
        uint64_t local_groups = 0;
        while (i < part.size()) {
          size_t j = i;
          values.clear();
          while (j < part.size() && part[j].first == part[i].first) {
            values.push_back(part[j].second);
            ++j;
          }
          reduce_fn(part[i].first,
                    std::span<const V>(values.data(), values.size()),
                    outputs[r]);
          ++local_groups;
          i = j;
        }
        groups.fetch_add(local_groups, std::memory_order_relaxed);
      });
    }
    pool_.Wait();

    std::vector<Out> result;
    size_t total_out = 0;
    for (const auto& o : outputs) total_out += o.size();
    result.reserve(total_out);
    for (auto& o : outputs) {
      result.insert(result.end(), std::make_move_iterator(o.begin()),
                    std::make_move_iterator(o.end()));
    }
    if (counters) {
      counters->map_input_records = map_inputs.load();
      counters->map_output_records = map_outputs;
      counters->combine_output_records =
          combine_fn ? combine_out.load() : map_outputs;
      counters->reduce_groups = groups.load();
      counters->reduce_output_records = result.size();
    }
    return result;
  }

 private:
  template <typename K, typename V>
  static uint64_t CombineBuffer(
      const std::function<V(const K&, std::span<const V>)>& combine_fn,
      std::vector<std::pair<K, V>>& buffer) {
    std::sort(buffer.begin(), buffer.end());
    std::vector<std::pair<K, V>> folded;
    std::vector<V> values;
    size_t i = 0;
    while (i < buffer.size()) {
      size_t j = i;
      values.clear();
      while (j < buffer.size() && buffer[j].first == buffer[i].first) {
        values.push_back(buffer[j].second);
        ++j;
      }
      folded.emplace_back(
          buffer[i].first,
          combine_fn(buffer[i].first,
                     std::span<const V>(values.data(), values.size())));
      i = j;
    }
    buffer = std::move(folded);
    return buffer.size();
  }

  uint32_t num_workers_;
  ThreadPool pool_;
};

}  // namespace mapreduce
}  // namespace minoan

#endif  // MINOAN_MAPREDUCE_ENGINE_H_
