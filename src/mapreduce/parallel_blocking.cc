#include "mapreduce/parallel_blocking.h"

#include <algorithm>

namespace minoan {
namespace mapreduce {

BlockCollection ParallelTokenBlocking(const EntityCollection& collection,
                                      Engine& engine,
                                      TokenBlocking::Options options,
                                      Counters* counters) {
  // Inputs: entity ids.
  std::vector<EntityId> inputs(collection.num_entities());
  for (uint32_t i = 0; i < inputs.size(); ++i) inputs[i] = i;

  const uint64_t df_cap = static_cast<uint64_t>(options.max_df_fraction *
                                                collection.num_entities());

  using TokenBlockPair = std::pair<uint32_t, std::vector<EntityId>>;
  auto map_fn = [&collection](const EntityId& e,
                              Emitter<uint32_t, EntityId>& emitter) {
    for (uint32_t tok : collection.entity(e).tokens) {
      emitter.Emit(tok, e);
    }
  };
  auto reduce_fn = [&](const uint32_t& token,
                       std::span<const EntityId> entities,
                       std::vector<TokenBlockPair>& out) {
    if (entities.size() < options.min_df) return;
    if (df_cap > 0 && entities.size() > df_cap) return;
    out.emplace_back(token,
                     std::vector<EntityId>(entities.begin(), entities.end()));
  };

  std::vector<TokenBlockPair> raw =
      engine.Run<EntityId, uint32_t, EntityId, TokenBlockPair>(
          inputs, map_fn, reduce_fn, nullptr, counters);

  // Canonical order: ascending token id — identical to the sequential
  // TokenBlocking, independent of worker count.
  std::sort(raw.begin(), raw.end(),
            [](const TokenBlockPair& a, const TokenBlockPair& b) {
              return a.first < b.first;
            });
  BlockCollection out;
  for (auto& [token, entities] : raw) {
    out.AddBlock(collection.tokens().View(token), std::move(entities));
  }
  return out;
}

BlockCollection ParallelPisBlocking(const EntityCollection& collection,
                                    Engine& engine,
                                    PisBlocking::Options options,
                                    Counters* counters) {
  std::vector<EntityId> inputs(collection.num_entities());
  for (uint32_t i = 0; i < inputs.size(); ++i) inputs[i] = i;

  using PisBlockPair = std::pair<std::string, std::vector<EntityId>>;
  auto map_fn = [&collection, &options](
                    const EntityId& e, Emitter<std::string, EntityId>& em) {
    thread_local std::vector<std::string> keys;
    thread_local std::vector<std::string> token_scratch;
    keys.clear();
    AppendPisKeys(options, collection.tokenizer(),
                  collection.iris().View(collection.entity(e).iri), keys,
                  token_scratch);
    for (std::string& key : keys) em.Emit(std::move(key), e);
  };
  // The sequential method filters on the raw emission count (an entity can
  // emit one key twice); the reducer's span carries exactly those
  // duplicates, so the filters agree.
  auto reduce_fn = [&options](const std::string& key,
                              std::span<const EntityId> entities,
                              std::vector<PisBlockPair>& out) {
    if (entities.size() < options.min_block_size) return;
    if (entities.size() > options.max_block_size) return;
    out.emplace_back(key,
                     std::vector<EntityId>(entities.begin(), entities.end()));
  };

  std::vector<PisBlockPair> raw =
      engine.Run<EntityId, std::string, EntityId, PisBlockPair>(
          inputs, map_fn, reduce_fn, nullptr, counters);

  // Canonical order: ascending key string — identical to the sequential
  // PisBlocking, independent of worker count.
  std::sort(raw.begin(), raw.end(),
            [](const PisBlockPair& a, const PisBlockPair& b) {
              return a.first < b.first;
            });
  BlockCollection out;
  for (auto& [key, entities] : raw) {
    out.AddBlock(key, std::move(entities));
  }
  return out;
}

}  // namespace mapreduce
}  // namespace minoan
