// Copyright 2026 The MinoanER Authors.
// MapReduce blocking (the parallel blocking jobs of [5]).
//
// One job per method: map each entity to (key, entity-id) pairs; reduce
// groups the postings of each key into a block, applying the same filters
// as the sequential method. Output blocks are canonicalized (sorted by key)
// so the result is bit-identical to the sequential method regardless of
// worker count.

#ifndef MINOAN_MAPREDUCE_PARALLEL_BLOCKING_H_
#define MINOAN_MAPREDUCE_PARALLEL_BLOCKING_H_

#include "blocking/block.h"
#include "blocking/blocking_method.h"
#include "kb/collection.h"
#include "mapreduce/engine.h"

namespace minoan {
namespace mapreduce {

/// Runs token blocking as a MapReduce job on `engine`.
BlockCollection ParallelTokenBlocking(const EntityCollection& collection,
                                      Engine& engine,
                                      TokenBlocking::Options options = {},
                                      Counters* counters = nullptr);

/// Runs prefix-infix-suffix blocking as a MapReduce job on `engine`:
/// map emits each entity's PIS keys (AppendPisKeys — the same key scheme as
/// the sequential PisBlocking and the online index), reduce applies the
/// block-size filters. Bit-identical to PisBlocking::Build for every worker
/// count.
BlockCollection ParallelPisBlocking(const EntityCollection& collection,
                                    Engine& engine,
                                    PisBlocking::Options options = {},
                                    Counters* counters = nullptr);

}  // namespace mapreduce
}  // namespace minoan

#endif  // MINOAN_MAPREDUCE_PARALLEL_BLOCKING_H_
