// Copyright 2026 The MinoanER Authors.
// MapReduce token blocking (the parallel blocking job of [5]).
//
// One job: map each entity to (token, entity-id) pairs; reduce groups the
// postings of each token into a block, applying the same document-frequency
// filters as the sequential TokenBlocking. Output blocks are canonicalized
// (sorted by token id) so the result is bit-identical to the sequential
// method regardless of worker count.

#ifndef MINOAN_MAPREDUCE_PARALLEL_BLOCKING_H_
#define MINOAN_MAPREDUCE_PARALLEL_BLOCKING_H_

#include "blocking/block.h"
#include "blocking/blocking_method.h"
#include "kb/collection.h"
#include "mapreduce/engine.h"

namespace minoan {
namespace mapreduce {

/// Runs token blocking as a MapReduce job on `engine`.
BlockCollection ParallelTokenBlocking(const EntityCollection& collection,
                                      Engine& engine,
                                      TokenBlocking::Options options = {},
                                      Counters* counters = nullptr);

}  // namespace mapreduce
}  // namespace minoan

#endif  // MINOAN_MAPREDUCE_PARALLEL_BLOCKING_H_
