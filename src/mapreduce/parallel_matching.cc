#include "mapreduce/parallel_matching.h"

#include <algorithm>

#include "util/hash.h"

namespace minoan {
namespace mapreduce {

ResolutionRun ParallelBatchMatching(
    const std::vector<WeightedComparison>& candidates,
    const SimilarityEvaluator& evaluator, double threshold, Engine& engine,
    Counters* counters) {
  // Inputs: candidate indices, so each match can be stamped with the
  // position it would have had in a sequential scan.
  std::vector<uint64_t> indices(candidates.size());
  for (uint64_t i = 0; i < indices.size(); ++i) indices[i] = i;

  struct Hit {
    uint64_t index;
    double similarity;
    bool operator<(const Hit& o) const {
      return index != o.index ? index < o.index : similarity < o.similarity;
    }
    bool operator==(const Hit& o) const {
      return index == o.index && similarity == o.similarity;
    }
  };

  auto map_fn = [&](const uint64_t& i, Emitter<uint64_t, Hit>& emitter) {
    const WeightedComparison& c = candidates[i];
    const double sim = evaluator.Similarity(c.a, c.b);
    if (sim >= threshold) {
      emitter.Emit(PairKey(c.a, c.b), Hit{i, sim});
    }
  };
  auto reduce_fn = [](const uint64_t& pair, std::span<const Hit> hits,
                      std::vector<MatchEvent>& out) {
    // Duplicate candidates for the same pair collapse to the earliest.
    out.push_back(MatchEvent{hits.front().index + 1, PairKeyFirst(pair),
                             PairKeySecond(pair), hits.front().similarity});
  };
  ResolutionRun run;
  run.matches = engine.Run<uint64_t, uint64_t, Hit, MatchEvent>(
      indices, map_fn, reduce_fn, nullptr, counters);
  run.comparisons_executed = candidates.size();
  std::sort(run.matches.begin(), run.matches.end(),
            [](const MatchEvent& x, const MatchEvent& y) {
              return PairKey(x.a, x.b) < PairKey(y.a, y.b);
            });
  return run;
}

}  // namespace mapreduce
}  // namespace minoan
