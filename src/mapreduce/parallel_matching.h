// Copyright 2026 The MinoanER Authors.
// MapReduce entity matching: the embarrassingly parallel batch stage.
//
// Non-progressive matching of a fixed comparison set is a pure map job:
// each mapper evaluates profile similarities for a slice of the candidate
// comparisons and emits matches; a keyed reduce deduplicates. Used by the
// scalability experiment (T4 companion) and as the parallel counterpart of
// BatchMatcher — results are identical up to match-event ordering, which is
// canonicalized by pair id.

#ifndef MINOAN_MAPREDUCE_PARALLEL_MATCHING_H_
#define MINOAN_MAPREDUCE_PARALLEL_MATCHING_H_

#include <vector>

#include "kb/collection.h"
#include "mapreduce/engine.h"
#include "matching/matcher.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking_types.h"

namespace minoan {
namespace mapreduce {

/// Evaluates every candidate in parallel; returns the matches (similarity >=
/// threshold) sorted by pair id, with comparisons_done stamped by candidate
/// index + 1 (the deterministic sequential order).
ResolutionRun ParallelBatchMatching(
    const std::vector<WeightedComparison>& candidates,
    const SimilarityEvaluator& evaluator, double threshold, Engine& engine,
    Counters* counters = nullptr);

}  // namespace mapreduce
}  // namespace minoan

#endif  // MINOAN_MAPREDUCE_PARALLEL_MATCHING_H_
