#include "mapreduce/parallel_meta_blocking.h"

#include <utility>
#include <vector>

#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking.h"
#include "metablocking/sharded_prune.h"
#include "util/hash.h"

namespace minoan {
namespace mapreduce {

std::vector<WeightedComparison> ParallelMetaBlocking(
    BlockCollection& blocks, const EntityCollection& collection,
    const MetaBlockingOptions& options, Engine& engine,
    ParallelMetaBlockingStats* stats) {
  // ---- Stage 1: entity-block index as a MapReduce job --------------------
  // map: block -> (entity, block); reduce: entity -> its block list. The
  // CSR index the view consumes is rebuilt from this job's output.
  {
    std::vector<uint32_t> block_ids(blocks.num_blocks());
    for (uint32_t i = 0; i < block_ids.size(); ++i) block_ids[i] = i;
    using IndexEntry = std::pair<EntityId, std::vector<uint32_t>>;
    auto map_fn = [&blocks](const uint32_t& bi,
                            Emitter<EntityId, uint32_t>& emitter) {
      for (EntityId e : blocks.block(bi).entities) emitter.Emit(e, bi);
    };
    auto reduce_fn = [](const EntityId& e, std::span<const uint32_t> bis,
                        std::vector<IndexEntry>& out) {
      out.emplace_back(e, std::vector<uint32_t>(bis.begin(), bis.end()));
    };
    Counters c1;
    auto index = engine.Run<uint32_t, EntityId, uint32_t, IndexEntry>(
        block_ids, map_fn, reduce_fn, nullptr, &c1);
    (void)index;  // equivalent structure; the view keeps its own CSR
    if (stats) stats->stage1 = c1;
  }

  // ---- Stages 2 + 3: sharded pruning on the engine's pool ----------------
  // Weighting + local pruning (stage 2) and vote aggregation (stage 3) run
  // through the shared sharded core — the same implementation the
  // sequential MetaBlocking uses, so outputs are bit-identical to it at
  // every worker count. Counters are synthesized from the core's stats to
  // keep the 3-stage decomposition of [4] observable.
  const BlockingGraphView view(blocks, collection, options.weighting,
                               options.mode, &engine.pool());
  MetaBlockingStats totals;
  std::vector<WeightedComparison> retained =
      ShardedPrune(view, options, &engine.pool(), &totals);

  if (stats) {
    stats->totals = totals;
    const bool node_centric = options.pruning == PruningScheme::kWnp ||
                              options.pruning == PruningScheme::kCnp;
    // Stage 2 maps every entity and emits its local-pruning output: votes
    // for the node-centric schemes, weighted edges for the edge-centric
    // ones. Stage 3 then aggregates only what stage 2 emitted — for
    // WEP/CEP that is the already-filtered edge set, i.e. the retained
    // list, one group per surviving pair.
    stats->stage2.map_input_records = collection.num_entities();
    stats->stage2.map_output_records =
        node_centric ? totals.nominations : retained.size();
    stats->stage2.combine_output_records = stats->stage2.map_output_records;
    stats->stage3.map_input_records = stats->stage2.map_output_records;
    stats->stage3.map_output_records = stats->stage2.map_output_records;
    stats->stage3.reduce_groups =
        node_centric ? totals.distinct_pairs : retained.size();
    stats->stage3.reduce_output_records = retained.size();
  }
  return retained;
}

}  // namespace mapreduce
}  // namespace minoan
