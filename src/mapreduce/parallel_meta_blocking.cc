#include "mapreduce/parallel_meta_blocking.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking.h"
#include "util/hash.h"
#include "util/topk.h"

namespace minoan {
namespace mapreduce {

namespace {

/// Order-stable partial aggregate for the WEP global mean.
struct PartialSum {
  double sum = 0.0;
  uint64_t count = 0;
  bool operator<(const PartialSum& o) const {
    return sum != o.sum ? sum < o.sum : count < o.count;
  }
  bool operator==(const PartialSum& o) const {
    return sum == o.sum && count == o.count;
  }
};

/// (weight, pair) rank with the canonical deterministic order.
struct WeightRank {
  double weight;
  uint64_t key;
  bool operator<(const WeightRank& o) const {
    if (weight != o.weight) return weight < o.weight;
    return key > o.key;
  }
  bool operator==(const WeightRank& o) const {
    return weight == o.weight && key == o.key;
  }
};

/// Per-thread scratch sized for the current collection.
NeighborScratch& TlsScratch(uint32_t num_entities) {
  thread_local std::unique_ptr<NeighborScratch> scratch;
  if (!scratch || scratch->size() != num_entities) {
    scratch = std::make_unique<NeighborScratch>(num_entities);
  }
  return *scratch;
}

std::vector<EntityId> AllEntities(const EntityCollection& collection) {
  std::vector<EntityId> ids(collection.num_entities());
  for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  return ids;
}

}  // namespace

std::vector<WeightedComparison> ParallelMetaBlocking(
    BlockCollection& blocks, const EntityCollection& collection,
    const MetaBlockingOptions& options, Engine& engine,
    ParallelMetaBlockingStats* stats) {
  const uint32_t n = collection.num_entities();

  // ---- Stage 1: entity-block index as a MapReduce job --------------------
  // map: block -> (entity, block); reduce: entity -> its block list. The
  // CSR index the view consumes is rebuilt from this job's output.
  {
    std::vector<uint32_t> block_ids(blocks.num_blocks());
    for (uint32_t i = 0; i < block_ids.size(); ++i) block_ids[i] = i;
    using IndexEntry = std::pair<EntityId, std::vector<uint32_t>>;
    auto map_fn = [&blocks](const uint32_t& bi,
                            Emitter<EntityId, uint32_t>& emitter) {
      for (EntityId e : blocks.block(bi).entities) emitter.Emit(e, bi);
    };
    auto reduce_fn = [](const EntityId& e, std::span<const uint32_t> bis,
                        std::vector<IndexEntry>& out) {
      out.emplace_back(e, std::vector<uint32_t>(bis.begin(), bis.end()));
    };
    Counters c1;
    auto index = engine.Run<uint32_t, EntityId, uint32_t, IndexEntry>(
        block_ids, map_fn, reduce_fn, nullptr, &c1);
    (void)index;  // equivalent structure; the view keeps its own CSR
    if (stats) stats->stage1 = c1;
  }
  const BlockingGraphView view(blocks, collection, options.weighting,
                               options.mode);

  std::vector<EntityId> entities = AllEntities(collection);
  std::vector<WeightedComparison> retained;
  Counters c2, c3;

  switch (options.pruning) {
    case PruningScheme::kWep: {
      // Job A: global mean via per-entity partial sums (values are globally
      // sorted before reduction, so the FP mean is stable across worker
      // counts).
      auto map_mean = [&view, n](const EntityId& e,
                                 Emitter<uint32_t, PartialSum>& emitter) {
        NeighborScratch& scratch = TlsScratch(n);
        PartialSum partial;
        view.ForNeighbors(scratch, e, /*only_greater=*/true,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            partial.sum += view.EdgeWeight(e, nb, common,
                                                           arcs);
                            ++partial.count;
                          });
        if (partial.count > 0) emitter.Emit(0u, partial);
      };
      auto reduce_mean = [](const uint32_t&, std::span<const PartialSum> vs,
                            std::vector<PartialSum>& out) {
        PartialSum total;
        for (const PartialSum& v : vs) {
          total.sum += v.sum;
          total.count += v.count;
        }
        out.push_back(total);
      };
      auto totals = engine.Run<EntityId, uint32_t, PartialSum, PartialSum>(
          entities, map_mean, reduce_mean, nullptr, &c2);
      PartialSum total;
      for (const PartialSum& t : totals) {  // at most one
        total.sum += t.sum;
        total.count += t.count;
      }
      const double mean =
          total.count > 0 ? total.sum / static_cast<double>(total.count) : 0.0;

      // Job B: filter edges at or above the mean.
      auto map_filter = [&view, n, mean](const EntityId& e,
                                         Emitter<uint64_t, double>& emitter) {
        NeighborScratch& scratch = TlsScratch(n);
        view.ForNeighbors(scratch, e, true,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            const double w =
                                view.EdgeWeight(e, nb, common, arcs);
                            if (w >= mean) emitter.Emit(PairKey(e, nb), w);
                          });
      };
      auto reduce_filter = [](const uint64_t& key, std::span<const double> ws,
                              std::vector<WeightedComparison>& out) {
        out.push_back(
            {PairKeyFirst(key), PairKeySecond(key), ws.front()});
      };
      retained = engine.Run<EntityId, uint64_t, double, WeightedComparison>(
          entities, map_filter, reduce_filter, nullptr, &c3);
      if (stats) {
        stats->totals.graph_edges = total.count;
        stats->totals.mean_weight = mean;
      }
      break;
    }
    case PruningScheme::kCep: {
      // Weight computation in parallel; exact global top-K selection on the
      // driver (the selection is linear and cheap relative to weighting).
      auto map_edges = [&view, n](const EntityId& e,
                                  Emitter<uint32_t, WeightRank>& emitter) {
        NeighborScratch& scratch = TlsScratch(n);
        view.ForNeighbors(scratch, e, /*only_greater=*/true,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            const double w =
                                view.EdgeWeight(e, nb, common, arcs);
                            emitter.Emit(
                                static_cast<uint32_t>(PairKey(e, nb) & 0xff),
                                WeightRank{w, PairKey(e, nb)});
                          });
      };
      auto reduce_edges = [](const uint32_t&, std::span<const WeightRank> vs,
                             std::vector<WeightRank>& out) {
        out.insert(out.end(), vs.begin(), vs.end());
      };
      auto all_edges = engine.Run<EntityId, uint32_t, WeightRank, WeightRank>(
          entities, map_edges, reduce_edges, nullptr, &c2);
      const uint64_t k =
          std::max<uint64_t>(1, view.total_block_assignments() / 2);
      TopK<WeightRank> top(k);
      double weight_sum = 0.0;
      for (const WeightRank& e : all_edges) {
        weight_sum += e.weight;
        top.Push(e);
      }
      for (const WeightRank& e : top.TakeSortedDescending()) {
        retained.push_back(
            {PairKeyFirst(e.key), PairKeySecond(e.key), e.weight});
      }
      if (stats) {
        stats->totals.graph_edges = all_edges.size();
        stats->totals.mean_weight =
            all_edges.empty()
                ? 0.0
                : weight_sum / static_cast<double>(all_edges.size());
      }
      break;
    }
    case PruningScheme::kWnp:
    case PruningScheme::kCnp: {
      // Stage 2: per-node local pruning, emitting (pair, weight) votes.
      const uint64_t placed = std::max<uint64_t>(
          1, static_cast<uint64_t>(view.num_nodes()));
      const uint64_t cnp_k = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::llround(static_cast<double>(
                                  view.total_block_assignments()) /
                              static_cast<double>(placed))));
      const bool is_wnp = options.pruning == PruningScheme::kWnp;
      auto map_votes = [&view, n, cnp_k, is_wnp](
                           const EntityId& e,
                           Emitter<uint64_t, double>& emitter) {
        NeighborScratch& scratch = TlsScratch(n);
        std::vector<std::pair<EntityId, double>> local;
        double local_sum = 0.0;
        view.ForNeighbors(scratch, e, /*only_greater=*/false,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            const double w =
                                view.EdgeWeight(e, nb, common, arcs);
                            local.emplace_back(nb, w);
                            local_sum += w;
                          });
        if (local.empty()) return;
        if (is_wnp) {
          const double mean = local_sum / static_cast<double>(local.size());
          for (const auto& [nb, w] : local) {
            if (w >= mean) emitter.Emit(PairKey(e, nb), w);
          }
        } else {
          TopK<WeightRank> top(cnp_k);
          for (const auto& [nb, w] : local) {
            top.Push(WeightRank{w, PairKey(e, nb)});
          }
          for (const WeightRank& edge : top.TakeSortedDescending()) {
            emitter.Emit(edge.key, edge.weight);
          }
        }
      };
      // Stage 3: aggregate votes per pair.
      const size_t needed = options.reciprocal ? 2 : 1;
      auto reduce_votes = [needed](const uint64_t& key,
                                   std::span<const double> ws,
                                   std::vector<WeightedComparison>& out) {
        if (ws.size() >= needed) {
          out.push_back({PairKeyFirst(key), PairKeySecond(key), ws.front()});
        }
      };
      retained = engine.Run<EntityId, uint64_t, double, WeightedComparison>(
          entities, map_votes, reduce_votes, nullptr, &c2);
      break;
    }
  }

  SortByWeightDescending(retained);
  if (stats) {
    stats->stage2 = c2;
    stats->stage3 = c3;
    stats->totals.retained_edges = retained.size();
  }
  return retained;
}

}  // namespace mapreduce
}  // namespace minoan
