// Copyright 2026 The MinoanER Authors.
// MapReduce meta-blocking (the 3-stage job graph of [4], Efthymiou et al.,
// "Parallel meta-blocking: realizing scalable entity resolution over large,
// heterogeneous data", IEEE Big Data 2015).
//
//   Stage 1 — entity index: map blocks to (entity, block) pairs; reduce
//             groups each entity's block list.
//   Stage 2 — edge weighting + local pruning: map each entity, streaming its
//             blocking-graph neighborhood (stamp-array dedup) and applying
//             the node-local pruning rule (WNP mean / CNP top-k); for
//             edge-centric schemes the stage instead aggregates the global
//             statistic (WEP mean via a combiner; CEP top-K via combiner
//             merge).
//   Stage 3 — vote aggregation: reduce per pair id, keeping edges nominated
//             by either (standard) or both (reciprocal) endpoints.
//
// Stage 1 runs as a real MapReduce job; stages 2 and 3 are realized by the
// sharded pruning core (metablocking/sharded_prune.h) on the engine's
// thread pool — the same implementation the sequential MetaBlocking driver
// uses. Results are therefore bit-identical to the sequential path at every
// worker count, including the WEP mean (fixed-order chunk reduction).

#ifndef MINOAN_MAPREDUCE_PARALLEL_META_BLOCKING_H_
#define MINOAN_MAPREDUCE_PARALLEL_META_BLOCKING_H_

#include <vector>

#include "blocking/block.h"
#include "kb/collection.h"
#include "mapreduce/engine.h"
#include "metablocking/meta_blocking_types.h"

namespace minoan {
namespace mapreduce {

/// Per-stage counter snapshots for reporting.
struct ParallelMetaBlockingStats {
  Counters stage1;  // entity indexing
  Counters stage2;  // weighting + local pruning
  Counters stage3;  // vote aggregation
  MetaBlockingStats totals;
};

/// Runs meta-blocking as MapReduce jobs on `engine`. Builds the entity index
/// of `blocks` through the Stage-1 job.
std::vector<WeightedComparison> ParallelMetaBlocking(
    BlockCollection& blocks, const EntityCollection& collection,
    const MetaBlockingOptions& options, Engine& engine,
    ParallelMetaBlockingStats* stats = nullptr);

}  // namespace mapreduce
}  // namespace minoan

#endif  // MINOAN_MAPREDUCE_PARALLEL_META_BLOCKING_H_
