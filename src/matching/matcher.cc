#include "matching/matcher.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"

namespace minoan {

UnionFind ResolutionRun::BuildClosure(uint32_t num_entities) const {
  UnionFind uf(num_entities);
  for (const MatchEvent& m : matches) {
    uf.Union(m.a, m.b);
  }
  return uf;
}

ResolutionRun BatchMatcher::Run(const std::vector<Comparison>& order) const {
  ResolutionRun run;
  for (const Comparison& c : order) {
    if (options_.budget > 0 && run.comparisons_executed >= options_.budget) {
      break;
    }
    ++run.comparisons_executed;
    const double sim = evaluator_->Similarity(c.a, c.b);
    if (sim >= options_.threshold) {
      run.matches.push_back(
          MatchEvent{run.comparisons_executed, c.a, c.b, sim});
    }
  }
  return run;
}

std::vector<MatchEvent> UniqueMappingClustering(
    const std::vector<MatchEvent>& matches,
    const EntityCollection& collection) {
  std::vector<MatchEvent> sorted = matches;
  std::sort(sorted.begin(), sorted.end(),
            [](const MatchEvent& x, const MatchEvent& y) {
              if (x.similarity != y.similarity) {
                return x.similarity > y.similarity;
              }
              return PairKey(x.a, x.b) < PairKey(y.a, y.b);
            });
  // (entity, partner KB) pairs already consumed.
  std::unordered_set<uint64_t> taken;
  auto slot = [](EntityId e, uint32_t kb) {
    return (static_cast<uint64_t>(e) << 16) | kb;
  };
  std::vector<MatchEvent> kept;
  for (const MatchEvent& m : sorted) {
    const uint32_t kb_a = collection.entity(m.a).kb;
    const uint32_t kb_b = collection.entity(m.b).kb;
    if (kb_a == kb_b) continue;
    if (taken.count(slot(m.a, kb_b)) || taken.count(slot(m.b, kb_a))) {
      continue;
    }
    taken.insert(slot(m.a, kb_b));
    taken.insert(slot(m.b, kb_a));
    kept.push_back(m);
  }
  return kept;
}

}  // namespace minoan
