// Copyright 2026 The MinoanER Authors.
// Entity matching: executing comparisons and recording resolution runs.
//
// A ResolutionRun is the common currency between matchers (batch, baseline
// schedulers, the progressive resolver) and the evaluation module: the exact
// sequence of executed comparisons plus the matches found, each stamped with
// the number of comparisons executed up to that point. Progressive-recall
// curves, AUC, and the quality-aspect metrics are all computed from it.

#ifndef MINOAN_MATCHING_MATCHER_H_
#define MINOAN_MATCHING_MATCHER_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "kb/entity.h"
#include "matching/similarity_evaluator.h"
#include "matching/union_find.h"

namespace minoan {

/// One confirmed match, stamped with the comparison count at discovery.
struct MatchEvent {
  uint64_t comparisons_done;  // executed comparisons including this one
  EntityId a;
  EntityId b;
  double similarity;
};

/// The full record of one resolution execution.
struct ResolutionRun {
  uint64_t comparisons_executed = 0;
  std::vector<MatchEvent> matches;

  /// Transitive closure of the matches over `num_entities` descriptions.
  UnionFind BuildClosure(uint32_t num_entities) const;
};

/// Matching configuration shared by batch and progressive drivers.
struct MatcherOptions {
  /// Similarity at or above which a pair is declared a match.
  double threshold = 0.45;
  /// Optional cap on executed comparisons (0 = unlimited).
  uint64_t budget = 0;
};

/// Batch matcher: executes comparisons in the given order until the budget
/// is exhausted. The order *is* the schedule — baselines produce different
/// orders of the same comparison set.
class BatchMatcher {
 public:
  BatchMatcher(const SimilarityEvaluator& evaluator, MatcherOptions options)
      : evaluator_(&evaluator), options_(options) {}

  ResolutionRun Run(const std::vector<Comparison>& order) const;

 private:
  const SimilarityEvaluator* evaluator_;
  MatcherOptions options_;
};

/// Unique-mapping clustering for clean-clean ER: scans matches by descending
/// similarity and keeps a match only when neither endpoint is already mapped
/// to the other endpoint's KB. Returns the retained matches.
std::vector<MatchEvent> UniqueMappingClustering(
    const std::vector<MatchEvent>& matches, const EntityCollection& collection);

}  // namespace minoan

#endif  // MINOAN_MATCHING_MATCHER_H_
