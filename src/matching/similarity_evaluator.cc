#include "matching/similarity_evaluator.h"

namespace minoan {

SimilarityEvaluator::SimilarityEvaluator(const EntityCollection& collection,
                                         SimilarityOptions options)
    : collection_(&collection), options_(options) {
  if (!options_.use_tfidf) return;
  tfidf_.resize(collection.num_entities());
  for (const EntityDescription& desc : collection.entities()) {
    auto& vec = tfidf_[desc.id];
    const auto& bag = desc.token_bag;  // sorted, with duplicates
    size_t i = 0;
    while (i < bag.size()) {
      size_t j = i;
      while (j < bag.size() && bag[j] == bag[i]) ++j;
      const double tf = static_cast<double>(j - i);
      const double idf = collection.TokenIdf(bag[i]);
      if (idf > 0.0) {
        vec.push_back(WeightedToken{bag[i], tf * idf});
      }
      i = j;
    }
  }
}

double SimilarityEvaluator::TokenJaccard(EntityId a, EntityId b) const {
  return JaccardSimilarity(collection_->entity(a).tokens,
                           collection_->entity(b).tokens);
}

double SimilarityEvaluator::TfIdfCosine(EntityId a, EntityId b) const {
  if (!options_.use_tfidf) return 0.0;
  return WeightedCosineSimilarity(tfidf_[a], tfidf_[b]);
}

double SimilarityEvaluator::Similarity(EntityId a, EntityId b) const {
  const double jaccard = TokenJaccard(a, b);
  if (!options_.use_tfidf) return jaccard;
  const double cosine = TfIdfCosine(a, b);
  return options_.tfidf_weight * cosine +
         (1.0 - options_.tfidf_weight) * jaccard;
}

}  // namespace minoan
