// Copyright 2026 The MinoanER Authors.
// Description-level similarity evaluation.
//
// The entity-matching phase compares two descriptions by the content of
// their profiles. The evaluator combines a token-set Jaccard (robust to
// value fragmentation across predicates) with a TF-IDF weighted cosine
// (discounts ubiquitous tokens), both schema-agnostic. Neighbor evidence
// from the progressive update phase is added *on top* by the resolver, not
// here.

#ifndef MINOAN_MATCHING_SIMILARITY_EVALUATOR_H_
#define MINOAN_MATCHING_SIMILARITY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "kb/collection.h"
#include "kb/entity.h"
#include "text/similarity.h"

namespace minoan {

/// Configuration of the profile similarity.
struct SimilarityOptions {
  /// Convex combination: sim = w · cosine_tfidf + (1-w) · jaccard.
  double tfidf_weight = 0.5;
  /// When false, only the unweighted Jaccard is computed (cheaper).
  bool use_tfidf = true;
};

/// Immutable similarity oracle over one collection. Construction precomputes
/// per-entity TF-IDF vectors; Similarity() is then allocation-free and
/// thread-safe.
class SimilarityEvaluator {
 public:
  SimilarityEvaluator(const EntityCollection& collection,
                      SimilarityOptions options);
  explicit SimilarityEvaluator(const EntityCollection& collection)
      : SimilarityEvaluator(collection, SimilarityOptions{}) {}

  /// Profile similarity in [0, 1].
  double Similarity(EntityId a, EntityId b) const;

  /// The token-set Jaccard component alone.
  double TokenJaccard(EntityId a, EntityId b) const;

  /// The TF-IDF cosine component alone (0 when disabled).
  double TfIdfCosine(EntityId a, EntityId b) const;

  const EntityCollection& collection() const { return *collection_; }

 private:
  const EntityCollection* collection_;
  SimilarityOptions options_;
  /// Per entity: (token, tf·idf) sorted by token id.
  std::vector<std::vector<WeightedToken>> tfidf_;
};

}  // namespace minoan

#endif  // MINOAN_MATCHING_SIMILARITY_EVALUATOR_H_
