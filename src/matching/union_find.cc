#include "matching/union_find.h"

#include <algorithm>
#include <unordered_map>

namespace minoan {

uint32_t UnionFind::CountClusters(uint32_t min_size) {
  uint32_t count = 0;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    if (Find(i) == i && size_[i] >= min_size) ++count;
  }
  return count;
}

std::vector<std::vector<uint32_t>> UnionFind::Clusters(uint32_t min_size) {
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_root;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<uint32_t>> out;
  for (auto& [root, members] : by_root) {
    if (members.size() < min_size) continue;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

}  // namespace minoan
