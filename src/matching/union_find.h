// Copyright 2026 The MinoanER Authors.
// Union-find with rank + path halving, tracking cluster sizes.
//
// Used for the transitive closure of matches (dirty ER), the ground-truth
// equivalence clusters, and the progressive resolver's partial-result state.

#ifndef MINOAN_MATCHING_UNION_FIND_H_
#define MINOAN_MATCHING_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace minoan {

class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n), size_(n, 1) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true when they were distinct.
  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool SameSet(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Grows the universe to `n` elements, each new element a singleton.
  /// Shrinking is not supported (existing merges would dangle); n <= current
  /// size is a no-op.
  void Resize(uint32_t n) {
    const uint32_t old = static_cast<uint32_t>(parent_.size());
    if (n <= old) return;
    parent_.resize(n);
    size_.resize(n, 1);
    for (uint32_t i = old; i < n; ++i) parent_[i] = i;
  }

  /// Size of the set containing x.
  uint32_t SetSize(uint32_t x) { return size_[Find(x)]; }

  uint32_t num_elements() const {
    return static_cast<uint32_t>(parent_.size());
  }

  /// Number of sets with at least `min_size` members.
  uint32_t CountClusters(uint32_t min_size = 1);

  /// Groups elements by root; clusters sorted by smallest member. Only
  /// clusters with >= min_size members are returned.
  std::vector<std::vector<uint32_t>> Clusters(uint32_t min_size = 1);

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace minoan

#endif  // MINOAN_MATCHING_UNION_FIND_H_
