#include "metablocking/blocking_graph.h"

#include <cmath>
#include <memory>

#include "util/thread_pool.h"

namespace minoan {

NeighborScratch& TlsNeighborScratch(uint32_t num_entities) {
  thread_local std::unique_ptr<NeighborScratch> scratch;
  if (!scratch || scratch->size() != num_entities) {
    scratch = std::make_unique<NeighborScratch>(num_entities);
  }
  return *scratch;
}

BlockingGraphView::BlockingGraphView(BlockCollection& blocks,
                                     const EntityCollection& collection,
                                     WeightingScheme weighting,
                                     ResolutionMode mode, ThreadPool* pool)
    : blocks_(&blocks),
      collection_(&collection),
      weighting_(weighting),
      mode_(mode) {
  if (!blocks.has_entity_index()) {
    blocks.BuildEntityIndex(collection.num_entities());
  }
  num_blocks_ = static_cast<double>(blocks.num_blocks());
  num_nodes_ = static_cast<double>(blocks.NumPlacedEntities());
  arcs_term_.resize(blocks.num_blocks());
  for (uint32_t bi = 0; bi < blocks.num_blocks(); ++bi) {
    const uint64_t card = blocks.block(bi).NumComparisons(collection, mode);
    arcs_term_[bi] = card > 0 ? 1.0 / static_cast<double>(card) : 0.0;
    total_assignments_ += blocks.block(bi).size();
  }
  if (weighting == WeightingScheme::kEjs) {
    const uint32_t n = collection.num_entities();
    degree_.assign(n, 0);
    const auto degree_of = [this, n](EntityId e) {
      uint32_t deg = 0;
      ForNeighbors(TlsNeighborScratch(n), e, /*only_greater=*/false,
                   [&](EntityId, uint32_t, double) { ++deg; });
      return deg;
    };
    if (pool != nullptr && n > 0) {
      // Disjoint per-entity writes; counts are integers, so the result is
      // identical to the sequential pass.
      pool->ParallelFor(n, [this, &degree_of](size_t e) {
        degree_[e] = degree_of(static_cast<EntityId>(e));
      });
    } else {
      for (EntityId e = 0; e < n; ++e) degree_[e] = degree_of(e);
    }
  }
}

double BlockingGraphView::PairWeight(EntityId a, EntityId b) const {
  if (a == b) return 0.0;
  if (mode_ == ResolutionMode::kCleanClean && !collection_->CrossKb(a, b)) {
    return 0.0;
  }
  uint32_t common = 0;
  double arcs = 0.0;
  for (uint32_t bi : blocks_->BlocksOf(a)) {
    const Block& block = blocks_->block(bi);
    for (EntityId n : block.entities) {
      if (n == b) {
        ++common;
        arcs += arcs_term_[bi];
        break;
      }
    }
  }
  return common == 0 ? 0.0 : EdgeWeight(a, b, common, arcs);
}

double BlockingGraphView::EdgeWeight(EntityId a, EntityId b, uint32_t common,
                                     double arcs_sum) const {
  const double ba = static_cast<double>(blocks_->BlocksOf(a).size());
  const double bb = static_cast<double>(blocks_->BlocksOf(b).size());
  switch (weighting_) {
    case WeightingScheme::kCbs:
      return static_cast<double>(common);
    case WeightingScheme::kEcbs: {
      const double la = ba > 0 ? std::log(num_blocks_ / ba) : 0.0;
      const double lb = bb > 0 ? std::log(num_blocks_ / bb) : 0.0;
      return static_cast<double>(common) * la * lb;
    }
    case WeightingScheme::kJs: {
      const double denom = ba + bb - static_cast<double>(common);
      return denom > 0 ? static_cast<double>(common) / denom : 0.0;
    }
    case WeightingScheme::kEjs: {
      const double denom = ba + bb - static_cast<double>(common);
      const double js = denom > 0 ? static_cast<double>(common) / denom : 0.0;
      const double da = static_cast<double>(degree_[a]);
      const double db = static_cast<double>(degree_[b]);
      const double la = da > 0 ? std::log(num_nodes_ / da) : 0.0;
      const double lb = db > 0 ? std::log(num_nodes_ / db) : 0.0;
      return js * la * lb;
    }
    case WeightingScheme::kArcs:
      return arcs_sum;
  }
  return 0.0;
}

}  // namespace minoan
