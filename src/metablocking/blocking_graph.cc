#include "metablocking/blocking_graph.h"

#include <cmath>

namespace minoan {

BlockingGraphView::BlockingGraphView(BlockCollection& blocks,
                                     const EntityCollection& collection,
                                     WeightingScheme weighting,
                                     ResolutionMode mode)
    : blocks_(&blocks),
      collection_(&collection),
      weighting_(weighting),
      mode_(mode) {
  if (!blocks.has_entity_index()) {
    blocks.BuildEntityIndex(collection.num_entities());
  }
  num_blocks_ = static_cast<double>(blocks.num_blocks());
  num_nodes_ = static_cast<double>(blocks.NumPlacedEntities());
  arcs_term_.resize(blocks.num_blocks());
  for (uint32_t bi = 0; bi < blocks.num_blocks(); ++bi) {
    const uint64_t card = blocks.block(bi).NumComparisons(collection, mode);
    arcs_term_[bi] = card > 0 ? 1.0 / static_cast<double>(card) : 0.0;
    total_assignments_ += blocks.block(bi).size();
  }
  if (weighting == WeightingScheme::kEjs) {
    degree_.assign(collection.num_entities(), 0);
    NeighborScratch scratch(collection.num_entities());
    for (EntityId e = 0; e < collection.num_entities(); ++e) {
      uint32_t deg = 0;
      ForNeighbors(scratch, e, /*only_greater=*/false,
                   [&](EntityId, uint32_t, double) { ++deg; });
      degree_[e] = deg;
    }
  }
}

double BlockingGraphView::EdgeWeight(EntityId a, EntityId b, uint32_t common,
                                     double arcs_sum) const {
  const double ba = static_cast<double>(blocks_->BlocksOf(a).size());
  const double bb = static_cast<double>(blocks_->BlocksOf(b).size());
  switch (weighting_) {
    case WeightingScheme::kCbs:
      return static_cast<double>(common);
    case WeightingScheme::kEcbs: {
      const double la = ba > 0 ? std::log(num_blocks_ / ba) : 0.0;
      const double lb = bb > 0 ? std::log(num_blocks_ / bb) : 0.0;
      return static_cast<double>(common) * la * lb;
    }
    case WeightingScheme::kJs: {
      const double denom = ba + bb - static_cast<double>(common);
      return denom > 0 ? static_cast<double>(common) / denom : 0.0;
    }
    case WeightingScheme::kEjs: {
      const double denom = ba + bb - static_cast<double>(common);
      const double js = denom > 0 ? static_cast<double>(common) / denom : 0.0;
      const double da = static_cast<double>(degree_[a]);
      const double db = static_cast<double>(degree_[b]);
      const double la = da > 0 ? std::log(num_nodes_ / da) : 0.0;
      const double lb = db > 0 ? std::log(num_nodes_ / db) : 0.0;
      return js * la * lb;
    }
    case WeightingScheme::kArcs:
      return arcs_sum;
  }
  return 0.0;
}

}  // namespace minoan
