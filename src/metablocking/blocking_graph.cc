#include "metablocking/blocking_graph.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "util/thread_pool.h"

namespace minoan {

namespace {

/// Blocks per ARCS-term work chunk. Fixed (like the sharded-prune chunk
/// size) so the per-chunk partial sums fold identically at every thread
/// count; the folded quantities are integers, so even the fold order is
/// immaterial — the constant just bounds task-scheduling overhead.
constexpr uint32_t kGraphChunkBlocks = 256;

}  // namespace

NeighborScratch& TlsNeighborScratch(uint32_t num_entities) {
  thread_local std::unique_ptr<NeighborScratch> scratch;
  if (!scratch || scratch->size() != num_entities) {
    scratch = std::make_unique<NeighborScratch>(num_entities);
  }
  return *scratch;
}

BlockingGraphView::BlockingGraphView(BlockCollection& blocks,
                                     const EntityCollection& collection,
                                     WeightingScheme weighting,
                                     ResolutionMode mode, ThreadPool* pool)
    : blocks_(&blocks),
      collection_(&collection),
      weighting_(weighting),
      mode_(mode) {
  Init(blocks, pool);
}

BlockingGraphView::BlockingGraphView(FlatBlockStore& blocks,
                                     const EntityCollection& collection,
                                     WeightingScheme weighting,
                                     ResolutionMode mode, ThreadPool* pool)
    : flat_(&blocks),
      collection_(&collection),
      weighting_(weighting),
      mode_(mode) {
  Init(blocks, pool);
}

template <typename Store>
void BlockingGraphView::Init(Store& blocks, ThreadPool* pool) {
  const EntityCollection& collection = *collection_;
  const ResolutionMode mode = mode_;
  if (!blocks.has_entity_index()) {
    blocks.BuildEntityIndex(collection.num_entities());
  }
  num_blocks_ = static_cast<double>(blocks.num_blocks());

  // ARCS terms and the assignment total, folded per fixed block chunk.
  // arcs_term_ writes are disjoint per block; the per-chunk assignment
  // counts are integers, so the merged totals are identical to the
  // sequential scan for every thread count.
  arcs_term_.resize(blocks.num_blocks());
  std::vector<uint64_t> chunk_assignments(
      NumChunks(blocks.num_blocks(), kGraphChunkBlocks), 0);
  RunChunkedTasks(pool, blocks.num_blocks(), kGraphChunkBlocks,
                  [&](size_t c, size_t begin, size_t end) {
                    uint64_t assignments = 0;
                    for (size_t bi = begin; bi < end; ++bi) {
                      const uint64_t card = GraphBlockComparisons(
                          blocks, static_cast<uint32_t>(bi), collection, mode);
                      arcs_term_[bi] =
                          card > 0 ? 1.0 / static_cast<double>(card) : 0.0;
                      assignments +=
                          GraphBlockEntities(blocks, static_cast<uint32_t>(bi))
                              .size();
                    }
                    chunk_assignments[c] = assignments;
                  });
  for (const uint64_t a : chunk_assignments) total_assignments_ += a;

  // Placed-node count off the freshly built entity index (an entity is a
  // graph node iff it appears in some block) — a chunked integer count
  // instead of the sequential hash-set scan over every block.
  const uint32_t num_entities = collection.num_entities();
  std::vector<uint64_t> chunk_placed(
      NumChunks(num_entities, kGraphChunkBlocks), 0);
  RunChunkedTasks(pool, num_entities, kGraphChunkBlocks,
                  [&](size_t c, size_t begin, size_t end) {
                    uint64_t placed = 0;
                    for (size_t e = begin; e < end; ++e) {
                      if (!blocks.BlocksOf(static_cast<EntityId>(e))
                               .empty()) {
                        ++placed;
                      }
                    }
                    chunk_placed[c] = placed;
                  });
  uint64_t placed_nodes = 0;
  for (const uint64_t p : chunk_placed) placed_nodes += p;
  num_nodes_ = static_cast<double>(placed_nodes);
  if (weighting_ == WeightingScheme::kEjs) {
    const uint32_t n = collection.num_entities();
    degree_.assign(n, 0);
    const auto degree_of = [this, n](EntityId e) {
      uint32_t deg = 0;
      ForNeighbors(TlsNeighborScratch(n), e, /*only_greater=*/false,
                   [&](EntityId, uint32_t, double) { ++deg; });
      return deg;
    };
    if (pool != nullptr && n > 0) {
      // Disjoint per-entity writes; counts are integers, so the result is
      // identical to the sequential pass.
      pool->ParallelFor(n, [this, &degree_of](size_t e) {
        degree_[e] = degree_of(static_cast<EntityId>(e));
      });
    } else {
      for (EntityId e = 0; e < n; ++e) degree_[e] = degree_of(e);
    }
  }
}

template void BlockingGraphView::Init<BlockCollection>(BlockCollection&,
                                                       ThreadPool*);
template void BlockingGraphView::Init<FlatBlockStore>(FlatBlockStore&,
                                                      ThreadPool*);

template <typename Store>
double BlockingGraphView::PairWeightOver(const Store& store, EntityId a,
                                         EntityId b) const {
  uint32_t common = 0;
  double arcs = 0.0;
  for (uint32_t bi : store.BlocksOf(a)) {
    for (EntityId n : GraphBlockEntities(store, bi)) {
      if (n == b) {
        ++common;
        arcs += arcs_term_[bi];
        break;
      }
    }
  }
  return common == 0 ? 0.0 : EdgeWeight(a, b, common, arcs);
}

double BlockingGraphView::PairWeight(EntityId a, EntityId b) const {
  if (a == b) return 0.0;
  if (mode_ == ResolutionMode::kCleanClean && !collection_->CrossKb(a, b)) {
    return 0.0;
  }
  return flat_ != nullptr ? PairWeightOver(*flat_, a, b)
                          : PairWeightOver(*blocks_, a, b);
}

double BlockingGraphView::EdgeWeight(EntityId a, EntityId b, uint32_t common,
                                     double arcs_sum) const {
  const double ba = static_cast<double>(NumBlocksOf(a));
  const double bb = static_cast<double>(NumBlocksOf(b));
  switch (weighting_) {
    case WeightingScheme::kCbs:
      return static_cast<double>(common);
    case WeightingScheme::kEcbs: {
      const double la = ba > 0 ? std::log(num_blocks_ / ba) : 0.0;
      const double lb = bb > 0 ? std::log(num_blocks_ / bb) : 0.0;
      return static_cast<double>(common) * la * lb;
    }
    case WeightingScheme::kJs: {
      const double denom = ba + bb - static_cast<double>(common);
      return denom > 0 ? static_cast<double>(common) / denom : 0.0;
    }
    case WeightingScheme::kEjs: {
      const double denom = ba + bb - static_cast<double>(common);
      const double js = denom > 0 ? static_cast<double>(common) / denom : 0.0;
      const double da = static_cast<double>(degree_[a]);
      const double db = static_cast<double>(degree_[b]);
      const double la = da > 0 ? std::log(num_nodes_ / da) : 0.0;
      const double lb = db > 0 ? std::log(num_nodes_ / db) : 0.0;
      return js * la * lb;
    }
    case WeightingScheme::kArcs:
      return arcs_sum;
  }
  return 0.0;
}

}  // namespace minoan
