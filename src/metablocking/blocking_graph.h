// Copyright 2026 The MinoanER Authors.
// The implicit blocking graph: neighbor streaming and edge weighting.
//
// Shared by the sequential MetaBlocking driver and the MapReduce-parallel
// implementation (each worker owns a private NeighborScratch; the view
// itself is immutable after construction and safe to share across threads).

#ifndef MINOAN_METABLOCKING_BLOCKING_GRAPH_H_
#define MINOAN_METABLOCKING_BLOCKING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "blocking/block.h"
#include "blocking/flat_block_store.h"
#include "kb/collection.h"
#include "metablocking/meta_blocking_types.h"

namespace minoan {

/// Store adapters: the graph view reads blocks through these two overload
/// sets so one implementation serves both the keyed BlockCollection and the
/// out-of-core FlatBlockStore.
inline std::span<const EntityId> GraphBlockEntities(
    const BlockCollection& blocks, uint32_t bi) {
  return blocks.block(bi).entities;
}
inline std::span<const EntityId> GraphBlockEntities(
    const FlatBlockStore& blocks, uint32_t bi) {
  return blocks.entities(bi);
}
inline uint64_t GraphBlockComparisons(const BlockCollection& blocks,
                                      uint32_t bi,
                                      const EntityCollection& collection,
                                      ResolutionMode mode) {
  return blocks.block(bi).NumComparisons(collection, mode);
}
inline uint64_t GraphBlockComparisons(const FlatBlockStore& blocks,
                                      uint32_t bi,
                                      const EntityCollection& collection,
                                      ResolutionMode mode) {
  return blocks.NumComparisons(bi, collection, mode);
}

/// Per-thread scratch space for stamp-array neighbor deduplication. Each
/// ForNeighbors call gets a fresh generation stamp, so the arrays never need
/// clearing and repeated passes over the same entity stay correct.
class NeighborScratch {
 public:
  explicit NeighborScratch(uint32_t num_entities)
      : stamp_(num_entities, 0),
        common_(num_entities, 0),
        arcs_(num_entities, 0.0) {}

  std::vector<EntityId>& neighbors() { return neighbors_; }
  std::vector<uint64_t>& stamp() { return stamp_; }
  std::vector<uint32_t>& common() { return common_; }
  std::vector<double>& arcs() { return arcs_; }

  /// Starts a new enumeration; returns its unique stamp value (never 0).
  uint64_t NextGeneration() { return ++generation_; }

  /// Number of entities this scratch was sized for.
  uint32_t size() const { return static_cast<uint32_t>(stamp_.size()); }

 private:
  std::vector<uint64_t> stamp_;
  std::vector<uint32_t> common_;
  std::vector<double> arcs_;
  std::vector<EntityId> neighbors_;
  uint64_t generation_ = 0;
};

class ThreadPool;

/// Immutable view over (blocks, collection) exposing weighted-edge
/// enumeration. Construction precomputes ARCS terms and (for EJS) node
/// degrees; thereafter the view is read-only.
class BlockingGraphView {
 public:
  /// Builds the entity index of `blocks` if missing (the only mutation).
  /// `pool` (optional) parallelizes construction — the ARCS-term scan, the
  /// placed-node count, and (for EJS) the whole-graph degree pass — over
  /// fixed chunks, with results identical to the sequential pass at every
  /// thread count.
  BlockingGraphView(BlockCollection& blocks,
                    const EntityCollection& collection,
                    WeightingScheme weighting, ResolutionMode mode,
                    ThreadPool* pool = nullptr);

  /// Same view over the out-of-core FlatBlockStore (the budgeted pipeline).
  /// All derived quantities — ARCS terms, node counts, EJS degrees — come
  /// out identical to a BlockCollection holding the same blocks in the same
  /// order, so downstream pruning is store-agnostic.
  BlockingGraphView(FlatBlockStore& blocks, const EntityCollection& collection,
                    WeightingScheme weighting, ResolutionMode mode,
                    ThreadPool* pool = nullptr);

  double num_blocks() const { return num_blocks_; }
  double num_nodes() const { return num_nodes_; }
  WeightingScheme weighting() const { return weighting_; }
  ResolutionMode mode() const { return mode_; }
  /// The backing BlockCollection; valid only for collection-backed views
  /// (flat-store views expose blocks solely through ForNeighbors).
  const BlockCollection& blocks() const { return *blocks_; }
  const EntityCollection& collection() const { return *collection_; }

  /// Weight of edge (a, b) given its common-block count and ARCS sum.
  double EdgeWeight(EntityId a, EntityId b, uint32_t common,
                    double arcs_sum) const;

  /// Calls fn(neighbor, common_blocks, arcs_sum) for each distinct neighbor
  /// of `e` in the blocking graph. With `only_greater`, each undirected edge
  /// is seen exactly once over an ascending scan of e.
  template <typename Fn>
  void ForNeighbors(NeighborScratch& scratch, EntityId e, bool only_greater,
                    const Fn& fn) const {
    if (flat_ != nullptr) {
      ForNeighborsOver(*flat_, scratch, e, only_greater, fn);
    } else {
      ForNeighborsOver(*blocks_, scratch, e, only_greater, fn);
    }
  }

  /// Weight of the single edge (a, b), or 0 when the edge is absent (no
  /// common block; same-KB pair in clean-clean mode). Scans only a's blocks
  /// and tests each for b's membership — O(Σ_{β ∈ B_a} |β|) worst case,
  /// stopping each block scan at the first hit — instead of materializing
  /// a's whole neighborhood the way a ForNeighbors pass would. Needs no
  /// scratch, so point probes stay cheap for per-candidate callers.
  double PairWeight(EntityId a, EntityId b) const;

  /// Total block assignments Σ|b| (the BC quantity of cardinality pruning).
  uint64_t total_block_assignments() const { return total_assignments_; }

 private:
  template <typename Store, typename Fn>
  void ForNeighborsOver(const Store& store, NeighborScratch& scratch,
                        EntityId e, bool only_greater, const Fn& fn) const {
    auto& stamp = scratch.stamp();
    auto& common = scratch.common();
    auto& arcs = scratch.arcs();
    auto& neighbors = scratch.neighbors();
    const uint64_t generation = scratch.NextGeneration();
    neighbors.clear();
    const bool clean = mode_ == ResolutionMode::kCleanClean;
    for (uint32_t bi : store.BlocksOf(e)) {
      const double arc = arcs_term_[bi];
      for (EntityId n : GraphBlockEntities(store, bi)) {
        if (n == e) continue;
        if (only_greater && n < e) continue;
        if (clean && !collection_->CrossKb(e, n)) continue;
        if (stamp[n] != generation) {
          stamp[n] = generation;
          common[n] = 1;
          arcs[n] = arc;
          neighbors.push_back(n);
        } else {
          ++common[n];
          arcs[n] += arc;
        }
      }
    }
    for (EntityId n : neighbors) {
      fn(n, common[n], arcs[n]);
    }
  }

  template <typename Store>
  void Init(Store& blocks, ThreadPool* pool);

  template <typename Store>
  double PairWeightOver(const Store& store, EntityId a, EntityId b) const;

  size_t NumBlocksOf(EntityId e) const {
    return flat_ != nullptr ? flat_->BlocksOf(e).size()
                            : blocks_->BlocksOf(e).size();
  }

  const BlockCollection* blocks_ = nullptr;
  const FlatBlockStore* flat_ = nullptr;
  const EntityCollection* collection_;
  WeightingScheme weighting_;
  ResolutionMode mode_;
  double num_blocks_ = 0;
  double num_nodes_ = 0;
  uint64_t total_assignments_ = 0;
  std::vector<double> arcs_term_;
  std::vector<uint32_t> degree_;  // EJS only
};

/// This thread's NeighborScratch, (re)sized for `num_entities`. Lets pool
/// workers enumerate the graph without per-task allocation; safe because a
/// thread runs one enumeration at a time and generation stamps survive
/// reuse.
NeighborScratch& TlsNeighborScratch(uint32_t num_entities);

}  // namespace minoan

#endif  // MINOAN_METABLOCKING_BLOCKING_GRAPH_H_
