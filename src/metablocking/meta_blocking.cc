#include "metablocking/meta_blocking.h"

#include <algorithm>
#include <thread>

#include "metablocking/blocking_graph.h"
#include "metablocking/sharded_prune.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace minoan {

std::string_view WeightingSchemeName(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kCbs:
      return "CBS";
    case WeightingScheme::kEcbs:
      return "ECBS";
    case WeightingScheme::kJs:
      return "JS";
    case WeightingScheme::kEjs:
      return "EJS";
    case WeightingScheme::kArcs:
      return "ARCS";
  }
  return "?";
}

std::string_view PruningSchemeName(PruningScheme scheme) {
  switch (scheme) {
    case PruningScheme::kWep:
      return "WEP";
    case PruningScheme::kCep:
      return "CEP";
    case PruningScheme::kWnp:
      return "WNP";
    case PruningScheme::kCnp:
      return "CNP";
  }
  return "?";
}

void SortByWeightDescending(std::vector<WeightedComparison>& comparisons) {
  std::sort(comparisons.begin(), comparisons.end(),
            [](const WeightedComparison& x, const WeightedComparison& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              return PairKey(x.a, x.b) < PairKey(y.a, y.b);
            });
}

std::vector<WeightedComparison> MetaBlocking::Prune(
    BlockCollection& blocks, const EntityCollection& collection,
    MetaBlockingStats* stats) const {
  const uint32_t threads = ResolveThreadCount(options_.num_threads);
  if (threads <= 1) {
    const BlockingGraphView view(blocks, collection, options_.weighting,
                                 options_.mode);
    return ShardedPrune(view, options_, nullptr, stats);
  }
  ThreadPool pool(threads);
  return Prune(blocks, collection, pool, stats);
}

std::vector<WeightedComparison> MetaBlocking::Prune(
    BlockCollection& blocks, const EntityCollection& collection,
    ThreadPool& pool, MetaBlockingStats* stats) const {
  const BlockingGraphView view(blocks, collection, options_.weighting,
                               options_.mode, &pool);
  return ShardedPrune(view, options_, &pool, stats);
}

std::vector<WeightedComparison> MetaBlocking::Prune(
    FlatBlockStore& blocks, const EntityCollection& collection,
    MetaBlockingStats* stats) const {
  const uint32_t threads = ResolveThreadCount(options_.num_threads);
  if (threads <= 1) {
    const BlockingGraphView view(blocks, collection, options_.weighting,
                                 options_.mode);
    return ShardedPrune(view, options_, nullptr, stats);
  }
  ThreadPool pool(threads);
  return Prune(blocks, collection, pool, stats);
}

std::vector<WeightedComparison> MetaBlocking::Prune(
    FlatBlockStore& blocks, const EntityCollection& collection,
    ThreadPool& pool, MetaBlockingStats* stats) const {
  const BlockingGraphView view(blocks, collection, options_.weighting,
                               options_.mode, &pool);
  return ShardedPrune(view, options_, &pool, stats);
}

double ComputePairWeight(BlockCollection& blocks,
                         const EntityCollection& collection,
                         WeightingScheme scheme, ResolutionMode mode,
                         EntityId a, EntityId b) {
  const BlockingGraphView view(blocks, collection, scheme, mode);
  return view.PairWeight(a, b);
}

}  // namespace minoan
