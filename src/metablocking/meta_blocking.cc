#include "metablocking/meta_blocking.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "metablocking/blocking_graph.h"
#include "util/hash.h"
#include "util/topk.h"

namespace minoan {

std::string_view WeightingSchemeName(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kCbs:
      return "CBS";
    case WeightingScheme::kEcbs:
      return "ECBS";
    case WeightingScheme::kJs:
      return "JS";
    case WeightingScheme::kEjs:
      return "EJS";
    case WeightingScheme::kArcs:
      return "ARCS";
  }
  return "?";
}

std::string_view PruningSchemeName(PruningScheme scheme) {
  switch (scheme) {
    case PruningScheme::kWep:
      return "WEP";
    case PruningScheme::kCep:
      return "CEP";
    case PruningScheme::kWnp:
      return "WNP";
    case PruningScheme::kCnp:
      return "CNP";
  }
  return "?";
}

namespace {

/// Deterministic strict-weak order: higher weight first, then smaller pair.
struct EdgeRank {
  double weight;
  uint64_t key;
  bool operator<(const EdgeRank& o) const {
    if (weight != o.weight) return weight < o.weight;
    return key > o.key;
  }
};

}  // namespace

void SortByWeightDescending(std::vector<WeightedComparison>& comparisons) {
  std::sort(comparisons.begin(), comparisons.end(),
            [](const WeightedComparison& x, const WeightedComparison& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              return PairKey(x.a, x.b) < PairKey(y.a, y.b);
            });
}

std::vector<WeightedComparison> MetaBlocking::Prune(
    BlockCollection& blocks, const EntityCollection& collection,
    MetaBlockingStats* stats) const {
  const BlockingGraphView view(blocks, collection, options_.weighting,
                               options_.mode);
  NeighborScratch scratch(collection.num_entities());
  const uint32_t n = collection.num_entities();
  std::vector<WeightedComparison> retained;

  uint64_t graph_edges = 0;
  double weight_sum = 0.0;

  switch (options_.pruning) {
    case PruningScheme::kWep: {
      // Pass 1: global mean weight.
      for (EntityId e = 0; e < n; ++e) {
        view.ForNeighbors(scratch, e, /*only_greater=*/true,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            weight_sum += view.EdgeWeight(e, nb, common, arcs);
                            ++graph_edges;
                          });
      }
      const double mean = graph_edges > 0
                              ? weight_sum / static_cast<double>(graph_edges)
                              : 0.0;
      // Pass 2: retain edges at or above the mean.
      for (EntityId e = 0; e < n; ++e) {
        view.ForNeighbors(scratch, e, true,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            const double w =
                                view.EdgeWeight(e, nb, common, arcs);
                            if (w >= mean) retained.push_back({e, nb, w});
                          });
      }
      break;
    }
    case PruningScheme::kCep: {
      // K = half the total block assignments (BC/2, Papadakis).
      const uint64_t k =
          std::max<uint64_t>(1, view.total_block_assignments() / 2);
      TopK<EdgeRank> top(k);
      for (EntityId e = 0; e < n; ++e) {
        view.ForNeighbors(scratch, e, true,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            const double w =
                                view.EdgeWeight(e, nb, common, arcs);
                            weight_sum += w;
                            ++graph_edges;
                            top.Push(EdgeRank{w, PairKey(e, nb)});
                          });
      }
      for (const EdgeRank& edge : top.TakeSortedDescending()) {
        retained.push_back(
            {PairKeyFirst(edge.key), PairKeySecond(edge.key), edge.weight});
      }
      break;
    }
    case PruningScheme::kWnp:
    case PruningScheme::kCnp: {
      // Node-centric: each node nominates edges; an edge survives when
      // nominated by either endpoint (standard) or both (reciprocal).
      std::unordered_map<uint64_t, std::pair<double, uint8_t>> votes;
      const uint64_t placed = std::max<uint64_t>(
          1, static_cast<uint64_t>(view.num_nodes()));
      const uint64_t cnp_k = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::llround(static_cast<double>(
                                  view.total_block_assignments()) /
                              static_cast<double>(placed))));
      std::vector<std::pair<EntityId, double>> local;
      for (EntityId e = 0; e < n; ++e) {
        local.clear();
        double local_sum = 0.0;
        view.ForNeighbors(scratch, e, /*only_greater=*/false,
                          [&](EntityId nb, uint32_t common, double arcs) {
                            const double w =
                                view.EdgeWeight(e, nb, common, arcs);
                            local.emplace_back(nb, w);
                            local_sum += w;
                          });
        if (local.empty()) continue;
        graph_edges += local.size();  // each edge counted twice; halved below
        weight_sum += local_sum;
        if (options_.pruning == PruningScheme::kWnp) {
          const double mean = local_sum / static_cast<double>(local.size());
          for (const auto& [nb, w] : local) {
            if (w >= mean) {
              auto& vote = votes[PairKey(e, nb)];
              vote.first = w;
              ++vote.second;
            }
          }
        } else {
          TopK<EdgeRank> top(cnp_k);
          for (const auto& [nb, w] : local) {
            top.Push(EdgeRank{w, PairKey(e, nb)});
          }
          for (const EdgeRank& edge : top.TakeSortedDescending()) {
            auto& vote = votes[edge.key];
            vote.first = edge.weight;
            ++vote.second;
          }
        }
      }
      graph_edges /= 2;
      weight_sum /= 2.0;
      const uint8_t needed = options_.reciprocal ? 2 : 1;
      retained.reserve(votes.size());
      for (const auto& [key, vote] : votes) {
        if (vote.second >= needed) {
          retained.push_back(
              {PairKeyFirst(key), PairKeySecond(key), vote.first});
        }
      }
      break;
    }
  }

  SortByWeightDescending(retained);
  if (stats) {
    stats->graph_edges = graph_edges;
    stats->retained_edges = retained.size();
    stats->mean_weight =
        graph_edges > 0 ? weight_sum / static_cast<double>(graph_edges) : 0.0;
  }
  return retained;
}

double ComputePairWeight(BlockCollection& blocks,
                         const EntityCollection& collection,
                         WeightingScheme scheme, ResolutionMode mode,
                         EntityId a, EntityId b) {
  const BlockingGraphView view(blocks, collection, scheme, mode);
  NeighborScratch scratch(collection.num_entities());
  double weight = 0.0;
  view.ForNeighbors(scratch, a, /*only_greater=*/false,
                    [&](EntityId nb, uint32_t common, double arcs) {
                      if (nb == b) {
                        weight = view.EdgeWeight(a, b, common, arcs);
                      }
                    });
  return weight;
}

}  // namespace minoan
