// Copyright 2026 The MinoanER Authors.
// Meta-blocking: restructuring a block collection into a pruned comparison
// set.
//
// Token blocking is redundancy-positive: matching descriptions share many
// blocks. Meta-blocking exploits this by viewing blocks as an implicit
// *blocking graph* — nodes are descriptions, edges connect co-occurring
// pairs — weighting each edge by co-occurrence evidence and pruning low
// weight edges. The poster: "meta-blocking prunes repeated comparisons …
// and discards comparisons between descriptions that share few common
// blocks and are thus less likely to match."
//
// The graph is never materialized: edges are streamed per entity from the
// entity-block index with O(1) stamp-array deduplication, exactly the
// structure parallelized in [4] (Efthymiou et al., Parallel meta-blocking);
// see mapreduce/parallel_meta_blocking.h for the MapReduce version.

#ifndef MINOAN_METABLOCKING_META_BLOCKING_H_
#define MINOAN_METABLOCKING_META_BLOCKING_H_

#include <vector>

#include "blocking/block.h"
#include "kb/collection.h"
#include "metablocking/meta_blocking_types.h"

namespace minoan {

class FlatBlockStore;
class ThreadPool;

/// Executes weighting + pruning over a block collection. Runs on the
/// calling thread by default; set MetaBlockingOptions::num_threads (or pass
/// a pool) to shard the pruning across workers — the output is bit-identical
/// either way (see sharded_prune.h).
class MetaBlocking {
 public:
  explicit MetaBlocking(MetaBlockingOptions options) : options_(options) {}
  MetaBlocking() : options_{} {}

  /// Prunes the blocking graph of `blocks` (builds its entity index when
  /// missing). Returns retained comparisons sorted by descending weight
  /// (ties broken by pair id for determinism). Spawns a worker pool when
  /// options().num_threads != 1.
  std::vector<WeightedComparison> Prune(BlockCollection& blocks,
                                        const EntityCollection& collection,
                                        MetaBlockingStats* stats = nullptr)
      const;

  /// Same, on a caller-owned pool. Lets long-lived drivers (MapReduce
  /// engine, benches) reuse their threads. (Takes a reference, not a
  /// pointer, so `Prune(b, c, nullptr)` stays an unambiguous spelling of
  /// the stats-only overload.)
  std::vector<WeightedComparison> Prune(BlockCollection& blocks,
                                        const EntityCollection& collection,
                                        ThreadPool& pool,
                                        MetaBlockingStats* stats = nullptr)
      const;

  /// Same pruning over the out-of-core FlatBlockStore (the budgeted
  /// pipeline). The flat store holds the same blocks in the same order as
  /// the collection the unbudgeted run materializes, so the retained edges
  /// come out bit-identical.
  std::vector<WeightedComparison> Prune(FlatBlockStore& blocks,
                                        const EntityCollection& collection,
                                        MetaBlockingStats* stats = nullptr)
      const;
  std::vector<WeightedComparison> Prune(FlatBlockStore& blocks,
                                        const EntityCollection& collection,
                                        ThreadPool& pool,
                                        MetaBlockingStats* stats = nullptr)
      const;

  const MetaBlockingOptions& options() const { return options_; }

 private:
  MetaBlockingOptions options_;
};

/// Computes the weight of one specific pair under `scheme`. Point probe:
/// scans only a's blocks for b (BlockingGraphView::PairWeight) instead of
/// materializing a's full neighborhood — still O(Σ_{β ∈ B_a} |β|) worst
/// case because every common block must be counted, but with early exit per
/// block and no scratch allocation. View construction itself is O(|blocks|)
/// (plus a full degree pass for EJS); per-candidate callers should hold one
/// view and call PairWeight directly.
double ComputePairWeight(BlockCollection& blocks,
                         const EntityCollection& collection,
                         WeightingScheme scheme, ResolutionMode mode,
                         EntityId a, EntityId b);

/// Sorts comparisons by (weight desc, pair id asc) — the canonical
/// deterministic order used across the library.
void SortByWeightDescending(std::vector<WeightedComparison>& comparisons);

}  // namespace minoan

#endif  // MINOAN_METABLOCKING_META_BLOCKING_H_
