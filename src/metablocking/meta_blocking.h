// Copyright 2026 The MinoanER Authors.
// Meta-blocking: restructuring a block collection into a pruned comparison
// set.
//
// Token blocking is redundancy-positive: matching descriptions share many
// blocks. Meta-blocking exploits this by viewing blocks as an implicit
// *blocking graph* — nodes are descriptions, edges connect co-occurring
// pairs — weighting each edge by co-occurrence evidence and pruning low
// weight edges. The poster: "meta-blocking prunes repeated comparisons …
// and discards comparisons between descriptions that share few common
// blocks and are thus less likely to match."
//
// The graph is never materialized: edges are streamed per entity from the
// entity-block index with O(1) stamp-array deduplication, exactly the
// structure parallelized in [4] (Efthymiou et al., Parallel meta-blocking);
// see mapreduce/parallel_meta_blocking.h for the MapReduce version.

#ifndef MINOAN_METABLOCKING_META_BLOCKING_H_
#define MINOAN_METABLOCKING_META_BLOCKING_H_

#include <vector>

#include "blocking/block.h"
#include "kb/collection.h"
#include "metablocking/meta_blocking_types.h"

namespace minoan {

/// Executes weighting + pruning over a block collection (sequential
/// reference implementation).
class MetaBlocking {
 public:
  explicit MetaBlocking(MetaBlockingOptions options) : options_(options) {}
  MetaBlocking() : options_{} {}

  /// Prunes the blocking graph of `blocks` (builds its entity index when
  /// missing). Returns retained comparisons sorted by descending weight
  /// (ties broken by pair id for determinism).
  std::vector<WeightedComparison> Prune(BlockCollection& blocks,
                                        const EntityCollection& collection,
                                        MetaBlockingStats* stats = nullptr)
      const;

  const MetaBlockingOptions& options() const { return options_; }

 private:
  MetaBlockingOptions options_;
};

/// Computes the weight of one specific pair under `scheme` (test helper;
/// O(blocks of a)).
double ComputePairWeight(BlockCollection& blocks,
                         const EntityCollection& collection,
                         WeightingScheme scheme, ResolutionMode mode,
                         EntityId a, EntityId b);

/// Sorts comparisons by (weight desc, pair id asc) — the canonical
/// deterministic order used across the library.
void SortByWeightDescending(std::vector<WeightedComparison>& comparisons);

}  // namespace minoan

#endif  // MINOAN_METABLOCKING_META_BLOCKING_H_
