// Copyright 2026 The MinoanER Authors.
// Shared meta-blocking types: weighting/pruning scheme enums and options.

#ifndef MINOAN_METABLOCKING_META_BLOCKING_TYPES_H_
#define MINOAN_METABLOCKING_META_BLOCKING_TYPES_H_

#include <cstdint>
#include <string_view>

#include "blocking/block.h"
#include "extmem/memory_budget.h"
#include "kb/entity.h"

namespace minoan {

/// Edge-weighting schemes (Papadakis et al.).
enum class WeightingScheme {
  kCbs = 0,   ///< Common Blocks: |B_ab|
  kEcbs = 1,  ///< Enhanced CBS: |B_ab| · log(|B|/|B_a|) · log(|B|/|B_b|)
  kJs = 2,    ///< Jaccard of block sets: |B_ab| / (|B_a|+|B_b|-|B_ab|)
  kEjs = 3,   ///< Enhanced JS: JS · log(|V|/deg a) · log(|V|/deg b)
  kArcs = 4,  ///< Aggregate Reciprocal Comparisons: Σ_b∈B_ab 1/||b||
};
inline constexpr uint32_t kNumWeightingSchemes = 5;

/// Pruning schemes.
enum class PruningScheme {
  kWep = 0,  ///< Weighted Edge Pruning: keep edges ≥ global mean weight
  kCep = 1,  ///< Cardinality Edge Pruning: keep global top-K edges
  kWnp = 2,  ///< Weighted Node Pruning: per node, keep edges ≥ local mean
  kCnp = 3,  ///< Cardinality Node Pruning: per node, keep top-k edges
};
inline constexpr uint32_t kNumPruningSchemes = 4;

std::string_view WeightingSchemeName(WeightingScheme scheme);
std::string_view PruningSchemeName(PruningScheme scheme);

/// A retained comparison with its blocking-graph weight.
struct WeightedComparison {
  EntityId a;
  EntityId b;
  double weight;
};

/// Meta-blocking configuration.
struct MetaBlockingOptions {
  WeightingScheme weighting = WeightingScheme::kEcbs;
  PruningScheme pruning = PruningScheme::kWnp;
  /// Node-centric schemes only: retain an edge iff BOTH endpoints retain it
  /// (reciprocal) instead of either (standard).
  bool reciprocal = false;
  ResolutionMode mode = ResolutionMode::kCleanClean;
  /// Pruning parallelism: 1 = run on the calling thread (default), N > 1 =
  /// use a pool of N workers, 0 = hardware concurrency. The retained edge
  /// list is bit-identical for every value (see sharded_prune.h).
  uint32_t num_threads = 1;
  /// External-memory budget for the node-centric vote shards: when enabled,
  /// nominations spill sorted runs to temp files instead of accumulating in
  /// RAM — with a bit-identical retained edge list either way.
  extmem::MemoryBudgetOptions memory;
};

/// Summary counters of one meta-blocking run.
struct MetaBlockingStats {
  uint64_t graph_edges = 0;     // distinct comparisons before pruning
  uint64_t retained_edges = 0;  // after pruning
  double mean_weight = 0.0;     // global mean edge weight
  uint64_t nominations = 0;     // node-centric vote emissions (else 0)
  uint64_t distinct_pairs = 0;  // distinct nominated pairs (else 0)
};

}  // namespace minoan

#endif  // MINOAN_METABLOCKING_META_BLOCKING_TYPES_H_
