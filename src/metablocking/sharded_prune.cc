#include "metablocking/sharded_prune.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <functional>
#include <string>

#include "extmem/shuffle.h"
#include "metablocking/meta_blocking.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/topk.h"

namespace minoan {
namespace {

/// Deterministic strict-weak order: higher weight first, then smaller pair.
struct EdgeRank {
  double weight;
  uint64_t key;
  bool operator<(const EdgeRank& o) const {
    if (weight != o.weight) return weight < o.weight;
    return key > o.key;
  }
};

/// One node-centric vote: `nominator` kept an edge to the other endpoint of
/// `key`. Sorting by (key, nominator) groups votes per pair with the larger
/// endpoint last — the endpoint whose weight the sequential vote table would
/// have kept (last writer over an ascending entity scan).
struct Nomination {
  uint64_t key;
  EntityId nominator;
  double weight;
  bool operator<(const Nomination& o) const {
    if (key != o.key) return key < o.key;
    return nominator < o.nominator;
  }
};

/// Order-fixed partial aggregate of one entity chunk.
struct ChunkPartial {
  double weight_sum = 0.0;
  uint64_t edges = 0;
};

}  // namespace

std::vector<WeightedComparison> ShardedPrune(const BlockingGraphView& view,
                                             const MetaBlockingOptions& options,
                                             ThreadPool* pool,
                                             MetaBlockingStats* stats) {
  const uint32_t n = view.collection().num_entities();
  const size_t num_chunks =
      (static_cast<size_t>(n) + kPruneChunkEntities - 1) / kPruneChunkEntities;
  const auto chunk_range = [n](size_t c) {
    const EntityId begin = static_cast<EntityId>(c * kPruneChunkEntities);
    const EntityId end = static_cast<EntityId>(
        std::min<size_t>(n, (c + 1) * kPruneChunkEntities));
    return std::pair<EntityId, EntityId>(begin, end);
  };

  std::vector<WeightedComparison> retained;
  uint64_t graph_edges = 0;
  double weight_sum = 0.0;
  uint64_t nominations = 0;
  uint64_t distinct_pairs = 0;

  switch (options.pruning) {
    case PruningScheme::kWep: {
      // Pass 1: per-chunk partial sums, folded in chunk order so the global
      // mean is one fixed floating-point reduction for every thread count.
      std::vector<ChunkPartial> partials(num_chunks);
      RunPoolTasks(pool, num_chunks, [&](size_t c) {
        NeighborScratch& scratch = TlsNeighborScratch(n);
        ChunkPartial partial;
        const auto [begin, end] = chunk_range(c);
        for (EntityId e = begin; e < end; ++e) {
          view.ForNeighbors(scratch, e, /*only_greater=*/true,
                            [&](EntityId nb, uint32_t common, double arcs) {
                              partial.weight_sum +=
                                  view.EdgeWeight(e, nb, common, arcs);
                              ++partial.edges;
                            });
        }
        partials[c] = partial;
      });
      for (const ChunkPartial& p : partials) {
        weight_sum += p.weight_sum;
        graph_edges += p.edges;
      }
      const double mean = graph_edges > 0
                              ? weight_sum / static_cast<double>(graph_edges)
                              : 0.0;
      if (options.memory.enabled()) {
        // Pass 2, external: surviving edges stream through ONE spilling sink
        // keyed [~weight BE][pair BE]. Every scheme's weight is finite and
        // >= 0 (never -0.0), so the complemented bit pattern orders bytes by
        // weight descending, pair ascending — the SortByWeightDescending
        // order — and the edge list never sits in memory whole. Keys are
        // unique per edge (only_greater emits each pair once), so merge
        // tie-breaks never fire.
        extmem::RunSpilledShuffle(
            pool, n, kPruneChunkEntities, /*num_shards=*/1, options.memory,
            [&](size_t /*c*/, size_t begin, size_t end, const auto& route) {
              NeighborScratch& scratch = TlsNeighborScratch(n);
              std::string record;
              for (EntityId e = static_cast<EntityId>(begin);
                   e < static_cast<EntityId>(end); ++e) {
                view.ForNeighbors(
                    scratch, e, true,
                    [&](EntityId nb, uint32_t common, double arcs) {
                      const double w = view.EdgeWeight(e, nb, common, arcs);
                      if (w < mean) return;
                      record.clear();
                      extmem::AppendU32Le(record, 16);
                      extmem::AppendU64Be(record,
                                          ~std::bit_cast<uint64_t>(w));
                      extmem::AppendU64Be(record, PairKey(e, nb));
                      extmem::AppendU64Le(record, std::bit_cast<uint64_t>(w));
                      route(0, record);
                    });
              }
            },
            [&](uint32_t /*s*/, extmem::ShuffleSource& source) {
              std::string_view record;
              while (source.Next(record)) {
                const uint64_t key = extmem::ReadU64Be(
                    extmem::RecordKey(record).substr(8, 8));
                const double w = std::bit_cast<double>(
                    extmem::ReadU64Le(extmem::RecordPayload(record)));
                retained.push_back(
                    {PairKeyFirst(key), PairKeySecond(key), w});
              }
            });
        break;
      }
      // Pass 2: retain edges at or above the mean, chunk-local then merged.
      std::vector<std::vector<WeightedComparison>> kept(num_chunks);
      RunPoolTasks(pool, num_chunks, [&](size_t c) {
        NeighborScratch& scratch = TlsNeighborScratch(n);
        const auto [begin, end] = chunk_range(c);
        for (EntityId e = begin; e < end; ++e) {
          view.ForNeighbors(scratch, e, true,
                            [&](EntityId nb, uint32_t common, double arcs) {
                              const double w =
                                  view.EdgeWeight(e, nb, common, arcs);
                              if (w >= mean) kept[c].push_back({e, nb, w});
                            });
        }
      });
      retained = FlattenInOrder(kept);
      break;
    }
    case PruningScheme::kCep: {
      // K = half the total block assignments (BC/2, Papadakis). Per-chunk
      // top-K heaps merge into one exact global selection; the (weight, key)
      // total order makes the selected set insertion-order independent.
      const uint64_t k =
          std::max<uint64_t>(1, view.total_block_assignments() / 2);
      std::vector<ChunkPartial> partials(num_chunks);
      if (options.memory.enabled()) {
        // External top-K: ALL edges stream through one spilling sink keyed
        // [~weight BE][pair BE] (weight descending, pair ascending — see the
        // WEP case for the encoding argument); the first K records of the
        // merged stream are exactly the set the in-memory per-chunk heaps
        // select, because both selections use the same (weight, pair) total
        // order. Peak memory is the spill budget + K retained edges, not
        // the full edge list.
        extmem::RunSpilledShuffle(
            pool, n, kPruneChunkEntities, /*num_shards=*/1, options.memory,
            [&](size_t c, size_t begin, size_t end, const auto& route) {
              NeighborScratch& scratch = TlsNeighborScratch(n);
              ChunkPartial partial;
              std::string record;
              for (EntityId e = static_cast<EntityId>(begin);
                   e < static_cast<EntityId>(end); ++e) {
                view.ForNeighbors(
                    scratch, e, true,
                    [&](EntityId nb, uint32_t common, double arcs) {
                      const double w = view.EdgeWeight(e, nb, common, arcs);
                      partial.weight_sum += w;
                      ++partial.edges;
                      record.clear();
                      extmem::AppendU32Le(record, 16);
                      extmem::AppendU64Be(record,
                                          ~std::bit_cast<uint64_t>(w));
                      extmem::AppendU64Be(record, PairKey(e, nb));
                      extmem::AppendU64Le(record, std::bit_cast<uint64_t>(w));
                      route(0, record);
                    });
              }
              partials[c] = partial;
            },
            [&](uint32_t /*s*/, extmem::ShuffleSource& source) {
              std::string_view record;
              while (retained.size() < k && source.Next(record)) {
                const uint64_t key = extmem::ReadU64Be(
                    extmem::RecordKey(record).substr(8, 8));
                const double w = std::bit_cast<double>(
                    extmem::ReadU64Le(extmem::RecordPayload(record)));
                retained.push_back(
                    {PairKeyFirst(key), PairKeySecond(key), w});
              }
            });
        for (const ChunkPartial& p : partials) {
          weight_sum += p.weight_sum;
          graph_edges += p.edges;
        }
        break;
      }
      std::vector<TopK<EdgeRank>> tops(num_chunks, TopK<EdgeRank>(k));
      RunPoolTasks(pool, num_chunks, [&](size_t c) {
        NeighborScratch& scratch = TlsNeighborScratch(n);
        ChunkPartial partial;
        const auto [begin, end] = chunk_range(c);
        for (EntityId e = begin; e < end; ++e) {
          view.ForNeighbors(scratch, e, true,
                            [&](EntityId nb, uint32_t common, double arcs) {
                              const double w =
                                  view.EdgeWeight(e, nb, common, arcs);
                              partial.weight_sum += w;
                              ++partial.edges;
                              tops[c].Push(EdgeRank{w, PairKey(e, nb)});
                            });
        }
        partials[c] = partial;
      });
      for (const ChunkPartial& p : partials) {
        weight_sum += p.weight_sum;
        graph_edges += p.edges;
      }
      TopK<EdgeRank> top(k);
      for (TopK<EdgeRank>& chunk_top : tops) {
        for (const EdgeRank& edge : chunk_top.TakeSortedDescending()) {
          top.Push(edge);
        }
      }
      for (const EdgeRank& edge : top.TakeSortedDescending()) {
        retained.push_back(
            {PairKeyFirst(edge.key), PairKeySecond(edge.key), edge.weight});
      }
      break;
    }
    case PruningScheme::kWnp:
    case PruningScheme::kCnp: {
      // Node-centric: each node nominates edges; an edge survives when
      // nominated by either endpoint (standard) or both (reciprocal).
      // Phase A routes nominations into PairKey-hashed shards (chunk-local
      // buffers, no shared state); phase B aggregates each shard.
      const uint64_t placed = std::max<uint64_t>(
          1, static_cast<uint64_t>(view.num_nodes()));
      const uint64_t cnp_k = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 std::llround(static_cast<double>(
                                  view.total_block_assignments()) /
                              static_cast<double>(placed))));
      const bool is_wnp = options.pruning == PruningScheme::kWnp;
      const size_t needed = options.reciprocal ? 2 : 1;
      std::vector<ChunkPartial> partials(num_chunks);
      std::vector<std::vector<WeightedComparison>> shard_kept(
          kPruneVoteShards);
      std::vector<std::pair<uint64_t, uint64_t>> shard_counts(
          kPruneVoteShards);

      // The per-entity nomination scan, shared by the in-memory and the
      // spilled phase A. `nominate(e, key, w)` routes one vote.
      const auto scan_chunk = [&](size_t c, const auto& nominate) {
        NeighborScratch& scratch = TlsNeighborScratch(n);
        ChunkPartial partial;
        std::vector<std::pair<EntityId, double>> local;
        const auto [begin, end] = chunk_range(c);
        for (EntityId e = begin; e < end; ++e) {
          local.clear();
          double local_sum = 0.0;
          view.ForNeighbors(scratch, e, /*only_greater=*/false,
                            [&](EntityId nb, uint32_t common, double arcs) {
                              const double w =
                                  view.EdgeWeight(e, nb, common, arcs);
                              local.emplace_back(nb, w);
                              local_sum += w;
                            });
          if (local.empty()) continue;
          partial.edges += local.size();  // counted twice; halved below
          partial.weight_sum += local_sum;
          if (is_wnp) {
            const double mean = local_sum / static_cast<double>(local.size());
            for (const auto& [nb, w] : local) {
              if (w >= mean) nominate(e, PairKey(e, nb), w);
            }
          } else {
            TopK<EdgeRank> top(cnp_k);
            for (const auto& [nb, w] : local) {
              top.Push(EdgeRank{w, PairKey(e, nb)});
            }
            for (const EdgeRank& edge : top.TakeSortedDescending()) {
              nominate(e, edge.key, edge.weight);
            }
          }
        }
        partials[c] = partial;
      };
      // One pair's complete vote set is a (key, nominator)-sorted run whose
      // last entry is the larger endpoint — the endpoint whose weight the
      // sequential vote table kept. `flush_group` applies the retention
      // rule to one such run.
      const auto flush_group = [&](size_t s, uint64_t key, size_t group_votes,
                                   double last_weight, uint64_t& pairs) {
        ++pairs;
        if (group_votes >= needed) {
          shard_kept[s].push_back(
              {PairKeyFirst(key), PairKeySecond(key), last_weight});
        }
      };

      if (options.memory.enabled()) {
        // External-memory phase A/B: nominations stream through spilling
        // vote-shard sinks as (pair, nominator)-keyed records; each shard's
        // merged stream is exactly the sorted vote array the in-memory path
        // aggregates, so the retained edges carry identical bytes.
        extmem::RunSpilledShuffle(
            pool, n, kPruneChunkEntities, kPruneVoteShards, options.memory,
            [&](size_t c, size_t /*begin*/, size_t /*end*/,
                const auto& route) {
              std::string record;
              scan_chunk(c, [&](EntityId e, uint64_t key, double w) {
                record.clear();
                extmem::AppendU32Le(record, 12);  // key: pair + nominator
                extmem::AppendU64Be(record, key);
                extmem::AppendU32Be(record, e);
                extmem::AppendU64Le(record, std::bit_cast<uint64_t>(w));
                route(static_cast<uint32_t>(Mix64(key) &
                                            (kPruneVoteShards - 1)),
                      record);
              });
            },
            [&](uint32_t s, extmem::ShuffleSource& source) {
              std::string_view record;
              uint64_t votes = 0, pairs = 0;
              uint64_t group_key = 0;
              size_t group_votes = 0;
              double last_weight = 0.0;
              bool open = false;
              while (source.Next(record)) {
                ++votes;
                const uint64_t key = extmem::ReadU64Be(
                    extmem::RecordKey(record).substr(0, 8));
                if (open && key != group_key) {
                  flush_group(s, group_key, group_votes, last_weight, pairs);
                  group_votes = 0;
                }
                group_key = key;
                open = true;
                ++group_votes;
                last_weight = std::bit_cast<double>(
                    extmem::ReadU64Le(extmem::RecordPayload(record)));
              }
              if (open) {
                flush_group(s, group_key, group_votes, last_weight, pairs);
              }
              shard_counts[s] = {votes, pairs};
            });
      } else {
        // In-memory phase A: chunk-local shard buffers, no shared state.
        std::vector<std::vector<std::vector<Nomination>>> chunk_noms(
            num_chunks,
            std::vector<std::vector<Nomination>>(kPruneVoteShards));
        RunPoolTasks(pool, num_chunks, [&](size_t c) {
          auto& shards = chunk_noms[c];
          scan_chunk(c, [&shards](EntityId e, uint64_t key, double w) {
            shards[Mix64(key) & (kPruneVoteShards - 1)].push_back(
                Nomination{key, e, w});
          });
        });

        // In-memory phase B: per-shard vote aggregation over the gathered
        // (key, nominator)-sorted array.
        RunPoolTasks(pool, kPruneVoteShards, [&](size_t s) {
          std::vector<Nomination> votes;
          size_t total = 0;
          for (const auto& chunk : chunk_noms) total += chunk[s].size();
          votes.reserve(total);
          for (const auto& chunk : chunk_noms) {
            votes.insert(votes.end(), chunk[s].begin(), chunk[s].end());
          }
          std::sort(votes.begin(), votes.end());
          uint64_t pairs = 0;
          size_t i = 0;
          while (i < votes.size()) {
            size_t j = i;
            while (j < votes.size() && votes[j].key == votes[i].key) ++j;
            flush_group(s, votes[i].key, j - i, votes[j - 1].weight, pairs);
            i = j;
          }
          shard_counts[s] = {votes.size(), pairs};
        });
      }
      for (const ChunkPartial& p : partials) {
        weight_sum += p.weight_sum;
        graph_edges += p.edges;
      }
      graph_edges /= 2;
      weight_sum /= 2.0;
      static obs::Histogram& shard_votes =
          obs::MetricsRegistry::Default().histogram("prune.shard_votes");
      for (const auto& [votes, pairs] : shard_counts) {
        nominations += votes;
        distinct_pairs += pairs;
        shard_votes.Record(votes);
      }
      retained = FlattenInOrder(shard_kept);
      break;
    }
  }

  SortByWeightDescending(retained);
  // Telemetry once per prune run — all sequential, outside the workers.
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    static obs::Counter& chunks = registry.counter("prune.chunks");
    static obs::Counter& edges = registry.counter("prune.graph_edges");
    static obs::Counter& noms = registry.counter("prune.nominations");
    static obs::Counter& kept_edges = registry.counter("prune.retained");
    chunks.Add(num_chunks);
    edges.Add(graph_edges);
    noms.Add(nominations);
    kept_edges.Add(retained.size());
  }
  if (stats) {
    stats->graph_edges = graph_edges;
    stats->retained_edges = retained.size();
    stats->mean_weight =
        graph_edges > 0 ? weight_sum / static_cast<double>(graph_edges) : 0.0;
    stats->nominations = nominations;
    stats->distinct_pairs = distinct_pairs;
  }
  return retained;
}

}  // namespace minoan
