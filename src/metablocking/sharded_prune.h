// Copyright 2026 The MinoanER Authors.
// The sharded pruning core: one implementation of WEP/CEP/WNP/CNP shared by
// the sequential MetaBlocking driver and the MapReduce path.
//
// Entities are dealt to workers in fixed-size chunks (constant, independent
// of the worker count) so every floating-point partial aggregate folds in
// the same order no matter how many threads run. Node-centric nominations
// are routed into a fixed number of shards by PairKey hash; each shard sorts
// its nominations by (pair, nominating entity) before aggregating, which
// reproduces the sequential vote-table semantics (the larger endpoint's
// weight wins when both nominate). The net guarantee: the retained edge list
// is bit-identical for every thread count, including the inline (no pool)
// path.

#ifndef MINOAN_METABLOCKING_SHARDED_PRUNE_H_
#define MINOAN_METABLOCKING_SHARDED_PRUNE_H_

#include <vector>

#include "metablocking/blocking_graph.h"
#include "metablocking/meta_blocking_types.h"
#include "util/thread_pool.h"

namespace minoan {

/// Entities per work chunk. A constant (never derived from the pool size):
/// chunk boundaries define the floating-point reduction order, so they must
/// not move when the thread count changes.
inline constexpr uint32_t kPruneChunkEntities = 256;

/// Vote-table shards for the node-centric schemes (power of two).
inline constexpr uint32_t kPruneVoteShards = 64;

/// Prunes the blocking graph of `view` under `options`, running chunk and
/// shard tasks on `pool` (nullptr = inline on the calling thread). Returns
/// retained comparisons in the canonical order of SortByWeightDescending;
/// the result is bit-identical across pool sizes.
std::vector<WeightedComparison> ShardedPrune(const BlockingGraphView& view,
                                             const MetaBlockingOptions& options,
                                             ThreadPool* pool,
                                             MetaBlockingStats* stats =
                                                 nullptr);

}  // namespace minoan

#endif  // MINOAN_METABLOCKING_SHARDED_PRUNE_H_
