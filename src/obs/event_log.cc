// Copyright 2026 The MinoanER Authors.

#include "obs/event_log.h"

#include <algorithm>

#include "obs/metrics.h"

namespace minoan {
namespace obs {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "info";
}

EventLog::EventLog(Options options)
    : options_{std::max<size_t>(1, options.max_events), options.min_severity},
      epoch_(std::chrono::steady_clock::now()) {}

void EventLog::Log(Severity severity, std::string kind,
                   std::vector<std::pair<std::string, std::string>> text,
                   std::vector<std::pair<std::string, uint64_t>> values) {
  Event event;
  event.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  event.severity = severity;
  event.kind = std::move(kind);
  event.text = std::move(text);
  event.values = std::move(values);
  Append(std::move(event));
}

void EventLog::Append(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.severity < options_.min_severity) {
    ++filtered_;
    return;
  }
  if (events_.size() >= options_.max_events) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Event>(events_.begin(), events_.end());
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t EventLog::filtered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filtered_;
}

void EventLog::WriteJsonl(std::ostream& out) const {
  for (const Event& event : snapshot()) {
    out << "{\"ts_us\":" << event.ts_us << ",\"severity\":\""
        << SeverityName(event.severity) << "\",\"kind\":";
    WriteJsonString(out, event.kind);
    for (const auto& [name, value] : event.text) {
      out << ',';
      WriteJsonString(out, name);
      out << ':';
      WriteJsonString(out, value);
    }
    for (const auto& [name, value] : event.values) {
      out << ',';
      WriteJsonString(out, name);
      out << ':' << value;
    }
    out << "}\n";
  }
}

}  // namespace obs
}  // namespace minoan
