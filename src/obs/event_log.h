// Copyright 2026 The MinoanER Authors.
// EventLog: a bounded, severity-filtered ring of structured events for the
// rare-but-interesting moments of a long-running process — slow requests,
// session evictions and restores, checkpoint failures. Counters answer "how
// much"; the event log answers "what happened, to whom, when".
//
// Same out-of-band contract as the metrics registry: appending never
// influences results, the ring is bounded (oldest events drop, with a
// counter saying how many), and the whole log serializes as JSONL — one
// self-contained JSON object per line, so `tail -f` and `jq` both work on
// a partially written file.

#ifndef MINOAN_OBS_EVENT_LOG_H_
#define MINOAN_OBS_EVENT_LOG_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace minoan {
namespace obs {

enum class Severity : uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

/// Lowercase wire name ("info" / "warn" / "error").
std::string_view SeverityName(Severity severity);

/// One structured event. `text` and `values` keep insertion order and land
/// as top-level JSON fields after the reserved ts_us/severity/kind trio.
struct Event {
  uint64_t ts_us = 0;  ///< Microseconds since the log's construction.
  Severity severity = Severity::kInfo;
  std::string kind;  ///< e.g. "slow_request", "session_evicted".
  std::vector<std::pair<std::string, std::string>> text;
  std::vector<std::pair<std::string, uint64_t>> values;
};

class EventLog {
 public:
  struct Options {
    /// Ring capacity; the oldest event drops when full (see dropped()).
    size_t max_events = 4096;
    /// Events below this severity are discarded at append time.
    Severity min_severity = Severity::kInfo;
  };

  EventLog() : EventLog(Options()) {}
  explicit EventLog(Options options);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Stamps ts_us and appends. The usual entry point.
  void Log(Severity severity, std::string kind,
           std::vector<std::pair<std::string, std::string>> text = {},
           std::vector<std::pair<std::string, uint64_t>> values = {});

  /// Appends a caller-built event verbatim (ts_us included) — the severity
  /// filter and ring bound still apply. Tests use this for determinism.
  void Append(Event event);

  std::vector<Event> snapshot() const;
  size_t size() const;
  /// Events evicted from the ring because it was full.
  uint64_t dropped() const;
  /// Events discarded because they were below min_severity.
  uint64_t filtered() const;

  /// One JSON object per line, oldest first:
  ///   {"ts_us":N,"severity":"warn","kind":"slow_request",<text...>,<values...>}
  void WriteJsonl(std::ostream& out) const;

 private:
  const Options options_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  uint64_t dropped_ = 0;
  uint64_t filtered_ = 0;
};

}  // namespace obs
}  // namespace minoan

#endif  // MINOAN_OBS_EVENT_LOG_H_
