// Copyright 2026 The MinoanER Authors.

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace minoan {
namespace obs {

uint32_t ThisThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

size_t Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  size_t bucket = 1;
  while (value > 1 && bucket + 1 < kHistogramBuckets) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

void Histogram::AtomicMin(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::AtomicMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot merged;
  for (const auto& cell : cells_) {
    merged.count += cell.count.load(std::memory_order_relaxed);
    merged.sum += cell.sum.load(std::memory_order_relaxed);
    merged.min = std::min(merged.min, cell.min.load(std::memory_order_relaxed));
    merged.max = std::max(merged.max, cell.max.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      merged.buckets[i] += cell.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::Reset() {
  for (auto& cell : cells_) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.min.store(std::numeric_limits<uint64_t>::max(),
                   std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
    for (auto& bucket : cell.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The q-quantile is the rank-th smallest sample (nearest-rank, 1-based).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t below = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (below + in_bucket < rank) {
      below += in_bucket;
      continue;
    }
    // Bucket i holds the rank-th sample. Bucket 0 is the exact value 0;
    // bucket i >= 1 spans [2^(i-1), 2^i): interpolate by rank position,
    // then clamp into the exact [min, max] envelope — that makes single
    // samples and all-equal histograms exact, and keeps the tail bucket
    // (which absorbs overflow) from overshooting max.
    double value = 0.0;
    if (i > 0) {
      const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double frac = static_cast<double>(rank - below) /
                          static_cast<double>(in_bucket);
      value = lo + frac * (hi - lo);
    }
    value = std::min(value, static_cast<double>(max));
    value = std::max(value, static_cast<double>(min));
    return value;
  }
  // Buckets inconsistent with count (hand-built snapshot): best effort.
  return static_cast<double>(max);
}

uint64_t StatsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>(&enabled_))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>(&enabled_))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(&enabled_))
             .first;
  }
  return *it->second;
}

StatsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->Value());
  }
  return values;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

ScopedRegistry::ScopedRegistry(MetricsRegistry* parent, std::string label)
    : parent_(parent), label_(std::move(label)) {}

Counter& ScopedRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // Local metrics borrow the parent's master switch: disabling the
    // registry silences scoped shadows too.
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(parent_->enabled_flag()))
             .first;
  }
  return *it->second;
}

Gauge& ScopedRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(parent_->enabled_flag()))
             .first;
  }
  return *it->second;
}

Histogram& ScopedRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(parent_->enabled_flag()))
             .first;
  }
  return *it->second;
}

ScopedCounter ScopedRegistry::scoped_counter(std::string_view name) {
  return ScopedCounter(&parent_->counter(name), &counter(name));
}

ScopedHistogram ScopedRegistry::scoped_histogram(std::string_view name) {
  return ScopedHistogram(&parent_->histogram(name), &histogram(name));
}

StatsSnapshot ScopedRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void WriteJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace obs
}  // namespace minoan
