// Copyright 2026 The MinoanER Authors.
// MetricsRegistry: the process-wide counter/gauge/histogram registry behind
// every pipeline telemetry signal (blocking shard sizes, spill runs, pool
// utilization, online ingest rates).
//
// Design constraints, in order:
//
//   1. Out-of-band. Instrumentation NEVER influences results: every
//      byte-identity guarantee of the pipeline (match sequence, checkpoint
//      bytes, bench identity probes) holds with metrics enabled or
//      disabled, at any thread count. Metrics only observe.
//   2. Hot-path cheap. A counter increment from a worker thread is one
//      relaxed atomic add on a per-thread-sharded, cache-line-padded cell —
//      no locks, no false sharing between workers. Aggregation cost is paid
//      by the (rare) reader, which sums the cells.
//   3. Resettable per metric. Tests and benches scope their probes by
//      resetting exactly the metrics they assert on (see the spill
//      telemetry shim in extmem/shuffle.h), so parallel test cases do not
//      pollute each other's counters.
//
// Usage at an instrumentation site (one-time registration via a function-
// local static, then lock-free updates):
//
//   static obs::Counter& chunks =
//       obs::MetricsRegistry::Default().counter("blocking.chunks");
//   chunks.Add(num_chunks);

#ifndef MINOAN_OBS_METRICS_H_
#define MINOAN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace minoan {
namespace obs {

/// Sharded cells per counter/histogram (power of two). Threads map onto
/// cells by a dense thread index, so up to kMetricCells concurrent writers
/// touch distinct cache lines.
inline constexpr size_t kMetricCells = 16;
static_assert((kMetricCells & (kMetricCells - 1)) == 0);

/// Log2 histogram buckets: bucket i counts values in [2^(i-1), 2^i), with
/// bucket 0 counting zeros and the last bucket absorbing the overflow tail.
inline constexpr size_t kHistogramBuckets = 40;

/// Dense index of the calling thread, assigned on first use. Shared with
/// the trace recorder so span thread tags and metric cells agree.
uint32_t ThisThreadIndex();

namespace internal {
struct alignas(64) Cell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// Monotonic counter. Add() is wait-free and safe from any thread.
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[ThisThreadIndex() & (kMetricCells - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged total over all cells. Concurrent adds may or may not be seen —
  /// exact once writers are quiescent (the snapshot-on-read contract).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::array<internal::Cell, kMetricCells> cells_;
};

/// Signed point-in-time value (queue depths, worker counts).
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Merged view of one histogram: exact count/sum/min/max plus log2 bucket
/// counts for shape.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// UINT64_MAX / 0 when count == 0.
  uint64_t min = std::numeric_limits<uint64_t>::max();
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Quantile estimate (q in [0,1]) from the log2 buckets: linear
  /// interpolation by rank inside the owning bucket, clamped to the exact
  /// [min, max] envelope. 0 when empty; exact for single samples and for
  /// histograms whose samples all share one value; otherwise within one
  /// bucket width of the true order statistic. Monotone in q.
  double Quantile(double q) const;
};

/// Distribution of a non-negative integer signal (shard sizes, queue waits,
/// runs per sink). Record() is wait-free; min/max are exact (CAS loops that
/// almost always exit on the first load once the extremes settle).
class Histogram {
 public:
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    PerCell& cell = cells_[ThisThreadIndex() & (kMetricCells - 1)];
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    cell.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    AtomicMin(cell.min, value);
    AtomicMax(cell.max, value);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index of a value: 0 for 0, else 1 + floor(log2(value)), capped.
  static size_t BucketOf(uint64_t value);

 private:
  struct alignas(64) PerCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{std::numeric_limits<uint64_t>::max()};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };

  static void AtomicMin(std::atomic<uint64_t>& target, uint64_t value);
  static void AtomicMax(std::atomic<uint64_t>& target, uint64_t value);

  const std::atomic<bool>* enabled_;
  std::array<PerCell, kMetricCells> cells_;
};

/// Point-in-time merged view of a whole registry, sorted by metric name so
/// exports and golden comparisons are deterministic.
struct StatsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

/// Owner of all metrics. Registration is mutex-protected and returns stable
/// references (the hot path holds a `Counter&`, never touches the map).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& Default();

  /// Returns the named metric, creating it on first use. The reference
  /// stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Merged snapshot of every registered metric, name-sorted.
  StatsSnapshot Snapshot() const;

  /// Counter names+values only — the cheap input of per-span deltas.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;

  /// Zeroes every registered metric (names stay registered).
  void ResetAll();

  /// Master switch. Disabled => every Add/Set/Record is a load + branch.
  /// Purely observational either way: results are identical on or off.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The master-switch flag itself, for metrics that live outside this
  /// registry but must obey its on/off state (ScopedRegistry shadows).
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  // std::map: deterministic name order for snapshots, stable addresses.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Dual-write counter handle: one Add lands in the process-wide metric and
/// in a label-scoped shadow, so per-tenant attribution costs exactly one
/// extra relaxed add per update — never per element (instrumentation sites
/// batch, e.g. one Add per installment). Copyable; both targets outlive the
/// handle (registry metrics are never destroyed before their registry).
class ScopedCounter {
 public:
  ScopedCounter() = default;
  ScopedCounter(Counter* process, Counter* scoped)
      : process_(process), scoped_(scoped) {}

  void Add(uint64_t delta) {
    if (process_ != nullptr) process_->Add(delta);
    if (scoped_ != nullptr) scoped_->Add(delta);
  }
  void Increment() { Add(1); }

 private:
  Counter* process_ = nullptr;
  Counter* scoped_ = nullptr;
};

/// Histogram flavour of ScopedCounter: Record lands in both distributions.
class ScopedHistogram {
 public:
  ScopedHistogram() = default;
  ScopedHistogram(Histogram* process, Histogram* scoped)
      : process_(process), scoped_(scoped) {}

  void Record(uint64_t value) {
    if (process_ != nullptr) process_->Record(value);
    if (scoped_ != nullptr) scoped_->Record(value);
  }

 private:
  Histogram* process_ = nullptr;
  Histogram* scoped_ = nullptr;
};

/// A labelled view over a parent registry (one per tenant in the server).
/// Metrics created here are local to the label but share the parent's
/// master enable switch, so the out-of-band contract (rule 1 above) holds
/// for scoped and process metrics as one unit. scoped_counter()/
/// scoped_histogram() return dual-write handles pairing the parent's metric
/// of the same name with the local shadow — the mechanism behind "tenant
/// sums equal process totals".
class ScopedRegistry {
 public:
  ScopedRegistry(MetricsRegistry* parent, std::string label);
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  const std::string& label() const { return label_; }

  /// Label-local metric, created on first use; stable reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Dual-write handles: parent metric `name` + the local shadow `name`.
  ScopedCounter scoped_counter(std::string_view name);
  ScopedHistogram scoped_histogram(std::string_view name);

  /// Merged snapshot of the label-local metrics only, name-sorted.
  StatsSnapshot Snapshot() const;

 private:
  MetricsRegistry* parent_;
  std::string label_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Writes `s` as a JSON string literal (quotes + escapes) — shared by the
/// stats and trace exporters.
void WriteJsonString(std::ostream& out, std::string_view s);

}  // namespace obs
}  // namespace minoan

#endif  // MINOAN_OBS_METRICS_H_
