// Copyright 2026 The MinoanER Authors.

#include "obs/progress.h"

namespace minoan {
namespace obs {

double MatchesPerThousand(const std::vector<ProgressSample>& samples,
                          size_t index) {
  if (index >= samples.size()) return 0.0;
  const ProgressSample& sample = samples[index];
  const uint64_t prev_comparisons =
      index == 0 ? 0 : samples[index - 1].comparisons;
  const uint64_t prev_matches = index == 0 ? 0 : samples[index - 1].matches;
  if (sample.comparisons <= prev_comparisons) return 0.0;
  return 1000.0 * static_cast<double>(sample.matches - prev_matches) /
         static_cast<double>(sample.comparisons - prev_comparisons);
}

void ProgressMeter::Sample(uint64_t comparisons_total, uint64_t matches_total) {
  const double elapsed_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  // Dedupe: the final unconditional Sample() may land on the same
  // comparison count as the last cadence sample.
  if (!samples_.empty() && samples_.back().comparisons == comparisons_total) {
    samples_.back().matches = matches_total;
    samples_.back().elapsed_ms = elapsed_ms;
  } else {
    samples_.push_back({comparisons_total, matches_total, elapsed_ms});
  }
  if (every_ != 0) {
    next_at_ = comparisons_total - (comparisons_total % every_) + every_;
  }
}

}  // namespace obs
}  // namespace minoan
