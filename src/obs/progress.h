// Copyright 2026 The MinoanER Authors.
// ProgressMeter: samples the progressive-quality curve — the paper's core
// claim is matches found per comparison spent, and this is the instrument
// that records it. The resolver calls OnProgress() after every executed
// comparison; the meter keeps a sample every `every` comparisons, cheap
// enough to leave on (one branch against a cached threshold when idle).

#ifndef MINOAN_OBS_PROGRESS_H_
#define MINOAN_OBS_PROGRESS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace minoan {
namespace obs {

/// One point on the progressive-quality curve.
struct ProgressSample {
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  double elapsed_ms = 0;
};

/// Derived slope between consecutive samples: new matches per 1000 new
/// comparisons, the paper's progressiveness signal. For sample i this is
/// measured over the interval (i-1, i]; sample 0 measures from origin.
double MatchesPerThousand(const std::vector<ProgressSample>& samples,
                          size_t index);

class ProgressMeter {
 public:
  /// `every` = sampling cadence in comparisons; 0 disables the meter
  /// (OnProgress becomes a single branch).
  void Configure(uint64_t every) {
    every_ = every;
    next_at_ = every;
  }
  bool enabled() const { return every_ != 0; }

  /// Marks the curve origin. Called when resolution begins; samples record
  /// elapsed time relative to this point.
  void Start() {
    start_ = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    next_at_ = every_;
  }

  /// Hot-path hook: cheap branch until the next sampling threshold.
  /// Totals are cumulative (not deltas); callers pass their running counts.
  void OnProgress(uint64_t comparisons_total, uint64_t matches_total) {
    if (every_ == 0 || comparisons_total < next_at_) return;
    Sample(comparisons_total, matches_total);
  }

  /// Unconditional sample (used for the final point of the curve, so the
  /// curve always ends at the true totals).
  void Sample(uint64_t comparisons_total, uint64_t matches_total);

  std::vector<ProgressSample> samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

 private:
  uint64_t every_ = 0;
  uint64_t next_at_ = 0;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  std::vector<ProgressSample> samples_;
};

}  // namespace obs
}  // namespace minoan

#endif  // MINOAN_OBS_PROGRESS_H_
