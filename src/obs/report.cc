// Copyright 2026 The MinoanER Authors.

#include "obs/report.h"

#include <sys/resource.h>

#include <cstdio>

namespace minoan {
namespace obs {

namespace {

// Fixed-format double: enough digits for millisecond timings, no
// locale/scientific surprises in the JSON.
void WriteDoubleJson(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

}  // namespace

uint64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB (macOS reports bytes; this repo targets
  // Linux CI, so KiB it is).
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

void WriteStatsJson(std::ostream& out, const StatsReport& report) {
  out << "{\"schema\":\"minoan-stats-v1\"";

  out << ",\"phases\":[";
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseTiming& phase = report.phases[i];
    if (i != 0) out << ',';
    out << "{\"name\":";
    WriteJsonString(out, phase.name);
    out << ",\"millis\":";
    WriteDoubleJson(out, phase.millis);
    out << ",\"cardinality\":" << phase.cardinality << '}';
  }
  out << ']';

  out << ",\"progress\":[";
  for (size_t i = 0; i < report.progress.size(); ++i) {
    const ProgressSample& sample = report.progress[i];
    if (i != 0) out << ',';
    out << "{\"comparisons\":" << sample.comparisons
        << ",\"matches\":" << sample.matches << ",\"elapsed_ms\":";
    WriteDoubleJson(out, sample.elapsed_ms);
    out << ",\"new_matches_per_1k\":";
    WriteDoubleJson(out, MatchesPerThousand(report.progress, i));
    out << '}';
  }
  out << ']';

  out << ",\"pool\":{\"tasks_executed\":" << report.pool.tasks_executed
      << ",\"queue_wait_micros\":" << report.pool.queue_wait_micros
      << ",\"busy_micros_total\":" << report.pool.TotalBusyMicros()
      << ",\"worker_busy_micros\":[";
  for (size_t i = 0; i < report.pool.worker_busy_micros.size(); ++i) {
    if (i != 0) out << ',';
    out << report.pool.worker_busy_micros[i];
  }
  out << "]}";

  out << ",\"counters\":{";
  for (size_t i = 0; i < report.metrics.counters.size(); ++i) {
    if (i != 0) out << ',';
    WriteJsonString(out, report.metrics.counters[i].first);
    out << ':' << report.metrics.counters[i].second;
  }
  out << '}';

  out << ",\"gauges\":{";
  for (size_t i = 0; i < report.metrics.gauges.size(); ++i) {
    if (i != 0) out << ',';
    WriteJsonString(out, report.metrics.gauges[i].first);
    out << ':' << report.metrics.gauges[i].second;
  }
  out << '}';

  out << ",\"histograms\":{";
  for (size_t i = 0; i < report.metrics.histograms.size(); ++i) {
    const auto& [name, histogram] = report.metrics.histograms[i];
    if (i != 0) out << ',';
    WriteJsonString(out, name);
    out << ":{\"count\":" << histogram.count << ",\"sum\":" << histogram.sum;
    if (histogram.count > 0) {
      out << ",\"min\":" << histogram.min << ",\"max\":" << histogram.max;
    } else {
      out << ",\"min\":0,\"max\":0";
    }
    out << ",\"mean\":";
    WriteDoubleJson(out, histogram.Mean());
    out << ",\"p50\":";
    WriteDoubleJson(out, histogram.Quantile(0.50));
    out << ",\"p95\":";
    WriteDoubleJson(out, histogram.Quantile(0.95));
    out << ",\"p99\":";
    WriteDoubleJson(out, histogram.Quantile(0.99));
    out << '}';
  }
  out << '}';

  out << ",\"tenants\":{";
  for (size_t i = 0; i < report.tenants.size(); ++i) {
    const TenantBreakdown& tenant = report.tenants[i];
    if (i != 0) out << ',';
    WriteJsonString(out, tenant.tenant);
    out << ":{\"sessions\":" << tenant.sessions
        << ",\"requests\":" << tenant.requests
        << ",\"comparisons\":" << tenant.comparisons
        << ",\"matches\":" << tenant.matches
        << ",\"spill_bytes\":" << tenant.spill_bytes
        << ",\"request_micros\":{\"p50\":";
    WriteDoubleJson(out, tenant.p50_request_micros);
    out << ",\"p95\":";
    WriteDoubleJson(out, tenant.p95_request_micros);
    out << ",\"p99\":";
    WriteDoubleJson(out, tenant.p99_request_micros);
    out << "}}";
  }
  out << '}';

  out << ",\"peak_rss_bytes\":" << report.peak_rss_bytes << "}\n";
}

}  // namespace obs
}  // namespace minoan
