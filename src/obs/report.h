// Copyright 2026 The MinoanER Authors.
// StatsReport: the flat JSON export bundling everything one resolution run
// observed — per-phase wall times, the progressive-quality curve, thread
// pool utilization, peak RSS, and the merged metrics registry snapshot.
// This is the file `minoan resolve --metrics-out` writes and
// tools/bench_compare.py --stats reads.

#ifndef MINOAN_OBS_REPORT_H_
#define MINOAN_OBS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "util/thread_pool.h"

namespace minoan {
namespace obs {

/// Wall time + output size of one pipeline phase (mirrors core PhaseStats;
/// duplicated here so obs does not depend on core).
struct PhaseTiming {
  std::string name;
  double millis = 0;
  uint64_t cardinality = 0;
};

/// Everything one run observed, ready for export.
struct StatsReport {
  StatsSnapshot metrics;
  std::vector<PhaseTiming> phases;
  std::vector<ProgressSample> progress;
  ThreadPoolStats pool;
  uint64_t peak_rss_bytes = 0;
};

/// Peak resident set size of this process in bytes (getrusage ru_maxrss).
/// Monotone over the process lifetime — it never decreases.
uint64_t PeakRssBytes();

/// Flat JSON: {"schema":"minoan-stats-v1","phases":[...],"progress":[...],
/// "pool":{...},"counters":{...},"gauges":{...},"histograms":{...},
/// "peak_rss_bytes":N}. Progress samples carry the derived
/// new-matches-per-1k-comparisons slope.
void WriteStatsJson(std::ostream& out, const StatsReport& report);

}  // namespace obs
}  // namespace minoan

#endif  // MINOAN_OBS_REPORT_H_
