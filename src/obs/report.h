// Copyright 2026 The MinoanER Authors.
// StatsReport: the flat JSON export bundling everything one resolution run
// observed — per-phase wall times, the progressive-quality curve, thread
// pool utilization, peak RSS, and the merged metrics registry snapshot.
// This is the file `minoan resolve --metrics-out` writes and
// tools/bench_compare.py --stats reads.

#ifndef MINOAN_OBS_REPORT_H_
#define MINOAN_OBS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "util/thread_pool.h"

namespace minoan {
namespace obs {

/// Wall time + output size of one pipeline phase (mirrors core PhaseStats;
/// duplicated here so obs does not depend on core).
struct PhaseTiming {
  std::string name;
  double millis = 0;
  uint64_t cardinality = 0;
};

/// Per-tenant slice of a served run: where the budget went, attributed by
/// the server's ScopedRegistry shadows. Counter fields sum to (at most)
/// the matching process totals; latency quantiles come from the tenant's
/// own request_micros histogram.
struct TenantBreakdown {
  std::string tenant;
  uint64_t sessions = 0;  ///< Sessions this tenant created.
  uint64_t requests = 0;  ///< Requests dispatched for this tenant.
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  uint64_t spill_bytes = 0;
  double p50_request_micros = 0;
  double p95_request_micros = 0;
  double p99_request_micros = 0;
};

/// Everything one run observed, ready for export.
struct StatsReport {
  StatsSnapshot metrics;
  std::vector<PhaseTiming> phases;
  std::vector<ProgressSample> progress;
  ThreadPoolStats pool;
  /// Tenant-name-sorted; empty for non-served runs.
  std::vector<TenantBreakdown> tenants;
  uint64_t peak_rss_bytes = 0;
};

/// Peak resident set size of this process in bytes (getrusage ru_maxrss).
/// Monotone over the process lifetime — it never decreases.
uint64_t PeakRssBytes();

/// Flat JSON: {"schema":"minoan-stats-v1","phases":[...],"progress":[...],
/// "pool":{...},"counters":{...},"gauges":{...},"histograms":{...},
/// "tenants":{...},"peak_rss_bytes":N}. Progress samples carry the derived
/// new-matches-per-1k-comparisons slope; every histogram carries p50/p95/
/// p99 estimated from its log2 buckets (HistogramSnapshot::Quantile).
void WriteStatsJson(std::ostream& out, const StatsReport& report);

}  // namespace obs
}  // namespace minoan

#endif  // MINOAN_OBS_REPORT_H_
