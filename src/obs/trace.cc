// Copyright 2026 The MinoanER Authors.

#include "obs/trace.h"

#include <algorithm>

namespace minoan {
namespace obs {

namespace {
// Per-thread nesting depth for span events. A plain thread_local is enough:
// spans open and close on the same thread by construction (RAII).
thread_local uint32_t t_span_depth = 0;
}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ > 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(events_.begin(), events_.end());
}

void TraceRecorder::set_capacity(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events;
  while (capacity_ > 0 && events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    WriteJsonString(out, event.name);
    // "X" = complete event (begin + duration in one record); pid is
    // constant — everything here is one process.
    out << ",\"ph\":\"X\",\"ts\":" << event.start_us
        << ",\"dur\":" << event.dur_us << ",\"pid\":1,\"tid\":" << event.tid
        << ",\"args\":{\"depth\":" << event.depth;
    for (const auto& [name, delta] : event.counter_deltas) {
      out << ',';
      WriteJsonString(out, name);
      out << ':' << delta;
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

PhaseSpan::PhaseSpan(TraceRecorder* recorder, std::string name)
    : recorder_(recorder), name_(std::move(name)) {
  if (recorder_ == nullptr) return;
  depth_ = t_span_depth++;
  if (MetricsRegistry::Default().enabled()) {
    counters_before_ = MetricsRegistry::Default().CounterValues();
  }
  start_us_ = recorder_->NowMicros();
}

PhaseSpan::~PhaseSpan() {
  if (recorder_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = ThisThreadIndex();
  event.depth = depth_;
  event.start_us = start_us_;
  event.dur_us = recorder_->NowMicros() - start_us_;
  if (!counters_before_.empty() || MetricsRegistry::Default().enabled()) {
    std::vector<std::pair<std::string, uint64_t>> after =
        MetricsRegistry::Default().CounterValues();
    // Both lists are name-sorted (registry map order); a merge walk finds
    // counters that advanced. Names only ever get added, so `after` is a
    // superset of `counters_before_`.
    size_t bi = 0;
    for (const auto& [name, value] : after) {
      uint64_t before = 0;
      while (bi < counters_before_.size() &&
             counters_before_[bi].first < name) {
        ++bi;
      }
      if (bi < counters_before_.size() &&
          counters_before_[bi].first == name) {
        before = counters_before_[bi].second;
      }
      if (value > before) {
        event.counter_deltas.emplace_back(name, value - before);
      }
    }
  }
  t_span_depth = depth_;  // restore (we incremented past it at entry)
  recorder_->Append(std::move(event));
}

double PhaseSpan::ElapsedMillis() const {
  if (recorder_ == nullptr) return 0.0;
  return static_cast<double>(recorder_->NowMicros() - start_us_) / 1000.0;
}

}  // namespace obs
}  // namespace minoan
