// Copyright 2026 The MinoanER Authors.
// Phase tracing: RAII spans that record wall time plus the counter activity
// that happened inside them, exported as Chrome-trace JSON (loadable in
// chrome://tracing and ui.perfetto.dev) or consumed as structured events.
//
// Spans nest (a "step" span inside a session contains the scheduler and
// evaluator work it drove) and are thread-tagged with the same dense index
// the metrics cells use. A null recorder makes PhaseSpan inert, so
// call sites are unconditional:
//
//   {
//     obs::PhaseSpan span(recorder /* may be null */, "blocking");
//     ... build blocks ...
//   }  // span end: duration + counter deltas recorded

#ifndef MINOAN_OBS_TRACE_H_
#define MINOAN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace minoan {
namespace obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  uint32_t tid = 0;
  /// Nesting depth on the recording thread (0 = outermost).
  uint32_t depth = 0;
  /// Microseconds since the recorder's epoch.
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  /// Registry counters that advanced during the span (name, delta),
  /// name-sorted. Attributes e.g. comparisons to the phase that spent them.
  std::vector<std::pair<std::string, uint64_t>> counter_deltas;
};

/// Collects spans for one session/run. Thread-safe; events are appended in
/// completion order.
class TraceRecorder {
 public:
  TraceRecorder();

  /// Microseconds since this recorder was constructed (steady clock).
  uint64_t NowMicros() const;

  void Append(TraceEvent event);
  std::vector<TraceEvent> snapshot() const;

  /// Bounds the recorder to the most recent `max_events` spans (0 =
  /// unbounded, the default for one-shot pipeline runs). A long-lived
  /// server sets this so per-request tracing cannot grow without limit;
  /// the oldest events drop and dropped() says how many.
  void set_capacity(size_t max_events);
  uint64_t dropped() const;

  /// Chrome-trace JSON: {"traceEvents":[{"ph":"X",...}],...}. Complete
  /// events carry duration, thread id, and counter deltas in "args".
  void WriteChromeTrace(std::ostream& out) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  size_t capacity_ = 0;
  uint64_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

/// RAII span. Construction snapshots time (and registry counters when the
/// registry is metering); destruction appends the completed event. Inert
/// when `recorder` is null — no time or counter reads at all.
class PhaseSpan {
 public:
  PhaseSpan(TraceRecorder* recorder, std::string name);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Wall time so far in milliseconds (0 when inert).
  double ElapsedMillis() const;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  uint32_t depth_ = 0;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, uint64_t>> counters_before_;
};

}  // namespace obs
}  // namespace minoan

#endif  // MINOAN_OBS_TRACE_H_
