#include "online/incremental_block_index.h"

#include <algorithm>

#include "util/hash.h"
#include "util/serde.h"

namespace minoan {
namespace online {

IncrementalBlockIndex::IncrementalBlockIndex(OnlineBlockingOptions options)
    : options_(options) {}

void IncrementalBlockIndex::CountPair(EntityId a, EntityId b) {
  if (a == b) return;
  if (options_.mode == ResolutionMode::kCleanClean &&
      !collection_->CrossKb(a, b)) {
    return;
  }
  const uint64_t key = PairKey(a, b);
  if (emitted_.count(key) > 0) return;
  const auto [it, inserted] = pair_counts_.try_emplace(key, 0u);
  if (inserted) pair_order_.push_back(key);
  ++it->second;
}

void IncrementalBlockIndex::InsertIntoPosting(Posting& posting, EntityId id,
                                              uint32_t min_size,
                                              uint64_t max_size) {
  posting.members.push_back(id);
  const size_t size = posting.members.size();
  const bool live = size >= min_size && (max_size == 0 || size <= max_size);
  if (!live) return;
  // Catch the watermark up to the current size: emits the pairs of this
  // insertion AND any pairs skipped while the posting was outside its
  // validity window (a batch rebuild would have produced them all).
  for (size_t j = posting.emitted_prefix; j < size; ++j) {
    for (size_t i = 0; i < j; ++i) {
      CountPair(posting.members[i], posting.members[j]);
    }
  }
  posting.emitted_prefix = static_cast<uint32_t>(size);
}

void IncrementalBlockIndex::AddEntity(const EntityCollection& collection,
                                      EntityId id,
                                      std::vector<DeltaPair>& out) {
  collection_ = &collection;
  pair_counts_.clear();
  pair_order_.clear();
  if (entity_keys_.size() < collection.num_entities()) {
    entity_keys_.resize(collection.num_entities(), 0);
  }

  uint32_t keys = 0;
  const EntityDescription& desc = collection.entity(id);

  if (options_.use_token_keys) {
    if (token_postings_.size() < collection.tokens().size()) {
      token_postings_.resize(collection.tokens().size());
    }
    // Batch semantics: df_cap == 0 disables the cap (see TokenBlocking).
    const uint64_t df_cap = static_cast<uint64_t>(
        options_.token.max_df_fraction * collection.num_entities());
    const uint32_t min_size = std::max(options_.token.min_df, 2u);
    for (uint32_t tok : desc.tokens) {
      Posting& posting = token_postings_[tok];
      const bool was_live = posting.emitted_prefix > 0;
      InsertIntoPosting(posting, id, min_size, df_cap);
      if (!was_live && posting.emitted_prefix > 0) ++live_token_postings_;
      ++keys;
    }
  }

  // Batch PisBlocking drops every block when max_block_size == 0 (no
  // "0 disables" convention there, unlike the token df cap) — match it by
  // emitting nothing.
  if (options_.use_pis_keys && options_.pis.max_block_size > 0) {
    pis_key_scratch_.clear();
    AppendPisKeys(options_.pis, collection.tokenizer(),
                  collection.iris().View(desc.iri), pis_key_scratch_,
                  pis_token_scratch_);
    std::sort(pis_key_scratch_.begin(), pis_key_scratch_.end());
    pis_key_scratch_.erase(
        std::unique(pis_key_scratch_.begin(), pis_key_scratch_.end()),
        pis_key_scratch_.end());
    const uint32_t min_size = std::max(options_.pis.min_block_size, 2u);
    for (const std::string& key : pis_key_scratch_) {
      InsertIntoPosting(pis_postings_[key], id, min_size,
                        options_.pis.max_block_size);
      ++keys;
    }
  }

  entity_keys_[id] = keys;

  for (const uint64_t key : pair_order_) {
    const uint32_t common = pair_counts_[key];
    const EntityId a = PairKeyFirst(key);
    const EntityId b = PairKeySecond(key);
    // Jaccard of the two current key sets, with the co-bucketing keys of
    // this delta as the observed intersection — the online analogue of the
    // JS weighting scheme of meta-blocking.
    const double denom =
        static_cast<double>(KeysOf(a)) + static_cast<double>(KeysOf(b)) -
        static_cast<double>(common);
    const double weight =
        denom > 0.0 ? static_cast<double>(common) / denom : 1.0;
    out.push_back(DeltaPair{a, b, common, weight});
    emitted_.insert(key);
    ++pairs_emitted_;
  }
  collection_ = nullptr;
}

void IncrementalBlockIndex::Save(std::ostream& out) const {
  const auto save_posting = [&out](const Posting& posting) {
    serde::WriteU64(out, posting.members.size());
    for (const EntityId e : posting.members) serde::WriteU32(out, e);
    serde::WriteU32(out, posting.emitted_prefix);
  };
  serde::WriteU64(out, token_postings_.size());
  for (const Posting& p : token_postings_) save_posting(p);
  serde::WriteU64(out, live_token_postings_);

  // PIS postings in canonical ascending-key order.
  std::vector<const std::pair<const std::string, Posting>*> pis;
  pis.reserve(pis_postings_.size());
  for (const auto& entry : pis_postings_) pis.push_back(&entry);
  std::sort(pis.begin(), pis.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  serde::WriteU64(out, pis.size());
  for (const auto* entry : pis) {
    serde::WriteString(out, entry->first);
    save_posting(entry->second);
  }

  serde::WriteU64(out, entity_keys_.size());
  for (const uint32_t k : entity_keys_) serde::WriteU32(out, k);

  std::vector<uint64_t> emitted(emitted_.begin(), emitted_.end());
  std::sort(emitted.begin(), emitted.end());
  serde::WriteU64(out, emitted.size());
  for (const uint64_t pair : emitted) serde::WriteU64(out, pair);
  serde::WriteU64(out, pairs_emitted_);
}

bool IncrementalBlockIndex::Load(std::istream& in, uint32_t num_entities) {
  const auto load_posting = [&](Posting& posting) {
    uint64_t count;
    if (!serde::ReadU64(in, count)) return false;
    posting.members.clear();
    posting.members.reserve(serde::ClampedReserve(count));
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t e;
      if (!serde::ReadU32(in, e) || e >= num_entities) return false;
      posting.members.push_back(e);
    }
    return serde::ReadU32(in, posting.emitted_prefix) &&
           posting.emitted_prefix <= posting.members.size();
  };

  // Counts are never rejected outright (a big index must stay restorable);
  // reserves are clamped and growth happens as elements actually parse, so
  // a corrupt count fails at the real end of the stream.
  uint64_t n_token;
  if (!serde::ReadU64(in, n_token)) return false;
  token_postings_.clear();
  token_postings_.reserve(serde::ClampedReserve(n_token));
  for (uint64_t i = 0; i < n_token; ++i) {
    Posting posting;
    if (!load_posting(posting)) return false;
    token_postings_.push_back(std::move(posting));
  }
  if (!serde::ReadU64(in, live_token_postings_)) return false;

  uint64_t n_pis;
  if (!serde::ReadU64(in, n_pis)) return false;
  pis_postings_.clear();
  for (uint64_t i = 0; i < n_pis; ++i) {
    std::string key;
    if (!serde::ReadString(in, key)) return false;
    if (!load_posting(pis_postings_[key])) return false;
  }

  uint64_t n_keys;
  if (!serde::ReadU64(in, n_keys) || n_keys > num_entities) return false;
  entity_keys_.assign(n_keys, 0);
  for (uint64_t i = 0; i < n_keys; ++i) {
    if (!serde::ReadU32(in, entity_keys_[i])) return false;
  }

  uint64_t n_emitted;
  if (!serde::ReadU64(in, n_emitted)) return false;
  emitted_.clear();
  emitted_.reserve(serde::ClampedReserve(n_emitted) * 2);
  for (uint64_t i = 0; i < n_emitted; ++i) {
    uint64_t pair;
    if (!serde::ReadU64(in, pair) ||
        !serde::ValidPairKey(pair, num_entities)) {
      return false;
    }
    emitted_.insert(pair);
  }
  return static_cast<bool>(serde::ReadU64(in, pairs_emitted_));
}

}  // namespace online
}  // namespace minoan
