#include "online/incremental_block_index.h"

#include <algorithm>

#include "util/hash.h"

namespace minoan {
namespace online {

IncrementalBlockIndex::IncrementalBlockIndex(OnlineBlockingOptions options)
    : options_(options) {}

void IncrementalBlockIndex::CountPair(EntityId a, EntityId b) {
  if (a == b) return;
  if (options_.mode == ResolutionMode::kCleanClean &&
      !collection_->CrossKb(a, b)) {
    return;
  }
  const uint64_t key = PairKey(a, b);
  if (emitted_.count(key) > 0) return;
  const auto [it, inserted] = pair_counts_.try_emplace(key, 0u);
  if (inserted) pair_order_.push_back(key);
  ++it->second;
}

void IncrementalBlockIndex::InsertIntoPosting(Posting& posting, EntityId id,
                                              uint32_t min_size,
                                              uint64_t max_size) {
  posting.members.push_back(id);
  const size_t size = posting.members.size();
  const bool live = size >= min_size && (max_size == 0 || size <= max_size);
  if (!live) return;
  // Catch the watermark up to the current size: emits the pairs of this
  // insertion AND any pairs skipped while the posting was outside its
  // validity window (a batch rebuild would have produced them all).
  for (size_t j = posting.emitted_prefix; j < size; ++j) {
    for (size_t i = 0; i < j; ++i) {
      CountPair(posting.members[i], posting.members[j]);
    }
  }
  posting.emitted_prefix = static_cast<uint32_t>(size);
}

void IncrementalBlockIndex::AddEntity(const EntityCollection& collection,
                                      EntityId id,
                                      std::vector<DeltaPair>& out) {
  collection_ = &collection;
  pair_counts_.clear();
  pair_order_.clear();
  if (entity_keys_.size() < collection.num_entities()) {
    entity_keys_.resize(collection.num_entities(), 0);
  }

  uint32_t keys = 0;
  const EntityDescription& desc = collection.entity(id);

  if (options_.use_token_keys) {
    if (token_postings_.size() < collection.tokens().size()) {
      token_postings_.resize(collection.tokens().size());
    }
    // Batch semantics: df_cap == 0 disables the cap (see TokenBlocking).
    const uint64_t df_cap = static_cast<uint64_t>(
        options_.token.max_df_fraction * collection.num_entities());
    const uint32_t min_size = std::max(options_.token.min_df, 2u);
    for (uint32_t tok : desc.tokens) {
      Posting& posting = token_postings_[tok];
      const bool was_live = posting.emitted_prefix > 0;
      InsertIntoPosting(posting, id, min_size, df_cap);
      if (!was_live && posting.emitted_prefix > 0) ++live_token_postings_;
      ++keys;
    }
  }

  // Batch PisBlocking drops every block when max_block_size == 0 (no
  // "0 disables" convention there, unlike the token df cap) — match it by
  // emitting nothing.
  if (options_.use_pis_keys && options_.pis.max_block_size > 0) {
    pis_key_scratch_.clear();
    AppendPisKeys(options_.pis, collection.tokenizer(),
                  collection.iris().View(desc.iri), pis_key_scratch_,
                  pis_token_scratch_);
    std::sort(pis_key_scratch_.begin(), pis_key_scratch_.end());
    pis_key_scratch_.erase(
        std::unique(pis_key_scratch_.begin(), pis_key_scratch_.end()),
        pis_key_scratch_.end());
    const uint32_t min_size = std::max(options_.pis.min_block_size, 2u);
    for (const std::string& key : pis_key_scratch_) {
      InsertIntoPosting(pis_postings_[key], id, min_size,
                        options_.pis.max_block_size);
      ++keys;
    }
  }

  entity_keys_[id] = keys;

  for (const uint64_t key : pair_order_) {
    const uint32_t common = pair_counts_[key];
    const EntityId a = PairKeyFirst(key);
    const EntityId b = PairKeySecond(key);
    // Jaccard of the two current key sets, with the co-bucketing keys of
    // this delta as the observed intersection — the online analogue of the
    // JS weighting scheme of meta-blocking.
    const double denom =
        static_cast<double>(KeysOf(a)) + static_cast<double>(KeysOf(b)) -
        static_cast<double>(common);
    const double weight =
        denom > 0.0 ? static_cast<double>(common) / denom : 1.0;
    out.push_back(DeltaPair{a, b, common, weight});
    emitted_.insert(key);
    ++pairs_emitted_;
  }
  collection_ = nullptr;
}

}  // namespace online
}  // namespace minoan
