// Copyright 2026 The MinoanER Authors.
// IncrementalBlockIndex: blocking under insertions, emitting delta pairs.
//
// Batch blocking rebuilds every block from scratch; online resolution cannot
// afford that per entity. This index maintains the token and PIS (IRI
// suffix) inverted postings under appends and, for each new entity, emits
// exactly the *new* candidate comparisons it creates — each unordered pair
// at most once over the index lifetime.
//
// Parity with batch blocking: each posting keeps a watermark — the prefix of
// members among which every pair has been emitted. Whenever an insertion
// finds the posting "live" (within [min block size, size cap]), the
// watermark catches up to the current size, emitting all missing pairs; so
// pairs skipped while a posting was outside its validity window (too small,
// or temporarily over a cap that later grows with the collection) are
// recovered at the next live insertion, never lost. With size caps disabled
// the union of all emitted deltas equals
// BlockCollection::DistinctComparisons of a batch rebuild over the final
// collection (tested in online_test.cc). With caps enabled the cap is
// evaluated against the *current* collection size, which remains an
// approximation in two directions: pairs emitted before a posting outgrew
// the cap cannot be retracted, and a posting that receives no further
// insertions after its cap lifts keeps its watermark short.

#ifndef MINOAN_ONLINE_INCREMENTAL_BLOCK_INDEX_H_
#define MINOAN_ONLINE_INCREMENTAL_BLOCK_INDEX_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocking/block.h"
#include "blocking/blocking_method.h"
#include "kb/collection.h"

namespace minoan {
namespace online {

/// Which keys the incremental index maintains. Mirrors the batch
/// BlockerChoice kToken / kTokenPlusPis configurations.
struct OnlineBlockingOptions {
  bool use_token_keys = true;
  TokenBlocking::Options token;
  bool use_pis_keys = false;
  PisBlocking::Options pis;
  ResolutionMode mode = ResolutionMode::kCleanClean;
};

/// One candidate comparison created by an ingest, with the number of keys
/// that co-bucketed the pair during this delta and a Jaccard-style weight
/// over the two entities' current key sets.
struct DeltaPair {
  EntityId a;
  EntityId b;
  uint32_t common_keys;
  double weight;
};

class IncrementalBlockIndex {
 public:
  explicit IncrementalBlockIndex(OnlineBlockingOptions options = {});

  /// Indexes entity `id` (which must already be in `collection`) and appends
  /// the candidate pairs its arrival creates to `out`. Pairs are emitted in
  /// a deterministic order and globally deduplicated: a pair returned here
  /// was never returned by an earlier call.
  void AddEntity(const EntityCollection& collection, EntityId id,
                 std::vector<DeltaPair>& out);

  uint64_t num_pairs_emitted() const { return pairs_emitted_; }
  uint64_t num_token_postings() const { return live_token_postings_; }
  uint64_t num_pis_postings() const { return pis_postings_.size(); }

  /// Number of blocking keys entity `e` currently participates in.
  uint32_t KeysOf(EntityId e) const {
    return e < entity_keys_.size() ? entity_keys_[e] : 0;
  }

  const OnlineBlockingOptions& options() const { return options_; }

  /// Serializes the full index state (postings, watermarks, the emitted-pair
  /// set, per-entity key counts) in a canonical order (util/serde.h format).
  void Save(std::ostream& out) const;

  /// Restores a Save stream, replacing this index's state. Every entity id
  /// must be < `num_entities`; returns false on a truncated, corrupt, or
  /// out-of-range stream (leaving the index unusable — discard it).
  bool Load(std::istream& in, uint32_t num_entities);

 private:
  struct Posting {
    std::vector<EntityId> members;
    /// Watermark: all pairs among members[0, emitted_prefix) have been
    /// collected (and globally deduplicated) already.
    uint32_t emitted_prefix = 0;
  };

  /// Inserts `id` into one posting and, when the posting is live under
  /// [min_size, max_size] (max 0 = uncapped), advances the watermark,
  /// collecting the missing co-occurrences into pair_counts_.
  void InsertIntoPosting(Posting& posting, EntityId id, uint32_t min_size,
                         uint64_t max_size);
  void CountPair(EntityId a, EntityId b);

  OnlineBlockingOptions options_;
  const EntityCollection* collection_ = nullptr;  // valid during AddEntity

  std::vector<Posting> token_postings_;  // by token id
  std::unordered_map<std::string, Posting> pis_postings_;
  std::vector<uint32_t> entity_keys_;  // postings per entity
  std::unordered_set<uint64_t> emitted_;
  uint64_t pairs_emitted_ = 0;
  uint64_t live_token_postings_ = 0;

  // Per-AddEntity scratch: pair key -> co-bucketing key count, plus the
  // first-seen order for deterministic emission.
  std::unordered_map<uint64_t, uint32_t> pair_counts_;
  std::vector<uint64_t> pair_order_;
  std::vector<std::string> pis_key_scratch_;
  std::vector<std::string> pis_token_scratch_;
};

}  // namespace online
}  // namespace minoan

#endif  // MINOAN_ONLINE_INCREMENTAL_BLOCK_INDEX_H_
