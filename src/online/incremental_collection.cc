#include "online/incremental_collection.h"

#include <utility>

namespace minoan {
namespace online {

IncrementalCollection::IncrementalCollection(CollectionOptions options)
    : collection_(options) {
  // An empty collection finalizes trivially; from here on everything goes
  // through the append-only surface.
  collection_.Finalize();
}

IncrementalCollection::IncrementalCollection(EntityCollection&& warm)
    : collection_(std::move(warm)) {
  // A batch collection handed over before Finalize has no tokens yet and
  // would silently index zero candidates; finalize it now.
  if (!collection_.finalized()) collection_.Finalize();
  for (uint32_t kb = 0; kb < collection_.num_kbs(); ++kb) {
    kb_by_name_.emplace(collection_.kb(kb).name, kb);
  }
}

uint32_t IncrementalCollection::EnsureKb(std::string_view name) {
  const auto it = kb_by_name_.find(std::string(name));
  if (it != kb_by_name_.end()) return it->second;
  const uint32_t id = collection_.AddEmptyKnowledgeBase(std::string(name));
  kb_by_name_.emplace(std::string(name), id);
  return id;
}

std::vector<std::vector<rdf::Triple>> GroupBySubject(
    const std::vector<rdf::Triple>& triples) {
  std::vector<std::vector<rdf::Triple>> groups;
  std::unordered_map<std::string, size_t> group_of;
  for (const rdf::Triple& t : triples) {
    // Blank labels and IRIs share no namespace; prefix blanks so "_:x" the
    // label and "_:x" the IRI (degenerate but legal) cannot collide.
    const std::string key =
        (t.subject.is_blank() ? "_:" : "") + t.subject.lexical;
    const auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(t);
  }
  return groups;
}

Status IncrementalCollection::LoadCollection(std::istream& in) {
  MINOAN_RETURN_IF_ERROR(collection_.Load(in));
  kb_by_name_.clear();
  for (uint32_t kb = 0; kb < collection_.num_kbs(); ++kb) {
    kb_by_name_.emplace(collection_.kb(kb).name, kb);
  }
  return Status::Ok();
}

Result<EntityId> IncrementalCollection::Ingest(
    uint32_t kb_id, const std::vector<rdf::Triple>& triples) {
  // Both constructors guarantee collection_ is finalized; AppendEntity
  // re-checks the invariant itself.
  return collection_.AppendEntity(kb_id, triples);
}

}  // namespace online
}  // namespace minoan
