// Copyright 2026 The MinoanER Authors.
// IncrementalCollection: the mutable entity store of the online subsystem.
//
// The batch pipeline freezes an EntityCollection before resolution; the
// online engine instead grows one entity at a time. IncrementalCollection
// wraps an EntityCollection in its append-only post-finalize mode: dense ids
// are assigned on ingest and never change, knowledge bases are created on
// demand by name, and every reader holding an EntityId (schedulers, states,
// indexes) stays valid across ingests. It can start empty (a long-running
// service ingesting a live feed) or warm (adopting a batch-built collection
// whose resolution continues online).

#ifndef MINOAN_ONLINE_INCREMENTAL_COLLECTION_H_
#define MINOAN_ONLINE_INCREMENTAL_COLLECTION_H_

#include <istream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/collection.h"
#include "rdf/term.h"
#include "util/status.h"

namespace minoan {
namespace online {

/// Splits a triple list into per-subject entity bundles, first appearance
/// first — the order a stream delivers complete descriptions in. Shared by
/// OnlineSession, benches, and tests so grouping semantics cannot diverge.
std::vector<std::vector<rdf::Triple>> GroupBySubject(
    const std::vector<rdf::Triple>& triples);

class IncrementalCollection {
 public:
  /// Starts from an empty (immediately finalized) collection.
  explicit IncrementalCollection(CollectionOptions options = {});

  /// Warm start: adopts a finalized batch collection. The online engine
  /// resumes where the batch pipeline stopped.
  explicit IncrementalCollection(EntityCollection&& warm);

  /// Finds or creates the KB with this name; returns its id.
  uint32_t EnsureKb(std::string_view name);

  /// Ingests one entity: `triples` must share a single subject that is not
  /// yet described in `kb_id`. Returns the new dense entity id.
  Result<EntityId> Ingest(uint32_t kb_id,
                          const std::vector<rdf::Triple>& triples);

  /// Replaces the wrapped collection with a serialized one
  /// (EntityCollection::Load) and rebuilds the KB-name index — the restore
  /// path of a self-contained engine state (MNER-ONLN-v2 embeds the
  /// collection). On failure the store must be discarded.
  Status LoadCollection(std::istream& in);

  const EntityCollection& collection() const { return collection_; }
  uint32_t num_entities() const { return collection_.num_entities(); }

 private:
  EntityCollection collection_;
  std::unordered_map<std::string, uint32_t> kb_by_name_;
};

}  // namespace online
}  // namespace minoan

#endif  // MINOAN_ONLINE_INCREMENTAL_COLLECTION_H_
