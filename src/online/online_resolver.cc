#include "online/online_resolver.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "text/similarity.h"
#include "util/hash.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace minoan {
namespace online {

namespace {

/// On-the-fly TF-IDF vector with the collection's CURRENT document
/// frequencies. The batch SimilarityEvaluator precomputes these at
/// construction; online, the vocabulary grows with every ingest, so vectors
/// are built per comparison (delta candidate sets are small).
void BuildTfidf(const EntityCollection& collection, EntityId e,
                std::vector<WeightedToken>& out) {
  out.clear();
  const auto& bag = collection.entity(e).token_bag;  // sorted, with dups
  size_t i = 0;
  while (i < bag.size()) {
    size_t j = i;
    while (j < bag.size() && bag[j] == bag[i]) ++j;
    const double idf = collection.TokenIdf(bag[i]);
    if (idf > 0.0) {
      out.push_back(WeightedToken{bag[i], static_cast<double>(j - i) * idf});
    }
    i = j;
  }
}

/// Format tags of the serialized engine state; bump on layout changes.
/// v1: dynamic state only — Restore needs the caller to rebuild the exact
///     collection snapshot. Still loadable (golden blobs, old checkpoints).
/// v2: v1 plus the serialized IncrementalCollection right after the header,
///     so a v2 stream restores self-contained. The dynamic-state sections
///     are byte-identical to v1's.
constexpr std::string_view kOnlineStateMagicV1 = "MNER-ONLN-v1";
constexpr std::string_view kOnlineStateMagicV2 = "MNER-ONLN-v2";

uint64_t MixU(uint64_t seed, uint64_t v) { return HashCombine(seed, v); }
uint64_t MixD(uint64_t seed, double v) {
  return HashCombine(seed, std::bit_cast<uint64_t>(v));
}

/// Digest of every option that shapes the online resolution trajectory; a
/// restored engine must step identically to the saving one, so mismatched
/// options are rejected instead of silently diverging.
uint64_t OnlineOptionsDigest(const OnlineOptions& o) {
  uint64_t h = Fnv1a64("minoan-online-options");
  h = MixD(h, o.matcher.threshold);
  h = MixU(h, static_cast<uint64_t>(o.benefit));
  h = MixD(h, o.benefit_weight);
  h = MixD(h, o.evidence.increment);
  h = MixD(h, o.evidence.weight);
  h = MixD(h, o.evidence.priority);
  h = MixU(h, static_cast<uint64_t>(o.evidence.max_neighbors_per_side));
  h = MixD(h, o.evidence.staleness_tolerance);
  h = MixU(h, static_cast<uint64_t>(o.use_same_as_seeds));
  h = MixU(h, static_cast<uint64_t>(o.similarity.use_tfidf));
  h = MixD(h, o.similarity.tfidf_weight);
  h = MixU(h, static_cast<uint64_t>(o.blocking.use_token_keys));
  h = MixD(h, o.blocking.token.max_df_fraction);
  h = MixU(h, o.blocking.token.min_df);
  h = MixU(h, static_cast<uint64_t>(o.blocking.use_pis_keys));
  h = MixU(h, static_cast<uint64_t>(o.blocking.pis.use_suffix));
  h = MixU(h, static_cast<uint64_t>(o.blocking.pis.use_infix));
  h = MixU(h, static_cast<uint64_t>(o.blocking.pis.tokenize_suffix));
  h = MixU(h, o.blocking.pis.min_block_size);
  h = MixU(h, o.blocking.pis.max_block_size);
  h = MixU(h, static_cast<uint64_t>(o.blocking.mode));
  return h;
}

using serde::kMaxUpfrontReserve;

}  // namespace

OnlineResolver::OnlineResolver(OnlineOptions options)
    : options_(options),
      coll_(options.collection),
      index_(options.blocking),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side),
      state_(std::make_unique<ResolutionState>(coll_.collection(), nullptr)) {
  // Relationship-aware benefit models read neighbors from the growable
  // adjacency (there is no frozen NeighborGraph in online mode).
  state_->SetDynamicNeighbors(&neighbors_);
}

OnlineResolver::OnlineResolver(OnlineOptions options, EntityCollection&& warm)
    : options_(options),
      coll_(std::move(warm)),
      index_(options.blocking),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side),
      state_(std::make_unique<ResolutionState>(coll_.collection(), nullptr)) {
  state_->SetDynamicNeighbors(&neighbors_);
  const uint32_t n = coll_.num_entities();
  // Index sequentially (the incremental index mutates per entity), defer
  // the per-pair priority pricing, then score the whole batch at once —
  // in parallel when options_.num_threads allows, identically either way.
  defer_scoring_ = true;
  for (EntityId id = 0; id < n; ++id) IndexEntity(id);
  FlushDeferredScores();
  ConsumeSameAsSeeds();
}

OnlineResolver::OnlineResolver(OnlineOptions options, EntityCollection&& warm,
                               RestoreTag)
    : options_(options),
      coll_(std::move(warm)),
      index_(options.blocking),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side) {
  // Nothing indexed, scored, or clustered: LoadState supplies all of it
  // (including state_ — building one here would be discarded work).
}

OnlineResolver::OnlineResolver(OnlineOptions options, RestoreTag)
    : options_(options),
      coll_(options.collection),
      index_(options.blocking),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side) {
  // Self-contained restore: LoadState reads the embedded collection (v2)
  // and every dynamic structure from the stream.
}

Result<std::unique_ptr<OnlineResolver>> OnlineResolver::Restore(
    OnlineOptions options, EntityCollection&& warm, std::istream& in) {
  const uint32_t warm_entities = warm.num_entities();
  const uint32_t warm_kbs = warm.num_kbs();
  const uint64_t warm_triples = warm.total_triples();
  std::unique_ptr<OnlineResolver> resolver(
      new OnlineResolver(options, std::move(warm), RestoreTag{}));
  MINOAN_RETURN_IF_ERROR(resolver->LoadState(in));
  // v2 streams replace `warm` with the embedded collection, but a caller
  // snapshot that disagrees with the saved state still signals the caller
  // restored the wrong file — reject it rather than silently diverge from
  // what they believe the engine holds. (v1 verifies this inside LoadState.)
  const EntityCollection& c = resolver->collection();
  if (c.num_entities() != warm_entities || c.num_kbs() != warm_kbs ||
      c.total_triples() != warm_triples) {
    return Status::InvalidArgument(
        "online state was saved over a different collection than the "
        "caller's snapshot");
  }
  return resolver;
}

Result<std::unique_ptr<OnlineResolver>> OnlineResolver::Restore(
    OnlineOptions options, std::istream& in) {
  std::unique_ptr<OnlineResolver> resolver(
      new OnlineResolver(options, RestoreTag{}));
  MINOAN_RETURN_IF_ERROR(resolver->LoadState(in));
  return resolver;
}

Result<EntityId> OnlineResolver::Ingest(
    uint32_t kb_id, const std::vector<rdf::Triple>& triples) {
  MINOAN_ASSIGN_OR_RETURN(EntityId id, coll_.Ingest(kb_id, triples));
  IndexEntity(id);
  ConsumeSameAsSeeds();
  static obs::Counter& ingested =
      obs::MetricsRegistry::Default().counter("online.ingested");
  ingested.Increment();
  return id;
}

OnlineResolver::PairState& OnlineResolver::PairRef(uint64_t pair,
                                                   bool* created) {
  bool inserted = false;
  PairState& ps = pairs_.FindOrInsert(pair, &inserted);
  if (inserted) {
    const EntityId a = PairKeyFirst(pair);
    const EntityId b = PairKeySecond(pair);
    partners_[a].push_back(b);
    partners_[b].push_back(a);
  }
  if (created != nullptr) *created = inserted;
  return ps;
}

void OnlineResolver::IndexEntity(EntityId id) {
  const EntityCollection& c = collection();
  if (neighbors_.size() < c.num_entities()) {
    neighbors_.resize(c.num_entities());
    partners_.resize(c.num_entities());
  }
  state_->AddEntity(id);

  // Relation edges of the new entity extend the undirected adjacency; the
  // targets necessarily exist already (forward references degraded to
  // attributes during ingestion).
  for (const Relation& r : c.entity(id).relations) {
    if (r.target == id) continue;
    auto& mine = neighbors_[id];
    if (std::find(mine.begin(), mine.end(), r.target) == mine.end()) {
      mine.push_back(r.target);
      neighbors_[r.target].push_back(id);
    }
  }

  delta_scratch_.clear();
  index_.AddEntity(c, id, delta_scratch_);
  for (const DeltaPair& d : delta_scratch_) {
    const uint64_t pair = PairKey(d.a, d.b);
    PairState& ps = PairRef(pair);
    ps.likelihood = d.weight;
    // The update phase may have discovered and even executed this pair
    // before blocking produced it.
    if (ps.executed) continue;
    if (defer_scoring_) {
      deferred_pairs_.push_back(pair);
      continue;
    }
    scheduler_.Push(pair, Priority(d.a, d.b, ps));
  }
}

void OnlineResolver::FlushDeferredScores() {
  defer_scoring_ = false;
  std::vector<double> priorities(deferred_pairs_.size());
  const auto score = [&](size_t i) {
    const uint64_t pair = deferred_pairs_[i];
    priorities[i] = Priority(PairKeyFirst(pair), PairKeySecond(pair),
                             *pairs_.Find(pair));
  };
  const uint32_t threads = ResolveThreadCount(options_.num_threads);
  if (threads > 1 && deferred_pairs_.size() >= 2048) {
    ThreadPool pool(threads);
    pool.ParallelFor(deferred_pairs_.size(), score);
  } else {
    for (size_t i = 0; i < deferred_pairs_.size(); ++i) score(i);
  }
  for (size_t i = 0; i < deferred_pairs_.size(); ++i) {
    scheduler_.Push(deferred_pairs_[i], priorities[i]);
  }
  deferred_pairs_.clear();
  deferred_pairs_.shrink_to_fit();
}

void OnlineResolver::ConsumeSameAsSeeds() {
  const auto& links = collection().same_as_links();
  if (!options_.use_same_as_seeds) {
    same_as_consumed_ = links.size();
    return;
  }
  for (; same_as_consumed_ < links.size(); ++same_as_consumed_) {
    const SameAsLink link = links[same_as_consumed_];
    const uint64_t pair = PairKey(link.a, link.b);
    PairState& ps = PairRef(pair);
    if (ps.executed) continue;
    ps.executed = true;
    scheduler_.Erase(pair);
    RecordClusterMerge(link.a, link.b);
    UpdatePhase(link.a, link.b);
  }
}

void OnlineResolver::RecordClusterMerge(EntityId a, EntityId b) {
  // Raw (a, b) argument order, not the normalized pair: RecordMatch's
  // union-find layout depends on it, and the replay must be exact.
  cluster_ops_.emplace_back(a, b);
  state_->RecordMatch(a, b);
}

double OnlineResolver::Likelihood(const PairState& ps) const {
  if (ps.evidence <= 0.0) return ps.likelihood;
  return ps.likelihood +
         options_.evidence.priority * std::min(1.0, ps.evidence);
}

double OnlineResolver::Priority(EntityId a, EntityId b,
                                const PairState& ps) const {
  const double benefit = estimator_.PairBenefit(a, b, *state_);
  return Likelihood(ps) * (1.0 + options_.benefit_weight * benefit);
}

double OnlineResolver::ProfileSimilarityWithA(
    EntityId a, const std::vector<WeightedToken>& a_tfidf, EntityId b) const {
  const EntityCollection& c = collection();
  const double jaccard =
      JaccardSimilarity(c.entity(a).tokens, c.entity(b).tokens);
  if (!options_.similarity.use_tfidf) return jaccard;
  BuildTfidf(c, b, tfidf_b_);
  const double cosine = WeightedCosineSimilarity(a_tfidf, tfidf_b_);
  return options_.similarity.tfidf_weight * cosine +
         (1.0 - options_.similarity.tfidf_weight) * jaccard;
}

double OnlineResolver::ProfileSimilarity(EntityId a, EntityId b) const {
  if (options_.similarity.use_tfidf) BuildTfidf(collection(), a, tfidf_a_);
  return ProfileSimilarityWithA(a, tfidf_a_, b);
}

double OnlineResolver::EvidenceBonus(const PairState& ps) const {
  if (ps.evidence <= 0.0) return 0.0;
  return options_.evidence.weight * std::min(1.0, ps.evidence);
}

bool OnlineResolver::ExecuteComparison(uint64_t pair) {
  const EntityId a = PairKeyFirst(pair);
  const EntityId b = PairKeySecond(pair);
  double bonus = 0.0;
  {
    // Scope the reference: UpdatePhase below inserts into pairs_ and may
    // rehash.
    PairState& ps = PairRef(pair);
    ps.executed = true;
    bonus = EvidenceBonus(ps);
  }
  scheduler_.Erase(pair);
  ++run_.comparisons_executed;
  const double profile = ProfileSimilarity(a, b);
  const double sim = profile + bonus;
  if (sim < options_.matcher.threshold) return false;

  RecordClusterMerge(a, b);
  run_.matches.push_back(MatchEvent{run_.comparisons_executed, a, b, sim});
  if (profile < options_.matcher.threshold) ++evidence_assisted_matches_;
  UpdatePhase(a, b);
  return true;
}

void OnlineResolver::UpdatePhase(EntityId a, EntityId b) {
  const auto& na = neighbors_[a];
  const auto& nb = neighbors_[b];
  const size_t la =
      std::min<size_t>(na.size(), options_.evidence.max_neighbors_per_side);
  const size_t lb =
      std::min<size_t>(nb.size(), options_.evidence.max_neighbors_per_side);
  const bool clean = options_.blocking.mode == ResolutionMode::kCleanClean;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      const EntityId x = na[i];
      const EntityId y = nb[j];
      if (x == y) continue;
      if (clean && !collection().CrossKb(x, y)) continue;
      const uint64_t pair = PairKey(x, y);
      if (state_->SameCluster(x, y)) continue;
      bool first_sighting = false;
      PairState& ps = PairRef(pair, &first_sighting);
      if (ps.executed) continue;
      ps.evidence += options_.evidence.increment;
      if (first_sighting) ++discovered_pairs_;
      scheduler_.Push(pair, Priority(x, y, ps));
    }
  }
}

OnlineStepResult OnlineResolver::ResolveBudget(uint64_t max_comparisons) {
  OnlineStepResult out;
  // A zero budget spends nothing (the shared core treats 0 as "uncapped").
  if (max_comparisons == 0) return out;
  const size_t match_mark = run_.matches.size();
  out = RunScheduledComparisons(
      scheduler_, max_comparisons, options_.evidence.staleness_tolerance,
      /*should_stop=*/[] { return false; },
      /*already_executed=*/
      [&](uint64_t pair) {
        const PairState* ps = pairs_.Find(pair);
        return ps == nullptr || ps->executed;
      },
      /*current_priority=*/
      [&](EntityId a, EntityId b, uint64_t pair) {
        return Priority(a, b, *pairs_.Find(pair));
      },
      /*execute=*/
      [&](uint64_t pair, EntityId, EntityId) { ExecuteComparison(pair); });
  out.matches.assign(run_.matches.begin() + match_mark, run_.matches.end());
  static obs::Counter& comparisons =
      obs::MetricsRegistry::Default().counter("online.resolve_comparisons");
  static obs::Counter& matches =
      obs::MetricsRegistry::Default().counter("online.resolve_matches");
  comparisons.Add(out.comparisons);
  matches.Add(out.matches.size());
  return out;
}

std::vector<QueryCandidate> OnlineResolver::Query(EntityId id, uint32_t k) {
  static obs::Counter& queries =
      obs::MetricsRegistry::Default().counter("online.queries");
  queries.Increment();
  std::vector<QueryCandidate> out;
  if (k == 0 || id >= partners_.size()) return out;

  // Drain the entity's pending comparisons first — including any its own
  // matches discover for it mid-loop (partners_[id] may grow; indexing by
  // position covers the appended tail).
  for (size_t i = 0; i < partners_[id].size(); ++i) {
    const uint64_t pair = PairKey(id, partners_[id][i]);
    // Every partner pair is registered in pairs_ by PairRef.
    if (!pairs_.Find(pair)->executed) ExecuteComparison(pair);
  }

  // Rank with the query side's TF-IDF vector built once, not per partner.
  if (options_.similarity.use_tfidf) BuildTfidf(collection(), id, tfidf_a_);
  out.reserve(partners_[id].size());
  for (const EntityId p : partners_[id]) {
    const PairState& ps = *pairs_.Find(PairKey(id, p));
    out.push_back(QueryCandidate{
        p, ProfileSimilarityWithA(id, tfidf_a_, p) + EvidenceBonus(ps),
        state_->SameCluster(id, p)});
  }
  std::sort(out.begin(), out.end(),
            [](const QueryCandidate& l, const QueryCandidate& r) {
              if (l.similarity != r.similarity) {
                return l.similarity > r.similarity;
              }
              return l.id < r.id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

Status OnlineResolver::SaveState(std::ostream& out) const {
  const EntityCollection& c = collection();
  serde::WriteString(out, kOnlineStateMagicV2);
  serde::WriteU32(out, c.num_entities());
  serde::WriteU32(out, c.num_kbs());
  serde::WriteU64(out, c.total_triples());
  serde::WriteU64(out, OnlineOptionsDigest(options_));

  // v2: the collection travels with the state, so Restore(options, in)
  // needs no snapshot from the caller.
  MINOAN_RETURN_IF_ERROR(c.Save(out));

  index_.Save(out);

  // Adjacency lists carry their insertion order (UpdatePhase truncates to
  // the first max_neighbors_per_side entries), so they are serialized
  // verbatim rather than rebuilt.
  const auto save_adjacency =
      [&out](const std::vector<std::vector<EntityId>>& lists) {
        serde::WriteU64(out, lists.size());
        for (const auto& list : lists) {
          serde::WriteU64(out, list.size());
          for (const EntityId e : list) serde::WriteU32(out, e);
        }
      };
  save_adjacency(neighbors_);
  save_adjacency(partners_);

  std::vector<std::pair<uint64_t, PairState>> pairs;
  pairs.reserve(pairs_.size());
  pairs_.ForEach([&pairs](uint64_t pair, const PairState& ps) {
    pairs.emplace_back(pair, ps);
  });
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  serde::WriteU64(out, pairs.size());
  for (const auto& [pair, ps] : pairs) {
    serde::WriteU64(out, pair);
    serde::WriteDouble(out, ps.likelihood);
    serde::WriteDouble(out, ps.evidence);
    serde::WriteU8(out, ps.executed ? 1 : 0);
  }

  const auto live = scheduler_.LiveEntries();
  serde::WriteU64(out, live.size());
  for (const auto& [pair, priority] : live) {
    serde::WriteU64(out, pair);
    serde::WriteDouble(out, priority);
  }
  serde::WriteU64(out, scheduler_.total_pushes());

  serde::WriteU64(out, cluster_ops_.size());
  for (const auto& [a, b] : cluster_ops_) {
    serde::WriteU32(out, a);
    serde::WriteU32(out, b);
  }

  serde::WriteU64(out, run_.comparisons_executed);
  serde::WriteU64(out, run_.matches.size());
  for (const MatchEvent& m : run_.matches) {
    serde::WriteU64(out, m.comparisons_done);
    serde::WriteU32(out, m.a);
    serde::WriteU32(out, m.b);
    serde::WriteDouble(out, m.similarity);
  }
  serde::WriteU64(out, discovered_pairs_);
  serde::WriteU64(out, evidence_assisted_matches_);
  serde::WriteU64(out, same_as_consumed_);
  if (!out) return Status::IoError("online checkpoint write failed");
  return Status::Ok();
}

Status OnlineResolver::LoadState(std::istream& in) {
  const auto truncated = [] {
    return Status::ParseError("truncated or corrupt online engine state");
  };
  std::string magic;
  if (!serde::ReadString(in, magic, kOnlineStateMagicV2.size())) {
    return truncated();
  }
  if (magic != kOnlineStateMagicV1 && magic != kOnlineStateMagicV2) {
    return Status::ParseError("not a MinoanER online engine state");
  }
  uint32_t num_entities, num_kbs;
  uint64_t total_triples, digest;
  if (!serde::ReadU32(in, num_entities) || !serde::ReadU32(in, num_kbs) ||
      !serde::ReadU64(in, total_triples) || !serde::ReadU64(in, digest)) {
    return truncated();
  }
  if (digest != OnlineOptionsDigest(options_)) {
    return Status::InvalidArgument(
        "online state was saved with different options; restore with the "
        "options used at save time");
  }
  if (magic == kOnlineStateMagicV2) {
    // The collection travels with the state; whatever the engine held
    // (usually the empty store of the self-contained Restore) is replaced
    // by the saved snapshot before the header counts are cross-checked.
    MINOAN_RETURN_IF_ERROR(coll_.LoadCollection(in));
  }
  const EntityCollection& c = collection();
  const uint32_t n = c.num_entities();
  if (num_entities != n || num_kbs != c.num_kbs() ||
      total_triples != c.total_triples()) {
    return Status::InvalidArgument(
        magic == kOnlineStateMagicV2
            ? "online state header disagrees with its embedded collection"
            : "online state was saved over a different collection (entity/"
              "KB/triple counts differ); v1 states restore only over the "
              "exact snapshot the saving engine held");
  }

  if (!index_.Load(in, n)) return truncated();

  const auto load_adjacency =
      [&](std::vector<std::vector<EntityId>>& lists) {
        uint64_t count;
        if (!serde::ReadU64(in, count) || count > n) return false;
        lists.assign(count, {});
        for (auto& list : lists) {
          uint64_t len;
          if (!serde::ReadU64(in, len) || len > n) return false;
          list.reserve(len);
          for (uint64_t i = 0; i < len; ++i) {
            uint32_t e;
            if (!serde::ReadU32(in, e) || e >= n) return false;
            list.push_back(e);
          }
        }
        return true;
      };
  if (!load_adjacency(neighbors_)) return truncated();
  if (!load_adjacency(partners_)) return truncated();

  uint64_t n_pairs;
  if (!serde::ReadU64(in, n_pairs)) return truncated();
  pairs_.Clear();
  pairs_.Reserve(std::min(n_pairs, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_pairs; ++i) {
    uint64_t pair;
    PairState ps;
    uint8_t executed;
    if (!serde::ReadU64(in, pair) || !serde::ReadDouble(in, ps.likelihood) ||
        !serde::ReadDouble(in, ps.evidence) || !serde::ReadU8(in, executed) ||
        !serde::ValidPairKey(pair, n)) {
      return truncated();
    }
    ps.executed = executed != 0;
    pairs_.InsertOrAssign(pair, ps);
  }

  uint64_t n_live;
  if (!serde::ReadU64(in, n_live)) return truncated();
  std::vector<std::pair<uint64_t, double>> live;
  live.reserve(std::min(n_live, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_live; ++i) {
    uint64_t pair;
    double priority;
    if (!serde::ReadU64(in, pair) || !serde::ReadDouble(in, priority) ||
        !serde::ValidPairKey(pair, n)) {
      return truncated();
    }
    live.emplace_back(pair, priority);
  }
  uint64_t total_pushes;
  if (!serde::ReadU64(in, total_pushes)) return truncated();

  uint64_t n_ops;
  if (!serde::ReadU64(in, n_ops)) return truncated();
  cluster_ops_.clear();
  cluster_ops_.reserve(std::min(n_ops, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_ops; ++i) {
    uint32_t a, b;
    if (!serde::ReadU32(in, a) || !serde::ReadU32(in, b) || a >= n ||
        b >= n) {
      return truncated();
    }
    cluster_ops_.emplace_back(a, b);
  }

  ResolutionRun run;
  uint64_t n_matches;
  if (!serde::ReadU64(in, run.comparisons_executed) ||
      !serde::ReadU64(in, n_matches)) {
    return truncated();
  }
  run.matches.reserve(std::min(n_matches, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_matches; ++i) {
    MatchEvent m;
    if (!serde::ReadU64(in, m.comparisons_done) || !serde::ReadU32(in, m.a) ||
        !serde::ReadU32(in, m.b) || !serde::ReadDouble(in, m.similarity) ||
        m.a >= n || m.b >= n) {
      return truncated();
    }
    run.matches.push_back(m);
  }
  uint64_t same_as_consumed;
  if (!serde::ReadU64(in, discovered_pairs_) ||
      !serde::ReadU64(in, evidence_assisted_matches_) ||
      !serde::ReadU64(in, same_as_consumed)) {
    return truncated();
  }
  if (same_as_consumed > c.same_as_links().size()) {
    return Status::ParseError("online state sameAs cursor out of range");
  }
  same_as_consumed_ = static_cast<size_t>(same_as_consumed);

  // Rebuild the mutable cluster state by replaying the merge log:
  // RecordMatch is deterministic in call order, so the union-find layout
  // and cluster profiles come out identical to the saving engine's.
  state_ = std::make_unique<ResolutionState>(c, nullptr);
  state_->SetDynamicNeighbors(&neighbors_);
  for (const auto& [a, b] : cluster_ops_) state_->RecordMatch(a, b);

  scheduler_.RestoreFrom(live, total_pushes);
  run_ = std::move(run);
  defer_scoring_ = false;
  deferred_pairs_.clear();
  return Status::Ok();
}

}  // namespace online
}  // namespace minoan
