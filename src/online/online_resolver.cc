#include "online/online_resolver.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "text/similarity.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace minoan {
namespace online {

namespace {

/// On-the-fly TF-IDF vector with the collection's CURRENT document
/// frequencies. The batch SimilarityEvaluator precomputes these at
/// construction; online, the vocabulary grows with every ingest, so vectors
/// are built per comparison (delta candidate sets are small).
void BuildTfidf(const EntityCollection& collection, EntityId e,
                std::vector<WeightedToken>& out) {
  out.clear();
  const auto& bag = collection.entity(e).token_bag;  // sorted, with dups
  size_t i = 0;
  while (i < bag.size()) {
    size_t j = i;
    while (j < bag.size() && bag[j] == bag[i]) ++j;
    const double idf = collection.TokenIdf(bag[i]);
    if (idf > 0.0) {
      out.push_back(WeightedToken{bag[i], static_cast<double>(j - i) * idf});
    }
    i = j;
  }
}

}  // namespace

OnlineResolver::OnlineResolver(OnlineOptions options)
    : options_(options),
      coll_(options.collection),
      index_(options.blocking),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side),
      state_(std::make_unique<ResolutionState>(coll_.collection(), nullptr)) {
  // Relationship-aware benefit models read neighbors from the growable
  // adjacency (there is no frozen NeighborGraph in online mode).
  state_->SetDynamicNeighbors(&neighbors_);
}

OnlineResolver::OnlineResolver(OnlineOptions options, EntityCollection&& warm)
    : options_(options),
      coll_(std::move(warm)),
      index_(options.blocking),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side),
      state_(std::make_unique<ResolutionState>(coll_.collection(), nullptr)) {
  state_->SetDynamicNeighbors(&neighbors_);
  const uint32_t n = coll_.num_entities();
  // Index sequentially (the incremental index mutates per entity), defer
  // the per-pair priority pricing, then score the whole batch at once —
  // in parallel when options_.num_threads allows, identically either way.
  defer_scoring_ = true;
  for (EntityId id = 0; id < n; ++id) IndexEntity(id);
  FlushDeferredScores();
  ConsumeSameAsSeeds();
}

Result<EntityId> OnlineResolver::Ingest(
    uint32_t kb_id, const std::vector<rdf::Triple>& triples) {
  MINOAN_ASSIGN_OR_RETURN(EntityId id, coll_.Ingest(kb_id, triples));
  IndexEntity(id);
  ConsumeSameAsSeeds();
  return id;
}

OnlineResolver::PairState& OnlineResolver::PairRef(uint64_t pair,
                                                   bool* created) {
  const auto [it, inserted] = pairs_.try_emplace(pair);
  if (inserted) {
    const EntityId a = PairKeyFirst(pair);
    const EntityId b = PairKeySecond(pair);
    partners_[a].push_back(b);
    partners_[b].push_back(a);
  }
  if (created != nullptr) *created = inserted;
  return it->second;
}

void OnlineResolver::IndexEntity(EntityId id) {
  const EntityCollection& c = collection();
  if (neighbors_.size() < c.num_entities()) {
    neighbors_.resize(c.num_entities());
    partners_.resize(c.num_entities());
  }
  state_->AddEntity(id);

  // Relation edges of the new entity extend the undirected adjacency; the
  // targets necessarily exist already (forward references degraded to
  // attributes during ingestion).
  for (const Relation& r : c.entity(id).relations) {
    if (r.target == id) continue;
    auto& mine = neighbors_[id];
    if (std::find(mine.begin(), mine.end(), r.target) == mine.end()) {
      mine.push_back(r.target);
      neighbors_[r.target].push_back(id);
    }
  }

  delta_scratch_.clear();
  index_.AddEntity(c, id, delta_scratch_);
  for (const DeltaPair& d : delta_scratch_) {
    const uint64_t pair = PairKey(d.a, d.b);
    PairState& ps = PairRef(pair);
    ps.likelihood = d.weight;
    // The update phase may have discovered and even executed this pair
    // before blocking produced it.
    if (ps.executed) continue;
    if (defer_scoring_) {
      deferred_pairs_.push_back(pair);
      continue;
    }
    scheduler_.Push(pair, Priority(d.a, d.b, ps));
  }
}

void OnlineResolver::FlushDeferredScores() {
  defer_scoring_ = false;
  std::vector<double> priorities(deferred_pairs_.size());
  const auto score = [&](size_t i) {
    const uint64_t pair = deferred_pairs_[i];
    priorities[i] = Priority(PairKeyFirst(pair), PairKeySecond(pair),
                             pairs_.find(pair)->second);
  };
  const uint32_t threads = ResolveThreadCount(options_.num_threads);
  if (threads > 1 && deferred_pairs_.size() >= 2048) {
    ThreadPool pool(threads);
    pool.ParallelFor(deferred_pairs_.size(), score);
  } else {
    for (size_t i = 0; i < deferred_pairs_.size(); ++i) score(i);
  }
  for (size_t i = 0; i < deferred_pairs_.size(); ++i) {
    scheduler_.Push(deferred_pairs_[i], priorities[i]);
  }
  deferred_pairs_.clear();
  deferred_pairs_.shrink_to_fit();
}

void OnlineResolver::ConsumeSameAsSeeds() {
  const auto& links = collection().same_as_links();
  if (!options_.use_same_as_seeds) {
    same_as_consumed_ = links.size();
    return;
  }
  for (; same_as_consumed_ < links.size(); ++same_as_consumed_) {
    const SameAsLink link = links[same_as_consumed_];
    const uint64_t pair = PairKey(link.a, link.b);
    PairState& ps = PairRef(pair);
    if (ps.executed) continue;
    ps.executed = true;
    scheduler_.Erase(pair);
    state_->RecordMatch(link.a, link.b);
    UpdatePhase(link.a, link.b);
  }
}

double OnlineResolver::Likelihood(const PairState& ps) const {
  if (ps.evidence <= 0.0) return ps.likelihood;
  return ps.likelihood +
         options_.evidence.priority * std::min(1.0, ps.evidence);
}

double OnlineResolver::Priority(EntityId a, EntityId b,
                                const PairState& ps) const {
  const double benefit = estimator_.PairBenefit(a, b, *state_);
  return Likelihood(ps) * (1.0 + options_.benefit_weight * benefit);
}

double OnlineResolver::ProfileSimilarityWithA(
    EntityId a, const std::vector<WeightedToken>& a_tfidf, EntityId b) const {
  const EntityCollection& c = collection();
  const double jaccard =
      JaccardSimilarity(c.entity(a).tokens, c.entity(b).tokens);
  if (!options_.similarity.use_tfidf) return jaccard;
  BuildTfidf(c, b, tfidf_b_);
  const double cosine = WeightedCosineSimilarity(a_tfidf, tfidf_b_);
  return options_.similarity.tfidf_weight * cosine +
         (1.0 - options_.similarity.tfidf_weight) * jaccard;
}

double OnlineResolver::ProfileSimilarity(EntityId a, EntityId b) const {
  if (options_.similarity.use_tfidf) BuildTfidf(collection(), a, tfidf_a_);
  return ProfileSimilarityWithA(a, tfidf_a_, b);
}

double OnlineResolver::EvidenceBonus(const PairState& ps) const {
  if (ps.evidence <= 0.0) return 0.0;
  return options_.evidence.weight * std::min(1.0, ps.evidence);
}

bool OnlineResolver::ExecuteComparison(uint64_t pair) {
  const EntityId a = PairKeyFirst(pair);
  const EntityId b = PairKeySecond(pair);
  double bonus = 0.0;
  {
    // Scope the reference: UpdatePhase below inserts into pairs_ and may
    // rehash.
    PairState& ps = PairRef(pair);
    ps.executed = true;
    bonus = EvidenceBonus(ps);
  }
  scheduler_.Erase(pair);
  ++run_.comparisons_executed;
  const double profile = ProfileSimilarity(a, b);
  const double sim = profile + bonus;
  if (sim < options_.matcher.threshold) return false;

  state_->RecordMatch(a, b);
  run_.matches.push_back(MatchEvent{run_.comparisons_executed, a, b, sim});
  if (profile < options_.matcher.threshold) ++evidence_assisted_matches_;
  UpdatePhase(a, b);
  return true;
}

void OnlineResolver::UpdatePhase(EntityId a, EntityId b) {
  const auto& na = neighbors_[a];
  const auto& nb = neighbors_[b];
  const size_t la =
      std::min<size_t>(na.size(), options_.evidence.max_neighbors_per_side);
  const size_t lb =
      std::min<size_t>(nb.size(), options_.evidence.max_neighbors_per_side);
  const bool clean = options_.blocking.mode == ResolutionMode::kCleanClean;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      const EntityId x = na[i];
      const EntityId y = nb[j];
      if (x == y) continue;
      if (clean && !collection().CrossKb(x, y)) continue;
      const uint64_t pair = PairKey(x, y);
      if (state_->SameCluster(x, y)) continue;
      bool first_sighting = false;
      PairState& ps = PairRef(pair, &first_sighting);
      if (ps.executed) continue;
      ps.evidence += options_.evidence.increment;
      if (first_sighting) ++discovered_pairs_;
      scheduler_.Push(pair, Priority(x, y, ps));
    }
  }
}

OnlineStepResult OnlineResolver::ResolveBudget(uint64_t max_comparisons) {
  OnlineStepResult out;
  // A zero budget spends nothing (the shared core treats 0 as "uncapped").
  if (max_comparisons == 0) return out;
  const size_t match_mark = run_.matches.size();
  out = RunScheduledComparisons(
      scheduler_, max_comparisons, options_.evidence.staleness_tolerance,
      /*should_stop=*/[] { return false; },
      /*already_executed=*/
      [&](uint64_t pair) {
        const auto it = pairs_.find(pair);
        return it == pairs_.end() || it->second.executed;
      },
      /*current_priority=*/
      [&](EntityId a, EntityId b, uint64_t pair) {
        return Priority(a, b, pairs_.find(pair)->second);
      },
      /*execute=*/
      [&](uint64_t pair, EntityId, EntityId) { ExecuteComparison(pair); });
  out.matches.assign(run_.matches.begin() + match_mark, run_.matches.end());
  return out;
}

std::vector<QueryCandidate> OnlineResolver::Query(EntityId id, uint32_t k) {
  std::vector<QueryCandidate> out;
  if (k == 0 || id >= partners_.size()) return out;

  // Drain the entity's pending comparisons first — including any its own
  // matches discover for it mid-loop (partners_[id] may grow; indexing by
  // position covers the appended tail).
  for (size_t i = 0; i < partners_[id].size(); ++i) {
    const uint64_t pair = PairKey(id, partners_[id][i]);
    if (!pairs_[pair].executed) ExecuteComparison(pair);
  }

  // Rank with the query side's TF-IDF vector built once, not per partner.
  if (options_.similarity.use_tfidf) BuildTfidf(collection(), id, tfidf_a_);
  out.reserve(partners_[id].size());
  for (const EntityId p : partners_[id]) {
    const PairState& ps = pairs_[PairKey(id, p)];
    out.push_back(QueryCandidate{
        p, ProfileSimilarityWithA(id, tfidf_a_, p) + EvidenceBonus(ps),
        state_->SameCluster(id, p)});
  }
  std::sort(out.begin(), out.end(),
            [](const QueryCandidate& l, const QueryCandidate& r) {
              if (l.similarity != r.similarity) {
                return l.similarity > r.similarity;
              }
              return l.id < r.id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace online
}  // namespace minoan
