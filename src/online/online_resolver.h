// Copyright 2026 The MinoanER Authors.
// OnlineResolver: the long-running, updatable progressive resolution engine.
//
// The batch pipeline runs schedule → match → update until a budget is spent,
// then throws its state away. The online engine keeps that state alive and
// exposes three operations a service can interleave freely:
//
//   Ingest(kb, triples)   — absorb one new entity description: assign a
//                           dense id, index it, and push only the *delta*
//                           candidate comparisons it creates (plus, when
//                           enabled, its trusted owl:sameAs links as
//                           zero-cost warm seeds).
//   ResolveBudget(n)      — spend up to n comparisons now, highest priority
//                           first, exactly like the batch resolver's loop;
//                           fully resumable: two calls of n/2 execute the
//                           same schedule as one call of n.
//   Query(e, k)           — on-demand top-k match candidates for one
//                           entity: its pending comparisons are executed
//                           first (prioritized ahead of the global queue),
//                           then all known candidates are ranked by current
//                           similarity. Idempotent between mutations.
//
// Priorities, neighbor-evidence propagation, and the staleness rule follow
// ProgressiveResolver; likelihoods come from the incremental block index's
// key-set Jaccard instead of a global meta-blocking pass, since a global
// pruning graph is unavailable under insertions.

#ifndef MINOAN_ONLINE_ONLINE_RESOLVER_H_
#define MINOAN_ONLINE_ONLINE_RESOLVER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "matching/matcher.h"
#include "matching/similarity_evaluator.h"
#include "online/incremental_block_index.h"
#include "online/incremental_collection.h"
#include "progressive/benefit.h"
#include "progressive/evidence_options.h"
#include "progressive/scheduler.h"
#include "progressive/state.h"
#include "progressive/step_core.h"
#include "util/flat_table.h"
#include "util/status.h"

namespace minoan {
namespace online {

/// Online engine configuration. Defaults mirror the batch Web-of-Data
/// defaults where a counterpart exists.
struct OnlineOptions {
  CollectionOptions collection;
  OnlineBlockingOptions blocking;
  /// Match threshold; the `budget` field is ignored (budgets are per
  /// ResolveBudget call).
  MatcherOptions matcher;
  SimilarityOptions similarity;
  BenefitModel benefit = BenefitModel::kQuantity;
  double benefit_weight = 1.0;
  /// Evidence-propagation knobs, shared with ProgressiveOptions.
  EvidenceOptions evidence;
  /// Treat ingested owl:sameAs links as trusted zero-cost matches.
  bool use_same_as_seeds = false;
  /// Worker threads for the warm-start bulk scoring pass (the one
  /// batch-shaped stage of the online engine: pricing every initial
  /// candidate pair against the pristine state). The ingest/resolve/query
  /// loop itself is inherently sequential. 1 = inline (default),
  /// 0 = hardware concurrency. Results are identical for every value.
  uint32_t num_threads = 1;
};

/// Outcome of one ResolveBudget call — the same pay-as-you-go currency the
/// batch ResolutionSession returns from Step.
using OnlineStepResult = ::minoan::StepResult;

/// One ranked candidate returned by Query.
struct QueryCandidate {
  EntityId id;
  /// Profile similarity plus current neighbor-evidence bonus.
  double similarity;
  /// Already resolved into the query entity's cluster.
  bool matched;
};

class OnlineResolver {
 public:
  explicit OnlineResolver(OnlineOptions options = {});

  /// Warm start from a finalized batch collection: every existing entity is
  /// indexed (producing the full batch candidate set) before the engine
  /// accepts new ones.
  OnlineResolver(OnlineOptions options, EntityCollection&& warm);

  /// Reopens an engine from a SaveState stream. `options` must be the
  /// options the saving engine ran with (digest verified). For current (v2)
  /// states `warm` is superseded by the collection embedded in the stream;
  /// for legacy v1 states it must be the exact snapshot the saving engine
  /// held (entity/KB/triple counts are verified). Unlike the warm
  /// constructor nothing is re-indexed or re-scored: the incremental index,
  /// the PairState map, the schedule, and the cluster state all come from
  /// the stream, so resolution (and further ingests) continue exactly where
  /// the saved engine stopped — byte-identically.
  static Result<std::unique_ptr<OnlineResolver>> Restore(
      OnlineOptions options, EntityCollection&& warm, std::istream& in);

  /// Self-contained restore: the collection snapshot is read from the
  /// stream itself (SaveState serializes it since MNER-ONLN-v2), so the
  /// caller supplies nothing but the original options. Rejects v1 states —
  /// those carry no collection and need the overload above.
  static Result<std::unique_ptr<OnlineResolver>> Restore(
      OnlineOptions options, std::istream& in);

  /// Pinned: state_ holds the addresses of coll_'s collection and
  /// neighbors_, so a compiler-generated move would leave it dangling.
  OnlineResolver(const OnlineResolver&) = delete;
  OnlineResolver& operator=(const OnlineResolver&) = delete;
  OnlineResolver(OnlineResolver&&) = delete;
  OnlineResolver& operator=(OnlineResolver&&) = delete;

  /// Finds or creates a knowledge base by name.
  uint32_t EnsureKb(std::string_view name) { return coll_.EnsureKb(name); }

  /// Ingests one entity (triples sharing a single subject). Returns its id.
  Result<EntityId> Ingest(uint32_t kb_id,
                          const std::vector<rdf::Triple>& triples);

  /// Executes up to `max_comparisons` scheduled comparisons.
  OnlineStepResult ResolveBudget(uint64_t max_comparisons);

  /// Executes every pending comparison involving `id` (and any its matches
  /// discover for it), then returns the top-k candidates by similarity
  /// (ties broken by ascending id). Empty for unknown ids or k == 0.
  std::vector<QueryCandidate> Query(EntityId id, uint32_t k);

  /// Serializes the full engine state — the collection snapshot itself
  /// (MNER-ONLN-v2; restores are self-contained), the incremental index
  /// (postings + watermarks + emitted pairs), PairState map, schedule,
  /// neighbor/partner adjacencies, the cluster-merge log, and the run
  /// record — in the fixed little-endian util/serde.h format, for a later
  /// Restore.
  Status SaveState(std::ostream& out) const;

  /// Restores a SaveState stream into this engine, replacing its dynamic
  /// state. The engine's collection must match the saving engine's. On
  /// failure the engine is left half-overwritten and must be discarded —
  /// never resume a live engine from an unverified stream directly; use
  /// the static Restore, which discards the engine when loading fails.
  Status LoadState(std::istream& in);

  // --- Introspection ------------------------------------------------------

  const EntityCollection& collection() const { return coll_.collection(); }
  /// Cumulative run record (comparisons from ResolveBudget AND Query).
  const ResolutionRun& run() const { return run_; }
  size_t pending_comparisons() const { return scheduler_.live_size(); }
  uint64_t discovered_pairs() const { return discovered_pairs_; }
  uint64_t evidence_assisted_matches() const {
    return evidence_assisted_matches_;
  }
  uint64_t candidate_pairs_created() const {
    return index_.num_pairs_emitted();
  }
  ResolutionState& state() { return *state_; }
  const OnlineOptions& options() const { return options_; }

 private:
  /// All per-pair state in one node: blocking likelihood, accumulated
  /// neighbor evidence, and whether the comparison was executed. One map
  /// instead of four parallel ones keeps the scheduling hot path to a
  /// single hash lookup per pair.
  struct PairState {
    double likelihood = 0.0;
    double evidence = 0.0;
    bool executed = false;
  };

  /// Restore path: adopts `warm` without indexing or scoring anything —
  /// LoadState fills every structure from the stream instead.
  struct RestoreTag {};
  OnlineResolver(OnlineOptions options, EntityCollection&& warm, RestoreTag);
  /// Self-contained restore path: starts from an empty store; LoadState
  /// reads the embedded (v2) collection along with the dynamic state.
  OnlineResolver(OnlineOptions options, RestoreTag);

  void IndexEntity(EntityId id);
  /// Scores and pushes the pairs IndexEntity deferred during warm-start
  /// bulk indexing. Safe to fan out: the state is pristine (no match
  /// recorded before the seeds consume below), so priorities are pure reads;
  /// scores land in a per-index array and are pushed in deferral order, and
  /// pop order depends only on (priority, pair) — the schedule is identical
  /// to interleaved sequential pushes for every thread count.
  void FlushDeferredScores();
  /// Applies any not-yet-consumed ingested owl:sameAs links as zero-cost
  /// trusted matches (no-op unless use_same_as_seeds).
  void ConsumeSameAsSeeds();
  /// Finds or creates the pair's state; on creation registers the two
  /// entities as each other's partners. `created` (optional) reports
  /// whether this was the pair's first sighting.
  PairState& PairRef(uint64_t pair, bool* created = nullptr);
  double Likelihood(const PairState& ps) const;
  double Priority(EntityId a, EntityId b, const PairState& ps) const;
  /// Profile similarity with the current (possibly grown) vocabulary.
  double ProfileSimilarity(EntityId a, EntityId b) const;
  /// Same, with a's TF-IDF vector already built (hoisted out of ranking
  /// loops over one entity's partners).
  double ProfileSimilarityWithA(EntityId a,
                                const std::vector<WeightedToken>& a_tfidf,
                                EntityId b) const;
  double EvidenceBonus(const PairState& ps) const;
  /// Executes one not-yet-executed comparison; records a match and runs the
  /// update phase when the threshold clears. Returns true when it matched.
  bool ExecuteComparison(uint64_t pair);
  void UpdatePhase(EntityId a, EntityId b);
  /// Merges (a, b) in the cluster state AND appends the operation to the
  /// replay log — RecordMatch's internal layout depends on call order, so
  /// LoadState replays the exact sequence to reproduce it byte for byte.
  void RecordClusterMerge(EntityId a, EntityId b);

  OnlineOptions options_;
  IncrementalCollection coll_;
  IncrementalBlockIndex index_;
  BenefitEstimator estimator_;
  std::unique_ptr<ResolutionState> state_;
  ComparisonScheduler scheduler_;

  /// Incremental undirected adjacency over relation edges (the online
  /// counterpart of NeighborGraph, growable per ingest).
  std::vector<std::vector<EntityId>> neighbors_;
  /// Every entity this entity shares a known candidate pair with, in
  /// first-seen order (drives Query).
  std::vector<std::vector<EntityId>> partners_;

  /// Flat open-addressing table (util/flat_table.h): every scheduled pop,
  /// query, and evidence update probes this map, and SaveState sorts its
  /// contents into ascending-pair order before writing, so the layout is
  /// pure hot-path win with no bytes-on-disk effect.
  FlatPairMap<PairState> pairs_;

  ResolutionRun run_;
  uint64_t discovered_pairs_ = 0;
  uint64_t evidence_assisted_matches_ = 0;
  size_t same_as_consumed_ = 0;

  /// Every cluster merge (seeds and matches alike) in call order — the
  /// checkpointable essence of the union-find state.
  std::vector<std::pair<EntityId, EntityId>> cluster_ops_;

  /// Warm-start bulk indexing: when set, IndexEntity records new pairs here
  /// instead of scoring them one by one; FlushDeferredScores prices the
  /// whole batch (in parallel when options_.num_threads allows).
  bool defer_scoring_ = false;
  std::vector<uint64_t> deferred_pairs_;

  // Scratch buffers (ingest + similarity), reused across calls.
  std::vector<DeltaPair> delta_scratch_;
  mutable std::vector<WeightedToken> tfidf_a_;
  mutable std::vector<WeightedToken> tfidf_b_;
};

}  // namespace online
}  // namespace minoan

#endif  // MINOAN_ONLINE_ONLINE_RESOLVER_H_
