#include "progressive/benefit.h"

#include <algorithm>

namespace minoan {

std::string_view BenefitModelName(BenefitModel model) {
  switch (model) {
    case BenefitModel::kQuantity:
      return "quantity";
    case BenefitModel::kAttributeCompleteness:
      return "attr-completeness";
    case BenefitModel::kEntityCoverage:
      return "entity-coverage";
    case BenefitModel::kRelationshipCompleteness:
      return "rel-completeness";
  }
  return "?";
}

double BenefitEstimator::PairBenefit(EntityId a, EntityId b,
                                     ResolutionState& state) const {
  switch (model_) {
    case BenefitModel::kQuantity:
      // Every resolved pair counts the same; scheduling degenerates to pure
      // likelihood ordering.
      return 1.0;
    case BenefitModel::kAttributeCompleteness: {
      // Normalized novel-value mass the merge would contribute.
      const auto& va = state.ClusterValues(a);
      const auto& vb = state.ClusterValues(b);
      const double total = static_cast<double>(va.size() + vb.size());
      if (total == 0.0) return 0.0;
      return static_cast<double>(state.ValueGain(a, b)) /
             std::max(1.0, total / 2.0);
    }
    case BenefitModel::kEntityCoverage: {
      // A pair of still-singleton descriptions resolves a brand-new real
      // entity (benefit 1); once either side belongs to a cluster, the real
      // entity is already covered and the marginal coverage decays.
      const uint32_t sa = state.ClusterSize(a);
      const uint32_t sb = state.ClusterSize(b);
      return 1.0 / static_cast<double>(sa + sb - 1);
    }
    case BenefitModel::kRelationshipCompleteness: {
      // An edge is resolved when BOTH endpoints are; the greedy gain
      // combines local completion (neighbors already matched -> this match
      // closes edges now) with spread (resolving a fresh entity enables all
      // its incident edges). Pure locality concentrates matches in one
      // region and stalls global edge completion.
      const double frac = state.MatchedNeighborFraction(a, b, neighbor_cap_);
      const uint32_t sa = state.ClusterSize(a);
      const uint32_t sb = state.ClusterSize(b);
      const double spread = 1.0 / static_cast<double>(sa + sb - 1);
      return 0.5 * spread + 0.5 * frac;
    }
  }
  return 1.0;
}

double BenefitEstimator::RealizedBenefit(EntityId a, EntityId b,
                                         ResolutionState& state) const {
  switch (model_) {
    case BenefitModel::kQuantity:
      return 1.0;
    case BenefitModel::kAttributeCompleteness:
      return state.SameCluster(a, b)
                 ? 0.0
                 : static_cast<double>(state.ValueGain(a, b));
    case BenefitModel::kEntityCoverage:
      // First resolution of a real entity: both sides still singletons.
      return (state.ClusterSize(a) == 1 && state.ClusterSize(b) == 1) ? 1.0
                                                                      : 0.0;
    case BenefitModel::kRelationshipCompleteness:
      return static_cast<double>(
          state.MatchedNeighborPairs(a, b, neighbor_cap_));
  }
  return 0.0;
}

}  // namespace minoan
