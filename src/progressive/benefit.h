// Copyright 2026 The MinoanER Authors.
// Benefit models for progressive scheduling.
//
// The poster's key departure from prior progressive ER ([1] Altowim et al.,
// which maximizes the *quantity* of resolved pairs): MinoanER schedules by
// *data-quality aspects* improved through resolution —
//
//   * attribute completeness   — number of descriptions resolved per real
//     entity: each extra description merged into a cluster contributes the
//     attribute values the cluster was missing;
//   * entity coverage          — number of distinct real-world entities with
//     at least one resolved pair;
//   * relationship completeness — number of real-world entity *graphs*
//     resolved: relation edges whose both endpoints are resolved.
//
// A BenefitEstimator turns the current ResolutionState into (a) a scheduling
// multiplier for candidate pairs and (b) the realized benefit of a confirmed
// match, which the resolver accumulates into its trace.

#ifndef MINOAN_PROGRESSIVE_BENEFIT_H_
#define MINOAN_PROGRESSIVE_BENEFIT_H_

#include <cstdint>
#include <string_view>

#include "kb/entity.h"
#include "progressive/state.h"

namespace minoan {

enum class BenefitModel {
  kQuantity = 0,                 ///< matches found (the baseline notion [1])
  kAttributeCompleteness = 1,    ///< new attribute values per merge
  kEntityCoverage = 2,           ///< newly resolved real-world entities
  kRelationshipCompleteness = 3, ///< resolved relation edges
};
inline constexpr uint32_t kNumBenefitModels = 4;

std::string_view BenefitModelName(BenefitModel model);

/// Scores pairs under one benefit model against the evolving state.
class BenefitEstimator {
 public:
  BenefitEstimator(BenefitModel model, uint32_t neighbor_cap = 16)
      : model_(model), neighbor_cap_(neighbor_cap) {}

  BenefitModel model() const { return model_; }

  /// Scheduling multiplier in [0, 1]: the estimated marginal benefit of
  /// resolving (a, b) now, given the current partial result. The resolver
  /// multiplies it with the match likelihood.
  double PairBenefit(EntityId a, EntityId b, ResolutionState& state) const;

  /// Realized benefit of the confirmed match (a, b), evaluated BEFORE the
  /// state is updated with it.
  double RealizedBenefit(EntityId a, EntityId b, ResolutionState& state) const;

 private:
  BenefitModel model_;
  uint32_t neighbor_cap_;
};

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_BENEFIT_H_
