// Copyright 2026 The MinoanER Authors.
// Evidence-propagation knobs shared by every progressive driver.
//
// The batch ProgressiveResolver and the online OnlineResolver run the same
// schedule/match/update loop; these five knobs govern how neighbor evidence
// from confirmed matches feeds back into similarity and scheduling. They
// used to be duplicated field-by-field in ProgressiveOptions and
// OnlineOptions — one struct keeps the defaults (and their calibration
// rationale) in a single place.

#ifndef MINOAN_PROGRESSIVE_EVIDENCE_OPTIONS_H_
#define MINOAN_PROGRESSIVE_EVIDENCE_OPTIONS_H_

#include <cstdint>

namespace minoan {

/// How neighbor evidence accumulates and influences matching + scheduling.
struct EvidenceOptions {
  /// Evidence added to a neighbor pair per confirming match.
  double increment = 0.5;
  /// Similarity bonus: sim' = sim + weight · min(1, evidence).
  /// Keep below the match threshold so evidence complements weak profile
  /// signal instead of fabricating matches from nothing.
  double weight = 0.3;
  /// Priority contribution of evidence for scheduling. Calibrated so that
  /// update-discovered pairs slot behind strong blocking candidates but
  /// ahead of weak ones (1.0 would let them preempt the best candidates and
  /// flatten the early recall curve).
  double priority = 0.4;
  /// Fan-out cap: neighbors considered per side during an update.
  uint32_t max_neighbors_per_side = 16;
  /// Tolerated relative priority drift before a popped entry is re-queued
  /// instead of executed.
  double staleness_tolerance = 0.25;
};

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_EVIDENCE_OPTIONS_H_
