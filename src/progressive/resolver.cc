#include "progressive/resolver.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/hash.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace minoan {

namespace {

/// Format tag of the serialized loop state; bump on layout changes.
constexpr std::string_view kStateMagic = "MNER-PROG-v1";

}  // namespace

ProgressiveResolver::ProgressiveResolver(const EntityCollection& collection,
                                         const NeighborGraph& graph,
                                         const SimilarityEvaluator& evaluator,
                                         ProgressiveOptions options,
                                         ThreadPool* pool)
    : collection_(&collection),
      graph_(&graph),
      evaluator_(&evaluator),
      options_(options),
      estimator_(options.benefit, options.evidence.max_neighbors_per_side),
      pool_(pool) {}

double ProgressiveResolver::Likelihood(uint64_t pair) const {
  const double* base = likelihood_.Find(pair);
  const double* ev = evidence_.Find(pair);
  if (ev == nullptr) return base == nullptr ? 0.0 : *base;
  return (base == nullptr ? 0.0 : *base) +
         options_.evidence.priority * std::min(1.0, *ev);
}

double ProgressiveResolver::Priority(EntityId a, EntityId b, uint64_t pair,
                                     ResolutionState& state) const {
  const double benefit = estimator_.PairBenefit(a, b, state);
  return Likelihood(pair) *
         (1.0 + options_.benefit_weight * benefit);
}

void ProgressiveResolver::Begin(
    const std::vector<WeightedComparison>& candidates,
    const std::vector<Comparison>& seeds) {
  likelihood_.Clear();
  evidence_.Clear();
  executed_.Clear();
  likelihood_.Reserve(candidates.size());
  executed_.Reserve(candidates.size());
  scheduler_ = ComparisonScheduler();
  result_ = ProgressiveResult();
  seeds_.clear();
  cumulative_benefit_ = 0.0;
  exhausted_ = false;
  state_ = std::make_unique<ResolutionState>(*collection_, graph_);

  // Normalize blocking-graph weights into [0, 1] likelihoods.
  double max_weight = 0.0;
  for (const WeightedComparison& c : candidates) {
    max_weight = std::max(max_weight, c.weight);
  }
  const double scale = max_weight > 0.0 ? 1.0 / max_weight : 1.0;
  std::vector<uint64_t> pairs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    pairs[i] = PairKey(candidates[i].a, candidates[i].b);
    likelihood_.InsertOrAssign(pairs[i], candidates[i].weight * scale);
  }
  // Score the candidates. Safe to fan out: the state is pristine (no match
  // recorded yet — seeds apply below), so every cluster is a singleton and
  // Priority() only reads (union-find Find() takes no compression step, the
  // likelihood/evidence tables are frozen). Scores land in a per-index
  // array, so the schedule is identical for every thread count.
  std::vector<double> priorities(candidates.size());
  const auto score = [&](size_t i) {
    priorities[i] =
        Priority(candidates[i].a, candidates[i].b, pairs[i], *state_);
  };
  const uint32_t threads = ResolveThreadCount(options_.num_threads);
  // A caller-owned pool (the session's) has no spawn cost, so it pays off
  // on much smaller retained lists than a transient pool does. The gate
  // only decides where the loop runs; the scores are identical either way.
  const size_t min_parallel = pool_ != nullptr ? 256 : 2048;
  if (threads > 1 && candidates.size() >= min_parallel) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(candidates.size(), score);
    } else {
      ThreadPool pool(threads);
      pool.ParallelFor(candidates.size(), score);
    }
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) score(i);
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    scheduler_.Push(pairs[i], priorities[i]);
  }

  // Apply warm-start seeds: trusted matches at zero budget cost, propagated
  // so their neighborhoods get evidence before anything is compared. Only
  // the seeds actually applied are retained, so a state replay on restore
  // issues the identical RecordMatch sequence.
  for (const Comparison& seed : seeds) {
    const uint64_t pair = PairKey(seed.a, seed.b);
    if (!executed_.Insert(pair)) continue;
    seeds_.push_back(seed);
    scheduler_.Erase(pair);
    state_->RecordMatch(seed.a, seed.b);
    if (options_.enable_update_phase) {
      UpdatePhase(seed.a, seed.b);
    }
  }
  result_.scheduler_pushes = scheduler_.total_pushes();
  begun_ = true;
}

StepResult ProgressiveResolver::Step(uint64_t max_comparisons) {
  StepResult out;
  if (!begun_ || exhausted_) {
    out.exhausted = exhausted_;
    return out;
  }
  const size_t match_mark = result_.run.matches.size();
  const uint64_t budget = options_.matcher.budget;
  const Stopwatch watch;
  const StepResult stats = RunScheduledComparisons(
      scheduler_, max_comparisons, options_.evidence.staleness_tolerance,
      /*should_stop=*/
      [&] {
        if (budget != 0 && result_.run.comparisons_executed >= budget) {
          return true;
        }
        return options_.budget_millis != 0 &&
               watch.ElapsedMillis() >=
                   static_cast<double>(options_.budget_millis);
      },
      /*already_executed=*/
      [&](uint64_t pair) { return executed_.Contains(pair); },
      /*current_priority=*/
      [&](EntityId a, EntityId b, uint64_t pair) {
        return Priority(a, b, pair, *state_);
      },
      /*execute=*/
      [&](uint64_t pair, EntityId a, EntityId b) {
        ExecuteComparison(pair, a, b);
        SampleProgress();
      });
  out.comparisons = stats.comparisons;
  out.exhausted = stats.exhausted;
  exhausted_ = stats.exhausted;
  out.matches.assign(result_.run.matches.begin() + match_mark,
                     result_.run.matches.end());
  result_.scheduler_pushes = scheduler_.total_pushes();
  return out;
}

void ProgressiveResolver::ExecuteComparison(uint64_t pair, EntityId a,
                                            EntityId b) {
  // ---- Matching phase -----------------------------------------------------
  executed_.Insert(pair);
  ++result_.run.comparisons_executed;
  const double profile_sim = evaluator_->Similarity(a, b);
  const double* ev = evidence_.Find(pair);
  const double bonus =
      ev == nullptr ? 0.0
                    : options_.evidence.weight * std::min(1.0, *ev);
  const double sim = profile_sim + bonus;
  if (sim < options_.matcher.threshold) return;

  // ---- Confirmed match ----------------------------------------------------
  const double realized = estimator_.RealizedBenefit(a, b, *state_);
  state_->RecordMatch(a, b);
  cumulative_benefit_ += realized;
  result_.run.matches.push_back(
      MatchEvent{result_.run.comparisons_executed, a, b, sim});
  result_.benefit_trace.push_back(cumulative_benefit_);
  if (profile_sim < options_.matcher.threshold) {
    ++result_.evidence_assisted_matches;
  }
  if (!likelihood_.Contains(pair)) {
    ++result_.discovered_matches;
  }
  if (on_match_) on_match_(result_.run.matches.back());

  // ---- Update phase -------------------------------------------------------
  if (options_.enable_update_phase) {
    UpdatePhase(a, b);
  }
}

void ProgressiveResolver::SampleProgress() {
  if (progress_ != nullptr) {
    progress_->OnProgress(result_.run.comparisons_executed,
                          result_.run.matches.size());
  }
}

ProgressiveResult ProgressiveResolver::Resolve(
    const std::vector<WeightedComparison>& candidates) {
  return ResolveWithSeeds(candidates, {});
}

ProgressiveResult ProgressiveResolver::ResolveWithSeeds(
    const std::vector<WeightedComparison>& candidates,
    const std::vector<Comparison>& seeds) {
  Begin(candidates, seeds);
  Step(0);
  ProgressiveResult out = std::move(result_);
  // One-shot semantics: the run is over, so drop the loop state instead of
  // carrying O(candidates) of scratch until the next Begin (pre-refactor
  // these were function locals freed on return).
  begun_ = false;
  likelihood_ = {};
  evidence_ = {};
  executed_ = {};
  scheduler_ = ComparisonScheduler();
  state_.reset();
  seeds_.clear();
  result_ = ProgressiveResult();
  return out;
}

void ProgressiveResolver::UpdatePhase(EntityId a, EntityId b) {
  const auto na = graph_->Neighbors(a);
  const auto nb = graph_->Neighbors(b);
  const size_t la =
      std::min<size_t>(na.size(), options_.evidence.max_neighbors_per_side);
  const size_t lb =
      std::min<size_t>(nb.size(), options_.evidence.max_neighbors_per_side);
  const bool clean = options_.mode == ResolutionMode::kCleanClean;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      const EntityId x = na[i];
      const EntityId y = nb[j];
      if (x == y) continue;
      if (clean && !collection_->CrossKb(x, y)) continue;
      const uint64_t pair = PairKey(x, y);
      if (executed_.Contains(pair)) continue;
      if (state_->SameCluster(x, y)) continue;
      // Accumulate similarity evidence: the matched pair (a, b) vouches for
      // its aligned neighbors. The reference stays valid through the
      // increment below — nothing inserts into evidence_ before it.
      double& ev = evidence_.FindOrInsert(pair);
      const bool first_sighting = ev == 0.0 && !likelihood_.Contains(pair);
      ev += options_.evidence.increment;
      if (first_sighting) {
        // A candidate blocking never produced: discovered via the graph.
        ++result_.discovered_pairs;
      }
      scheduler_.Push(pair, Priority(x, y, pair, *state_));
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

namespace {

/// Writes an unordered (pair -> double) map in canonical ascending-key order.
void WritePairDoubleMap(std::ostream& out, const FlatPairMap<double>& map) {
  std::vector<std::pair<uint64_t, double>> entries;
  entries.reserve(map.size());
  map.ForEach([&entries](uint64_t pair, const double& value) {
    entries.emplace_back(pair, value);
  });
  std::sort(entries.begin(), entries.end());
  serde::WriteU64(out, entries.size());
  for (const auto& [pair, value] : entries) {
    serde::WriteU64(out, pair);
    serde::WriteDouble(out, value);
  }
}

using serde::kMaxUpfrontReserve;
using serde::ValidPairKey;

bool ReadPairDoubleMap(std::istream& in, uint32_t num_entities,
                       FlatPairMap<double>& map) {
  uint64_t n;
  if (!serde::ReadU64(in, n)) return false;
  map.Clear();
  map.Reserve(std::min(n, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t pair;
    double value;
    if (!serde::ReadU64(in, pair) || !serde::ReadDouble(in, value) ||
        !ValidPairKey(pair, num_entities)) {
      return false;
    }
    map.InsertOrAssign(pair, value);
  }
  return true;
}

}  // namespace

Status ProgressiveResolver::SaveState(std::ostream& out) const {
  if (!begun_) {
    return Status::FailedPrecondition(
        "no active resolution to save (call Begin first)");
  }
  serde::WriteString(out, kStateMagic);
  WritePairDoubleMap(out, likelihood_);
  WritePairDoubleMap(out, evidence_);

  std::vector<uint64_t> executed;
  executed.reserve(executed_.size());
  executed_.ForEach([&executed](uint64_t pair) { executed.push_back(pair); });
  std::sort(executed.begin(), executed.end());
  serde::WriteU64(out, executed.size());
  for (const uint64_t pair : executed) serde::WriteU64(out, pair);

  const auto live = scheduler_.LiveEntries();
  serde::WriteU64(out, live.size());
  for (const auto& [pair, priority] : live) {
    serde::WriteU64(out, pair);
    serde::WriteDouble(out, priority);
  }
  serde::WriteU64(out, scheduler_.total_pushes());

  serde::WriteU64(out, seeds_.size());
  for (const Comparison& seed : seeds_) {
    serde::WriteU32(out, seed.a);
    serde::WriteU32(out, seed.b);
  }

  serde::WriteU64(out, result_.run.comparisons_executed);
  serde::WriteU64(out, result_.run.matches.size());
  for (const MatchEvent& m : result_.run.matches) {
    serde::WriteU64(out, m.comparisons_done);
    serde::WriteU32(out, m.a);
    serde::WriteU32(out, m.b);
    serde::WriteDouble(out, m.similarity);
  }
  serde::WriteU64(out, result_.benefit_trace.size());
  for (const double v : result_.benefit_trace) serde::WriteDouble(out, v);
  serde::WriteU64(out, result_.discovered_pairs);
  serde::WriteU64(out, result_.discovered_matches);
  serde::WriteU64(out, result_.evidence_assisted_matches);
  serde::WriteDouble(out, cumulative_benefit_);
  serde::WriteU8(out, exhausted_ ? 1 : 0);
  if (!out) return Status::IoError("checkpoint write failed");
  return Status::Ok();
}

Status ProgressiveResolver::LoadState(std::istream& in) {
  const auto truncated = [] {
    return Status::ParseError("truncated or corrupt resolver state");
  };
  const uint32_t num_entities = collection_->num_entities();
  std::string magic;
  if (!serde::ReadString(in, magic, kStateMagic.size())) return truncated();
  if (magic != kStateMagic) {
    return Status::ParseError("bad resolver-state magic: \"" + magic + "\"");
  }
  if (!ReadPairDoubleMap(in, num_entities, likelihood_)) return truncated();
  if (!ReadPairDoubleMap(in, num_entities, evidence_)) return truncated();

  uint64_t n_executed;
  if (!serde::ReadU64(in, n_executed)) return truncated();
  executed_.Clear();
  executed_.Reserve(std::min(n_executed, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_executed; ++i) {
    uint64_t pair;
    if (!serde::ReadU64(in, pair) || !ValidPairKey(pair, num_entities)) {
      return truncated();
    }
    executed_.Insert(pair);
  }

  uint64_t n_live;
  if (!serde::ReadU64(in, n_live)) return truncated();
  std::vector<std::pair<uint64_t, double>> live;
  live.reserve(std::min(n_live, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_live; ++i) {
    uint64_t pair;
    double priority;
    if (!serde::ReadU64(in, pair) || !serde::ReadDouble(in, priority) ||
        !ValidPairKey(pair, num_entities)) {
      return truncated();
    }
    live.emplace_back(pair, priority);
  }
  uint64_t total_pushes;
  if (!serde::ReadU64(in, total_pushes)) return truncated();

  uint64_t n_seeds;
  if (!serde::ReadU64(in, n_seeds)) return truncated();
  seeds_.clear();
  seeds_.reserve(std::min(n_seeds, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_seeds; ++i) {
    uint32_t a, b;
    if (!serde::ReadU32(in, a) || !serde::ReadU32(in, b)) return truncated();
    if (a >= num_entities || b >= num_entities) {
      return Status::ParseError("seed entity id out of range");
    }
    seeds_.emplace_back(a, b);
  }

  ProgressiveResult result;
  uint64_t n_matches;
  if (!serde::ReadU64(in, result.run.comparisons_executed) ||
      !serde::ReadU64(in, n_matches)) {
    return truncated();
  }
  result.run.matches.reserve(std::min(n_matches, kMaxUpfrontReserve));
  for (uint64_t i = 0; i < n_matches; ++i) {
    MatchEvent m;
    if (!serde::ReadU64(in, m.comparisons_done) || !serde::ReadU32(in, m.a) ||
        !serde::ReadU32(in, m.b) || !serde::ReadDouble(in, m.similarity)) {
      return truncated();
    }
    if (m.a >= num_entities || m.b >= num_entities) {
      return Status::ParseError("match entity id out of range");
    }
    result.run.matches.push_back(m);
  }
  uint64_t n_trace;
  if (!serde::ReadU64(in, n_trace)) return truncated();
  if (n_trace != n_matches) {
    return Status::ParseError("benefit trace length mismatch");
  }
  result.benefit_trace.resize(n_trace);
  for (uint64_t i = 0; i < n_trace; ++i) {
    if (!serde::ReadDouble(in, result.benefit_trace[i])) return truncated();
  }
  double cumulative_benefit;
  uint8_t exhausted;
  if (!serde::ReadU64(in, result.discovered_pairs) ||
      !serde::ReadU64(in, result.discovered_matches) ||
      !serde::ReadU64(in, result.evidence_assisted_matches) ||
      !serde::ReadDouble(in, cumulative_benefit) ||
      !serde::ReadU8(in, exhausted)) {
    return truncated();
  }

  // Rebuild the mutable cluster state by replaying the recorded matches:
  // RecordMatch is deterministic in call order, so the union-find layout and
  // cluster profiles come out identical to the uninterrupted run's.
  state_ = std::make_unique<ResolutionState>(*collection_, graph_);
  for (const Comparison& seed : seeds_) {
    state_->RecordMatch(seed.a, seed.b);
  }
  for (const MatchEvent& m : result.run.matches) {
    state_->RecordMatch(m.a, m.b);
  }
  scheduler_.RestoreFrom(live, total_pushes);
  result.scheduler_pushes = total_pushes;
  result_ = std::move(result);
  cumulative_benefit_ = cumulative_benefit;
  exhausted_ = exhausted != 0;
  begun_ = true;
  return Status::Ok();
}

}  // namespace minoan
