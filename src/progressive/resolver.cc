#include "progressive/resolver.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/hash.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace minoan {

ProgressiveResolver::ProgressiveResolver(const EntityCollection& collection,
                                         const NeighborGraph& graph,
                                         const SimilarityEvaluator& evaluator,
                                         ProgressiveOptions options,
                                         ThreadPool* pool)
    : collection_(&collection),
      graph_(&graph),
      evaluator_(&evaluator),
      options_(options),
      estimator_(options.benefit, options.max_neighbors_per_side),
      pool_(pool) {}

double ProgressiveResolver::Likelihood(uint64_t pair) const {
  const auto it = likelihood_.find(pair);
  const double base = it == likelihood_.end() ? 0.0 : it->second;
  const auto ev = evidence_.find(pair);
  if (ev == evidence_.end()) return base;
  return base + options_.evidence_priority * std::min(1.0, ev->second);
}

double ProgressiveResolver::Priority(EntityId a, EntityId b, uint64_t pair,
                                     ResolutionState& state) const {
  const double benefit = estimator_.PairBenefit(a, b, state);
  return Likelihood(pair) *
         (1.0 + options_.benefit_weight * benefit);
}

ProgressiveResult ProgressiveResolver::Resolve(
    const std::vector<WeightedComparison>& candidates) {
  return ResolveWithSeeds(candidates, {});
}

ProgressiveResult ProgressiveResolver::ResolveWithSeeds(
    const std::vector<WeightedComparison>& candidates,
    const std::vector<Comparison>& seeds) {
  likelihood_.clear();
  evidence_.clear();
  executed_.clear();
  likelihood_.reserve(candidates.size() * 2);
  executed_.reserve(candidates.size() * 2);

  ProgressiveResult result;
  ResolutionState state(*collection_, graph_);
  ComparisonScheduler scheduler;

  // Normalize blocking-graph weights into [0, 1] likelihoods.
  double max_weight = 0.0;
  for (const WeightedComparison& c : candidates) {
    max_weight = std::max(max_weight, c.weight);
  }
  const double scale = max_weight > 0.0 ? 1.0 / max_weight : 1.0;
  std::vector<uint64_t> pairs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    pairs[i] = PairKey(candidates[i].a, candidates[i].b);
    likelihood_[pairs[i]] = candidates[i].weight * scale;
  }
  // Score the candidates. Safe to fan out: the state is pristine (no match
  // recorded yet — seeds apply below), so every cluster is a singleton and
  // Priority() only reads (union-find Find() takes no compression step, the
  // likelihood/evidence tables are frozen). Scores land in a per-index
  // array, so the schedule is identical for every thread count.
  std::vector<double> priorities(candidates.size());
  const auto score = [&](size_t i) {
    priorities[i] =
        Priority(candidates[i].a, candidates[i].b, pairs[i], state);
  };
  uint32_t threads = options_.num_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : options_.num_threads;
  if (threads > 1 && candidates.size() >= 2048) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(candidates.size(), score);
    } else {
      ThreadPool pool(threads);
      pool.ParallelFor(candidates.size(), score);
    }
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) score(i);
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    scheduler.Push(pairs[i], priorities[i]);
  }

  // Apply warm-start seeds: trusted matches at zero budget cost, propagated
  // so their neighborhoods get evidence before anything is compared.
  for (const Comparison& seed : seeds) {
    const uint64_t pair = PairKey(seed.a, seed.b);
    if (!executed_.insert(pair).second) continue;
    scheduler.Erase(pair);
    state.RecordMatch(seed.a, seed.b);
    if (options_.enable_update_phase) {
      UpdatePhase(seed.a, seed.b, state, scheduler, result);
    }
  }

  double cumulative_benefit = 0.0;
  const uint64_t budget = options_.matcher.budget;
  const Stopwatch watch;
  uint64_t pair = 0;
  double popped_priority = 0.0;
  while ((budget == 0 || result.run.comparisons_executed < budget) &&
         (options_.budget_millis == 0 ||
          watch.ElapsedMillis() <
              static_cast<double>(options_.budget_millis)) &&
         scheduler.Pop(pair, popped_priority)) {
    const EntityId a = PairKeyFirst(pair);
    const EntityId b = PairKeySecond(pair);
    if (executed_.count(pair)) continue;

    // Benefit drift: the state may have changed since this entry was
    // pushed. Re-queue significantly stale entries instead of executing.
    const double current = Priority(a, b, pair, state);
    if (current + 1e-12 <
        popped_priority * (1.0 - options_.staleness_tolerance)) {
      scheduler.Push(pair, current);
      continue;
    }

    // ---- Matching phase -------------------------------------------------
    executed_.insert(pair);
    ++result.run.comparisons_executed;
    const double profile_sim = evaluator_->Similarity(a, b);
    const auto ev = evidence_.find(pair);
    const double bonus =
        ev == evidence_.end()
            ? 0.0
            : options_.evidence_weight * std::min(1.0, ev->second);
    const double sim = profile_sim + bonus;
    if (sim < options_.matcher.threshold) continue;

    // ---- Confirmed match ------------------------------------------------
    const double realized = estimator_.RealizedBenefit(a, b, state);
    state.RecordMatch(a, b);
    cumulative_benefit += realized;
    result.run.matches.push_back(
        MatchEvent{result.run.comparisons_executed, a, b, sim});
    result.benefit_trace.push_back(cumulative_benefit);
    if (profile_sim < options_.matcher.threshold) {
      ++result.evidence_assisted_matches;
    }
    if (likelihood_.find(pair) == likelihood_.end()) {
      ++result.discovered_matches;
    }

    // ---- Update phase ---------------------------------------------------
    if (options_.enable_update_phase) {
      UpdatePhase(a, b, state, scheduler, result);
    }
  }

  result.scheduler_pushes = scheduler.total_pushes();
  return result;
}

void ProgressiveResolver::UpdatePhase(EntityId a, EntityId b,
                                      ResolutionState& state,
                                      ComparisonScheduler& scheduler,
                                      ProgressiveResult& result) {
  const auto na = graph_->Neighbors(a);
  const auto nb = graph_->Neighbors(b);
  const size_t la =
      std::min<size_t>(na.size(), options_.max_neighbors_per_side);
  const size_t lb =
      std::min<size_t>(nb.size(), options_.max_neighbors_per_side);
  const bool clean = options_.mode == ResolutionMode::kCleanClean;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      const EntityId x = na[i];
      const EntityId y = nb[j];
      if (x == y) continue;
      if (clean && !collection_->CrossKb(x, y)) continue;
      const uint64_t pair = PairKey(x, y);
      if (executed_.count(pair)) continue;
      if (state.SameCluster(x, y)) continue;
      // Accumulate similarity evidence: the matched pair (a, b) vouches for
      // its aligned neighbors.
      double& ev = evidence_[pair];
      const bool first_sighting =
          ev == 0.0 && likelihood_.find(pair) == likelihood_.end();
      ev += options_.evidence_increment;
      if (first_sighting) {
        // A candidate blocking never produced: discovered via the graph.
        ++result.discovered_pairs;
      }
      scheduler.Push(pair, Priority(x, y, pair, state));
    }
  }
}

}  // namespace minoan
