// Copyright 2026 The MinoanER Authors.
// The progressive resolver — MinoanER's core contribution (Figure 1).
//
// Implements the iterative workflow the poster describes:
//
//   Scheduling:  candidate comparisons (from blocking + meta-blocking) are
//                prioritized by likelihood × marginal benefit, so "those
//                comparisons are executed before less promising ones and
//                thus, higher benefit is provided early on in the process".
//   Matching:    the top comparison is executed; profile similarity plus any
//                accumulated neighbor evidence decides the match.
//   Update:      "propagates the results of matching, such that a new
//                scheduling phase will promote the comparison of pairs that
//                were influenced by the previous matches" — every neighbor
//                pair of a confirmed match gains similarity evidence, gets
//                (re)prioritized, and pairs blocking never produced are
//                *discovered* as new candidates. This is how "somehow
//                similar" descriptions with few common tokens are resolved.
//   Budget:      "this iterative process continues until the cost budget is
//                consumed" — the budget is a comparison count (similarity
//                evaluations), the standard cost unit of progressive ER.
//
// The resolver is a stateful begin/step core: Begin() ingests the candidate
// schedule, Step(n) spends up to n more comparisons, and the loop state
// (scheduler, evidence, partial clusters) persists between calls, so
// Step(n/2) twice is byte-identical to Step(n). The legacy run-to-completion
// Resolve()/ResolveWithSeeds() are thin wrappers, and SaveState/LoadState
// round-trip the loop state for checkpointable sessions
// (core/session.h).

#ifndef MINOAN_PROGRESSIVE_RESOLVER_H_
#define MINOAN_PROGRESSIVE_RESOLVER_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "kb/collection.h"
#include "kb/neighbor_graph.h"
#include "matching/matcher.h"
#include "obs/progress.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking_types.h"
#include "progressive/benefit.h"
#include "progressive/evidence_options.h"
#include "progressive/scheduler.h"
#include "progressive/state.h"
#include "progressive/step_core.h"
#include "util/flat_table.h"
#include "util/status.h"

namespace minoan {

/// Progressive-resolution configuration.
struct ProgressiveOptions {
  BenefitModel benefit = BenefitModel::kQuantity;
  /// Strength of the benefit multiplier in the priority (0 = pure
  /// likelihood ordering).
  double benefit_weight = 1.0;
  /// Match decision threshold and comparison budget (0 = unlimited).
  MatcherOptions matcher;
  /// Optional wall-clock budget in milliseconds (0 = unlimited); whichever
  /// of the two budgets is hit first ends the run. Comparison counts are
  /// the reproducible unit; wall time is for latency-bound deployments.
  /// In step mode, bounds each Step call.
  uint64_t budget_millis = 0;
  /// Master switch of the update phase (T6 ablation).
  bool enable_update_phase = true;
  /// Evidence-propagation knobs, shared with the online engine.
  EvidenceOptions evidence;
  ResolutionMode mode = ResolutionMode::kCleanClean;
  /// Worker threads for the batch-parallel setup phase (scoring the initial
  /// candidates against the pristine state); the iterative schedule/match/
  /// update loop itself is inherently sequential. 1 = inline (default),
  /// 0 = hardware concurrency. Results are identical for every value.
  uint32_t num_threads = 1;
};

/// Outcome of a progressive run.
struct ProgressiveResult {
  ResolutionRun run;
  /// Cumulative realized benefit after each match (parallel to run.matches).
  std::vector<double> benefit_trace;
  /// Pairs scheduled purely by the update phase (absent from blocking).
  uint64_t discovered_pairs = 0;
  /// ... of which were confirmed as matches.
  uint64_t discovered_matches = 0;
  /// Matches that needed neighbor evidence to clear the threshold (profile
  /// similarity alone was below it).
  uint64_t evidence_assisted_matches = 0;
  /// Scheduling overhead: total heap pushes.
  uint64_t scheduler_pushes = 0;
};

class ThreadPool;

/// Drives the scheduling / matching / update loop over one collection.
class ProgressiveResolver {
 public:
  /// Streaming sink for confirmed matches (invoked in discovery order,
  /// synchronously from within Step).
  using MatchCallback = std::function<void(const MatchEvent&)>;

  /// `pool` (optional, caller-owned, must outlive the resolver) serves the
  /// batch-parallel setup phase; without it a transient pool is spawned
  /// when options.num_threads calls for one.
  ProgressiveResolver(const EntityCollection& collection,
                      const NeighborGraph& graph,
                      const SimilarityEvaluator& evaluator,
                      ProgressiveOptions options, ThreadPool* pool = nullptr);

  // --- Stateful pay-as-you-go interface -----------------------------------

  /// Initializes a resolution from the given candidates (meta-blocking
  /// output: weighted comparisons; weights are normalized to [0, 1]
  /// likelihoods) plus optional warm-start seeds (see ResolveWithSeeds).
  /// Resets any previous run.
  void Begin(const std::vector<WeightedComparison>& candidates,
             const std::vector<Comparison>& seeds = {});

  /// Spends up to `max_comparisons` more comparisons (0 = until the overall
  /// options budget or the queue is exhausted). Resumable: Step(n/2) twice
  /// executes the byte-identical schedule as Step(n) once.
  StepResult Step(uint64_t max_comparisons);

  /// True after Begin/LoadState, until the result is taken by Resolve.
  bool begun() const { return begun_; }
  /// True once the schedule drained (further Steps are no-ops).
  bool exhausted() const { return exhausted_; }
  /// True once the overall options budget (matcher.budget, if any) is
  /// spent. Distinct from exhausted(): the queue may still hold work.
  bool budget_spent() const {
    return options_.matcher.budget != 0 &&
           result_.run.comparisons_executed >= options_.matcher.budget;
  }
  /// Nothing left to spend: queue drained OR overall budget consumed.
  /// The correct condition for "keep stepping" loops.
  bool finished() const { return exhausted_ || budget_spent(); }
  /// Cumulative outcome of every Step so far.
  const ProgressiveResult& result() const { return result_; }

  /// Installs (or clears) the streaming match sink.
  void set_match_callback(MatchCallback callback) {
    on_match_ = std::move(callback);
  }

  /// Installs (or clears) the progressive-quality sampler (caller-owned,
  /// must outlive the resolver). Observational only: the meter sees the
  /// cumulative (comparisons, matches) totals after every executed
  /// comparison and never influences scheduling.
  void set_progress_meter(obs::ProgressMeter* meter) { progress_ = meter; }

  // --- Checkpoint / restore ------------------------------------------------

  /// Serializes the complete loop state (schedule, evidence, executed set,
  /// partial result). Requires an active run (Begin was called). The
  /// collection/graph/evaluator are NOT serialized — a restoring process
  /// rebuilds them deterministically and calls LoadState.
  Status SaveState(std::ostream& out) const;

  /// Restores the loop state saved by SaveState against the same collection;
  /// stepping then continues exactly where the saved run left off.
  Status LoadState(std::istream& in);

  // --- Legacy run-to-completion interface ----------------------------------

  /// Resolves from the given initial candidates: Begin + Step to exhaustion.
  ProgressiveResult Resolve(const std::vector<WeightedComparison>& candidates);

  /// Warm start: `seeds` are trusted equivalences known before matching —
  /// existing owl:sameAs interlinks, or the output of a previous
  /// pay-as-you-go session. They are recorded into the resolution state at
  /// zero budget cost and propagated through the update phase, so their
  /// neighborhoods are prioritized from the first comparison on. Seeds do
  /// not appear among the returned matches (they were not discovered by
  /// this run).
  ProgressiveResult ResolveWithSeeds(
      const std::vector<WeightedComparison>& candidates,
      const std::vector<Comparison>& seeds);

 private:
  double Likelihood(uint64_t pair) const;
  double Priority(EntityId a, EntityId b, uint64_t pair,
                  ResolutionState& state) const;
  void ExecuteComparison(uint64_t pair, EntityId a, EntityId b);
  void UpdatePhase(EntityId a, EntityId b);
  /// Feeds the installed progress meter the post-comparison totals.
  void SampleProgress();

  const EntityCollection* collection_;
  const NeighborGraph* graph_;
  const SimilarityEvaluator* evaluator_;
  ProgressiveOptions options_;
  BenefitEstimator estimator_;
  ThreadPool* pool_;  // optional, not owned
  MatchCallback on_match_;
  obs::ProgressMeter* progress_ = nullptr;  // optional, not owned

  // Loop state (reset by Begin, serialized by SaveState). Flat
  // open-addressing tables: every scheduled comparison probes likelihood,
  // evidence, and the executed set, so these are the hottest lookups of the
  // whole loop. Serialization canonicalizes to ascending-pair order, so the
  // container swap never shows in checkpoint bytes.
  FlatPairMap<double> likelihood_;
  FlatPairMap<double> evidence_;
  FlatPairSet executed_;
  std::unique_ptr<ResolutionState> state_;
  ComparisonScheduler scheduler_;
  ProgressiveResult result_;
  /// Seeds actually applied by Begin (deduplicated), kept for state replay
  /// on restore.
  std::vector<Comparison> seeds_;
  double cumulative_benefit_ = 0.0;
  bool begun_ = false;
  bool exhausted_ = false;
};

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_RESOLVER_H_
