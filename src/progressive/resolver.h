// Copyright 2026 The MinoanER Authors.
// The progressive resolver — MinoanER's core contribution (Figure 1).
//
// Implements the iterative workflow the poster describes:
//
//   Scheduling:  candidate comparisons (from blocking + meta-blocking) are
//                prioritized by likelihood × marginal benefit, so "those
//                comparisons are executed before less promising ones and
//                thus, higher benefit is provided early on in the process".
//   Matching:    the top comparison is executed; profile similarity plus any
//                accumulated neighbor evidence decides the match.
//   Update:      "propagates the results of matching, such that a new
//                scheduling phase will promote the comparison of pairs that
//                were influenced by the previous matches" — every neighbor
//                pair of a confirmed match gains similarity evidence, gets
//                (re)prioritized, and pairs blocking never produced are
//                *discovered* as new candidates. This is how "somehow
//                similar" descriptions with few common tokens are resolved.
//   Budget:      "this iterative process continues until the cost budget is
//                consumed" — the budget is a comparison count (similarity
//                evaluations), the standard cost unit of progressive ER.

#ifndef MINOAN_PROGRESSIVE_RESOLVER_H_
#define MINOAN_PROGRESSIVE_RESOLVER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/collection.h"
#include "kb/neighbor_graph.h"
#include "matching/matcher.h"
#include "matching/similarity_evaluator.h"
#include "metablocking/meta_blocking_types.h"
#include "progressive/benefit.h"
#include "progressive/scheduler.h"
#include "progressive/state.h"

namespace minoan {

/// Progressive-resolution configuration.
struct ProgressiveOptions {
  BenefitModel benefit = BenefitModel::kQuantity;
  /// Strength of the benefit multiplier in the priority (0 = pure
  /// likelihood ordering).
  double benefit_weight = 1.0;
  /// Match decision threshold and comparison budget (0 = unlimited).
  MatcherOptions matcher;
  /// Optional wall-clock budget in milliseconds (0 = unlimited); whichever
  /// of the two budgets is hit first ends the run. Comparison counts are
  /// the reproducible unit; wall time is for latency-bound deployments.
  uint64_t budget_millis = 0;
  /// Master switch of the update phase (T6 ablation).
  bool enable_update_phase = true;
  /// Evidence added to a neighbor pair per confirming match.
  double evidence_increment = 0.5;
  /// Similarity bonus: sim' = sim + evidence_weight · min(1, evidence).
  /// Keep below the match threshold so evidence complements weak profile
  /// signal instead of fabricating matches from nothing.
  double evidence_weight = 0.3;
  /// Priority contribution of evidence for scheduling. Calibrated so that
  /// update-discovered pairs slot behind strong blocking candidates but
  /// ahead of weak ones (1.0 would let them preempt the best candidates and
  /// flatten the early recall curve).
  double evidence_priority = 0.4;
  /// Fan-out cap: neighbors considered per side during an update.
  uint32_t max_neighbors_per_side = 16;
  /// Tolerated relative priority drift before a popped entry is re-queued
  /// instead of executed.
  double staleness_tolerance = 0.25;
  ResolutionMode mode = ResolutionMode::kCleanClean;
  /// Worker threads for the batch-parallel setup phase (scoring the initial
  /// candidates against the pristine state); the iterative schedule/match/
  /// update loop itself is inherently sequential. 1 = inline (default),
  /// 0 = hardware concurrency. Results are identical for every value.
  uint32_t num_threads = 1;
};

/// Outcome of a progressive run.
struct ProgressiveResult {
  ResolutionRun run;
  /// Cumulative realized benefit after each match (parallel to run.matches).
  std::vector<double> benefit_trace;
  /// Pairs scheduled purely by the update phase (absent from blocking).
  uint64_t discovered_pairs = 0;
  /// ... of which were confirmed as matches.
  uint64_t discovered_matches = 0;
  /// Matches that needed neighbor evidence to clear the threshold (profile
  /// similarity alone was below it).
  uint64_t evidence_assisted_matches = 0;
  /// Scheduling overhead: total heap pushes.
  uint64_t scheduler_pushes = 0;
};

class ThreadPool;

/// Drives the scheduling / matching / update loop over one collection.
class ProgressiveResolver {
 public:
  /// `pool` (optional, caller-owned, must outlive the resolver) serves the
  /// batch-parallel setup phase; without it a transient pool is spawned
  /// when options.num_threads calls for one.
  ProgressiveResolver(const EntityCollection& collection,
                      const NeighborGraph& graph,
                      const SimilarityEvaluator& evaluator,
                      ProgressiveOptions options, ThreadPool* pool = nullptr);

  /// Resolves from the given initial candidates (meta-blocking output:
  /// weighted comparisons). Weights are normalized to [0, 1] likelihoods.
  ProgressiveResult Resolve(const std::vector<WeightedComparison>& candidates);

  /// Warm start: `seeds` are trusted equivalences known before matching —
  /// existing owl:sameAs interlinks, or the output of a previous
  /// pay-as-you-go session. They are recorded into the resolution state at
  /// zero budget cost and propagated through the update phase, so their
  /// neighborhoods are prioritized from the first comparison on. Seeds do
  /// not appear among the returned matches (they were not discovered by
  /// this run).
  ProgressiveResult ResolveWithSeeds(
      const std::vector<WeightedComparison>& candidates,
      const std::vector<Comparison>& seeds);

 private:
  double Likelihood(uint64_t pair) const;
  double Priority(EntityId a, EntityId b, uint64_t pair,
                  ResolutionState& state) const;
  void UpdatePhase(EntityId a, EntityId b, ResolutionState& state,
                   ComparisonScheduler& scheduler, ProgressiveResult& result);

  const EntityCollection* collection_;
  const NeighborGraph* graph_;
  const SimilarityEvaluator* evaluator_;
  ProgressiveOptions options_;
  BenefitEstimator estimator_;
  ThreadPool* pool_;  // optional, not owned

  // Per-run scratch (reset by Resolve).
  std::unordered_map<uint64_t, double> likelihood_;
  std::unordered_map<uint64_t, double> evidence_;
  std::unordered_set<uint64_t> executed_;
};

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_RESOLVER_H_
