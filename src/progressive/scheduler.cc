#include "progressive/scheduler.h"

#include <algorithm>

namespace minoan {

void ComparisonScheduler::Push(uint64_t pair, double priority) {
  const uint64_t version = ++next_version_;
  versions_[pair] = Live{version, priority};
  heap_.push(Entry{priority, pair, version});
  ++total_pushes_;
}

bool ComparisonScheduler::Pop(uint64_t& pair, double& priority) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = versions_.find(top.pair);
    if (it == versions_.end() || it->second.version != top.version) {
      continue;  // stale entry
    }
    versions_.erase(it);
    pair = top.pair;
    priority = top.priority;
    return true;
  }
  return false;
}

std::vector<std::pair<uint64_t, double>> ComparisonScheduler::LiveEntries()
    const {
  std::vector<std::pair<uint64_t, double>> entries;
  entries.reserve(versions_.size());
  for (const auto& [pair, live] : versions_) {
    entries.emplace_back(pair, live.priority);
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

void ComparisonScheduler::RestoreFrom(
    const std::vector<std::pair<uint64_t, double>>& entries,
    uint64_t total_pushes) {
  heap_ = {};
  versions_.clear();
  next_version_ = 0;
  for (const auto& [pair, priority] : entries) {
    const uint64_t version = ++next_version_;
    versions_[pair] = Live{version, priority};
    heap_.push(Entry{priority, pair, version});
  }
  total_pushes_ = total_pushes;
}

double ComparisonScheduler::PriorityOf(uint64_t pair) const {
  auto it = versions_.find(pair);
  return it == versions_.end() ? -1.0 : it->second.priority;
}

}  // namespace minoan
