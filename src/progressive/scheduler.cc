#include "progressive/scheduler.h"

namespace minoan {

void ComparisonScheduler::Push(uint64_t pair, double priority) {
  const uint64_t version = ++next_version_;
  versions_[pair] = Live{version, priority};
  heap_.push(Entry{priority, pair, version});
  ++total_pushes_;
}

bool ComparisonScheduler::Pop(uint64_t& pair, double& priority) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = versions_.find(top.pair);
    if (it == versions_.end() || it->second.version != top.version) {
      continue;  // stale entry
    }
    versions_.erase(it);
    pair = top.pair;
    priority = top.priority;
    return true;
  }
  return false;
}

double ComparisonScheduler::PriorityOf(uint64_t pair) const {
  auto it = versions_.find(pair);
  return it == versions_.end() ? -1.0 : it->second.priority;
}

}  // namespace minoan
