#include "progressive/scheduler.h"

#include <algorithm>

namespace minoan {

void ComparisonScheduler::Push(uint64_t pair, double priority) {
  const uint64_t version = ++next_version_;
  versions_.InsertOrAssign(pair, Live{version, priority});
  heap_.push(Entry{priority, pair, version});
  ++total_pushes_;
}

bool ComparisonScheduler::Pop(uint64_t& pair, double& priority) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const Live* live = versions_.Find(top.pair);
    if (live == nullptr || live->version != top.version) {
      continue;  // stale entry
    }
    versions_.Erase(top.pair);
    pair = top.pair;
    priority = top.priority;
    return true;
  }
  return false;
}

std::vector<std::pair<uint64_t, double>> ComparisonScheduler::LiveEntries()
    const {
  std::vector<std::pair<uint64_t, double>> entries;
  entries.reserve(versions_.size());
  versions_.ForEach([&entries](uint64_t pair, const Live& live) {
    entries.emplace_back(pair, live.priority);
  });
  std::sort(entries.begin(), entries.end());
  return entries;
}

void ComparisonScheduler::RestoreFrom(
    const std::vector<std::pair<uint64_t, double>>& entries,
    uint64_t total_pushes) {
  heap_ = {};
  versions_.Clear();
  versions_.Reserve(entries.size());
  next_version_ = 0;
  for (const auto& [pair, priority] : entries) {
    const uint64_t version = ++next_version_;
    versions_.InsertOrAssign(pair, Live{version, priority});
    heap_.push(Entry{priority, pair, version});
  }
  total_pushes_ = total_pushes;
}

double ComparisonScheduler::PriorityOf(uint64_t pair) const {
  const Live* live = versions_.Find(pair);
  return live == nullptr ? -1.0 : live->priority;
}

}  // namespace minoan
