// Copyright 2026 The MinoanER Authors.
// The comparison scheduler: a lazy max-heap over candidate pairs.
//
// The poster's scheduling phase "selects which pairs of descriptions … will
// be compared in the entity matching phase and in what order". Priorities
// change as matches land (benefit drift, new neighbor evidence), so the heap
// supports cheap priority updates by version-stamped lazy invalidation: a
// pushed entry whose version no longer matches the pair's current version is
// discarded at pop time. No decrease-key, O(log n) per operation.

#ifndef MINOAN_PROGRESSIVE_SCHEDULER_H_
#define MINOAN_PROGRESSIVE_SCHEDULER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "util/flat_table.h"
#include "util/hash.h"

namespace minoan {

/// Max-heap of (priority, pair-key) with version-stamped invalidation.
class ComparisonScheduler {
 public:
  /// Inserts or re-prioritizes `pair`. The newest push wins; older entries
  /// for the same pair become stale.
  void Push(uint64_t pair, double priority);

  /// Pops the highest-priority live pair. Returns false when empty.
  bool Pop(uint64_t& pair, double& priority);

  /// Current (live) priority of `pair`, or -1 when absent.
  double PriorityOf(uint64_t pair) const;

  /// Number of live pairs (not raw heap entries).
  size_t live_size() const { return versions_.size(); }
  bool empty() const { return versions_.empty(); }

  /// Total pushes, for accounting the scheduling overhead.
  uint64_t total_pushes() const { return total_pushes_; }

  /// Removes a pair from the live set (e.g. once executed); any of its heap
  /// entries die lazily.
  void Erase(uint64_t pair) { versions_.Erase(pair); }

  /// Live (pair, priority) entries in canonical (ascending pair) order —
  /// the checkpointable essence of the schedule. Pop order depends only on
  /// (priority, pair), so a scheduler rebuilt from this list pops the exact
  /// same sequence as the original, even though version stamps differ.
  std::vector<std::pair<uint64_t, double>> LiveEntries() const;

  /// Resets to exactly `entries` live pairs (one heap entry each) and
  /// restores the push counter, completing a checkpoint round trip.
  void RestoreFrom(const std::vector<std::pair<uint64_t, double>>& entries,
                   uint64_t total_pushes);

 private:
  struct Entry {
    double priority;
    uint64_t pair;
    uint64_t version;
    bool operator<(const Entry& o) const {
      // std::priority_queue is a max-heap on operator<.
      if (priority != o.priority) return priority < o.priority;
      return pair > o.pair;  // deterministic tie-break: smaller pair first
    }
  };

  struct Live {
    uint64_t version;
    double priority;
  };

  std::priority_queue<Entry> heap_;
  /// Live pairs in a flat open-addressing table: the per-pop staleness
  /// check is one cache-line probe instead of a node chase. Iteration
  /// order is hidden behind the sorted LiveEntries() export.
  FlatPairMap<Live> versions_;
  uint64_t next_version_ = 0;
  uint64_t total_pushes_ = 0;
};

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_SCHEDULER_H_
