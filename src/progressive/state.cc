#include "progressive/state.h"

#include <algorithm>

#include "text/similarity.h"

namespace minoan {

ResolutionState::ResolutionState(const EntityCollection& collection,
                                 const NeighborGraph* graph)
    : collection_(&collection), graph_(graph), clusters_(0) {
  if (collection.num_entities() > 0) {
    AddEntity(static_cast<EntityId>(collection.num_entities() - 1));
  }
}

void ResolutionState::AddEntity(EntityId id) {
  if (id < values_.size()) return;
  clusters_.Resize(id + 1);
  const size_t old = values_.size();
  values_.resize(id + 1);
  for (size_t e = old; e <= id; ++e) {
    auto& vals = values_[e];
    const EntityDescription& desc = collection_->entity(
        static_cast<EntityId>(e));
    vals.reserve(desc.attributes.size());
    for (const Attribute& attr : desc.attributes) vals.push_back(attr.value);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }
}

bool ResolutionState::RecordMatch(EntityId a, EntityId b) {
  ++matches_recorded_;
  const uint32_t ra = clusters_.Find(a);
  const uint32_t rb = clusters_.Find(b);
  if (ra == rb) return false;
  if (!clusters_.Union(ra, rb)) return false;
  const uint32_t root = clusters_.Find(a);
  const uint32_t other = root == ra ? rb : ra;
  // Merge the absorbed profile into the surviving root's profile.
  auto& dst = values_[root];
  auto& src = values_[other];
  std::vector<uint32_t> merged;
  merged.reserve(dst.size() + src.size());
  std::merge(dst.begin(), dst.end(), src.begin(), src.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  dst = std::move(merged);
  src.clear();
  src.shrink_to_fit();
  return true;
}

uint32_t ResolutionState::ValueGain(EntityId a, EntityId b) {
  const auto& va = ClusterValues(a);
  const auto& vb = ClusterValues(b);
  const size_t inter = IntersectionSize(va, vb);
  const size_t merged = va.size() + vb.size() - inter;
  const size_t larger = std::max(va.size(), vb.size());
  return static_cast<uint32_t>(merged - larger);
}

std::span<const EntityId> ResolutionState::NeighborsOf(EntityId e) const {
  // Entities appended after a frozen graph was built fall through to the
  // dynamic adjacency (or to no neighbors) instead of reading past the CSR.
  if (graph_ != nullptr && e < graph_->num_entities()) {
    return graph_->Neighbors(e);
  }
  if (dynamic_neighbors_ != nullptr && e < dynamic_neighbors_->size()) {
    const auto& list = (*dynamic_neighbors_)[e];
    return std::span<const EntityId>(list.data(), list.size());
  }
  return {};
}

double ResolutionState::MatchedNeighborFraction(EntityId a, EntityId b,
                                                uint32_t cap) {
  auto na = NeighborsOf(a);
  auto nb = NeighborsOf(b);
  if (na.empty() || nb.empty()) return 0.0;
  const size_t la = std::min<size_t>(na.size(), cap);
  const size_t lb = std::min<size_t>(nb.size(), cap);
  uint32_t matched = 0;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      if (na[i] != nb[j] && clusters_.SameSet(na[i], nb[j])) ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(la * lb);
}

uint32_t ResolutionState::MatchedNeighborPairs(EntityId a, EntityId b,
                                               uint32_t cap) {
  auto na = NeighborsOf(a);
  auto nb = NeighborsOf(b);
  const size_t la = std::min<size_t>(na.size(), cap);
  const size_t lb = std::min<size_t>(nb.size(), cap);
  uint32_t matched = 0;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      if (na[i] != nb[j] && clusters_.SameSet(na[i], nb[j])) ++matched;
    }
  }
  return matched;
}

}  // namespace minoan
