#include "progressive/state.h"

#include <algorithm>

#include "text/similarity.h"

namespace minoan {

ResolutionState::ResolutionState(const EntityCollection& collection,
                                 const NeighborGraph* graph)
    : collection_(&collection),
      graph_(graph),
      clusters_(collection.num_entities()),
      values_(collection.num_entities()) {
  for (const EntityDescription& desc : collection.entities()) {
    auto& vals = values_[desc.id];
    vals.reserve(desc.attributes.size());
    for (const Attribute& attr : desc.attributes) {
      vals.push_back(attr.value);
    }
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }
}

bool ResolutionState::RecordMatch(EntityId a, EntityId b) {
  ++matches_recorded_;
  const uint32_t ra = clusters_.Find(a);
  const uint32_t rb = clusters_.Find(b);
  if (ra == rb) return false;
  if (!clusters_.Union(ra, rb)) return false;
  const uint32_t root = clusters_.Find(a);
  const uint32_t other = root == ra ? rb : ra;
  // Merge the absorbed profile into the surviving root's profile.
  auto& dst = values_[root];
  auto& src = values_[other];
  std::vector<uint32_t> merged;
  merged.reserve(dst.size() + src.size());
  std::merge(dst.begin(), dst.end(), src.begin(), src.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  dst = std::move(merged);
  src.clear();
  src.shrink_to_fit();
  return true;
}

uint32_t ResolutionState::ValueGain(EntityId a, EntityId b) {
  const auto& va = ClusterValues(a);
  const auto& vb = ClusterValues(b);
  const size_t inter = IntersectionSize(va, vb);
  const size_t merged = va.size() + vb.size() - inter;
  const size_t larger = std::max(va.size(), vb.size());
  return static_cast<uint32_t>(merged - larger);
}

double ResolutionState::MatchedNeighborFraction(EntityId a, EntityId b,
                                                uint32_t cap) {
  if (graph_ == nullptr) return 0.0;
  auto na = graph_->Neighbors(a);
  auto nb = graph_->Neighbors(b);
  if (na.empty() || nb.empty()) return 0.0;
  const size_t la = std::min<size_t>(na.size(), cap);
  const size_t lb = std::min<size_t>(nb.size(), cap);
  uint32_t matched = 0;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      if (na[i] != nb[j] && clusters_.SameSet(na[i], nb[j])) ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(la * lb);
}

uint32_t ResolutionState::MatchedNeighborPairs(EntityId a, EntityId b,
                                               uint32_t cap) {
  if (graph_ == nullptr) return 0;
  auto na = graph_->Neighbors(a);
  auto nb = graph_->Neighbors(b);
  const size_t la = std::min<size_t>(na.size(), cap);
  const size_t lb = std::min<size_t>(nb.size(), cap);
  uint32_t matched = 0;
  for (size_t i = 0; i < la; ++i) {
    for (size_t j = 0; j < lb; ++j) {
      if (na[i] != nb[j] && clusters_.SameSet(na[i], nb[j])) ++matched;
    }
  }
  return matched;
}

}  // namespace minoan
