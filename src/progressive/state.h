// Copyright 2026 The MinoanER Authors.
// Mutable resolution state: clusters, cluster profiles, neighbor bookkeeping.
//
// The progressive resolver updates this state after every confirmed match;
// benefit estimators read it to score candidate comparisons against the
// *current* partial result — the essence of pay-as-you-go ER.

#ifndef MINOAN_PROGRESSIVE_STATE_H_
#define MINOAN_PROGRESSIVE_STATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/collection.h"
#include "kb/entity.h"
#include "kb/neighbor_graph.h"
#include "matching/union_find.h"

namespace minoan {

/// Tracks the partial resolution result during a progressive run.
class ResolutionState {
 public:
  ResolutionState(const EntityCollection& collection,
                  const NeighborGraph* graph);

  /// Records the match (a, b): merges clusters and cluster profiles.
  /// Returns true when the two were not already in the same cluster.
  bool RecordMatch(EntityId a, EntityId b);

  /// Extends the state to cover entities appended to the collection after
  /// construction (online mode): every id in [previous size, id] becomes a
  /// singleton cluster whose profile is its own attribute values. No-op for
  /// ids already covered.
  void AddEntity(EntityId id);

  /// Online alternative to the frozen NeighborGraph: a growable adjacency
  /// (indexed by entity id) consulted when no graph was given at
  /// construction. The pointee must outlive this state and may grow; order
  /// within each list is irrelevant.
  void SetDynamicNeighbors(
      const std::vector<std::vector<EntityId>>* adjacency) {
    dynamic_neighbors_ = adjacency;
  }

  bool SameCluster(EntityId a, EntityId b) {
    return clusters_.SameSet(a, b);
  }
  uint32_t ClusterSize(EntityId e) { return clusters_.SetSize(e); }

  /// Sorted distinct attribute-value ids of e's cluster.
  const std::vector<uint32_t>& ClusterValues(EntityId e) {
    return values_[clusters_.Find(e)];
  }

  /// Number of values the merged cluster of (a, b) would gain relative to
  /// the larger constituent — the attribute-completeness gain of the match.
  uint32_t ValueGain(EntityId a, EntityId b);

  /// Fraction of neighbor pairs (na ∈ N(a), nb ∈ N(b)) already resolved to
  /// the same cluster; 0 when either side has no neighbors. Neighbor lists
  /// are truncated to `cap` entries per side.
  double MatchedNeighborFraction(EntityId a, EntityId b, uint32_t cap);

  /// Count (not fraction) of already-co-clustered neighbor pairs.
  uint32_t MatchedNeighborPairs(EntityId a, EntityId b, uint32_t cap);

  UnionFind& clusters() { return clusters_; }
  uint64_t matches_recorded() const { return matches_recorded_; }

 private:
  std::span<const EntityId> NeighborsOf(EntityId e) const;

  const EntityCollection* collection_;
  const NeighborGraph* graph_;  // may be null (no relationship reasoning)
  const std::vector<std::vector<EntityId>>* dynamic_neighbors_ = nullptr;
  UnionFind clusters_;
  /// Per current root: sorted distinct value ids of the cluster profile.
  std::vector<std::vector<uint32_t>> values_;
  uint64_t matches_recorded_ = 0;
};

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_STATE_H_
