// Copyright 2026 The MinoanER Authors.
// The shared budgeted stepping core of MinoanER's progressive loop.
//
// Both progressive drivers — the batch ProgressiveResolver and the online
// OnlineResolver — spend a comparison budget the same way: pop the
// highest-priority candidate, skip already-executed pairs, re-queue entries
// whose priority drifted down past the staleness tolerance, execute the
// rest. Only the storage behind those four decisions differs (two hash maps
// and a frozen graph in batch, one PairState map and a growable adjacency
// online), so the loop itself lives here once, parameterized by callables.
//
// The invariant this file owes its callers: for any n, running the loop
// with max_comparisons = n/2 twice executes the byte-identical comparison
// sequence as running it once with n — the pay-as-you-go contract of the
// Session API.

#ifndef MINOAN_PROGRESSIVE_STEP_CORE_H_
#define MINOAN_PROGRESSIVE_STEP_CORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "kb/entity.h"
#include "matching/matcher.h"
#include "obs/metrics.h"
#include "progressive/scheduler.h"
#include "util/hash.h"

namespace minoan {

/// Outcome of one budgeted stepping call (batch session or online engine).
struct StepResult {
  /// Comparisons executed by THIS call.
  uint64_t comparisons = 0;
  /// Matches confirmed by this call (comparisons_done stamps are cumulative
  /// across the whole resolution).
  std::vector<MatchEvent> matches;
  /// True when the queue drained before the budget was spent.
  bool exhausted = false;
  /// Wall time this call took (filled by the session-level drivers;
  /// observational, never part of any determinism contract).
  double wall_millis = 0.0;
  /// Metrics-registry snapshot taken as the call returned (filled by
  /// ResolutionSession::Step while the registry is enabled; null
  /// otherwise). Shared: snapshots are immutable once taken.
  std::shared_ptr<const obs::StatsSnapshot> stats;
};

/// Pops and executes up to `max_comparisons` scheduled comparisons
/// (0 = no per-call cap). The driver supplies four callables:
///
///   should_stop()                  — extra stop condition checked before
///                                    every pop (overall budget, wall clock);
///   already_executed(pair)         — popped pair was executed earlier;
///   current_priority(a, b, pair)   — priority against the CURRENT state,
///                                    for the staleness re-queue rule;
///   execute(pair, a, b)            — run the comparison (matching + update
///                                    phase); counted against the budget.
///
/// Returns the comparisons spent and whether the queue drained; confirmed
/// matches are recorded by `execute` on the driver's side.
template <typename StopFn, typename ExecutedFn, typename PriorityFn,
          typename ExecuteFn>
StepResult RunScheduledComparisons(ComparisonScheduler& scheduler,
                                   uint64_t max_comparisons,
                                   double staleness_tolerance,
                                   StopFn&& should_stop,
                                   ExecutedFn&& already_executed,
                                   PriorityFn&& current_priority,
                                   ExecuteFn&& execute) {
  StepResult out;
  uint64_t pair = 0;
  double popped_priority = 0.0;
  while (max_comparisons == 0 || out.comparisons < max_comparisons) {
    if (should_stop()) break;
    if (!scheduler.Pop(pair, popped_priority)) {
      out.exhausted = true;
      break;
    }
    if (already_executed(pair)) continue;
    const EntityId a = PairKeyFirst(pair);
    const EntityId b = PairKeySecond(pair);
    // Priority drift: the state may have changed since this entry was
    // pushed. Re-queue significantly stale entries instead of executing.
    const double current = current_priority(a, b, pair);
    if (current + 1e-12 < popped_priority * (1.0 - staleness_tolerance)) {
      scheduler.Push(pair, current);
      continue;
    }
    execute(pair, a, b);
    ++out.comparisons;
  }
  return out;
}

}  // namespace minoan

#endif  // MINOAN_PROGRESSIVE_STEP_CORE_H_
