#include "rdf/iri.h"

namespace minoan {
namespace rdf {

namespace {
constexpr std::string_view kSchemeSep = "://";
}  // namespace

bool LooksLikeAbsoluteIri(std::string_view iri) {
  const size_t sep = iri.find(kSchemeSep);
  if (sep == std::string_view::npos || sep == 0) return false;
  for (size_t i = 0; i < sep; ++i) {
    const char c = iri[i];
    const bool scheme_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                             (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                             c == '.';
    if (!scheme_char) return false;
  }
  return true;
}

std::string_view IriNamespace(std::string_view iri) {
  const size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos) return iri.substr(0, hash + 1);
  const size_t slash = iri.rfind('/');
  if (slash != std::string_view::npos) return iri.substr(0, slash + 1);
  return std::string_view();
}

std::string_view IriLocalName(std::string_view iri) {
  const size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos) return iri.substr(hash + 1);
  const size_t slash = iri.rfind('/');
  if (slash != std::string_view::npos) return iri.substr(slash + 1);
  return iri;
}

IriParts SplitIri(std::string_view iri) {
  IriParts parts;
  if (!LooksLikeAbsoluteIri(iri)) {
    parts.suffix = std::string(iri);
    return parts;
  }
  const size_t sep = iri.find(kSchemeSep);
  const size_t authority_start = sep + kSchemeSep.size();
  size_t path_start = iri.find('/', authority_start);
  if (path_start == std::string_view::npos) {
    parts.prefix = std::string(iri);
    return parts;
  }
  parts.prefix = std::string(iri.substr(0, path_start));

  std::string_view rest = iri.substr(path_start);  // begins with '/'
  const size_t hash = rest.rfind('#');
  if (hash != std::string_view::npos && hash + 1 < rest.size()) {
    parts.infix = std::string(rest.substr(0, hash));
    parts.suffix = std::string(rest.substr(hash + 1));
    return parts;
  }
  // Use the final path segment as suffix (ignoring a trailing slash).
  std::string_view trimmed = rest;
  while (!trimmed.empty() && trimmed.back() == '/') {
    trimmed.remove_suffix(1);
  }
  const size_t last_slash = trimmed.rfind('/');
  if (last_slash == std::string_view::npos || trimmed.empty()) {
    parts.suffix = std::string(trimmed);
    return parts;
  }
  parts.infix = std::string(trimmed.substr(0, last_slash));
  parts.suffix = std::string(trimmed.substr(last_slash + 1));
  return parts;
}

}  // namespace rdf
}  // namespace minoan
