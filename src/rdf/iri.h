// Copyright 2026 The MinoanER Authors.
// IRI structure utilities.
//
// Linked Data IRIs are semi-structured names: a namespace ("prefix"), an
// optional path ("infix"), and a local identifier ("suffix"). MinoanER's
// URI-aware blocking (prefix-infix-suffix, after Papadakis et al.) keys
// descriptions by these components, because two KBs describing the same
// entity frequently mint IRIs that share the suffix (e.g.
// dbpedia.org/resource/Heraklion vs example.org/place/Heraklion) even when
// their literal values share no tokens.

#ifndef MINOAN_RDF_IRI_H_
#define MINOAN_RDF_IRI_H_

#include <string>
#include <string_view>

namespace minoan {
namespace rdf {

/// The three-part decomposition of an IRI.
struct IriParts {
  std::string prefix;  // scheme + authority, e.g. "http://dbpedia.org"
  std::string infix;   // interior path, e.g. "/resource"
  std::string suffix;  // final segment or fragment, e.g. "Heraklion"
};

/// Splits `iri` into prefix/infix/suffix. The suffix is the fragment when a
/// '#' is present, else the last path segment; the prefix is scheme +
/// authority; the infix is whatever lies between. Never fails: degenerate
/// IRIs land fully in `suffix`.
IriParts SplitIri(std::string_view iri);

/// Returns the namespace part (everything up to and including the last '#'
/// or '/'). Used for vocabulary statistics.
std::string_view IriNamespace(std::string_view iri);

/// Returns the local name (everything after the last '#' or '/').
std::string_view IriLocalName(std::string_view iri);

/// Heuristically true when `iri` looks absolute (scheme "://" present).
bool LooksLikeAbsoluteIri(std::string_view iri);

}  // namespace rdf
}  // namespace minoan

#endif  // MINOAN_RDF_IRI_H_
