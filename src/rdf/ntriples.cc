#include "rdf/ntriples.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace minoan {
namespace rdf {

namespace {

/// Cursor over one line with error context.
class Cursor {
 public:
  explicit Cursor(std::string_view line) : line_(line) {}

  bool AtEnd() const { return pos_ >= line_.size(); }
  char Peek() const { return pos_ < line_.size() ? line_[pos_] : '\0'; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < line_.size() ? line_[pos_ + offset] : '\0';
  }
  char Next() { return pos_ < line_.size() ? line_[pos_++] : '\0'; }
  size_t pos() const { return pos_; }

  void SkipWhitespace() {
    while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at column " + std::to_string(pos_ + 1));
  }

 private:
  std::string_view line_;
  size_t pos_ = 0;
};

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

uint32_t HexValue(char c) {
  if (c >= '0' && c <= '9') return static_cast<uint32_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<uint32_t>(c - 'a' + 10);
  return static_cast<uint32_t>(c - 'A' + 10);
}

/// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string& out) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Decodes one backslash escape (cursor is positioned after the backslash).
Status DecodeEscape(Cursor& cur, std::string& out) {
  const char kind = cur.Next();
  switch (kind) {
    case 't':
      out += '\t';
      return Status::Ok();
    case 'b':
      out += '\b';
      return Status::Ok();
    case 'n':
      out += '\n';
      return Status::Ok();
    case 'r':
      out += '\r';
      return Status::Ok();
    case 'f':
      out += '\f';
      return Status::Ok();
    case '"':
      out += '"';
      return Status::Ok();
    case '\'':
      out += '\'';
      return Status::Ok();
    case '\\':
      out += '\\';
      return Status::Ok();
    case 'u':
    case 'U': {
      const int digits = kind == 'u' ? 4 : 8;
      uint32_t cp = 0;
      for (int i = 0; i < digits; ++i) {
        const char h = cur.Next();
        if (!IsHexDigit(h)) return cur.Error("bad \\u escape");
        cp = (cp << 4) | HexValue(h);
      }
      if (cp > 0x10FFFF) return cur.Error("code point out of range");
      AppendUtf8(cp, out);
      return Status::Ok();
    }
    default:
      return cur.Error(std::string("unknown escape \\") + kind);
  }
}

/// Parses <IRIREF>; cursor positioned at '<'.
Status ParseIri(Cursor& cur, Term& out) {
  cur.Next();  // consume '<'
  std::string iri;
  for (;;) {
    if (cur.AtEnd()) return cur.Error("unterminated IRI");
    char c = cur.Next();
    if (c == '>') break;
    if (c == '\\') {
      MINOAN_RETURN_IF_ERROR(DecodeEscape(cur, iri));
    } else if (c == ' ' || c == '"' || c == '{' || c == '}' || c == '|' ||
               c == '^' || c == '`' || static_cast<unsigned char>(c) < 0x21) {
      return cur.Error("illegal character in IRI");
    } else {
      iri += c;
    }
  }
  if (iri.empty()) return cur.Error("empty IRI");
  out = Term::Iri(std::move(iri));
  return Status::Ok();
}

bool IsPnCharBase(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) ||
         static_cast<unsigned char>(c) >= 0x80;
}

/// Parses _:label; cursor positioned at '_'.
Status ParseBlank(Cursor& cur, Term& out) {
  cur.Next();  // '_'
  if (cur.Next() != ':') return cur.Error("expected ':' after '_'");
  std::string label;
  // First char: letter/digit/underscore.
  if (!(IsPnCharBase(cur.Peek()) || cur.Peek() == '_')) {
    return cur.Error("bad blank node label");
  }
  for (;;) {
    const char c = cur.Peek();
    if (IsPnCharBase(c) || c == '_' || c == '-') {
      label += cur.Next();
    } else if (c == '.' && (IsPnCharBase(cur.PeekAt(1)) ||
                            cur.PeekAt(1) == '_' || cur.PeekAt(1) == '-')) {
      // An interior '.' is part of the label; a trailing '.' is the
      // statement terminator and must be left unconsumed.
      label += cur.Next();
    } else {
      break;
    }
  }
  if (label.empty()) return cur.Error("empty blank node label");
  out = Term::Blank(std::move(label));
  return Status::Ok();
}

/// Parses "literal"(@lang | ^^<iri>)?; cursor positioned at '"'.
Status ParseLiteral(Cursor& cur, Term& out) {
  cur.Next();  // '"'
  std::string value;
  for (;;) {
    if (cur.AtEnd()) return cur.Error("unterminated literal");
    char c = cur.Next();
    if (c == '"') break;
    if (c == '\\') {
      MINOAN_RETURN_IF_ERROR(DecodeEscape(cur, value));
    } else {
      value += c;
    }
  }
  std::string language, datatype;
  if (cur.Peek() == '@') {
    cur.Next();
    while (std::isalnum(static_cast<unsigned char>(cur.Peek())) ||
           cur.Peek() == '-') {
      language += cur.Next();
    }
    if (language.empty()) return cur.Error("empty language tag");
  } else if (cur.Peek() == '^') {
    cur.Next();
    if (cur.Next() != '^') return cur.Error("expected '^^'");
    if (cur.Peek() != '<') return cur.Error("expected datatype IRI");
    Term dt;
    MINOAN_RETURN_IF_ERROR(ParseIri(cur, dt));
    datatype = std::move(dt.lexical);
  }
  out = Term::Literal(std::move(value), std::move(datatype),
                      std::move(language));
  return Status::Ok();
}

Status ParseSubject(Cursor& cur, Term& out) {
  if (cur.Peek() == '<') return ParseIri(cur, out);
  if (cur.Peek() == '_') return ParseBlank(cur, out);
  return cur.Error("subject must be IRI or blank node");
}

Status ParseObject(Cursor& cur, Term& out) {
  if (cur.Peek() == '<') return ParseIri(cur, out);
  if (cur.Peek() == '_') return ParseBlank(cur, out);
  if (cur.Peek() == '"') return ParseLiteral(cur, out);
  return cur.Error("object must be IRI, blank node, or literal");
}

}  // namespace

Status NTriplesParser::ParseLine(std::string_view line, Triple& out,
                                 bool& is_triple) const {
  is_triple = false;
  if (line.size() > options_.max_line_bytes) {
    return Status::ParseError("line exceeds max_line_bytes");
  }
  Cursor cur(line);
  cur.SkipWhitespace();
  if (cur.AtEnd() || cur.Peek() == '#') return Status::Ok();

  MINOAN_RETURN_IF_ERROR(ParseSubject(cur, out.subject));
  cur.SkipWhitespace();
  if (cur.Peek() != '<') return cur.Error("predicate must be an IRI");
  MINOAN_RETURN_IF_ERROR(ParseIri(cur, out.predicate));
  cur.SkipWhitespace();
  MINOAN_RETURN_IF_ERROR(ParseObject(cur, out.object));
  cur.SkipWhitespace();
  if (cur.Next() != '.') return cur.Error("missing statement terminator '.'");
  cur.SkipWhitespace();
  if (!cur.AtEnd() && cur.Peek() != '#') {
    return cur.Error("trailing content after '.'");
  }
  is_triple = true;
  return Status::Ok();
}

Status NTriplesParser::ParseStream(std::istream& in,
                                   const std::function<void(Triple&&)>& sink,
                                   ParseStats* stats) const {
  std::string line;
  ParseStats local;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ++local.lines;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    Triple triple;
    bool is_triple = false;
    Status st = ParseLine(line, triple, is_triple);
    if (!st.ok()) {
      if (options_.strict) {
        if (stats) *stats = local;
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  st.message());
      }
      ++local.skipped;
      continue;
    }
    if (is_triple) {
      ++local.triples;
      sink(std::move(triple));
    } else {
      ++local.comments;
    }
  }
  if (stats) *stats = local;
  return Status::Ok();
}

Result<std::vector<Triple>> NTriplesParser::ParseFile(const std::string& path,
                                                      ParseStats* stats) const {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<Triple> triples;
  MINOAN_RETURN_IF_ERROR(ParseStream(
      in, [&](Triple&& t) { triples.push_back(std::move(t)); }, stats));
  return triples;
}

Result<std::vector<Triple>> NTriplesParser::ParseString(
    std::string_view document, ParseStats* stats) const {
  std::istringstream in{std::string(document)};
  std::vector<Triple> triples;
  MINOAN_RETURN_IF_ERROR(ParseStream(
      in, [&](Triple&& t) { triples.push_back(std::move(t)); }, stats));
  return triples;
}

}  // namespace rdf
}  // namespace minoan
