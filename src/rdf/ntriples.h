// Copyright 2026 The MinoanER Authors.
// N-Triples reader and writer (the Linked-Data ingestion substrate).
//
// The parser implements the W3C N-Triples grammar restricted to what Linked
// Open Data dumps actually use: one triple per line, `#` comments, IRIREF,
// BLANK_NODE_LABEL, STRING_LITERAL_QUOTE with language tag or datatype, and
// the string escape sequences \t \b \n \r \f \" \' \\ \uXXXX \UXXXXXXXX.
// Malformed lines are reported with line numbers; callers choose strict
// (first error aborts) or lenient (skip-and-count) mode, because periphery
// LOD dumps are routinely dirty.

#ifndef MINOAN_RDF_NTRIPLES_H_
#define MINOAN_RDF_NTRIPLES_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace minoan {
namespace rdf {

/// Parser configuration.
struct NTriplesOptions {
  /// When false, a malformed line is skipped and counted instead of aborting.
  bool strict = false;
  /// Hard cap on accepted line length (defense against corrupt dumps).
  size_t max_line_bytes = 1 << 20;
};

/// Statistics of one parse run.
struct ParseStats {
  uint64_t lines = 0;
  uint64_t triples = 0;
  uint64_t comments = 0;
  uint64_t skipped = 0;  // malformed lines in lenient mode
};

/// Streaming N-Triples parser.
class NTriplesParser {
 public:
  explicit NTriplesParser(NTriplesOptions options = NTriplesOptions())
      : options_(options) {}

  /// Parses a single N-Triples line (without trailing newline) into `out`.
  /// Returns OK and sets `is_triple=false` for blank/comment lines.
  Status ParseLine(std::string_view line, Triple& out, bool& is_triple) const;

  /// Parses an entire stream, invoking `sink` for every triple. Returns the
  /// first error in strict mode; in lenient mode always OK (inspect stats).
  Status ParseStream(std::istream& in,
                     const std::function<void(Triple&&)>& sink,
                     ParseStats* stats = nullptr) const;

  /// Convenience: parses a whole file into a vector.
  Result<std::vector<Triple>> ParseFile(const std::string& path,
                                        ParseStats* stats = nullptr) const;

  /// Convenience: parses an in-memory document into a vector.
  Result<std::vector<Triple>> ParseString(std::string_view document,
                                          ParseStats* stats = nullptr) const;

 private:
  NTriplesOptions options_;
};

/// Serializes triples to an N-Triples stream (one line each).
class NTriplesWriter {
 public:
  explicit NTriplesWriter(std::ostream& out) : out_(out) {}

  void Write(const Triple& triple) { out_ << triple.ToNTriples() << "\n"; }

  void WriteAll(const std::vector<Triple>& triples) {
    for (const auto& t : triples) Write(t);
  }

 private:
  std::ostream& out_;
};

}  // namespace rdf
}  // namespace minoan

#endif  // MINOAN_RDF_NTRIPLES_H_
