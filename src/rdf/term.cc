#include "rdf/term.h"

#include <cstdio>

namespace minoan {
namespace rdf {

std::string EscapeNTriples(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + EscapeNTriples(lexical) + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriples(lexical) + "\"";
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty() && datatype != kXsdString) {
        out += "^^<" + EscapeNTriples(datatype) + ">";
      }
      return out;
    }
  }
  return "";
}

std::string Triple::ToNTriples() const {
  return subject.ToNTriples() + " " + predicate.ToNTriples() + " " +
         object.ToNTriples() + " .";
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToNTriples();
}

std::ostream& operator<<(std::ostream& os, const Triple& triple) {
  return os << triple.ToNTriples();
}

}  // namespace rdf
}  // namespace minoan
