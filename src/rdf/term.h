// Copyright 2026 The MinoanER Authors.
// RDF term and triple model.
//
// MinoanER consumes Linked Data serialized as N-Triples. A term is an IRI, a
// blank node, or a literal (optionally typed or language-tagged); a triple is
// (subject, predicate, object) where subject is IRI/blank, predicate is IRI,
// object is any term.

#ifndef MINOAN_RDF_TERM_H_
#define MINOAN_RDF_TERM_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace minoan {
namespace rdf {

enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// One RDF term. `lexical` holds the IRI string (no angle brackets), the
/// blank-node label (no "_:" prefix), or the literal's lexical form
/// (unescaped). For literals, `datatype` optionally holds the datatype IRI
/// and `language` the BCP-47 tag (mutually exclusive per the RDF spec; the
/// parser enforces this).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;
  std::string datatype;  // literals only; empty = xsd:string implied
  std::string language;  // literals only

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.lexical = std::move(iri);
    return t;
  }
  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.lexical = std::move(label);
    return t;
  }
  static Term Literal(std::string value, std::string datatype = "",
                      std::string language = "") {
    Term t;
    t.kind = TermKind::kLiteral;
    t.lexical = std::move(value);
    t.datatype = std::move(datatype);
    t.language = std::move(language);
    return t;
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_literal() const { return kind == TermKind::kLiteral; }

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && language == other.language;
  }

  /// Serializes in N-Triples syntax (with escaping).
  std::string ToNTriples() const;
};

std::ostream& operator<<(std::ostream& os, const Term& term);

/// One RDF statement.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }

  /// One N-Triples line including the trailing " .".
  std::string ToNTriples() const;
};

std::ostream& operator<<(std::ostream& os, const Triple& triple);

/// Escapes a string for inclusion inside an N-Triples literal or IRI.
std::string EscapeNTriples(std::string_view raw);

// Well-known vocabulary IRIs.
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kOwlSameAs =
    "http://www.w3.org/2002/07/owl#sameAs";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";

}  // namespace rdf
}  // namespace minoan

#endif  // MINOAN_RDF_TERM_H_
