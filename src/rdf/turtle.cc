#include "rdf/turtle.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "rdf/iri.h"
#include "rdf/ntriples.h"

namespace minoan {
namespace rdf {

namespace {

constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

bool IsPnLocalChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || static_cast<unsigned char>(c) >= 0x80;
}

/// Minimal relative-IRI resolution sufficient for LOD dumps.
std::string ResolveIri(const std::string& base, const std::string& rel) {
  if (rel.empty()) return base;
  if (LooksLikeAbsoluteIri(rel)) return rel;
  if (base.empty()) return rel;
  if (rel[0] == '#') {
    const size_t hash = base.find('#');
    return base.substr(0, hash) + rel;
  }
  const size_t scheme_end = base.find("://");
  if (scheme_end == std::string::npos) return rel;
  if (rel.rfind("//", 0) == 0) {
    return base.substr(0, scheme_end + 1) + rel;
  }
  const size_t authority_end = base.find('/', scheme_end + 3);
  if (rel[0] == '/') {
    return (authority_end == std::string::npos
                ? base
                : base.substr(0, authority_end)) +
           rel;
  }
  // Relative path: replace everything after the last '/'.
  const size_t last_slash = base.rfind('/');
  if (last_slash == std::string::npos || last_slash < scheme_end + 3) {
    return base + "/" + rel;
  }
  return base.substr(0, last_slash + 1) + rel;
}

/// Recursive-descent Turtle document parser.
class Parser {
 public:
  Parser(std::string_view doc, std::string base)
      : doc_(doc), base_(std::move(base)) {}

  Result<std::vector<Triple>> Run() {
    for (;;) {
      SkipWs();
      if (AtEnd()) break;
      Status st = ParseStatement();
      if (!st.ok()) return Annotate(st);
    }
    return std::move(triples_);
  }

 private:
  // --- lexing helpers ------------------------------------------------------

  bool AtEnd() const { return pos_ >= doc_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < doc_.size() ? doc_[pos_ + ahead] : '\0';
  }
  char Next() { return pos_ < doc_.size() ? doc_[pos_++] : '\0'; }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '#') {
        while (!AtEnd() && Next() != '\n') {
        }
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool ConsumeKeyword(std::string_view word) {
    if (doc_.size() - pos_ < word.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(doc_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    const char after = Peek(word.size());
    if (IsPnLocalChar(after) || after == ':') return false;
    pos_ += word.size();
    return true;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what);
  }

  Status Annotate(const Status& st) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < doc_.size(); ++i) {
      if (doc_[i] == '\n') ++line;
    }
    return Status::ParseError("line " + std::to_string(line) + ": " +
                              st.message());
  }

  // --- grammar -------------------------------------------------------------

  Status ParseStatement() {
    if (Peek() == '@') {
      ++pos_;
      if (ConsumeKeyword("prefix")) return ParsePrefixDirective(true);
      if (ConsumeKeyword("base")) return ParseBaseDirective(true);
      return Error("unknown @directive");
    }
    // SPARQL-style directives (no trailing dot).
    const size_t saved = pos_;
    if (ConsumeKeyword("prefix")) return ParsePrefixDirective(false);
    pos_ = saved;
    if (ConsumeKeyword("base")) return ParseBaseDirective(false);
    pos_ = saved;
    return ParseTriples();
  }

  Status ParsePrefixDirective(bool turtle_style) {
    SkipWs();
    std::string prefix;
    while (IsPnLocalChar(Peek()) || Peek() == '.') prefix += Next();
    if (Next() != ':') return Error("expected ':' in @prefix");
    SkipWs();
    Term iri;
    MINOAN_RETURN_IF_ERROR(ParseIriRef(iri));
    prefixes_[prefix] = iri.lexical;
    SkipWs();
    if (turtle_style && Next() != '.') {
      return Error("expected '.' after @prefix");
    }
    return Status::Ok();
  }

  Status ParseBaseDirective(bool turtle_style) {
    SkipWs();
    Term iri;
    MINOAN_RETURN_IF_ERROR(ParseIriRef(iri));
    base_ = iri.lexical;
    SkipWs();
    if (turtle_style && Next() != '.') return Error("expected '.' after @base");
    return Status::Ok();
  }

  Status ParseTriples() {
    Term subject;
    if (Peek() == '[') {
      MINOAN_RETURN_IF_ERROR(ParseBlankNodePropertyList(subject));
      SkipWs();
      // A bare "[ ... ] ." is legal; predicate list optional after [].
      if (Peek() == '.') {
        ++pos_;
        return Status::Ok();
      }
    } else {
      MINOAN_RETURN_IF_ERROR(ParseSubject(subject));
    }
    MINOAN_RETURN_IF_ERROR(ParsePredicateObjectList(subject));
    SkipWs();
    if (Next() != '.') return Error("expected '.' at end of triples");
    return Status::Ok();
  }

  Status ParsePredicateObjectList(const Term& subject) {
    for (;;) {
      SkipWs();
      Term predicate;
      MINOAN_RETURN_IF_ERROR(ParseVerb(predicate));
      MINOAN_RETURN_IF_ERROR(ParseObjectList(subject, predicate));
      SkipWs();
      if (Peek() != ';') break;
      ++pos_;
      SkipWs();
      // Trailing ';' before '.' or ']' is legal.
      if (Peek() == '.' || Peek() == ']') break;
    }
    return Status::Ok();
  }

  Status ParseObjectList(const Term& subject, const Term& predicate) {
    for (;;) {
      SkipWs();
      Term object;
      MINOAN_RETURN_IF_ERROR(ParseObject(object));
      triples_.push_back({subject, predicate, object});
      SkipWs();
      if (Peek() != ',') break;
      ++pos_;
    }
    return Status::Ok();
  }

  Status ParseVerb(Term& out) {
    if (Peek() == 'a') {
      const char after = Peek(1);
      if (!IsPnLocalChar(after) && after != ':') {
        ++pos_;
        out = Term::Iri(std::string(kRdfType));
        return Status::Ok();
      }
    }
    return ParseIri(out);
  }

  Status ParseSubject(Term& out) {
    SkipWs();
    if (Peek() == '_') return ParseBlankLabel(out);
    if (Peek() == '(') return Error("RDF collections '(...)' not supported");
    return ParseIri(out);
  }

  Status ParseObject(Term& out) {
    SkipWs();
    const char c = Peek();
    if (c == '<') return ParseIriRefResolved(out);
    if (c == '_') return ParseBlankLabel(out);
    if (c == '[') return ParseBlankNodePropertyList(out);
    if (c == '(') return Error("RDF collections '(...)' not supported");
    if (c == '"' || c == '\'') return ParseStringLiteral(out);
    if (c == '+' || c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumericLiteral(out);
    }
    if (ConsumeKeyword("true")) {
      out = Term::Literal("true", std::string(kXsdBoolean));
      return Status::Ok();
    }
    if (ConsumeKeyword("false")) {
      out = Term::Literal("false", std::string(kXsdBoolean));
      return Status::Ok();
    }
    return ParseIri(out);  // prefixed name
  }

  /// '<IRI>' without base resolution (directives resolve differently).
  Status ParseIriRef(Term& out) {
    if (Next() != '<') return Error("expected '<'");
    std::string iri;
    for (;;) {
      if (AtEnd()) return Error("unterminated IRI");
      const char c = Next();
      if (c == '>') break;
      if (c == ' ' || c == '\n') return Error("whitespace inside IRI");
      if (c == '\\') {
        const char esc = Next();
        if (esc == 'u' || esc == 'U') {
          const int digits = esc == 'u' ? 4 : 8;
          uint32_t cp = 0;
          for (int i = 0; i < digits; ++i) {
            const char h = Next();
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return Error("bad \\u escape in IRI");
            }
            cp = cp * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                ? static_cast<uint32_t>(h - '0')
                                : static_cast<uint32_t>(
                                      std::tolower(h) - 'a' + 10));
          }
          // Append UTF-8.
          std::string tmp;
          if (cp < 0x80) {
            tmp += static_cast<char>(cp);
          } else if (cp < 0x800) {
            tmp += static_cast<char>(0xC0 | (cp >> 6));
            tmp += static_cast<char>(0x80 | (cp & 0x3F));
          } else if (cp < 0x10000) {
            tmp += static_cast<char>(0xE0 | (cp >> 12));
            tmp += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            tmp += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            tmp += static_cast<char>(0xF0 | (cp >> 18));
            tmp += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            tmp += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            tmp += static_cast<char>(0x80 | (cp & 0x3F));
          }
          iri += tmp;
        } else {
          return Error("unsupported escape in IRI");
        }
      } else {
        iri += c;
      }
    }
    out = Term::Iri(std::move(iri));
    return Status::Ok();
  }

  Status ParseIriRefResolved(Term& out) {
    MINOAN_RETURN_IF_ERROR(ParseIriRef(out));
    out.lexical = ResolveIri(base_, out.lexical);
    return Status::Ok();
  }

  /// IRIREF or prefixed name.
  Status ParseIri(Term& out) {
    SkipWs();
    if (Peek() == '<') return ParseIriRefResolved(out);
    // Prefixed name: PN_PREFIX? ':' PN_LOCAL.
    std::string prefix;
    while (IsPnLocalChar(Peek()) ||
           (Peek() == '.' && IsPnLocalChar(Peek(1)))) {
      prefix += Next();
    }
    if (Peek() != ':') {
      return Error("expected IRI or prefixed name");
    }
    ++pos_;
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("undefined prefix '" + prefix + ":'");
    }
    std::string local;
    for (;;) {
      const char c = Peek();
      if (IsPnLocalChar(c) || c == ':' || c == '%') {
        local += Next();
      } else if (c == '\\') {
        ++pos_;
        local += Next();  // PN_LOCAL_ESC: take the escaped char verbatim
      } else if (c == '.' &&
                 (IsPnLocalChar(Peek(1)) || Peek(1) == ':' ||
                  Peek(1) == '%')) {
        local += Next();  // interior dot
      } else {
        break;
      }
    }
    out = Term::Iri(it->second + local);
    return Status::Ok();
  }

  Status ParseBlankLabel(Term& out) {
    if (Next() != '_' || Next() != ':') return Error("expected '_:'");
    std::string label;
    while (IsPnLocalChar(Peek()) ||
           (Peek() == '.' && IsPnLocalChar(Peek(1)))) {
      label += Next();
    }
    if (label.empty()) return Error("empty blank node label");
    out = Term::Blank(std::move(label));
    return Status::Ok();
  }

  Status ParseBlankNodePropertyList(Term& out) {
    ++pos_;  // '['
    out = Term::Blank("anon" + std::to_string(++anon_counter_));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    MINOAN_RETURN_IF_ERROR(ParsePredicateObjectList(out));
    SkipWs();
    if (Next() != ']') return Error("expected ']'");
    return Status::Ok();
  }

  Status ParseStringLiteral(Term& out) {
    const char quote = Next();
    if (Peek() == quote && Peek(1) == quote) {
      return Error("triple-quoted strings not supported");
    }
    std::string value;
    for (;;) {
      if (AtEnd()) return Error("unterminated string");
      const char c = Next();
      if (c == quote) break;
      if (c == '\n') return Error("newline in single-line string");
      if (c == '\\') {
        const char esc = Next();
        switch (esc) {
          case 't':
            value += '\t';
            break;
          case 'b':
            value += '\b';
            break;
          case 'n':
            value += '\n';
            break;
          case 'r':
            value += '\r';
            break;
          case 'f':
            value += '\f';
            break;
          case '"':
            value += '"';
            break;
          case '\'':
            value += '\'';
            break;
          case '\\':
            value += '\\';
            break;
          case 'u':
          case 'U': {
            const int digits = esc == 'u' ? 4 : 8;
            uint32_t cp = 0;
            for (int i = 0; i < digits; ++i) {
              const char h = Next();
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Error("bad \\u escape");
              }
              cp = cp * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                  ? static_cast<uint32_t>(h - '0')
                                  : static_cast<uint32_t>(
                                        std::tolower(h) - 'a' + 10));
            }
            if (cp < 0x80) {
              value += static_cast<char>(cp);
            } else if (cp < 0x800) {
              value += static_cast<char>(0xC0 | (cp >> 6));
              value += static_cast<char>(0x80 | (cp & 0x3F));
            } else if (cp < 0x10000) {
              value += static_cast<char>(0xE0 | (cp >> 12));
              value += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              value += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              value += static_cast<char>(0xF0 | (cp >> 18));
              value += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
              value += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              value += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown string escape");
        }
      } else {
        value += c;
      }
    }
    // Language tag or datatype.
    std::string language, datatype;
    if (Peek() == '@') {
      ++pos_;
      while (std::isalnum(static_cast<unsigned char>(Peek())) ||
             Peek() == '-') {
        language += Next();
      }
      if (language.empty()) return Error("empty language tag");
    } else if (Peek() == '^' && Peek(1) == '^') {
      pos_ += 2;
      Term dt;
      MINOAN_RETURN_IF_ERROR(ParseIri(dt));
      datatype = std::move(dt.lexical);
    }
    out = Term::Literal(std::move(value), std::move(datatype),
                        std::move(language));
    return Status::Ok();
  }

  Status ParseNumericLiteral(Term& out) {
    std::string text;
    if (Peek() == '+' || Peek() == '-') text += Next();
    bool has_dot = false, has_exp = false;
    while (std::isdigit(static_cast<unsigned char>(Peek())) ||
           (Peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(Peek(1)))) ||
           Peek() == 'e' || Peek() == 'E') {
      const char c = Next();
      if (c == '.') has_dot = true;
      if (c == 'e' || c == 'E') {
        has_exp = true;
        text += c;
        if (Peek() == '+' || Peek() == '-') text += Next();
        continue;
      }
      text += c;
    }
    if (text.empty() || text == "+" || text == "-") {
      return Error("malformed numeric literal");
    }
    const std::string_view datatype =
        has_exp ? kXsdDouble : (has_dot ? kXsdDecimal : kXsdInteger);
    out = Term::Literal(std::move(text), std::string(datatype));
    return Status::Ok();
  }

  std::string_view doc_;
  size_t pos_ = 0;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
  uint64_t anon_counter_ = 0;
  std::vector<Triple> triples_;
};

}  // namespace

Result<std::vector<Triple>> TurtleParser::ParseString(
    std::string_view document) const {
  Parser parser(document, options_.base_iri);
  return parser.Run();
}

Result<std::vector<Triple>> TurtleParser::ParseFile(
    const std::string& path) const {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str());
}

Result<std::vector<Triple>> LoadTriples(const std::string& path) {
  const size_t dot = path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".ttl" || ext == ".turtle") {
    return TurtleParser().ParseFile(path);
  }
  if (ext == ".nt" || ext == ".ntriples") {
    NTriplesParser parser;
    return parser.ParseFile(path);
  }
  return Status::InvalidArgument("unknown RDF extension: " + path);
}

}  // namespace rdf
}  // namespace minoan
