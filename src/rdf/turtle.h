// Copyright 2026 The MinoanER Authors.
// Turtle (Terse RDF Triple Language) parser — the subset real LOD dumps use.
//
// Supported grammar (W3C Turtle restricted to what DBpedia/GeoNames-style
// dumps contain):
//   * @prefix / PREFIX and @base / BASE directives;
//   * prefixed names (ex:Thing) and relative IRI resolution against @base;
//   * predicate lists (";"), object lists (",");
//   * the "a" keyword for rdf:type;
//   * literals: quoted strings with the N-Triples escapes, language tags,
//     datatypes, plus the numeric (integer/decimal/double) and boolean
//     shorthands;
//   * blank node labels (_:x) and anonymous/nested blank nodes [ ... ];
//   * comments (#) anywhere outside of strings.
//
// Not supported (rejected with a parse error): collections "( ... )",
// triple-quoted strings, and RDF-star. Periphery dumps rarely use them; the
// error message names the construct so users know why a file was rejected.

#ifndef MINOAN_RDF_TURTLE_H_
#define MINOAN_RDF_TURTLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace minoan {
namespace rdf {

/// Turtle parser configuration.
struct TurtleOptions {
  /// Base IRI used before any @base directive (for relative IRIs).
  std::string base_iri;
};

/// Parses a whole Turtle document into triples.
class TurtleParser {
 public:
  explicit TurtleParser(TurtleOptions options) : options_(std::move(options)) {}
  TurtleParser() : options_{} {}

  /// Parses an in-memory document.
  Result<std::vector<Triple>> ParseString(std::string_view document) const;

  /// Parses a file.
  Result<std::vector<Triple>> ParseFile(const std::string& path) const;

 private:
  TurtleOptions options_;
};

/// Loads triples from a path by extension: ".nt" via the N-Triples parser
/// (lenient), ".ttl"/".turtle" via the Turtle parser.
Result<std::vector<Triple>> LoadTriples(const std::string& path);

}  // namespace rdf
}  // namespace minoan

#endif  // MINOAN_RDF_TURTLE_H_
