#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "server/wire.h"
#include "util/serde.h"

namespace minoan {
namespace server {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IoError("connect " + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> Client::Call(MessageId id, std::string_view body) {
  if (!broken_.ok()) return broken_;
  if (Status st = WriteFrame(fd_, static_cast<uint16_t>(id), body);
      !st.ok()) {
    broken_ = st;
    return st;
  }
  Frame reply;
  if (Status st = ReadFrame(fd_, reply); !st.ok()) {
    broken_ = st.code() == StatusCode::kNotFound
                  ? Status::IoError("server closed the connection")
                  : st;
    return broken_;
  }
  std::istringstream in(reply.body);
  MINOAN_RETURN_IF_ERROR(ReadStatusPrefix(in));
  const std::streampos tg = in.tellg();
  const size_t pos =
      tg < 0 ? reply.body.size() : static_cast<size_t>(tg);
  return reply.body.substr(pos);
}

Result<uint64_t> Client::CreateSession(std::string_view tenant,
                                       SessionKind kind,
                                       std::string_view source,
                                       double threshold,
                                       bool use_same_as_seeds,
                                       uint32_t num_threads) {
  std::ostringstream body;
  serde::WriteString(body, tenant);
  serde::WriteU8(body, static_cast<uint8_t>(kind));
  serde::WriteString(body, source);
  serde::WriteDouble(body, threshold);
  serde::WriteU8(body, use_same_as_seeds ? 1 : 0);
  serde::WriteU32(body, num_threads);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kCreateSession, body.str()));
  std::istringstream in(reply);
  uint64_t id = 0;
  if (!serde::ReadU64(in, id)) {
    return Status::ParseError("truncated CreateSession reply");
  }
  return id;
}

namespace {
Result<StepReply> ParseStepReply(const std::string& reply) {
  std::istringstream in(reply);
  StepReply out;
  uint8_t finished = 0;
  uint8_t exhausted = 0;
  if (!serde::ReadU64(in, out.comparisons) ||
      !serde::ReadU64(in, out.matches) || !serde::ReadU8(in, finished) ||
      !serde::ReadU8(in, exhausted) ||
      !serde::ReadU64(in, out.total_comparisons) ||
      !serde::ReadU64(in, out.total_matches)) {
    return Status::ParseError("truncated Step reply");
  }
  out.finished = finished != 0;
  out.exhausted = exhausted != 0;
  return out;
}
}  // namespace

Result<StepReply> Client::Step(uint64_t session, uint64_t budget) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  serde::WriteU64(body, budget);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kStep, body.str()));
  return ParseStepReply(reply);
}

Result<StepReply> Client::ResolveBudget(uint64_t session, uint64_t budget) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  serde::WriteU64(body, budget);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kResolveBudget, body.str()));
  return ParseStepReply(reply);
}

Result<std::vector<MatchEvent>> Client::Matches(uint64_t session,
                                                uint64_t since) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  serde::WriteU64(body, since);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kMatches, body.str()));
  std::istringstream in(reply);
  uint32_t count = 0;
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated Matches reply");
  }
  std::vector<MatchEvent> matches;
  matches.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    MatchEvent m{};
    if (!serde::ReadU32(in, m.a) || !serde::ReadU32(in, m.b) ||
        !serde::ReadU64(in, m.comparisons_done) ||
        !serde::ReadDouble(in, m.similarity)) {
      return Status::ParseError("truncated Matches reply");
    }
    matches.push_back(m);
  }
  return matches;
}

Result<uint64_t> Client::Checkpoint(uint64_t session) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kCheckpoint, body.str()));
  std::istringstream in(reply);
  uint64_t bytes = 0;
  if (!serde::ReadU64(in, bytes)) {
    return Status::ParseError("truncated Checkpoint reply");
  }
  return bytes;
}

Status Client::Close(uint64_t session) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  return Call(MessageId::kClose, body.str()).status();
}

Result<std::vector<EntityId>> Client::Ingest(uint64_t session,
                                             std::string_view kb_name,
                                             std::string_view ntriples) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  serde::WriteString(body, kb_name);
  serde::WriteString(body, ntriples);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kIngest, body.str()));
  std::istringstream in(reply);
  uint32_t count = 0;
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated Ingest reply");
  }
  std::vector<EntityId> ids;
  ids.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    EntityId id = 0;
    if (!serde::ReadU32(in, id)) {
      return Status::ParseError("truncated Ingest reply");
    }
    ids.push_back(id);
  }
  return ids;
}

Result<std::vector<online::QueryCandidate>> Client::Query(uint64_t session,
                                                          EntityId entity,
                                                          uint32_t k) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  serde::WriteU32(body, entity);
  serde::WriteU32(body, k);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kQuery, body.str()));
  std::istringstream in(reply);
  uint32_t count = 0;
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated Query reply");
  }
  std::vector<online::QueryCandidate> candidates;
  candidates.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    online::QueryCandidate c{};
    uint8_t matched = 0;
    if (!serde::ReadU32(in, c.id) || !serde::ReadDouble(in, c.similarity) ||
        !serde::ReadU8(in, matched)) {
      return Status::ParseError("truncated Query reply");
    }
    c.matched = matched != 0;
    candidates.push_back(c);
  }
  return candidates;
}

Result<std::string> Client::Links(uint64_t session) {
  std::ostringstream body;
  serde::WriteU64(body, session);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kLinks, body.str()));
  std::istringstream in(reply);
  std::string text;
  if (!serde::ReadString(in, text, kMaxFrameBytes)) {
    return Status::ParseError("truncated Links reply");
  }
  return text;
}

Result<StatsReply> Client::Stats() {
  MINOAN_ASSIGN_OR_RETURN(std::string reply, Call(MessageId::kStats, {}));
  std::istringstream in(reply);
  StatsReply out;
  if (!serde::ReadU64(in, out.live_sessions) ||
      !serde::ReadU64(in, out.total_sessions)) {
    return Status::ParseError("truncated Stats reply");
  }
  return out;
}

Result<StatsFullReply> Client::StatsFull() {
  std::ostringstream body;
  serde::WriteU8(body, kStatsBodyV2);
  MINOAN_ASSIGN_OR_RETURN(std::string reply,
                          Call(MessageId::kStats, body.str()));
  std::istringstream in(reply);
  StatsFullReply out;
  uint8_t version = 0;
  if (!serde::ReadU8(in, version)) {
    return Status::ParseError("truncated StatsFull reply");
  }
  if (version != kStatsBodyV2) {
    return Status::ParseError("unexpected stats body version " +
                              std::to_string(version));
  }
  if (!serde::ReadU64(in, out.live_sessions) ||
      !serde::ReadU64(in, out.total_sessions)) {
    return Status::ParseError("truncated StatsFull reply");
  }
  uint32_t count = 0;
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated StatsFull counters");
  }
  out.counters.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!serde::ReadString(in, name, 1 << 10) || !serde::ReadU64(in, value)) {
      return Status::ParseError("truncated StatsFull counters");
    }
    out.counters.emplace_back(std::move(name), value);
  }
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated StatsFull gauges");
  }
  out.gauges.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!serde::ReadString(in, name, 1 << 10) || !serde::ReadU64(in, value)) {
      return Status::ParseError("truncated StatsFull gauges");
    }
    out.gauges.emplace_back(std::move(name), static_cast<int64_t>(value));
  }
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated StatsFull histograms");
  }
  out.histograms.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    HistogramStats h;
    if (!serde::ReadString(in, name, 1 << 10) || !serde::ReadU64(in, h.count) ||
        !serde::ReadU64(in, h.sum) || !serde::ReadU64(in, h.min) ||
        !serde::ReadU64(in, h.max) || !serde::ReadDouble(in, h.p50) ||
        !serde::ReadDouble(in, h.p95) || !serde::ReadDouble(in, h.p99)) {
      return Status::ParseError("truncated StatsFull histograms");
    }
    out.histograms.emplace_back(std::move(name), h);
  }
  if (!serde::ReadU32(in, count)) {
    return Status::ParseError("truncated StatsFull tenants");
  }
  out.tenants.reserve(serde::ClampedReserve(count));
  for (uint32_t i = 0; i < count; ++i) {
    TenantStatsEntry t;
    if (!serde::ReadString(in, t.tenant, 1 << 10) ||
        !serde::ReadU64(in, t.sessions) || !serde::ReadU64(in, t.requests) ||
        !serde::ReadU64(in, t.comparisons) || !serde::ReadU64(in, t.matches) ||
        !serde::ReadU64(in, t.spill_bytes) ||
        !serde::ReadDouble(in, t.p50_request_micros) ||
        !serde::ReadDouble(in, t.p95_request_micros) ||
        !serde::ReadDouble(in, t.p99_request_micros)) {
      return Status::ParseError("truncated StatsFull tenants");
    }
    out.tenants.push_back(std::move(t));
  }
  return out;
}

uint64_t StatsFullReply::CounterValue(std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

Status Client::Ping() { return Call(MessageId::kPing, {}).status(); }

}  // namespace server
}  // namespace minoan
