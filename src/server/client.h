// Copyright 2026 The MinoanER Authors.
// Client: the typed library side of the resolution service's wire protocol.
//
// One Client wraps one TCP connection and exposes each request of
// protocol.h as a blocking method returning Result<T>. A transport-level
// failure (torn connection, unframeable reply) poisons the client — every
// later call fails fast with the same kIoError — while a server-side error
// (unknown session, bad argument) is just that call's Status and the
// connection stays usable. Used by `minoan connect`, the lifecycle tests,
// and the CI smoke script.

#ifndef MINOAN_SERVER_CLIENT_H_
#define MINOAN_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "matching/matcher.h"
#include "online/online_resolver.h"
#include "server/protocol.h"
#include "util/status.h"

namespace minoan {
namespace server {

/// Reply of Step / ResolveBudget.
struct StepReply {
  uint64_t comparisons = 0;  // spent by this call
  uint64_t matches = 0;      // confirmed by this call
  bool finished = false;
  bool exhausted = false;
  uint64_t total_comparisons = 0;  // session lifetime
  uint64_t total_matches = 0;
};

/// Reply of Stats.
struct StatsReply {
  uint64_t live_sessions = 0;
  uint64_t total_sessions = 0;
};

/// One histogram summary of the full (v2) stats body.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// One tenant's slice of the full stats body.
struct TenantStatsEntry {
  std::string tenant;
  uint64_t sessions = 0;
  uint64_t requests = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  uint64_t spill_bytes = 0;
  double p50_request_micros = 0;
  double p95_request_micros = 0;
  double p99_request_micros = 0;
};

/// Reply of StatsFull: the whole metrics-registry snapshot plus the
/// per-tenant breakdown (kStats v2 body, protocol.h).
struct StatsFullReply {
  uint64_t live_sessions = 0;
  uint64_t total_sessions = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
  std::vector<TenantStatsEntry> tenants;

  /// Counter value by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

class Client {
 public:
  /// Connects to a running server (IPv4 host, e.g. "127.0.0.1").
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// CreateSession. `source` as in protocol.h ("dir:<path>" /
  /// "synthetic:<seed>:<entities>:<kbs>:<center>"; empty for a cold online
  /// session).
  Result<uint64_t> CreateSession(std::string_view tenant, SessionKind kind,
                                 std::string_view source, double threshold,
                                 bool use_same_as_seeds = false,
                                 uint32_t num_threads = 1);

  /// Step (batch sessions). budget 0 = run to finished.
  Result<StepReply> Step(uint64_t session, uint64_t budget);
  /// ResolveBudget (online sessions).
  Result<StepReply> ResolveBudget(uint64_t session, uint64_t budget);

  /// Cumulative match log from index `since` on.
  Result<std::vector<MatchEvent>> Matches(uint64_t session,
                                          uint64_t since = 0);

  /// Forces a server-side checkpoint; returns bytes written.
  Result<uint64_t> Checkpoint(uint64_t session);

  Status Close(uint64_t session);

  /// Ingests an N-Triples document into an online session; returns the new
  /// entity ids.
  Result<std::vector<EntityId>> Ingest(uint64_t session,
                                       std::string_view kb_name,
                                       std::string_view ntriples);

  /// Top-k candidates for one entity of an online session.
  Result<std::vector<online::QueryCandidate>> Query(uint64_t session,
                                                    EntityId entity,
                                                    uint32_t k);

  /// The owl:sameAs N-Triples text of the session's clustered matches.
  Result<std::string> Links(uint64_t session);

  Result<StatsReply> Stats();
  /// The v2 full stats body (registry snapshot + per-tenant breakdown).
  /// Requires a server that speaks the v2 body; Stats() works everywhere.
  Result<StatsFullReply> StatsFull();
  Status Ping();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One round trip: frame out, frame in, status prefix parsed; returns
  /// the remaining result body.
  Result<std::string> Call(MessageId id, std::string_view body);

  int fd_;
  /// First transport error; every later Call repeats it.
  Status broken_;
};

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_CLIENT_H_
