#include "server/fair_share.h"

#include <algorithm>
#include <limits>

namespace minoan {
namespace server {

FairShare::FairShare(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FairShare::Acquire(const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mu_);

  // Start-time rule: a tenant whose spend lags every live tenant enters at
  // the live minimum, not at its stale (or zero) history — it gets its
  // fair share from now on, not a monopolizing refund of its idle past.
  uint64_t floor = std::numeric_limits<uint64_t>::max();
  for (const Waiter& w : waiters_) floor = std::min(floor, w.vtime);
  auto [it, inserted] = vtime_.try_emplace(tenant, 0);
  if (floor != std::numeric_limits<uint64_t>::max()) {
    it->second = std::max(it->second, floor);
  }

  waiters_.push_back(Waiter{it->second, arrivals_++});
  auto self = std::prev(waiters_.end());
  AdmitLocked();
  cv_.wait(lock, [&] { return self->admitted; });
  waiters_.erase(self);
}

void FairShare::Release(const std::string& tenant, uint64_t cost) {
  std::lock_guard<std::mutex> lock(mu_);
  vtime_[tenant] += cost;
  if (in_flight_ > 0) --in_flight_;
  AdmitLocked();
  cv_.notify_all();
}

void FairShare::AdmitLocked() {
  while (in_flight_ < capacity_) {
    std::list<Waiter>::iterator best = waiters_.end();
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->admitted) continue;
      if (best == waiters_.end() || it->vtime < best->vtime ||
          (it->vtime == best->vtime && it->arrival < best->arrival)) {
        best = it;
      }
    }
    if (best == waiters_.end()) return;
    best->admitted = true;
    ++in_flight_;
    cv_.notify_all();
  }
}

uint64_t FairShare::TenantCost(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = vtime_.find(std::string(tenant));
  return it == vtime_.end() ? 0 : it->second;
}

}  // namespace server
}  // namespace minoan
