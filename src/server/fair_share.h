// Copyright 2026 The MinoanER Authors.
// FairShare: the admission-control gate of the resolution service.
//
// Every expensive request (Step / ResolveBudget installments, Ingest,
// Query) acquires a slot before touching a session and reports its cost
// (executed comparisons) on release. The gate enforces two properties:
//
//   1. Bounded concurrency. At most `capacity` installments run at once —
//      the service's CPU envelope, matched to its thread budget.
//   2. Tenant fairness. When tenants contend, slots go to the waiting
//      tenant with the least accumulated cost (virtual time), so a tenant
//      stepping a million comparisons cannot starve one stepping a
//      thousand: the light tenant's installments are admitted between the
//      heavy tenant's. Ties (equal spend — e.g. two fresh tenants) fall
//      back to arrival order.
//
// A tenant arriving for the first time — or returning after its spend
// fell behind — starts at the minimum live virtual time rather than zero,
// the classic start-time rule of fair queuing: history does not entitle a
// returning tenant to monopolize the gate until it "catches up".
//
// Fairness only changes WHEN an installment runs, never what it computes:
// sessions are independent, so every admission order yields byte-identical
// per-session results (the determinism contract of the service).

#ifndef MINOAN_SERVER_FAIR_SHARE_H_
#define MINOAN_SERVER_FAIR_SHARE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace minoan {
namespace server {

class FairShare {
 public:
  /// `capacity` = concurrent installment slots (>= 1).
  explicit FairShare(size_t capacity);

  /// Blocks until `tenant` holds a slot. Reentrant across tenants, not
  /// within one thread (a thread must release before acquiring again).
  void Acquire(const std::string& tenant);

  /// Releases the slot and charges `cost` (comparisons, or 1 for flat
  /// requests) to the tenant's virtual time.
  void Release(const std::string& tenant, uint64_t cost);

  /// Accumulated cost charged to `tenant` (0 when unseen).
  uint64_t TenantCost(std::string_view tenant) const;

  size_t capacity() const { return capacity_; }

 private:
  struct Waiter {
    uint64_t vtime;    // tenant vtime at enqueue — the admission key
    uint64_t arrival;  // FIFO tie-break
    bool admitted = false;
  };

  /// Admits eligible waiters (slots free, least vtime first) and notifies.
  /// Caller holds mu_.
  void AdmitLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  uint64_t arrivals_ = 0;
  /// Virtual time per tenant: total cost charged so far, floored to the
  /// minimum active vtime on (re)arrival.
  std::unordered_map<std::string, uint64_t> vtime_;
  std::list<Waiter> waiters_;
};

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_FAIR_SHARE_H_
