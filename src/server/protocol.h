// Copyright 2026 The MinoanER Authors.
// Wire protocol of the resolution service (`minoan serve`).
//
// Every message — request or response — travels as one length-prefixed
// frame over a byte stream (TCP):
//
//   u32  payload length (little-endian; kMaxFrameBytes cap)
//   u8   protocol version (kProtocolVersion)
//   u16  message id (little-endian; MessageId below)
//   ...  body (util/serde.h primitives, same fixed little-endian format
//        as the checkpoint files)
//
// The length counts everything after the prefix (version byte + id + body).
// Responses echo the request's message id; their body always starts with
//
//   u8   status code (util/status.h StatusCode)
//   str  status message (empty on OK)
//
// followed by the result fields only when the code is OK. A frame the
// server cannot parse at all (bad version, unknown id, truncated body,
// oversized length) is answered with an error response when a frame
// boundary is still intact, and by closing the connection otherwise —
// never by crashing; every body read is bounds-checked exactly like a
// hostile checkpoint.
//
// Request bodies (str = length-prefixed string, as serde::WriteString):
//
//   kCreateSession  str tenant, u8 kind (0 batch / 1 online), str source,
//                   f64 threshold, u8 use_same_as_seeds, u32 num_threads
//                   -> u64 session id
//       `source` names the corpus: "dir:<path>" loads the .nt/.ttl files
//       of a server-local directory; "synthetic:<seed>:<entities>:<kbs>:
//       <center>" generates the datagen LOD cloud (tests, smoke runs).
//       Batch sessions require a source; online sessions may start empty.
//   kStep           u64 session, u64 budget  (0 = run to finished)
//   kResolveBudget  u64 session, u64 budget  (online counterpart of kStep)
//                   -> u64 comparisons, u64 matches (this call),
//                      u8 finished, u8 exhausted,
//                      u64 total comparisons, u64 total matches
//   kMatches        u64 session, u64 since
//                   -> u32 count, count x {u32 a, u32 b,
//                      u64 comparisons_done, f64 similarity}
//       The cumulative match log from index `since` on — a client that
//       remembers its high-water mark streams deltas.
//   kCheckpoint     u64 session -> u64 bytes written
//       Forces the session's state to its server-side checkpoint file
//       (the same file eviction writes); the session stays live.
//   kClose          u64 session -> (empty)
//   kIngest         u64 session, str kb name, str n-triples document
//                   -> u32 count, count x u32 entity id
//       Online sessions only; the document is grouped by subject and
//       ingested one entity per subject, first appearance first.
//   kQuery          u64 session, u32 entity, u32 k
//                   -> u32 count, count x {u32 id, f64 similarity,
//                      u8 matched}
//   kLinks          u64 session -> str n-triples text
//       The owl:sameAs links of UniqueMappingClustering over the matches
//       so far — byte-identical to the file `minoan resolve` writes for
//       the same corpus, options, and spent budget.
//   kStats          (empty) -> u64 live sessions, u64 total sessions
//       The legacy v1 body, still served byte-identically to old clients.
//   kStats          u8 kStatsBodyV2
//                   -> u8 kStatsBodyV2, u64 live sessions,
//                      u64 total sessions,
//                      u32 nc, nc x {str name, u64 value},
//                      u32 ng, ng x {str name, u64 value
//                                    (int64 two's complement)},
//                      u32 nh, nh x {str name, u64 count, u64 sum,
//                                    u64 min, u64 max,
//                                    f64 p50, f64 p95, f64 p99},
//                      u32 nt, nt x {str tenant, u64 sessions,
//                                    u64 requests, u64 comparisons,
//                                    u64 matches, u64 spill_bytes,
//                                    f64 p50/p95/p99 request micros}
//       The v2 full body: the whole metrics-registry snapshot (counters,
//       gauges, histogram summaries with log2-bucket quantiles) plus the
//       per-tenant breakdown the server attributes via scoped registries.
//       Tenant counter sums never exceed the matching process totals.
//   kPing           (empty) -> (empty)
//
// Compatibility: adding a message id is backward compatible; changing a
// body layout requires bumping kProtocolVersion (the server rejects
// versions it does not speak with kFailedPrecondition). Growing a request
// body with a leading discriminator is also backward compatible when the
// old body was empty: a v1 client sends zero bytes for kStats and gets the
// two-u64 reply; a client that writes kStatsBodyV2 gets the full body.

#ifndef MINOAN_SERVER_PROTOCOL_H_
#define MINOAN_SERVER_PROTOCOL_H_

#include <cstdint>

namespace minoan {
namespace server {

inline constexpr uint8_t kProtocolVersion = 1;

/// Frames above this payload size are rejected as hostile before any
/// allocation happens (the largest legitimate body is an Ingest document).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class MessageId : uint16_t {
  kCreateSession = 1,
  kStep = 2,
  kMatches = 3,
  kCheckpoint = 4,
  kClose = 5,
  kIngest = 6,
  kResolveBudget = 7,
  kQuery = 8,
  kLinks = 9,
  kStats = 10,
  kPing = 11,
};

/// Leading request-body byte selecting the full kStats reply. An empty
/// request body selects the legacy two-u64 reply (see the layout above).
inline constexpr uint8_t kStatsBodyV2 = 2;

/// Session kind carried by kCreateSession.
enum class SessionKind : uint8_t {
  kBatch = 0,   // ResolutionSession over a frozen corpus
  kOnline = 1,  // OnlineResolver: ingest/resolve/query
};

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_PROTOCOL_H_
