#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>

#include "matching/matcher.h"
#include "obs/metrics.h"
#include "online/incremental_collection.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "server/protocol.h"
#include "server/wire.h"
#include "util/serde.h"

namespace minoan {
namespace server {

namespace {

obs::Counter& RequestCounter(MessageId id) {
  static obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  switch (id) {
    case MessageId::kCreateSession: {
      static obs::Counter& c = reg.counter("server.requests.create");
      return c;
    }
    case MessageId::kStep: {
      static obs::Counter& c = reg.counter("server.requests.step");
      return c;
    }
    case MessageId::kMatches: {
      static obs::Counter& c = reg.counter("server.requests.matches");
      return c;
    }
    case MessageId::kCheckpoint: {
      static obs::Counter& c = reg.counter("server.requests.checkpoint");
      return c;
    }
    case MessageId::kClose: {
      static obs::Counter& c = reg.counter("server.requests.close");
      return c;
    }
    case MessageId::kIngest: {
      static obs::Counter& c = reg.counter("server.requests.ingest");
      return c;
    }
    case MessageId::kResolveBudget: {
      static obs::Counter& c = reg.counter("server.requests.resolve");
      return c;
    }
    case MessageId::kQuery: {
      static obs::Counter& c = reg.counter("server.requests.query");
      return c;
    }
    case MessageId::kLinks: {
      static obs::Counter& c = reg.counter("server.requests.links");
      return c;
    }
    default: {
      static obs::Counter& c = reg.counter("server.requests.other");
      return c;
    }
  }
}

obs::Histogram& RequestMicros() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Default().histogram("server.request_micros");
  return h;
}

obs::Counter& ComparisonsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter("server.comparisons");
  return c;
}

/// Error-only response for a body that ended early.
std::string Truncated(const char* what) {
  return ErrorBody(Status::ParseError(std::string("truncated ") + what +
                                      " request body"));
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      sessions_(SessionManager::Options{options.state_dir,
                                        options.max_sessions,
                                        options.evict_after_seconds}),
      fair_share_(ResolveThreadCount(options.num_threads)),
      pool_(ResolveThreadCount(options.num_threads)) {}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(options));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse listen address " +
                                   options.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::IoError("bind " + options.host + ":" +
                                      std::to_string(options.port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const Status st =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);

  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  if (options.evict_after_seconds > 0) {
    server->sweeper_thread_ =
        std::thread([s = server.get()] { s->SweeperLoop(); });
  }
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Wait() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  shutdown_cv_.wait(lock, [this] { return shut_down_; });
}

void Server::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller: wait for the first to finish tearing down.
    Wait();
    return;
  }
  // Unblock accept() and every connection's blocking read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    shutdown_cv_.notify_all();  // wakes the sweeper
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (sweeper_thread_.joinable()) sweeper_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  shut_down_ = true;
  shutdown_cv_.notify_all();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::SweeperLoop() {
  const double period_s =
      std::max(0.05, std::min(1.0, options_.evict_after_seconds / 4.0));
  std::unique_lock<std::mutex> lock(conn_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    shutdown_cv_.wait_for(
        lock, std::chrono::duration<double>(period_s),
        [this] { return stopping_.load(std::memory_order_relaxed); });
    if (stopping_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    sessions_.EvictIdle();
    lock.lock();
  }
}

void Server::HandleConnection(int fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Frame frame;
    const Status read = ReadFrame(fd, frame);
    if (!read.ok()) {
      // A hostile length prefix leaves the stream unframed: answer once if
      // the transport still works, then drop the connection. Clean EOF and
      // torn connections just close.
      if (read.code() == StatusCode::kParseError) {
        (void)WriteFrame(fd, 0, ErrorBody(read));
      }
      break;
    }
    std::string response;
    if (frame.version != kProtocolVersion) {
      response = ErrorBody(Status::FailedPrecondition(
          "protocol version " + std::to_string(frame.version) +
          " not supported (server speaks " +
          std::to_string(kProtocolVersion) + ")"));
    } else {
      response = Dispatch(frame);
    }
    if (!WriteFrame(fd, frame.id, response).ok()) break;
  }
  ::close(fd);
}

std::string Server::Dispatch(const Frame& frame) {
  const auto start = std::chrono::steady_clock::now();
  const auto id = static_cast<MessageId>(frame.id);
  RequestCounter(id).Increment();
  std::istringstream body(frame.body);
  std::string response;
  switch (id) {
    case MessageId::kCreateSession:
      response = HandleCreateSession(body);
      break;
    case MessageId::kStep:
      response = HandleStep(body, /*online=*/false);
      break;
    case MessageId::kResolveBudget:
      response = HandleStep(body, /*online=*/true);
      break;
    case MessageId::kMatches:
      response = HandleMatches(body);
      break;
    case MessageId::kCheckpoint:
      response = HandleCheckpoint(body);
      break;
    case MessageId::kClose:
      response = HandleClose(body);
      break;
    case MessageId::kIngest:
      response = HandleIngest(body);
      break;
    case MessageId::kQuery:
      response = HandleQuery(body);
      break;
    case MessageId::kLinks:
      response = HandleLinks(body);
      break;
    case MessageId::kStats:
      response = HandleStats();
      break;
    case MessageId::kPing: {
      std::ostringstream out;
      WriteStatusPrefix(out, Status::Ok());
      response = out.str();
      break;
    }
    default:
      response = ErrorBody(Status::Unimplemented(
          "unknown message id " + std::to_string(frame.id)));
  }
  RequestMicros().Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return response;
}

void Server::RunInstallment(const std::string& tenant,
                            const std::function<uint64_t()>& fn) {
  fair_share_.Acquire(tenant);
  uint64_t cost = 0;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool_.Submit([&] {
    cost = fn();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  // Flat requests charge at least 1 so vtime advances and FIFO cannot
  // regress into starvation.
  fair_share_.Release(tenant, std::max<uint64_t>(1, cost));
  ComparisonsCounter().Add(cost);
}

std::string Server::HandleCreateSession(std::istream& body) {
  SessionSpec spec;
  uint8_t kind = 0;
  uint8_t seeds = 0;
  uint32_t threads = 1;
  if (!serde::ReadString(body, spec.tenant, 1 << 10) ||
      !serde::ReadU8(body, kind) ||
      !serde::ReadString(body, spec.source, 1 << 12) ||
      !serde::ReadDouble(body, spec.threshold) ||
      !serde::ReadU8(body, seeds) || !serde::ReadU32(body, threads)) {
    return Truncated("CreateSession");
  }
  if (kind > 1) {
    return ErrorBody(Status::InvalidArgument("session kind must be 0 or 1"));
  }
  if (spec.tenant.empty()) {
    return ErrorBody(Status::InvalidArgument("tenant must not be empty"));
  }
  if (!std::isfinite(spec.threshold) || spec.threshold < 0 ||
      spec.threshold > 1) {
    return ErrorBody(
        Status::InvalidArgument("threshold must be a finite value in [0, 1]"));
  }
  if (threads > 1024) {
    return ErrorBody(Status::InvalidArgument("num_threads must be <= 1024"));
  }
  spec.kind = static_cast<SessionKind>(kind);
  spec.use_same_as_seeds = seeds != 0;
  spec.num_threads = threads;

  uint64_t id = 0;
  Status status = Status::Ok();
  // Session construction (corpus load + static phases) is expensive work —
  // it goes through the gate like any installment, charged by corpus size.
  RunInstallment(spec.tenant, [&]() -> uint64_t {
    auto created = sessions_.Create(spec);
    if (!created.ok()) {
      status = created.status();
      return 1;
    }
    id = *created;
    return 1;
  });
  if (!status.ok()) return ErrorBody(status);
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, id);
  return out.str();
}

std::string Server::HandleStep(std::istream& body, bool online) {
  uint64_t session = 0;
  uint64_t budget = 0;
  if (!serde::ReadU64(body, session) || !serde::ReadU64(body, budget)) {
    return Truncated(online ? "ResolveBudget" : "Step");
  }
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  if (online != (lease->online() != nullptr)) {
    return ErrorBody(Status::FailedPrecondition(
        online ? "ResolveBudget requires an online session"
               : "Step requires a batch session"));
  }
  const std::string tenant = lease->spec().tenant;

  // The budget is spent in fair-share installments: each slice is admitted
  // separately, so another tenant's work interleaves between slices. The
  // result is byte-identical to one big Step — the session contract.
  uint64_t call_comparisons = 0;
  uint64_t call_matches = 0;
  bool finished = false;
  bool exhausted = false;
  uint64_t remaining = budget;
  while (true) {
    uint64_t slice = options_.installment == 0 ? 2048 : options_.installment;
    if (budget != 0) {
      if (remaining == 0) break;
      slice = std::min(slice, remaining);
    }
    StepResult step;
    RunInstallment(tenant, [&]() -> uint64_t {
      step = online ? lease->online()->ResolveBudget(slice)
                    : lease->batch()->Step(slice);
      return step.comparisons;
    });
    call_comparisons += step.comparisons;
    call_matches += step.matches.size();
    if (budget != 0) remaining -= std::min(remaining, slice);
    if (online) {
      exhausted = step.exhausted;
      finished = step.exhausted;
    } else {
      exhausted = lease->batch()->exhausted();
      finished = lease->batch()->finished();
    }
    if (finished) break;
    // A slice that spent nothing and did not finish cannot make progress.
    if (step.comparisons == 0) break;
  }

  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, call_comparisons);
  serde::WriteU64(out, call_matches);
  serde::WriteU8(out, finished ? 1 : 0);
  serde::WriteU8(out, exhausted ? 1 : 0);
  if (online) {
    serde::WriteU64(out, lease->online()->run().comparisons_executed);
    serde::WriteU64(out, lease->online()->run().matches.size());
  } else {
    serde::WriteU64(out, lease->batch()->comparisons_spent());
    serde::WriteU64(out, lease->batch()->matches_found());
  }
  return out.str();
}

std::string Server::HandleMatches(std::istream& body) {
  uint64_t session = 0;
  uint64_t since = 0;
  if (!serde::ReadU64(body, session) || !serde::ReadU64(body, since)) {
    return Truncated("Matches");
  }
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  const std::vector<MatchEvent>& matches =
      lease->online() != nullptr
          ? lease->online()->run().matches
          : lease->batch()->Report().progressive.run.matches;
  const size_t begin = std::min<size_t>(since, matches.size());
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU32(out, static_cast<uint32_t>(matches.size() - begin));
  for (size_t i = begin; i < matches.size(); ++i) {
    serde::WriteU32(out, matches[i].a);
    serde::WriteU32(out, matches[i].b);
    serde::WriteU64(out, matches[i].comparisons_done);
    serde::WriteDouble(out, matches[i].similarity);
  }
  return out.str();
}

std::string Server::HandleCheckpoint(std::istream& body) {
  uint64_t session = 0;
  if (!serde::ReadU64(body, session)) return Truncated("Checkpoint");
  auto bytes = sessions_.Checkpoint(session);
  if (!bytes.ok()) return ErrorBody(bytes.status());
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, *bytes);
  return out.str();
}

std::string Server::HandleClose(std::istream& body) {
  uint64_t session = 0;
  if (!serde::ReadU64(body, session)) return Truncated("Close");
  if (Status st = sessions_.Close(session); !st.ok()) return ErrorBody(st);
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  return out.str();
}

std::string Server::HandleIngest(std::istream& body) {
  uint64_t session = 0;
  std::string kb_name;
  std::string document;
  if (!serde::ReadU64(body, session) ||
      !serde::ReadString(body, kb_name, 1 << 10) ||
      !serde::ReadString(body, document, kMaxFrameBytes)) {
    return Truncated("Ingest");
  }
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  if (lease->online() == nullptr) {
    return ErrorBody(
        Status::FailedPrecondition("Ingest requires an online session"));
  }
  auto triples = rdf::NTriplesParser().ParseString(document);
  if (!triples.ok()) return ErrorBody(triples.status());

  std::vector<EntityId> ids;
  Status status = Status::Ok();
  RunInstallment(lease->spec().tenant, [&]() -> uint64_t {
    online::OnlineResolver& engine = *lease->online();
    const uint64_t before = engine.run().comparisons_executed;
    const uint32_t kb = engine.EnsureKb(kb_name);
    for (const auto& group : online::GroupBySubject(*triples)) {
      auto id = engine.Ingest(kb, group);
      if (!id.ok()) {
        status = id.status();
        break;
      }
      ids.push_back(*id);
    }
    // Ingest itself executes no comparisons; charge the entity count so a
    // bulk-loading tenant still pays its way through the gate.
    return ids.size() + (engine.run().comparisons_executed - before);
  });
  if (!status.ok()) return ErrorBody(status);
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU32(out, static_cast<uint32_t>(ids.size()));
  for (const EntityId id : ids) serde::WriteU32(out, id);
  return out.str();
}

std::string Server::HandleQuery(std::istream& body) {
  uint64_t session = 0;
  uint32_t entity = 0;
  uint32_t k = 0;
  if (!serde::ReadU64(body, session) || !serde::ReadU32(body, entity) ||
      !serde::ReadU32(body, k)) {
    return Truncated("Query");
  }
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  if (lease->online() == nullptr) {
    return ErrorBody(
        Status::FailedPrecondition("Query requires an online session"));
  }
  std::vector<online::QueryCandidate> candidates;
  RunInstallment(lease->spec().tenant, [&]() -> uint64_t {
    online::OnlineResolver& engine = *lease->online();
    const uint64_t before = engine.run().comparisons_executed;
    candidates = engine.Query(entity, k);
    return engine.run().comparisons_executed - before;
  });
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU32(out, static_cast<uint32_t>(candidates.size()));
  for (const auto& c : candidates) {
    serde::WriteU32(out, c.id);
    serde::WriteDouble(out, c.similarity);
    serde::WriteU8(out, c.matched ? 1 : 0);
  }
  return out.str();
}

std::string Server::HandleLinks(std::istream& body) {
  uint64_t session = 0;
  if (!serde::ReadU64(body, session)) return Truncated("Links");
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  const EntityCollection& collection = lease->collection();
  const std::vector<MatchEvent>& matches =
      lease->online() != nullptr
          ? lease->online()->run().matches
          : lease->batch()->Report().progressive.run.matches;
  // Same clustering + rendering as the CLI's discovered-links file, so a
  // served run diffs byte-for-byte against `minoan resolve`.
  const auto links = UniqueMappingClustering(matches, collection);
  std::ostringstream text;
  rdf::NTriplesWriter writer(text);
  for (const MatchEvent& m : links) {
    writer.Write({rdf::Term::Iri(std::string(collection.EntityIri(m.a))),
                  rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
                  rdf::Term::Iri(std::string(collection.EntityIri(m.b)))});
  }
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteString(out, text.str());
  return out.str();
}

std::string Server::HandleStats() {
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, sessions_.live_sessions());
  serde::WriteU64(out, sessions_.num_sessions());
  return out.str();
}

}  // namespace server
}  // namespace minoan
