#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "matching/matcher.h"
#include "obs/metrics.h"
#include "online/incremental_collection.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "server/protocol.h"
#include "server/wire.h"
#include "util/serde.h"

namespace minoan {
namespace server {

namespace {

obs::Counter& RequestCounter(MessageId id) {
  static obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  switch (id) {
    case MessageId::kCreateSession: {
      static obs::Counter& c = reg.counter("server.requests.create");
      return c;
    }
    case MessageId::kStep: {
      static obs::Counter& c = reg.counter("server.requests.step");
      return c;
    }
    case MessageId::kMatches: {
      static obs::Counter& c = reg.counter("server.requests.matches");
      return c;
    }
    case MessageId::kCheckpoint: {
      static obs::Counter& c = reg.counter("server.requests.checkpoint");
      return c;
    }
    case MessageId::kClose: {
      static obs::Counter& c = reg.counter("server.requests.close");
      return c;
    }
    case MessageId::kIngest: {
      static obs::Counter& c = reg.counter("server.requests.ingest");
      return c;
    }
    case MessageId::kResolveBudget: {
      static obs::Counter& c = reg.counter("server.requests.resolve");
      return c;
    }
    case MessageId::kQuery: {
      static obs::Counter& c = reg.counter("server.requests.query");
      return c;
    }
    case MessageId::kLinks: {
      static obs::Counter& c = reg.counter("server.requests.links");
      return c;
    }
    default: {
      static obs::Counter& c = reg.counter("server.requests.other");
      return c;
    }
  }
}

obs::Histogram& RequestMicros() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Default().histogram("server.request_micros");
  return h;
}

obs::Counter& SpillBytesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter("spill.bytes");
  return c;
}

/// Error-only response for a body that ended early.
std::string Truncated(const char* what) {
  return ErrorBody(Status::ParseError(std::string("truncated ") + what +
                                      " request body"));
}

/// Short request-kind name for span labels and event fields.
const char* MessageKindName(MessageId id) {
  switch (id) {
    case MessageId::kCreateSession:
      return "create";
    case MessageId::kStep:
      return "step";
    case MessageId::kMatches:
      return "matches";
    case MessageId::kCheckpoint:
      return "checkpoint";
    case MessageId::kClose:
      return "close";
    case MessageId::kIngest:
      return "ingest";
    case MessageId::kResolveBudget:
      return "resolve";
    case MessageId::kQuery:
      return "query";
    case MessageId::kLinks:
      return "links";
    case MessageId::kStats:
      return "stats";
    case MessageId::kPing:
      return "ping";
  }
  return "other";
}

/// Every session-addressed request body starts with the u64 session id;
/// peek it (little-endian, same as serde) so the span carries the tag even
/// though the handler has not parsed the body yet. 0 when not applicable.
uint64_t PeekSessionId(MessageId id, const std::string& body) {
  switch (id) {
    case MessageId::kStep:
    case MessageId::kResolveBudget:
    case MessageId::kMatches:
    case MessageId::kCheckpoint:
    case MessageId::kClose:
    case MessageId::kIngest:
    case MessageId::kQuery:
    case MessageId::kLinks:
      break;
    default:
      return 0;
  }
  if (body.size() < sizeof(uint64_t)) return 0;
  uint64_t session = 0;
  std::memcpy(&session, body.data(), sizeof(session));
  return session;
}

/// Full-file replace via a sibling temp file + rename, so a concurrent
/// reader sees either the previous snapshot or the new one — never a torn
/// mix (rename within one directory is atomic on POSIX).
Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out << contents;
    out.flush();
    if (!out) return Status::IoError("short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace

/// One tenant's metric bundle. The dual-write handles mirror the process
/// server.comparisons / server.matches counters into the tenant's scoped
/// shadow (one extra relaxed add per installment, never per element); the
/// plain members are local-only because their process-wide counterparts are
/// incremented elsewhere (SessionManager, Dispatch) and a dual write would
/// double-count.
struct Server::TenantStats {
  explicit TenantStats(std::string label)
      : scoped(&obs::MetricsRegistry::Default(), std::move(label)),
        sessions(scoped.counter("server.sessions.created")),
        requests(scoped.counter("server.requests")),
        spill_bytes(scoped.counter("server.spill_bytes")),
        comparisons_local(scoped.counter("server.comparisons")),
        matches_local(scoped.counter("server.matches")),
        request_micros(scoped.histogram("server.request_micros")),
        comparisons(scoped.scoped_counter("server.comparisons")),
        matches(scoped.scoped_counter("server.matches")) {}

  obs::ScopedRegistry scoped;
  obs::Counter& sessions;
  obs::Counter& requests;
  obs::Counter& spill_bytes;
  obs::Counter& comparisons_local;
  obs::Counter& matches_local;
  obs::Histogram& request_micros;
  obs::ScopedCounter comparisons;
  obs::ScopedCounter matches;
};

Server::Server(ServerOptions options)
    : options_(options),
      sessions_(SessionManager::Options{options.state_dir,
                                        options.max_sessions,
                                        options.evict_after_seconds}),
      fair_share_(ResolveThreadCount(options.num_threads)),
      pool_(ResolveThreadCount(options.num_threads)),
      events_(obs::EventLog::Options{options.max_events,
                                     obs::Severity::kInfo}) {
  if (options_.enable_trace || !options_.trace_path.empty()) {
    trace_ = std::make_unique<obs::TraceRecorder>();
    trace_->set_capacity(options_.max_trace_events);
  }
  sessions_.set_event_log(&events_);
}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(options));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse listen address " +
                                   options.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::IoError("bind " + options.host + ":" +
                                      std::to_string(options.port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const Status st =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);

  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  if (options.evict_after_seconds > 0) {
    server->sweeper_thread_ =
        std::thread([s = server.get()] { s->SweeperLoop(); });
  }
  if (options.stats_every_seconds > 0 &&
      (!options.stats_path.empty() || !options.event_log_path.empty())) {
    server->exporter_thread_ =
        std::thread([s = server.get()] { s->ExporterLoop(); });
  }
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Wait() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  shutdown_cv_.wait(lock, [this] { return shut_down_; });
}

void Server::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller: wait for the first to finish tearing down.
    Wait();
    return;
  }
  // Unblock accept() and every connection's blocking read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    shutdown_cv_.notify_all();  // wakes the sweeper
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (sweeper_thread_.joinable()) sweeper_thread_.join();
  if (exporter_thread_.joinable()) exporter_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Final installment of the rolling exports, now that every handler has
  // drained; losing a telemetry write must not fail shutdown.
  (void)ExportSnapshots();
  if (!options_.trace_path.empty() && trace_ != nullptr) {
    std::ostringstream json;
    trace_->WriteChromeTrace(json);
    (void)WriteFileAtomic(options_.trace_path, json.str());
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  shut_down_ = true;
  shutdown_cv_.notify_all();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::SweeperLoop() {
  const double period_s =
      std::max(0.05, std::min(1.0, options_.evict_after_seconds / 4.0));
  std::unique_lock<std::mutex> lock(conn_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    shutdown_cv_.wait_for(
        lock, std::chrono::duration<double>(period_s),
        [this] { return stopping_.load(std::memory_order_relaxed); });
    if (stopping_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    sessions_.EvictIdle();
    lock.lock();
  }
}

void Server::ExporterLoop() {
  std::unique_lock<std::mutex> lock(conn_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    shutdown_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.stats_every_seconds),
        [this] { return stopping_.load(std::memory_order_relaxed); });
    if (stopping_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    // Rolling installment; shutdown writes the authoritative final one.
    (void)ExportSnapshots();
    lock.lock();
  }
}

void Server::HandleConnection(int fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Frame frame;
    const Status read = ReadFrame(fd, frame);
    if (!read.ok()) {
      // A hostile length prefix leaves the stream unframed: answer once if
      // the transport still works, then drop the connection. Clean EOF and
      // torn connections just close.
      if (read.code() == StatusCode::kParseError) {
        (void)WriteFrame(fd, 0, ErrorBody(read));
      }
      break;
    }
    std::string response;
    if (frame.version != kProtocolVersion) {
      response = ErrorBody(Status::FailedPrecondition(
          "protocol version " + std::to_string(frame.version) +
          " not supported (server speaks " +
          std::to_string(kProtocolVersion) + ")"));
    } else {
      response = Dispatch(frame);
    }
    if (!WriteFrame(fd, frame.id, response).ok()) break;
  }
  ::close(fd);
}

std::string Server::Dispatch(const Frame& frame) {
  const auto start = std::chrono::steady_clock::now();
  const auto id = static_cast<MessageId>(frame.id);
  RequestCounter(id).Increment();
  RequestContext ctx;
  ctx.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  ctx.session_id = PeekSessionId(id, frame.body);
  std::istringstream body(frame.body);
  std::string response;
  {
    // The whole handler runs under one span tagged with the request id and
    // (when the body addresses one) the session id, so a trace shows each
    // request's wall time and the counters it advanced.
    std::optional<obs::PhaseSpan> span;
    if (trace_ != nullptr) {
      std::string name = MessageKindName(id);
      name += " rid=" + std::to_string(ctx.request_id);
      if (ctx.session_id != 0) {
        name += " sid=" + std::to_string(ctx.session_id);
      }
      span.emplace(trace_.get(), std::move(name));
    }
    switch (id) {
      case MessageId::kCreateSession:
        response = HandleCreateSession(body, ctx);
        break;
      case MessageId::kStep:
        response = HandleStep(body, /*online=*/false, ctx);
        break;
      case MessageId::kResolveBudget:
        response = HandleStep(body, /*online=*/true, ctx);
        break;
      case MessageId::kMatches:
        response = HandleMatches(body, ctx);
        break;
      case MessageId::kCheckpoint:
        response = HandleCheckpoint(body, ctx);
        break;
      case MessageId::kClose:
        response = HandleClose(body, ctx);
        break;
      case MessageId::kIngest:
        response = HandleIngest(body, ctx);
        break;
      case MessageId::kQuery:
        response = HandleQuery(body, ctx);
        break;
      case MessageId::kLinks:
        response = HandleLinks(body, ctx);
        break;
      case MessageId::kStats:
        response = HandleStats(body);
        break;
      case MessageId::kPing: {
        std::ostringstream out;
        WriteStatusPrefix(out, Status::Ok());
        response = out.str();
        break;
      }
      default:
        response = ErrorBody(Status::Unimplemented(
            "unknown message id " + std::to_string(frame.id)));
    }
  }
  const uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  RequestMicros().Record(micros);
  if (!ctx.tenant.empty()) {
    TenantStats& tenant = TenantFor(ctx.tenant);
    tenant.requests.Increment();
    tenant.request_micros.Record(micros);
  }
  if (options_.slow_request_millis > 0 &&
      static_cast<double>(micros) > options_.slow_request_millis * 1000.0) {
    events_.Log(obs::Severity::kWarn, "slow_request",
                {{"request", MessageKindName(id)}, {"tenant", ctx.tenant}},
                {{"request_id", ctx.request_id},
                 {"session", ctx.session_id},
                 {"micros", micros}});
  }
  return response;
}

Server::TenantStats& Server::TenantFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, std::make_unique<TenantStats>(tenant)).first;
  }
  return *it->second;
}

void Server::RunInstallment(const std::string& tenant,
                            const std::function<uint64_t()>& fn) {
  fair_share_.Acquire(tenant);
  const uint64_t spill_before = SpillBytesCounter().Value();
  uint64_t cost = 0;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool_.Submit([&] {
    cost = fn();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  // Flat requests charge at least 1 so vtime advances and FIFO cannot
  // regress into starvation.
  fair_share_.Release(tenant, std::max<uint64_t>(1, cost));
  TenantStats& stats = TenantFor(tenant);
  // The dual write lands in the process server.comparisons counter AND the
  // tenant shadow, so the per-tenant sum reconciles exactly.
  stats.comparisons.Add(cost);
  // Spill attribution is delta-sampled around the installment: exact when
  // one installment runs at a time, an upper bound under overlap.
  const uint64_t spill_after = SpillBytesCounter().Value();
  if (spill_after > spill_before) {
    stats.spill_bytes.Add(spill_after - spill_before);
  }
}

std::string Server::HandleCreateSession(std::istream& body,
                                        RequestContext& ctx) {
  SessionSpec spec;
  uint8_t kind = 0;
  uint8_t seeds = 0;
  uint32_t threads = 1;
  if (!serde::ReadString(body, spec.tenant, 1 << 10) ||
      !serde::ReadU8(body, kind) ||
      !serde::ReadString(body, spec.source, 1 << 12) ||
      !serde::ReadDouble(body, spec.threshold) ||
      !serde::ReadU8(body, seeds) || !serde::ReadU32(body, threads)) {
    return Truncated("CreateSession");
  }
  if (kind > 1) {
    return ErrorBody(Status::InvalidArgument("session kind must be 0 or 1"));
  }
  if (spec.tenant.empty()) {
    return ErrorBody(Status::InvalidArgument("tenant must not be empty"));
  }
  if (!std::isfinite(spec.threshold) || spec.threshold < 0 ||
      spec.threshold > 1) {
    return ErrorBody(
        Status::InvalidArgument("threshold must be a finite value in [0, 1]"));
  }
  if (threads > 1024) {
    return ErrorBody(Status::InvalidArgument("num_threads must be <= 1024"));
  }
  spec.kind = static_cast<SessionKind>(kind);
  spec.use_same_as_seeds = seeds != 0;
  spec.num_threads = threads;
  ctx.tenant = spec.tenant;

  uint64_t id = 0;
  Status status = Status::Ok();
  // Session construction (corpus load + static phases) is expensive work —
  // it goes through the gate like any installment, charged by corpus size.
  RunInstallment(spec.tenant, [&]() -> uint64_t {
    auto created = sessions_.Create(spec);
    if (!created.ok()) {
      status = created.status();
      return 1;
    }
    id = *created;
    return 1;
  });
  if (!status.ok()) return ErrorBody(status);
  ctx.session_id = id;
  // Local-only shadow: SessionManager already counted the process-wide
  // server.sessions.created.
  TenantFor(spec.tenant).sessions.Increment();
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, id);
  return out.str();
}

std::string Server::HandleStep(std::istream& body, bool online,
                               RequestContext& ctx) {
  uint64_t session = 0;
  uint64_t budget = 0;
  if (!serde::ReadU64(body, session) || !serde::ReadU64(body, budget)) {
    return Truncated(online ? "ResolveBudget" : "Step");
  }
  ctx.session_id = session;
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  if (online != (lease->online() != nullptr)) {
    return ErrorBody(Status::FailedPrecondition(
        online ? "ResolveBudget requires an online session"
               : "Step requires a batch session"));
  }
  const std::string tenant = lease->spec().tenant;
  ctx.tenant = tenant;

  // The budget is spent in fair-share installments: each slice is admitted
  // separately, so another tenant's work interleaves between slices. The
  // result is byte-identical to one big Step — the session contract.
  uint64_t call_comparisons = 0;
  uint64_t call_matches = 0;
  bool finished = false;
  bool exhausted = false;
  uint64_t remaining = budget;
  while (true) {
    uint64_t slice = options_.installment == 0 ? 2048 : options_.installment;
    if (budget != 0) {
      if (remaining == 0) break;
      slice = std::min(slice, remaining);
    }
    StepResult step;
    RunInstallment(tenant, [&]() -> uint64_t {
      step = online ? lease->online()->ResolveBudget(slice)
                    : lease->batch()->Step(slice);
      return step.comparisons;
    });
    call_comparisons += step.comparisons;
    call_matches += step.matches.size();
    if (budget != 0) remaining -= std::min(remaining, slice);
    if (online) {
      exhausted = step.exhausted;
      finished = step.exhausted;
    } else {
      exhausted = lease->batch()->exhausted();
      finished = lease->batch()->finished();
    }
    if (finished) break;
    // A slice that spent nothing and did not finish cannot make progress.
    if (step.comparisons == 0) break;
  }
  // Matches mirror comparisons: dual-written to the process server.matches
  // counter and the tenant shadow at the same site.
  if (call_matches > 0) TenantFor(tenant).matches.Add(call_matches);

  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, call_comparisons);
  serde::WriteU64(out, call_matches);
  serde::WriteU8(out, finished ? 1 : 0);
  serde::WriteU8(out, exhausted ? 1 : 0);
  if (online) {
    serde::WriteU64(out, lease->online()->run().comparisons_executed);
    serde::WriteU64(out, lease->online()->run().matches.size());
  } else {
    serde::WriteU64(out, lease->batch()->comparisons_spent());
    serde::WriteU64(out, lease->batch()->matches_found());
  }
  return out.str();
}

std::string Server::HandleMatches(std::istream& body, RequestContext& ctx) {
  uint64_t session = 0;
  uint64_t since = 0;
  if (!serde::ReadU64(body, session) || !serde::ReadU64(body, since)) {
    return Truncated("Matches");
  }
  ctx.session_id = session;
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  ctx.tenant = lease->spec().tenant;
  const std::vector<MatchEvent>& matches =
      lease->online() != nullptr
          ? lease->online()->run().matches
          : lease->batch()->Report().progressive.run.matches;
  const size_t begin = std::min<size_t>(since, matches.size());
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU32(out, static_cast<uint32_t>(matches.size() - begin));
  for (size_t i = begin; i < matches.size(); ++i) {
    serde::WriteU32(out, matches[i].a);
    serde::WriteU32(out, matches[i].b);
    serde::WriteU64(out, matches[i].comparisons_done);
    serde::WriteDouble(out, matches[i].similarity);
  }
  return out.str();
}

std::string Server::HandleCheckpoint(std::istream& body, RequestContext& ctx) {
  uint64_t session = 0;
  if (!serde::ReadU64(body, session)) return Truncated("Checkpoint");
  ctx.session_id = session;
  auto bytes = sessions_.Checkpoint(session);
  if (!bytes.ok()) return ErrorBody(bytes.status());
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU64(out, *bytes);
  return out.str();
}

std::string Server::HandleClose(std::istream& body, RequestContext& ctx) {
  uint64_t session = 0;
  if (!serde::ReadU64(body, session)) return Truncated("Close");
  ctx.session_id = session;
  if (Status st = sessions_.Close(session); !st.ok()) return ErrorBody(st);
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  return out.str();
}

std::string Server::HandleIngest(std::istream& body, RequestContext& ctx) {
  uint64_t session = 0;
  std::string kb_name;
  std::string document;
  if (!serde::ReadU64(body, session) ||
      !serde::ReadString(body, kb_name, 1 << 10) ||
      !serde::ReadString(body, document, kMaxFrameBytes)) {
    return Truncated("Ingest");
  }
  ctx.session_id = session;
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  ctx.tenant = lease->spec().tenant;
  if (lease->online() == nullptr) {
    return ErrorBody(
        Status::FailedPrecondition("Ingest requires an online session"));
  }
  auto triples = rdf::NTriplesParser().ParseString(document);
  if (!triples.ok()) return ErrorBody(triples.status());

  std::vector<EntityId> ids;
  Status status = Status::Ok();
  RunInstallment(lease->spec().tenant, [&]() -> uint64_t {
    online::OnlineResolver& engine = *lease->online();
    const uint64_t before = engine.run().comparisons_executed;
    const uint32_t kb = engine.EnsureKb(kb_name);
    for (const auto& group : online::GroupBySubject(*triples)) {
      auto id = engine.Ingest(kb, group);
      if (!id.ok()) {
        status = id.status();
        break;
      }
      ids.push_back(*id);
    }
    // Ingest itself executes no comparisons; charge the entity count so a
    // bulk-loading tenant still pays its way through the gate.
    return ids.size() + (engine.run().comparisons_executed - before);
  });
  if (!status.ok()) return ErrorBody(status);
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU32(out, static_cast<uint32_t>(ids.size()));
  for (const EntityId id : ids) serde::WriteU32(out, id);
  return out.str();
}

std::string Server::HandleQuery(std::istream& body, RequestContext& ctx) {
  uint64_t session = 0;
  uint32_t entity = 0;
  uint32_t k = 0;
  if (!serde::ReadU64(body, session) || !serde::ReadU32(body, entity) ||
      !serde::ReadU32(body, k)) {
    return Truncated("Query");
  }
  ctx.session_id = session;
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  ctx.tenant = lease->spec().tenant;
  if (lease->online() == nullptr) {
    return ErrorBody(
        Status::FailedPrecondition("Query requires an online session"));
  }
  std::vector<online::QueryCandidate> candidates;
  RunInstallment(lease->spec().tenant, [&]() -> uint64_t {
    online::OnlineResolver& engine = *lease->online();
    const uint64_t before = engine.run().comparisons_executed;
    candidates = engine.Query(entity, k);
    return engine.run().comparisons_executed - before;
  });
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteU32(out, static_cast<uint32_t>(candidates.size()));
  for (const auto& c : candidates) {
    serde::WriteU32(out, c.id);
    serde::WriteDouble(out, c.similarity);
    serde::WriteU8(out, c.matched ? 1 : 0);
  }
  return out.str();
}

std::string Server::HandleLinks(std::istream& body, RequestContext& ctx) {
  uint64_t session = 0;
  if (!serde::ReadU64(body, session)) return Truncated("Links");
  ctx.session_id = session;
  auto lease = sessions_.Acquire(session);
  if (!lease.ok()) return ErrorBody(lease.status());
  ctx.tenant = lease->spec().tenant;
  const EntityCollection& collection = lease->collection();
  const std::vector<MatchEvent>& matches =
      lease->online() != nullptr
          ? lease->online()->run().matches
          : lease->batch()->Report().progressive.run.matches;
  // Same clustering + rendering as the CLI's discovered-links file, so a
  // served run diffs byte-for-byte against `minoan resolve`.
  const auto links = UniqueMappingClustering(matches, collection);
  std::ostringstream text;
  rdf::NTriplesWriter writer(text);
  for (const MatchEvent& m : links) {
    writer.Write({rdf::Term::Iri(std::string(collection.EntityIri(m.a))),
                  rdf::Term::Iri(std::string(rdf::kOwlSameAs)),
                  rdf::Term::Iri(std::string(collection.EntityIri(m.b)))});
  }
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  serde::WriteString(out, text.str());
  return out.str();
}

std::string Server::HandleStats(std::istream& body) {
  uint8_t version = 0;
  const bool full = serde::ReadU8(body, version);
  if (full && version != kStatsBodyV2) {
    return ErrorBody(Status::InvalidArgument("unsupported stats body version " +
                                             std::to_string(version)));
  }
  std::ostringstream out;
  WriteStatusPrefix(out, Status::Ok());
  if (!full) {
    // Legacy v1 request (empty body): the original two-u64 reply, byte for
    // byte — old clients parse exactly this and nothing more.
    serde::WriteU64(out, sessions_.live_sessions());
    serde::WriteU64(out, sessions_.num_sessions());
    return out.str();
  }
  serde::WriteU8(out, kStatsBodyV2);
  serde::WriteU64(out, sessions_.live_sessions());
  serde::WriteU64(out, sessions_.num_sessions());
  const obs::StatsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  serde::WriteU32(out, static_cast<uint32_t>(snap.counters.size()));
  for (const auto& [name, value] : snap.counters) {
    serde::WriteString(out, name);
    serde::WriteU64(out, value);
  }
  serde::WriteU32(out, static_cast<uint32_t>(snap.gauges.size()));
  for (const auto& [name, value] : snap.gauges) {
    serde::WriteString(out, name);
    serde::WriteU64(out, static_cast<uint64_t>(value));
  }
  serde::WriteU32(out, static_cast<uint32_t>(snap.histograms.size()));
  for (const auto& [name, histogram] : snap.histograms) {
    serde::WriteString(out, name);
    serde::WriteU64(out, histogram.count);
    serde::WriteU64(out, histogram.sum);
    serde::WriteU64(out, histogram.count > 0 ? histogram.min : 0);
    serde::WriteU64(out, histogram.max);
    serde::WriteDouble(out, histogram.Quantile(0.50));
    serde::WriteDouble(out, histogram.Quantile(0.95));
    serde::WriteDouble(out, histogram.Quantile(0.99));
  }
  const std::vector<obs::TenantBreakdown> tenants = TenantBreakdowns();
  serde::WriteU32(out, static_cast<uint32_t>(tenants.size()));
  for (const obs::TenantBreakdown& tenant : tenants) {
    serde::WriteString(out, tenant.tenant);
    serde::WriteU64(out, tenant.sessions);
    serde::WriteU64(out, tenant.requests);
    serde::WriteU64(out, tenant.comparisons);
    serde::WriteU64(out, tenant.matches);
    serde::WriteU64(out, tenant.spill_bytes);
    serde::WriteDouble(out, tenant.p50_request_micros);
    serde::WriteDouble(out, tenant.p95_request_micros);
    serde::WriteDouble(out, tenant.p99_request_micros);
  }
  return out.str();
}

std::vector<obs::TenantBreakdown> Server::TenantBreakdowns() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<obs::TenantBreakdown> out;
  out.reserve(tenants_.size());
  for (const auto& [name, stats] : tenants_) {
    obs::TenantBreakdown breakdown;
    breakdown.tenant = name;
    breakdown.sessions = stats->sessions.Value();
    breakdown.requests = stats->requests.Value();
    breakdown.comparisons = stats->comparisons_local.Value();
    breakdown.matches = stats->matches_local.Value();
    breakdown.spill_bytes = stats->spill_bytes.Value();
    const obs::HistogramSnapshot latency = stats->request_micros.Snapshot();
    breakdown.p50_request_micros = latency.Quantile(0.50);
    breakdown.p95_request_micros = latency.Quantile(0.95);
    breakdown.p99_request_micros = latency.Quantile(0.99);
    out.push_back(std::move(breakdown));
  }
  return out;
}

obs::StatsReport Server::BuildStatsReport() const {
  obs::StatsReport report;
  report.metrics = obs::MetricsRegistry::Default().Snapshot();
  report.tenants = TenantBreakdowns();
  report.peak_rss_bytes = obs::PeakRssBytes();
  return report;
}

Status Server::ExportSnapshots() const {
  if (!options_.stats_path.empty()) {
    std::ostringstream json;
    obs::WriteStatsJson(json, BuildStatsReport());
    MINOAN_RETURN_IF_ERROR(WriteFileAtomic(options_.stats_path, json.str()));
  }
  if (!options_.event_log_path.empty()) {
    std::ostringstream jsonl;
    events_.WriteJsonl(jsonl);
    MINOAN_RETURN_IF_ERROR(
        WriteFileAtomic(options_.event_log_path, jsonl.str()));
  }
  return Status::Ok();
}

}  // namespace server
}  // namespace minoan
