// Copyright 2026 The MinoanER Authors.
// Server: the TCP front end of resolution-as-a-service (`minoan serve`).
//
// One process hosts many tenants' sessions behind the length-prefixed
// protocol of protocol.h. The moving parts:
//
//   - an accept loop (own thread) handing each connection to a handler
//     thread; a connection is a plain request/response stream, and any
//     number of connections may address the same session id;
//   - a SessionManager holding every session, LRU-evicting past the live
//     cap and (with evict_after_seconds) checkpointing idle sessions —
//     a background sweeper thread runs the idle scan;
//   - a FairShare gate in front of every expensive request: Step and
//     ResolveBudget bodies are sliced into `installment`-sized
//     sub-budgets, each admitted separately and run on the shared
//     ThreadPool, so a tenant stepping millions of comparisons
//     interleaves with — never starves — a tenant stepping thousands.
//     Slicing is invisible in the results: Step(n/2) twice is
//     byte-identical to Step(n) (the session contract).
//
// Determinism: for a fixed corpus, options, and request sequence per
// session, every reply is byte-identical regardless of thread count,
// concurrent tenants, eviction timing, or installment size.
//
// Metrics (out-of-band): server.requests.<kind> counters,
// server.request_micros histogram, server.comparisons counter, and the
// SessionManager's server.sessions.* family. On top of those process-wide
// signals sits the live observability plane:
//
//   - per-tenant attribution: each tenant gets an obs::ScopedRegistry whose
//     dual-write handles mirror server.comparisons / server.matches into a
//     tenant-local shadow, so per-tenant sums reconcile exactly against the
//     process totals (TenantBreakdowns / the kStats v2 body);
//   - per-request tracing: every dispatch runs under a PhaseSpan named
//     "<kind> rid=<request id> sid=<session id>" feeding an optional
//     bounded TraceRecorder (written as Chrome-trace JSON at shutdown);
//   - a structured EventLog (slow_request, session_evicted/restored/
//     closed, checkpoint/restore failures) exported as JSONL;
//   - a background exporter thread rewriting the stats snapshot every
//     stats_every_seconds via temp-file + atomic rename, so readers never
//     observe a torn file.
//
// All of it observes and none of it steers: results are byte-identical
// with the whole plane on or off (ObsParityTest covers the served path).

#ifndef MINOAN_SERVER_SERVER_H_
#define MINOAN_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "server/fair_share.h"
#include "server/session_manager.h"
#include "server/wire.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace minoan {
namespace server {

struct ServerOptions {
  /// Listen address. Port 0 picks an ephemeral port (tests, CI) — read the
  /// chosen one back with port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Live-session cap (LRU-evicts beyond it) and idle-eviction horizon.
  size_t max_sessions = 64;
  double evict_after_seconds = 0;
  /// Checkpoint directory for evicted sessions.
  std::string state_dir = "/tmp/minoan-serve";
  /// Fair-share slots AND workers of the shared installment pool
  /// (0 = hardware concurrency).
  uint32_t num_threads = 1;
  /// Comparisons per admitted installment: the fairness quantum. Smaller =
  /// tighter interleaving, more gate traffic.
  uint64_t installment = 2048;

  /// Rolling stats export: when stats_path is set, the final snapshot is
  /// written at shutdown; with stats_every_seconds > 0 an exporter thread
  /// also rewrites it on that period (temp file + atomic rename — a reader
  /// never sees a torn snapshot). minoan-stats-v1 schema with the
  /// per-tenant breakdown populated.
  std::string stats_path;
  double stats_every_seconds = 0;
  /// Per-request tracing: record every dispatch as a PhaseSpan. Implied by
  /// a non-empty trace_path (Chrome-trace JSON written at shutdown);
  /// enable_trace alone keeps the recorder in memory for tests.
  std::string trace_path;
  bool enable_trace = false;
  /// JSONL event log (slow requests, evictions, restores, failures),
  /// rolled with the stats snapshots and written at shutdown.
  std::string event_log_path;
  /// Requests slower than this log a "slow_request" warn event (0 = off).
  double slow_request_millis = 250;
  /// Ring bounds for the event log and the per-request trace.
  size_t max_events = 4096;
  size_t max_trace_events = 65536;
};

class Server {
 public:
  /// Binds, listens, and starts the accept loop + sweeper. The returned
  /// server is running.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Stops accepting, closes live connections, joins every thread. Safe to
  /// call twice; the destructor calls it.
  void Shutdown();
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }
  SessionManager& sessions() { return sessions_; }

  /// Everything the server observed so far: the registry snapshot, the
  /// per-tenant breakdown, and peak RSS. The exporter thread, the shutdown
  /// snapshot, and the kStats v2 body all go through this one builder.
  obs::StatsReport BuildStatsReport() const;
  /// Per-tenant attribution, tenant-name sorted.
  std::vector<obs::TenantBreakdown> TenantBreakdowns() const;

  /// Writes the stats snapshot and event log to their configured paths via
  /// temp file + atomic rename. No-op for unset paths.
  Status ExportSnapshots() const;

  /// The per-request trace (null unless tracing is enabled) and the
  /// structured event log.
  const obs::TraceRecorder* trace() const { return trace_.get(); }
  obs::EventLog& events() { return events_; }

  /// Blocks until Shutdown() is called (the serve loop's main thread).
  void Wait();

 private:
  explicit Server(ServerOptions options);

  /// Everything a handler learns about the request it is serving, used
  /// after dispatch for span naming, tenant attribution, and slow-request
  /// events. session_id / tenant stay 0 / empty when not applicable.
  struct RequestContext {
    uint64_t request_id = 0;
    uint64_t session_id = 0;
    std::string tenant;
  };
  struct TenantStats;

  void AcceptLoop();
  void SweeperLoop();
  void ExporterLoop();
  void HandleConnection(int fd);
  /// Decodes one request frame and produces the response body. Never
  /// throws; internal errors become error responses.
  std::string Dispatch(const Frame& frame);

  std::string HandleCreateSession(std::istream& body, RequestContext& ctx);
  std::string HandleStep(std::istream& body, bool online, RequestContext& ctx);
  std::string HandleMatches(std::istream& body, RequestContext& ctx);
  std::string HandleCheckpoint(std::istream& body, RequestContext& ctx);
  std::string HandleClose(std::istream& body, RequestContext& ctx);
  std::string HandleIngest(std::istream& body, RequestContext& ctx);
  std::string HandleQuery(std::istream& body, RequestContext& ctx);
  std::string HandleLinks(std::istream& body, RequestContext& ctx);
  std::string HandleStats(std::istream& body);

  /// The tenant's scoped-metric bundle, created on first use.
  TenantStats& TenantFor(const std::string& tenant);

  /// Runs `fn` as one fair-share installment on the shared pool, charging
  /// `tenant` the cost fn reports.
  void RunInstallment(const std::string& tenant,
                      const std::function<uint64_t()>& fn);

  const ServerOptions options_;
  SessionManager sessions_;
  FairShare fair_share_;
  ThreadPool pool_;

  std::unique_ptr<obs::TraceRecorder> trace_;
  obs::EventLog events_;
  std::atomic<uint64_t> next_request_id_{1};
  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantStats>, std::less<>> tenants_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread sweeper_thread_;
  std::thread exporter_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::condition_variable shutdown_cv_;
  bool shut_down_ = false;
};

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_SERVER_H_
