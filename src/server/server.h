// Copyright 2026 The MinoanER Authors.
// Server: the TCP front end of resolution-as-a-service (`minoan serve`).
//
// One process hosts many tenants' sessions behind the length-prefixed
// protocol of protocol.h. The moving parts:
//
//   - an accept loop (own thread) handing each connection to a handler
//     thread; a connection is a plain request/response stream, and any
//     number of connections may address the same session id;
//   - a SessionManager holding every session, LRU-evicting past the live
//     cap and (with evict_after_seconds) checkpointing idle sessions —
//     a background sweeper thread runs the idle scan;
//   - a FairShare gate in front of every expensive request: Step and
//     ResolveBudget bodies are sliced into `installment`-sized
//     sub-budgets, each admitted separately and run on the shared
//     ThreadPool, so a tenant stepping millions of comparisons
//     interleaves with — never starves — a tenant stepping thousands.
//     Slicing is invisible in the results: Step(n/2) twice is
//     byte-identical to Step(n) (the session contract).
//
// Determinism: for a fixed corpus, options, and request sequence per
// session, every reply is byte-identical regardless of thread count,
// concurrent tenants, eviction timing, or installment size.
//
// Metrics (out-of-band): server.requests.<kind> counters,
// server.request_micros histogram, server.comparisons counter, and the
// SessionManager's server.sessions.* family.

#ifndef MINOAN_SERVER_SERVER_H_
#define MINOAN_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/fair_share.h"
#include "server/session_manager.h"
#include "server/wire.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace minoan {
namespace server {

struct ServerOptions {
  /// Listen address. Port 0 picks an ephemeral port (tests, CI) — read the
  /// chosen one back with port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Live-session cap (LRU-evicts beyond it) and idle-eviction horizon.
  size_t max_sessions = 64;
  double evict_after_seconds = 0;
  /// Checkpoint directory for evicted sessions.
  std::string state_dir = "/tmp/minoan-serve";
  /// Fair-share slots AND workers of the shared installment pool
  /// (0 = hardware concurrency).
  uint32_t num_threads = 1;
  /// Comparisons per admitted installment: the fairness quantum. Smaller =
  /// tighter interleaving, more gate traffic.
  uint64_t installment = 2048;
};

class Server {
 public:
  /// Binds, listens, and starts the accept loop + sweeper. The returned
  /// server is running.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Stops accepting, closes live connections, joins every thread. Safe to
  /// call twice; the destructor calls it.
  void Shutdown();
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }
  SessionManager& sessions() { return sessions_; }

  /// Blocks until Shutdown() is called (the serve loop's main thread).
  void Wait();

 private:
  explicit Server(ServerOptions options);

  void AcceptLoop();
  void SweeperLoop();
  void HandleConnection(int fd);
  /// Decodes one request frame and produces the response body. Never
  /// throws; internal errors become error responses.
  std::string Dispatch(const Frame& frame);

  std::string HandleCreateSession(std::istream& body);
  std::string HandleStep(std::istream& body, bool online);
  std::string HandleMatches(std::istream& body);
  std::string HandleCheckpoint(std::istream& body);
  std::string HandleClose(std::istream& body);
  std::string HandleIngest(std::istream& body);
  std::string HandleQuery(std::istream& body);
  std::string HandleLinks(std::istream& body);
  std::string HandleStats();

  /// Runs `fn` as one fair-share installment on the shared pool, charging
  /// `tenant` the cost fn reports.
  void RunInstallment(const std::string& tenant,
                      const std::function<uint64_t()>& fn);

  const ServerOptions options_;
  SessionManager sessions_;
  FairShare fair_share_;
  ThreadPool pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread sweeper_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::condition_variable shutdown_cv_;
  bool shut_down_ = false;
};

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_SERVER_H_
