#include "server/session_manager.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <vector>

#include "datagen/lod_generator.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "rdf/turtle.h"
#include "util/thread_pool.h"

namespace minoan {
namespace server {

namespace {

obs::Counter& CreatedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter("server.sessions.created");
  return c;
}
obs::Counter& EvictedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter("server.sessions.evicted");
  return c;
}
obs::Counter& RestoredCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter("server.sessions.restored");
  return c;
}
obs::Counter& ClosedCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter("server.sessions.closed");
  return c;
}
obs::Gauge& LiveGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Default().gauge("server.sessions.live");
  return g;
}
obs::Histogram& CheckpointBytes() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Default().histogram("server.checkpoint_bytes");
  return h;
}

WorkflowOptions BatchOptions(const SessionSpec& spec) {
  WorkflowOptions options;
  options.progressive.matcher.threshold = spec.threshold;
  options.use_same_as_seeds = spec.use_same_as_seeds;
  options.num_threads = spec.num_threads;
  return options;
}

online::OnlineOptions OnlineOptionsFor(const SessionSpec& spec) {
  online::OnlineOptions options;
  options.matcher.threshold = spec.threshold;
  options.use_same_as_seeds = spec.use_same_as_seeds;
  options.num_threads = spec.num_threads;
  return options;
}

}  // namespace

Result<EntityCollection> LoadCorpus(const std::string& source) {
  if (source.rfind("dir:", 0) == 0) {
    const std::string dir = source.substr(4);
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string ext = entry.path().extension().string();
      if (ext == ".nt" || ext == ".ttl" || ext == ".turtle") {
        files.push_back(entry.path().string());
      }
    }
    if (ec) {
      return Status::IoError("cannot read corpus directory " + dir + ": " +
                             ec.message());
    }
    if (files.empty()) {
      return Status::NotFound("no .nt/.ttl files in " + dir);
    }
    // Sorted order + file-stem KB names: exactly what the CLI's directory
    // loader does, so a served session and `minoan resolve DIR` run over
    // the identical collection (the byte-parity contract of kLinks).
    std::sort(files.begin(), files.end());
    EntityCollection collection;
    for (const std::string& file : files) {
      MINOAN_ASSIGN_OR_RETURN(std::vector<rdf::Triple> triples,
                              rdf::LoadTriples(file));
      MINOAN_RETURN_IF_ERROR(
          collection
              .AddKnowledgeBase(std::filesystem::path(file).stem().string(),
                                triples)
              .status());
    }
    MINOAN_RETURN_IF_ERROR(collection.Finalize());
    return collection;
  }
  if (source.rfind("synthetic:", 0) == 0) {
    // synthetic:<seed>:<entities>:<kbs>:<center>
    uint64_t fields[4] = {0, 0, 0, 0};
    size_t pos = 10;
    for (int i = 0; i < 4; ++i) {
      const size_t end = i == 3 ? source.size() : source.find(':', pos);
      if (end == std::string::npos) {
        return Status::InvalidArgument(
            "synthetic source needs seed:entities:kbs:center, got " + source);
      }
      const auto [ptr, ec] =
          std::from_chars(source.data() + pos, source.data() + end, fields[i]);
      if (ec != std::errc() || ptr != source.data() + end) {
        return Status::InvalidArgument("bad synthetic source field in " +
                                       source);
      }
      pos = end + 1;
    }
    datagen::LodCloudConfig config;
    config.seed = fields[0];
    config.num_real_entities = static_cast<uint32_t>(fields[1]);
    config.num_kbs = static_cast<uint32_t>(fields[2]);
    config.center_kbs = static_cast<uint32_t>(fields[3]);
    MINOAN_ASSIGN_OR_RETURN(datagen::LodCloud cloud,
                            datagen::GenerateLodCloud(config));
    return cloud.BuildCollection();
  }
  return Status::InvalidArgument(
      "corpus source must be dir:<path> or "
      "synthetic:<seed>:<entities>:<kbs>:<center>, got \"" +
      source + "\"");
}

/// One managed session. `mu` serializes every operation on the live
/// engines; the manager's lock never blocks on it (try_lock only), so a
/// lease holder cannot deadlock the manager.
struct SessionManager::Lease::Entry {
  uint64_t id = 0;
  SessionSpec spec;
  std::string ckpt_path;

  std::mutex mu;
  bool evicted = false;
  bool closed = false;
  /// Batch: the shared corpus (must outlive `batch`).
  std::shared_ptr<const EntityCollection> corpus;
  std::unique_ptr<ResolutionSession> batch;
  std::unique_ptr<online::OnlineResolver> online;

  /// LRU bookkeeping, written under the manager lock (Touch) and read by
  /// the eviction scans.
  uint64_t lru_seq = 0;
  std::atomic<int64_t> idle_since_ns{0};
};

namespace {
int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SessionManager::Lease::~Lease() {
  if (entry_ != nullptr) {
    entry_->idle_since_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  }
}

const SessionSpec& SessionManager::Lease::spec() const { return entry_->spec; }
ResolutionSession* SessionManager::Lease::batch() {
  return entry_->batch.get();
}
online::OnlineResolver* SessionManager::Lease::online() {
  return entry_->online.get();
}
const EntityCollection& SessionManager::Lease::collection() const {
  return entry_->online != nullptr ? entry_->online->collection()
                                   : *entry_->corpus;
}

SessionManager::SessionManager(Options options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.state_dir, ec);
  // A bad state_dir surfaces on the first eviction/checkpoint, with the
  // failing path in the message — not worth failing construction for.
}

std::string SessionManager::CheckpointPath(uint64_t id) const {
  return options_.state_dir + "/session-" + std::to_string(id) + ".ckpt";
}

Result<std::shared_ptr<const EntityCollection>> SessionManager::CorpusFor(
    const std::string& source) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = corpus_cache_.find(source);
    if (it != corpus_cache_.end()) {
      if (auto cached = it->second.lock()) return cached;
    }
  }
  // Load outside the manager lock: other sessions keep working while a
  // corpus loads. Two racing loaders of one source both succeed (identical
  // collections); last one wins the cache slot.
  MINOAN_ASSIGN_OR_RETURN(EntityCollection loaded, LoadCorpus(source));
  auto shared =
      std::make_shared<const EntityCollection>(std::move(loaded));
  std::lock_guard<std::mutex> lock(mu_);
  corpus_cache_[source] = shared;
  return shared;
}

Status SessionManager::Materialize(Entry& entry) {
  if (entry.spec.kind == SessionKind::kBatch) {
    if (entry.spec.source.empty()) {
      return Status::InvalidArgument("batch sessions require a corpus source");
    }
    MINOAN_ASSIGN_OR_RETURN(entry.corpus, CorpusFor(entry.spec.source));
    auto session =
        ResolutionSession::Open(*entry.corpus, BatchOptions(entry.spec));
    MINOAN_RETURN_IF_ERROR(session.status());
    entry.batch =
        std::make_unique<ResolutionSession>(std::move(session).value());
    return Status::Ok();
  }
  if (entry.spec.source.empty()) {
    entry.online =
        std::make_unique<online::OnlineResolver>(OnlineOptionsFor(entry.spec));
    return Status::Ok();
  }
  // Online warm start owns its collection — load a private copy (the
  // shared corpus cache hands out const snapshots, but the online engine
  // grows its store).
  MINOAN_ASSIGN_OR_RETURN(EntityCollection warm, LoadCorpus(entry.spec.source));
  entry.online = std::make_unique<online::OnlineResolver>(
      OnlineOptionsFor(entry.spec), std::move(warm));
  return Status::Ok();
}

Status SessionManager::RestoreEntry(Entry& entry) {
  const Status status = RestoreEntryImpl(entry);
  if (event_log_ != nullptr) {
    if (status.ok()) {
      event_log_->Log(obs::Severity::kInfo, "session_restored",
                      {{"tenant", entry.spec.tenant}}, {{"session", entry.id}});
    } else {
      event_log_->Log(obs::Severity::kError, "restore_failed",
                      {{"tenant", entry.spec.tenant},
                       {"error", std::string(status.message())}},
                      {{"session", entry.id}});
    }
  }
  return status;
}

Status SessionManager::RestoreEntryImpl(Entry& entry) {
  std::ifstream in(entry.ckpt_path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot read checkpoint " + entry.ckpt_path);
  }
  if (entry.spec.kind == SessionKind::kBatch) {
    MINOAN_ASSIGN_OR_RETURN(entry.corpus, CorpusFor(entry.spec.source));
    auto session = ResolutionSession::Restore(*entry.corpus,
                                              BatchOptions(entry.spec), in);
    MINOAN_RETURN_IF_ERROR(session.status());
    entry.batch =
        std::make_unique<ResolutionSession>(std::move(session).value());
  } else {
    // Self-contained: MNER-ONLN-v2 embeds the collection, so an online
    // session restores with no corpus rebuild at all.
    auto engine = online::OnlineResolver::Restore(OnlineOptionsFor(entry.spec),
                                                  in);
    MINOAN_RETURN_IF_ERROR(engine.status());
    entry.online = std::move(engine).value();
  }
  entry.evicted = false;
  live_.fetch_add(1, std::memory_order_relaxed);
  LiveGauge().Add(1);
  RestoredCounter().Increment();
  return Status::Ok();
}

Status SessionManager::EvictEntry(Entry& entry) {
  uint64_t bytes = 0;
  const Status status = EvictEntryImpl(entry, bytes);
  if (event_log_ != nullptr) {
    if (status.ok()) {
      event_log_->Log(obs::Severity::kInfo, "session_evicted",
                      {{"tenant", entry.spec.tenant}},
                      {{"session", entry.id}, {"checkpoint_bytes", bytes}});
    } else {
      event_log_->Log(obs::Severity::kError, "checkpoint_failed",
                      {{"tenant", entry.spec.tenant},
                       {"error", std::string(status.message())}},
                      {{"session", entry.id}});
    }
  }
  return status;
}

Status SessionManager::EvictEntryImpl(Entry& entry, uint64_t& bytes) {
  std::ofstream out(entry.ckpt_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot write checkpoint " + entry.ckpt_path);
  }
  MINOAN_RETURN_IF_ERROR(entry.batch != nullptr ? entry.batch->Checkpoint(out)
                                                : entry.online->SaveState(out));
  out.flush();
  if (!out) {
    return Status::IoError("short write to checkpoint " + entry.ckpt_path);
  }
  bytes = static_cast<uint64_t>(out.tellp());
  CheckpointBytes().Record(bytes);
  out.close();
  entry.batch.reset();
  entry.online.reset();
  entry.corpus.reset();
  entry.evicted = true;
  live_.fetch_sub(1, std::memory_order_relaxed);
  LiveGauge().Add(-1);
  EvictedCounter().Increment();
  return Status::Ok();
}

Result<uint64_t> SessionManager::Create(const SessionSpec& spec) {
  auto entry = std::make_shared<Entry>();
  entry->spec = spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->id = next_id_++;
    entry->lru_seq = ++lru_clock_;
    entry->ckpt_path = CheckpointPath(entry->id);
    sessions_.emplace(entry->id, entry);
  }
  entry->idle_since_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (Status st = Materialize(*entry); !st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(entry->id);
      return st;
    }
  }
  live_.fetch_add(1, std::memory_order_relaxed);
  LiveGauge().Add(1);
  CreatedCounter().Increment();
  std::lock_guard<std::mutex> lock(mu_);
  EnforceCapLocked();
  return entry->id;
}

Result<SessionManager::Lease> SessionManager::Acquire(uint64_t id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(id));
    }
    entry = it->second;
    entry->lru_seq = ++lru_clock_;
  }
  std::unique_lock<std::mutex> entry_lock(entry->mu);
  if (entry->closed) {
    return Status::NotFound("session " + std::to_string(id) + " is closed");
  }
  if (entry->evicted) {
    MINOAN_RETURN_IF_ERROR(RestoreEntry(*entry));
    std::lock_guard<std::mutex> lock(mu_);
    EnforceCapLocked();
  }
  entry->idle_since_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  return Lease(std::move(entry), std::move(entry_lock));
}

Result<uint64_t> SessionManager::Checkpoint(uint64_t id) {
  MINOAN_ASSIGN_OR_RETURN(Lease lease, Acquire(id));
  Entry& entry = *lease.entry_;
  std::ofstream out(entry.ckpt_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot write checkpoint " + entry.ckpt_path);
  }
  MINOAN_RETURN_IF_ERROR(entry.batch != nullptr ? entry.batch->Checkpoint(out)
                                                : entry.online->SaveState(out));
  out.flush();
  if (!out) {
    return Status::IoError("short write to checkpoint " + entry.ckpt_path);
  }
  const auto bytes = static_cast<uint64_t>(out.tellp());
  CheckpointBytes().Record(bytes);
  return bytes;
}

Status SessionManager::Evict(uint64_t id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(id));
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (entry->closed) {
    return Status::NotFound("session " + std::to_string(id) + " is closed");
  }
  if (entry->evicted) return Status::Ok();
  return EvictEntry(*entry);
}

size_t SessionManager::EvictIdle() {
  if (options_.evict_after_seconds <= 0) return 0;
  const int64_t cutoff =
      SteadyNowNs() -
      static_cast<int64_t>(options_.evict_after_seconds * 1e9);
  std::vector<std::shared_ptr<Entry>> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : sessions_) candidates.push_back(entry);
  }
  size_t evicted = 0;
  for (const auto& entry : candidates) {
    if (entry->idle_since_ns.load(std::memory_order_relaxed) > cutoff) {
      continue;
    }
    // try_lock: a session mid-request is busy, not idle — skip it.
    std::unique_lock<std::mutex> entry_lock(entry->mu, std::try_to_lock);
    if (!entry_lock.owns_lock() || entry->evicted || entry->closed) continue;
    if (entry->idle_since_ns.load(std::memory_order_relaxed) > cutoff) {
      continue;
    }
    if (EvictEntry(*entry).ok()) ++evicted;
  }
  return evicted;
}

void SessionManager::EnforceCapLocked() {
  const size_t cap = std::max<size_t>(1, options_.max_live_sessions);
  while (live_.load(std::memory_order_relaxed) > cap) {
    // Oldest lru_seq first; entries mid-request (lock held) are skipped —
    // the cap is best-effort under contention, exact once requests drain.
    std::shared_ptr<Entry> victim;
    uint64_t victim_seq = 0;
    for (const auto& [id, entry] : sessions_) {
      if (entry->evicted || entry->closed) continue;
      if (victim == nullptr || entry->lru_seq < victim_seq) {
        victim = entry;
        victim_seq = entry->lru_seq;
      }
    }
    if (victim == nullptr) return;
    std::unique_lock<std::mutex> entry_lock(victim->mu, std::try_to_lock);
    if (!entry_lock.owns_lock()) return;
    if (victim->evicted || victim->closed) continue;
    if (!EvictEntry(*victim).ok()) return;
  }
}

Status SessionManager::Close(uint64_t id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(id));
    }
    entry = it->second;
    sessions_.erase(it);
  }
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (!entry->evicted && !entry->closed) {
    live_.fetch_sub(1, std::memory_order_relaxed);
    LiveGauge().Add(-1);
  }
  entry->closed = true;
  entry->batch.reset();
  entry->online.reset();
  entry->corpus.reset();
  std::error_code ec;
  std::filesystem::remove(entry->ckpt_path, ec);
  ClosedCounter().Increment();
  if (event_log_ != nullptr) {
    event_log_->Log(obs::Severity::kInfo, "session_closed",
                    {{"tenant", entry->spec.tenant}}, {{"session", entry->id}});
  }
  return Status::Ok();
}

size_t SessionManager::live_sessions() const {
  return live_.load(std::memory_order_relaxed);
}

size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace server
}  // namespace minoan
