// Copyright 2026 The MinoanER Authors.
// SessionManager: the multi-tenant session store of the resolution service.
//
// Each session wraps either a batch ResolutionSession (pay-as-you-go over a
// frozen corpus) or an OnlineResolver (ingest/resolve/query). The manager
// owns their lifecycle:
//
//   Create   — builds the session from a SessionSpec (corpus source +
//              options) and assigns a dense u64 id.
//   Acquire  — hands out an exclusive Lease on one session. If the session
//              was evicted, Acquire transparently restores it from its
//              checkpoint file first — callers never observe eviction
//              except as latency.
//   Evict    — checkpoints the least-recently-used idle sessions to
//              `state_dir/session-<id>.ckpt` and frees their memory. Runs
//              automatically when live sessions exceed `max_live_sessions`
//              (LRU) and on EvictIdle() for sessions idle longer than
//              `evict_after` (the serve loop sweeps periodically).
//   Close    — drops the session and deletes its checkpoint file.
//
// Eviction is invisible to results by construction: a batch checkpoint
// restores byte-identically over the deterministically rebuilt corpus
// (sources are server-local directories or synthetic seeds, both
// reproducible), and an online state is fully self-contained since
// MNER-ONLN-v2 embeds the collection. Corpora are shared across sessions
// through a by-source cache, so ten tenants over one directory load it
// once.
//
// Metrics (out-of-band, obs::MetricsRegistry::Default()):
//   server.sessions.created / evicted / restored / closed — counters
//   server.sessions.live                                  — gauge
//   server.checkpoint_bytes                               — histogram
//
// Lifecycle moments (evict, restore, close, checkpoint/restore failures)
// additionally land in an optional obs::EventLog (set_event_log) as
// structured JSONL events tagged with tenant and session id.

#ifndef MINOAN_SERVER_SESSION_MANAGER_H_
#define MINOAN_SERVER_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/session.h"
#include "kb/collection.h"
#include "online/online_resolver.h"
#include "server/protocol.h"
#include "util/status.h"

namespace minoan {
namespace obs {
class EventLog;
}  // namespace obs
namespace server {

/// Everything needed to build a session — and to rebuild it after
/// eviction. Kept verbatim for the session's whole lifetime.
struct SessionSpec {
  std::string tenant;
  SessionKind kind = SessionKind::kBatch;
  /// Corpus source: "dir:<path>" (server-local RDF directory) or
  /// "synthetic:<seed>:<entities>:<kbs>:<center>" (datagen cloud). Batch
  /// sessions require one; online sessions warm-start from it when given.
  std::string source;
  double threshold = 0.35;
  bool use_same_as_seeds = false;
  /// Worker threads for the session's internal phases (batch static
  /// phases, online warm scoring). 1 = inline.
  uint32_t num_threads = 1;
};

class SessionManager {
 public:
  struct Options {
    /// Checkpoint directory for evicted sessions (required).
    std::string state_dir;
    /// Live-session cap; creating past it LRU-evicts (>= 1).
    size_t max_live_sessions = 64;
    /// Idle seconds after which EvictIdle() checkpoints a session
    /// (0 = only the cap evicts).
    double evict_after_seconds = 0;
  };

  explicit SessionManager(Options options);

  /// An exclusive handle on one live session. Holds the session's lock for
  /// the lease's lifetime; the pointers stay valid exactly that long.
  class Lease {
   public:
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    /// Stamps the session's idle clock — idle eviction measures from the
    /// end of the last request, not its start.
    ~Lease();

    const SessionSpec& spec() const;
    /// Null for online sessions.
    ResolutionSession* batch();
    /// Null for batch sessions.
    online::OnlineResolver* online();
    /// The session's corpus (batch: the shared loaded collection; online:
    /// the engine's live collection).
    const EntityCollection& collection() const;

   private:
    friend class SessionManager;
    struct Entry;
    Lease(std::shared_ptr<Entry> entry, std::unique_lock<std::mutex> lock)
        : entry_(std::move(entry)), lock_(std::move(lock)) {}
    std::shared_ptr<Entry> entry_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Builds the session and returns its id. May LRU-evict to stay under
  /// the live cap.
  Result<uint64_t> Create(const SessionSpec& spec);

  /// Exclusive access; transparently restores an evicted session.
  Result<Lease> Acquire(uint64_t id);

  /// Checkpoints the session to its state file without evicting it (the
  /// kCheckpoint request). Returns the bytes written.
  Result<uint64_t> Checkpoint(uint64_t id);

  /// Evicts one specific live session (test hook; the cap path and
  /// EvictIdle use the same machinery).
  Status Evict(uint64_t id);

  /// Checkpoints every session idle longer than `evict_after_seconds`
  /// (no-op when that option is 0). Returns how many were evicted.
  size_t EvictIdle();

  /// Removes the session and deletes its checkpoint file.
  Status Close(uint64_t id);

  size_t live_sessions() const;
  size_t num_sessions() const;
  const Options& options() const { return options_; }

  /// Sink for lifecycle events (evict/restore/close and their failures).
  /// Optional; wire it before traffic starts (the Server does so at
  /// construction). The log must outlive the manager.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

 private:
  using Entry = Lease::Entry;

  std::string CheckpointPath(uint64_t id) const;
  /// Loads or reuses the corpus for `source` (cache by source string).
  Result<std::shared_ptr<const EntityCollection>> CorpusFor(
      const std::string& source);
  /// Builds the live engine inside `entry` (fresh create). Entry lock held.
  Status Materialize(Entry& entry);
  /// Restores `entry` from its checkpoint file. Entry lock held. The
  /// outcome (session_restored / restore_failed) lands in the event log.
  Status RestoreEntry(Entry& entry);
  Status RestoreEntryImpl(Entry& entry);
  /// Checkpoints `entry` and frees its live state. Entry lock held. The
  /// outcome (session_evicted / checkpoint_failed) lands in the event log.
  Status EvictEntry(Entry& entry);
  Status EvictEntryImpl(Entry& entry, uint64_t& bytes);
  /// Evicts LRU live sessions until `live_` <= cap. Manager lock held by
  /// caller; takes entry locks (skipping busy entries).
  void EnforceCapLocked();

  const Options options_;
  obs::EventLog* event_log_ = nullptr;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  uint64_t lru_clock_ = 0;
  /// Live-session count; atomic so eviction scans and accessors read it
  /// without the manager lock (entry transitions hold only the entry lock).
  std::atomic<size_t> live_{0};
  std::map<uint64_t, std::shared_ptr<Entry>> sessions_;
  /// Corpora shared across sessions with the same source. weak_ptr: a
  /// corpus lives exactly as long as some live session uses it.
  std::unordered_map<std::string, std::weak_ptr<const EntityCollection>>
      corpus_cache_;
};

/// Builds a collection from a SessionSpec source string ("dir:..." or
/// "synthetic:..."). Exposed for the CLI and tests.
Result<EntityCollection> LoadCorpus(const std::string& source);

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_SESSION_MANAGER_H_
