#include "server/wire.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "server/protocol.h"
#include "util/serde.h"

namespace minoan {
namespace server {

Status ReadExact(int fd, char* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n == 0) {
      return done == 0 ? Status::NotFound("connection closed")
                       : Status::IoError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadFrame(int fd, Frame& frame) {
  char prefix[4];
  MINOAN_RETURN_IF_ERROR(ReadExact(fd, prefix, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(prefix[i]))
           << (8 * i);
  }
  // Version byte + message id are part of the payload; anything shorter
  // cannot be a frame, anything above the cap is hostile — both leave the
  // stream position meaningless, so the caller must drop the connection.
  if (len < 3 || len > kMaxFrameBytes) {
    return Status::ParseError("invalid frame length");
  }
  std::string payload(len, '\0');
  if (Status st = ReadExact(fd, payload.data(), len); !st.ok()) {
    // EOF after a length prefix is a torn frame, not a clean close.
    return st.code() == StatusCode::kNotFound
               ? Status::IoError("connection closed mid-frame")
               : st;
  }
  frame.version = static_cast<uint8_t>(payload[0]);
  frame.id = static_cast<uint16_t>(
      static_cast<unsigned char>(payload[1]) |
      (static_cast<uint16_t>(static_cast<unsigned char>(payload[2])) << 8));
  frame.body.assign(payload, 3, payload.size() - 3);
  return Status::Ok();
}

Status WriteFrame(int fd, uint16_t id, std::string_view body) {
  if (body.size() > kMaxFrameBytes - 3) {
    return Status::InvalidArgument("frame body too large");
  }
  std::ostringstream out;
  serde::WriteU32(out, static_cast<uint32_t>(body.size() + 3));
  serde::WriteU8(out, kProtocolVersion);
  serde::WriteU16(out, id);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  return WriteAll(fd, out.str());
}

void WriteStatusPrefix(std::ostream& out, const Status& status) {
  serde::WriteU8(out, static_cast<uint8_t>(status.code()));
  serde::WriteString(out, status.ok() ? std::string_view{}
                                      : std::string_view(status.message()));
}

Status ReadStatusPrefix(std::istream& in) {
  uint8_t code = 0;
  std::string message;
  if (!serde::ReadU8(in, code) || !serde::ReadString(in, message)) {
    return Status::ParseError("truncated response status");
  }
  if (code == 0) return Status::Ok();
  return Status(static_cast<StatusCode>(code), std::move(message));
}

std::string ErrorBody(const Status& status) {
  std::ostringstream out;
  WriteStatusPrefix(out, status);
  return out.str();
}

}  // namespace server
}  // namespace minoan
