// Copyright 2026 The MinoanER Authors.
// Frame I/O for the resolution service: length-prefixed messages over a
// POSIX byte stream (see protocol.h for the layout).
//
// Reads are hostile-input hardened: the length prefix is capped before any
// allocation, short reads and truncated frames surface as a Status instead
// of half-initialized state, and a clean EOF exactly at a frame boundary is
// distinguishable (kNotFound) from a connection torn mid-frame (kIoError).

#ifndef MINOAN_SERVER_WIRE_H_
#define MINOAN_SERVER_WIRE_H_

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace minoan {
namespace server {

/// One decoded frame: protocol version, message id, and the raw body.
struct Frame {
  uint8_t version = 0;
  uint16_t id = 0;
  std::string body;
};

/// Reads exactly `len` bytes from `fd` (retrying on EINTR / short reads).
/// kNotFound when the stream ends before the FIRST byte (clean close),
/// kIoError when it ends mid-buffer or the read fails.
Status ReadExact(int fd, char* buf, size_t len);

/// Writes all of `data` to `fd`, retrying on EINTR / short writes.
Status WriteAll(int fd, std::string_view data);

/// Reads one whole frame. kNotFound = clean EOF at a frame boundary;
/// kParseError = oversized length prefix (the connection must be dropped —
/// the stream position is unrecoverable); kIoError = torn connection.
Status ReadFrame(int fd, Frame& frame);

/// Writes one frame: length prefix, version, id, body.
Status WriteFrame(int fd, uint16_t id, std::string_view body);

/// Serializes the leading status of a response body (u8 code + message).
void WriteStatusPrefix(std::ostream& out, const Status& status);

/// Parses the leading status of a response body.
Status ReadStatusPrefix(std::istream& in);

/// Whole error-response body for `status` (no result fields follow).
std::string ErrorBody(const Status& status);

}  // namespace server
}  // namespace minoan

#endif  // MINOAN_SERVER_WIRE_H_
