#include "text/normalize.h"

namespace minoan {

std::string NormalizeText(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  bool pending_space = false;
  for (char c : input) {
    if (IsTokenByte(c)) {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      out += AsciiToLower(c);
    } else {
      pending_space = true;
    }
  }
  return out;
}

}  // namespace minoan
