// Copyright 2026 The MinoanER Authors.
// Text normalization applied before tokenization.
//
// Web-of-data literals come from autonomous KBs with inconsistent casing,
// punctuation and whitespace; normalization maximizes the chance that two
// descriptions of the same real-world entity share tokens (the minimal
// matching assumption MinoanER's blocking relies on).

#ifndef MINOAN_TEXT_NORMALIZE_H_
#define MINOAN_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace minoan {

/// Returns `input` lowercased (ASCII) with every non-alphanumeric byte
/// replaced by a single space and runs of spaces collapsed. Bytes >= 0x80
/// (UTF-8 continuation/lead) are kept verbatim so multi-byte scripts still
/// produce stable tokens.
std::string NormalizeText(std::string_view input);

/// ASCII-lowercases a single byte.
inline char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// True for bytes that belong inside a token: ASCII alphanumerics and any
/// non-ASCII byte.
inline bool IsTokenByte(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return (u >= '0' && u <= '9') || (u >= 'a' && u <= 'z') ||
         (u >= 'A' && u <= 'Z') || u >= 0x80;
}

}  // namespace minoan

#endif  // MINOAN_TEXT_NORMALIZE_H_
