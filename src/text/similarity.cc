#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <utility>

namespace minoan {

size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  // Branch-light merge: each step is three flag adds instead of a
  // three-way compare the branch predictor has to guess, which is what the
  // set-overlap kernels under every Jaccard/Dice/cosine call spend their
  // time on.
  const uint32_t* pa = a.data();
  const uint32_t* pb = b.data();
  const uint32_t* const ea = pa + a.size();
  const uint32_t* const eb = pb + b.size();
  size_t count = 0;
  while (pa < ea && pb < eb) {
    const uint32_t x = *pa;
    const uint32_t y = *pb;
    count += x == y;
    pa += x <= y;
    pb += y <= x;
  }
  return count;
}

double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSimilarity(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double OverlapCoefficient(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double BinaryCosineSimilarity(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double WeightedCosineSimilarity(const std::vector<WeightedToken>& a,
                                const std::vector<WeightedToken>& b) {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (const auto& t : a) norm_a += t.weight * t.weight;
  for (const auto& t : b) norm_b += t.weight * t.weight;
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].id < b[j].id) {
      ++i;
    } else if (b[j].id < a[i].id) {
      ++j;
    } else {
      dot += a[i].weight * b[j].weight;
      ++i;
      ++j;
    }
  }
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double WeightedJaccardSimilarity(const std::vector<WeightedToken>& a,
                                 const std::vector<WeightedToken>& b) {
  double min_sum = 0.0, max_sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].id < b[j].id)) {
      max_sum += a[i].weight;
      ++i;
    } else if (i >= a.size() || b[j].id < a[i].id) {
      max_sum += b[j].weight;
      ++j;
    } else {
      min_sum += std::min(a[i].weight, b[j].weight);
      max_sum += std::max(a[i].weight, b[j].weight);
      ++i;
      ++j;
    }
  }
  return max_sum == 0.0 ? 0.0 : min_sum / max_sum;
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      a.size() == 1 && b.size() == 1
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;
  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters in order.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

/// (intersection, union) of two sorted multisets, by pairwise merge: each
/// matched pair counts once toward both, every leftover element once toward
/// the union — exactly sum(min(counts)) / sum(max(counts)) per distinct
/// element, without materializing a count table.
template <typename T>
std::pair<size_t, size_t> SortedMultisetOverlap(const std::vector<T>& a,
                                                const std::vector<T>& b) {
  size_t i = 0, j = 0, inter = 0, uni = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++uni;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++uni;
      ++i;
    } else {
      ++uni;
      ++j;
    }
  }
  uni += (a.size() - i) + (b.size() - j);
  return {inter, uni};
}

}  // namespace

double QGramSimilarity(std::string_view a, std::string_view b, size_t q) {
  if (q == 0) q = 1;
  if (a.size() < q || b.size() < q) return a == b ? 1.0 : 0.0;
  size_t inter = 0, uni = 0;
  if (q <= sizeof(uint64_t)) {
    // Pack each q-byte window into one integer — a collision-free intern
    // for q <= 8 (the default is 2) — and merge the sorted packed windows:
    // no per-gram string allocation, no count table.
    const auto grams = [q](std::string_view s, std::vector<uint64_t>& out) {
      out.clear();
      out.reserve(s.size() - q + 1);
      for (size_t i = 0; i + q <= s.size(); ++i) {
        uint64_t packed = 0;
        for (size_t k = 0; k < q; ++k) {
          packed = (packed << 8) | static_cast<unsigned char>(s[i + k]);
        }
        out.push_back(packed);
      }
      std::sort(out.begin(), out.end());
    };
    std::vector<uint64_t> ga, gb;
    grams(a, ga);
    grams(b, gb);
    std::tie(inter, uni) = SortedMultisetOverlap(ga, gb);
  } else {
    // Oversized q: windows as views into the inputs, no copies. The packed
    // path orders by byte content and this one lexicographically — both are
    // merely *some* total order over equal-length windows, and the overlap
    // counts are order-independent.
    const auto grams = [q](std::string_view s,
                           std::vector<std::string_view>& out) {
      out.clear();
      out.reserve(s.size() - q + 1);
      for (size_t i = 0; i + q <= s.size(); ++i) out.push_back(s.substr(i, q));
      std::sort(out.begin(), out.end());
    };
    std::vector<std::string_view> ga, gb;
    grams(a, ga);
    grams(b, gb);
    std::tie(inter, uni) = SortedMultisetOverlap(ga, gb);
  }
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace minoan
