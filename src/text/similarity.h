// Copyright 2026 The MinoanER Authors.
// String and token-set similarity kernels used by entity matching.
//
// Set kernels operate on sorted unique uint32 id vectors (see SortUnique);
// character kernels operate on raw byte strings. All return values lie in
// [0, 1] with 1 = identical.

#ifndef MINOAN_TEXT_SIMILARITY_H_
#define MINOAN_TEXT_SIMILARITY_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace minoan {

// ---------------------------------------------------------------------------
// Token-set kernels (inputs MUST be sorted and deduplicated).
// ---------------------------------------------------------------------------

/// |A ∩ B| for sorted unique vectors; the workhorse of every set kernel.
size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);

/// Jaccard coefficient |A∩B| / |A∪B|. Empty∧empty → 0.
double JaccardSimilarity(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b);

/// Dice coefficient 2|A∩B| / (|A|+|B|).
double DiceSimilarity(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b);

/// Overlap (Szymkiewicz–Simpson) coefficient |A∩B| / min(|A|,|B|).
double OverlapCoefficient(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b);

/// Cosine over binary incidence vectors: |A∩B| / sqrt(|A|·|B|).
double BinaryCosineSimilarity(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);

/// A weighted-token entry: token id plus a weight (e.g. TF-IDF).
struct WeightedToken {
  uint32_t id;
  double weight;
};

/// Cosine over sparse weighted vectors sorted by id.
double WeightedCosineSimilarity(const std::vector<WeightedToken>& a,
                                const std::vector<WeightedToken>& b);

/// Generalized (weighted) Jaccard: Σ min(w_a, w_b) / Σ max(w_a, w_b) over the
/// union of ids; vectors sorted by id.
double WeightedJaccardSimilarity(const std::vector<WeightedToken>& a,
                                 const std::vector<WeightedToken>& b);

// ---------------------------------------------------------------------------
// Character kernels.
// ---------------------------------------------------------------------------

/// Unit-cost Levenshtein distance (two-row DP, O(|a|·|b|) time, O(min) space).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(|a|, |b|); both empty → 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with standard scaling 0.1 and max prefix 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard over the multiset of q-grams of the two strings (q >= 1). Strings
/// shorter than q compare by exact equality.
double QGramSimilarity(std::string_view a, std::string_view b, size_t q = 3);

}  // namespace minoan

#endif  // MINOAN_TEXT_SIMILARITY_H_
