#include "text/tokenizer.h"

#include <algorithm>

#include "text/normalize.h"

namespace minoan {

namespace {

bool AllDigits(std::string_view token) {
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return !token.empty();
}

template <typename Emit>
void Split(std::string_view text, bool normalize, const Emit& emit) {
  std::string buffer;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && !IsTokenByte(text[i])) ++i;
    size_t start = i;
    while (i < n && IsTokenByte(text[i])) ++i;
    if (i > start) {
      if (normalize) {
        buffer.assign(text.substr(start, i - start));
        for (char& c : buffer) c = AsciiToLower(c);
        emit(std::string_view(buffer));
      } else {
        emit(text.substr(start, i - start));
      }
    }
  }
}

}  // namespace

bool Tokenizer::Keep(std::string_view token) const {
  if (token.size() < options_.min_token_length) return false;
  if (!options_.keep_numeric && AllDigits(token)) return false;
  return true;
}

void Tokenizer::Tokenize(std::string_view text,
                         std::vector<std::string>& out) const {
  Split(text, options_.normalize, [&](std::string_view token) {
    if (Keep(token)) out.emplace_back(token);
  });
}

void Tokenizer::TokenizeInto(std::string_view text, StringInterner& dict,
                             std::vector<uint32_t>& out) const {
  Split(text, options_.normalize, [&](std::string_view token) {
    if (Keep(token)) out.push_back(dict.Intern(token));
  });
}

void SortUnique(std::vector<uint32_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace minoan
