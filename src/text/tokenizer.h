// Copyright 2026 The MinoanER Authors.
// Tokenization of attribute values and IRIs into blocking keys.

#ifndef MINOAN_TEXT_TOKENIZER_H_
#define MINOAN_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/interner.h"

namespace minoan {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Tokens shorter than this many bytes are dropped (articles, initials …).
  uint32_t min_token_length = 2;
  /// Tokens consisting solely of digits are kept iff true (years, zip codes
  /// are often discriminative in entity descriptions).
  bool keep_numeric = true;
  /// Lowercase + punctuation folding before splitting.
  bool normalize = true;
};

/// Splits text into normalized tokens (maximal runs of token bytes).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = TokenizerOptions())
      : options_(options) {}

  /// Appends the tokens of `text` to `out` as strings.
  void Tokenize(std::string_view text, std::vector<std::string>& out) const;

  /// Interns the tokens of `text` into `dict`, appending ids to `out`.
  /// Duplicate tokens within one call are preserved (callers dedupe when
  /// building set semantics).
  void TokenizeInto(std::string_view text, StringInterner& dict,
                    std::vector<uint32_t>& out) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool Keep(std::string_view token) const;
  TokenizerOptions options_;
};

/// Sorts and deduplicates a token-id list in place (set semantics used by
/// Jaccard and by token blocking).
void SortUnique(std::vector<uint32_t>& ids);

}  // namespace minoan

#endif  // MINOAN_TEXT_TOKENIZER_H_
