#include "util/cli_flags.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace minoan {
namespace cli {

Flags::Flags(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc &&
               std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      // Everything up to the next --flag is this flag's value; a single
      // leading dash is allowed so negative numbers parse as values.
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string Flags::Get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "error: --%s expects a number, got \"%s\"\n",
                 name.c_str(), it->second.c_str());
    std::exit(2);
  }
  return v;
}

uint64_t Flags::GetInt(const std::string& name, uint64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  uint64_t v = 0;
  const char* begin = it->second.data();
  const char* end = begin + it->second.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) {
    std::fprintf(stderr,
                 "error: --%s expects a non-negative integer, got \"%s\"\n",
                 name.c_str(), it->second.c_str());
    std::exit(2);
  }
  return v;
}

uint64_t Flags::GetByteSize(const std::string& name, uint64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& raw = it->second;
  uint64_t v = 0;
  const char* begin = raw.data();
  const char* end = begin + raw.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  uint64_t shift = 0;
  bool bad_suffix = false;
  std::string suffix(ptr, end);
  for (char& c : suffix) c = static_cast<char>(std::tolower(c));
  if (suffix == "k" || suffix == "kb") {
    shift = 10;
  } else if (suffix == "m" || suffix == "mb") {
    shift = 20;
  } else if (suffix == "g" || suffix == "gb") {
    shift = 30;
  } else if (!suffix.empty()) {
    bad_suffix = true;
  }
  if (ec != std::errc() || ptr == begin || bad_suffix ||
      (shift > 0 && v > (uint64_t{1} << (63 - shift)))) {
    std::fprintf(stderr,
                 "error: --%s expects a byte size like 65536, 64k or 1g, "
                 "got \"%s\"\n",
                 name.c_str(), raw.c_str());
    std::exit(2);
  }
  return v << shift;
}

std::vector<std::string> Flags::UnknownFlags(
    std::initializer_list<std::string_view> allowed) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;  // values_ is a sorted map — order is already stable
}

}  // namespace cli
}  // namespace minoan
