// Copyright 2026 The MinoanER Authors.
// Flags: the `minoan` CLI's flag parser, extracted so every verb shares one
// grammar and tests can pin it.
//
// Grammar: `--name value` and `--name=value`; a bare `--name` followed by
// another flag (or nothing) is boolean true. A single leading dash is
// allowed in values so negative numbers parse. Everything that does not
// start with `--` is positional.
//
// Numeric accessors treat malformed input as a usage error: they print a
// specific message to stderr and exit(2) — a CLI contract, which is why
// they never throw. Verbs reject flags they do not understand through
// UnknownFlags(): a typo like `--theshold` must exit 2 with a message, not
// be silently ignored while the run proceeds with defaults.

#ifndef MINOAN_UTIL_CLI_FLAGS_H_
#define MINOAN_UTIL_CLI_FLAGS_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace minoan {
namespace cli {

class Flags {
 public:
  /// Parses argv[first..argc).
  Flags(int argc, char** argv, int first);

  /// The flag's value, or `fallback` when absent.
  std::string Get(const std::string& name, const std::string& fallback) const;

  /// Floating-point flag; exits 2 with a message on malformed input.
  double GetDouble(const std::string& name, double fallback) const;

  /// Non-negative integer flag; exits 2 with a message on malformed input.
  uint64_t GetInt(const std::string& name, uint64_t fallback) const;

  /// Byte size: integer with optional k/m/g (or kb/mb/gb, case-insensitive)
  /// binary suffix — "65536", "64k", "1G". Exits 2 on malformed input.
  uint64_t GetByteSize(const std::string& name, uint64_t fallback) const;

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  const std::vector<std::string>& positional() const { return positional_; }

  /// Every parsed flag name NOT in `allowed`, in parse-stable (sorted)
  /// order. Verbs turn a non-empty result into exit code 2.
  std::vector<std::string> UnknownFlags(
      std::initializer_list<std::string_view> allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cli
}  // namespace minoan

#endif  // MINOAN_UTIL_CLI_FLAGS_H_
